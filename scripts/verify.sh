#!/usr/bin/env bash
# Full local verification: build, every test, clippy with warnings
# denied, rustdoc with warnings denied (the gridmpi/netsim crates
# enforce #![warn(missing_docs)]), and the doctests on their own (they
# exercise the public examples in the API docs, e.g. the
# metrics-registry example).
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo clippy --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo test --doc --workspace"
cargo test -q --doc --workspace

echo "verify: all green"
