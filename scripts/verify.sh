#!/usr/bin/env bash
# Full local verification: build, every test, clippy with warnings
# denied, rustdoc with warnings denied (the gridmpi/netsim crates
# enforce #![warn(missing_docs)]), the doctests on their own (they
# exercise the public examples in the API docs, e.g. the
# metrics-registry example), the commlint and archlint static scans,
# the commcheck happens-before gate, and the fault-matrix smoke.
#
# Usage: scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo clippy --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo test --doc --workspace"
cargo test -q --doc --workspace

echo "==> commlint (static determinism lint: wall clock, HashMap iteration,"
echo "    wildcard receives, tag protocol; see docs/static-analysis.md)"
cargo run --release -q -p tsqr-lint --bin commlint

echo "==> archlint (workspace analyzer: crate layering vs scripts/layering.toml,"
echo "    nondeterminism-taint propagation, message-flow model vs"
echo "    scripts/archlint.model; see docs/static-analysis.md)"
cargo run --release -q -p tsqr-lint --bin archlint

echo "==> linkcheck (markdown links + anchors across README, EXPERIMENTS, docs/)"
cargo run --release -q -p tsqr-lint --bin linkcheck

echo "==> commcheck (happens-before gate: figure scenarios + fault matrix"
echo "    + DPOR-lite explorer, pinned against COMMCHECK_baseline.txt)"
./target/release/grid-tsqr check --recv-timeout 60 --golden COMMCHECK_baseline.txt

echo "==> fault-matrix smoke (self-healing TSQR via the CLI)"
# Crash one representative rank of every tree level on the 4-site grid
# (256 ranks, GridHierarchical): leaf, intra-cluster combiner, cluster
# root, WAN-phase combiner, global root. Each run verifies the
# recovered R bitwise against the failure-free reference and exits
# nonzero otherwise. The last run also shows the plain program's typed
# failure report (--baseline); a final run mixes transient loss with a
# WAN brown-out.
FAULTS="./target/release/grid-tsqr faults --m 65536 --n 32 --sites 4 --recv-timeout 30"
for spec in 255@0.5 2@2 64@2 128@6 0@6; do
  $FAULTS --crash "$spec" >/dev/null
done
$FAULTS --crash 0@2 --crash 1@4 --baseline >/dev/null
$FAULTS --drop-prob 64:0:0.4 --wan-slow 0:50:4:4 --fault-seed 7 >/dev/null
echo "    fault smoke: all scenarios recovered bitwise"

echo "==> serving-layer smoke (multi-tenant scheduler: every policy on one"
echo "    seeded trace, plus the batched same-shape burst; docs/serving.md)"
SERVE="./target/release/grid-tsqr serve --requests 40 --seed 11"
$SERVE --policy all --load 1.5 >/dev/null
$SERVE --policy fifo --load 4.0 --shape 3 --batch >/dev/null
$SERVE --policy sjf --sweep 0.5,1.0,2.0 >/dev/null
echo "    serve smoke: all policies scored, batch and sweep render"

echo "==> serving chaos smoke (failure schedules in the serve engine:"
echo "    crash + checkpointed retry, crash + elastic re-plan, degraded"
echo "    WAN + brownout shed; docs/serving.md §Failures)"
$SERVE --load 1.0 --crash 2@100 >/dev/null
$SERVE --load 1.0 --crash 2@100 --shape 3 --no-checkpoint >/dev/null
$SERVE --load 0.5 --wan-slow 50:5000:1:8 \
  --drop-flow 0:2:0 --drop-flow 0:2:1 --drop-flow 0:2:2 \
  --drop-flow 0:2:3 --drop-flow 0:2:4 --drop-flow 0:2:5 \
  --backoff 200 --brownout 1:0 >/dev/null
echo "    chaos smoke: crashed, re-planned, browned out, recovered"

echo "==> report gate (experiment-ledger dashboard pinned against"
echo "    REPORT_baseline.md; --check flags anomalous model residuals)"
./target/release/grid-tsqr report --ledger ledger/runs.jsonl \
  --golden REPORT_baseline.md --check

echo "verify: all green"
