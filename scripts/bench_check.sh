#!/usr/bin/env bash
# Perf-regression gate: measures every registered headline point of
# Figs. 4-8 (deterministic simulation) and compares the records against
# the committed BENCH_baseline.json. See docs/observability.md for the
# record schema and the tolerances.
#
# Usage:
#   scripts/bench_check.sh            # measure and compare; exit 1 on drift
#   scripts/bench_check.sh --bless    # rewrite BENCH_baseline.json
#
# Env:
#   GRID_TSQR_BENCH_RTOL   relative tolerance for times (default 1e-9)
#   GRID_TSQR_LEDGER       experiment-ledger JSONL every measured point is
#                          appended to (default ledger/runs.jsonl; set to
#                          the empty string to disable)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_baseline.json
RESULTS=BENCH_results.json
# Every gate run also extends the cross-run experiment ledger behind
# `grid-tsqr report` (docs/observability.md section 9).
export GRID_TSQR_LEDGER="${GRID_TSQR_LEDGER-ledger/runs.jsonl}"

if [[ "${1:-}" == "--bless" ]]; then
  exec cargo run --release -q -p tsqr-bench --bin bench_check -- \
    --bless --baseline "$BASELINE"
fi

exec cargo run --release -q -p tsqr-bench --bin bench_check -- \
  --baseline "$BASELINE" --out "$RESULTS"
