#!/usr/bin/env bash
# Perf-regression gate: measures every registered headline point of
# Figs. 4-8 (deterministic simulation) and compares the records against
# the committed BENCH_baseline.json. See docs/observability.md for the
# record schema and the tolerances.
#
# Usage:
#   scripts/bench_check.sh            # measure and compare; exit 1 on drift
#   scripts/bench_check.sh --bless    # rewrite BENCH_baseline.json
#
# Env:
#   GRID_TSQR_BENCH_RTOL   relative tolerance for times (default 1e-9)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=BENCH_baseline.json
RESULTS=BENCH_results.json

if [[ "${1:-}" == "--bless" ]]; then
  exec cargo run --release -q -p tsqr-bench --bin bench_check -- \
    --bless --baseline "$BASELINE"
fi

exec cargo run --release -q -p tsqr-bench --bin bench_check -- \
  --baseline "$BASELINE" --out "$RESULTS"
