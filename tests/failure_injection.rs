//! Failure-injection integration tests: deterministic link failures must
//! surface as typed errors in whatever rank program hits them, and leave
//! the other ranks' results intact where the protocol allows.

use grid_tsqr::gridmpi::{CommError, Runtime};
use grid_tsqr::netsim::{ClusterSpec, CostModel, GridTopology, LinkParams};

fn runtime(procs: usize) -> Runtime {
    let topo = GridTopology::block_placement(
        vec![ClusterSpec {
            name: "c".into(),
            nodes: procs,
            procs_per_node: 1,
            peak_gflops_per_proc: 8.0,
        }],
        procs,
        1,
    );
    let mut rt =
        Runtime::new(topo, CostModel::homogeneous(LinkParams::from_ms_mbps(0.1, 890.0), 1e9, 1));
    // Failure tests intentionally starve some ranks; fail fast.
    rt.set_recv_timeout(std::time::Duration::from_secs(2));
    rt
}

#[test]
fn failed_send_is_typed_and_attributed() {
    let mut rt = runtime(2);
    rt.fail_link(0, 1);
    let report = rt.run(|p, _| {
        if p.rank() == 0 {
            p.send(1, 0, 1.0f64)
        } else {
            Ok(()) // rank 1 checks the link before waiting
        }
    });
    assert_eq!(report.ranks[0].result, Err(CommError::LinkDown { src: 0, dst: 1 }));
    assert!(report.ranks[1].result.is_ok());
}

#[test]
fn reverse_direction_still_works() {
    let mut rt = runtime(2);
    rt.fail_link(0, 1); // directed: 1 -> 0 still up
    let report = rt.run(|p, _| {
        if p.rank() == 1 {
            p.send(0, 0, 2.5f64)?;
            Ok(0.0)
        } else {
            p.recv::<f64>(1, 0)
        }
    });
    assert_eq!(report.ranks[0].result, Ok(2.5));
    assert!(report.ranks[1].result.is_ok());
}

#[test]
fn collective_propagates_failure_along_the_tree() {
    // Fail the link a binomial reduce must use; the sender gets LinkDown
    // and the root (never receiving) times out or sees PeerGone — but the
    // program must terminate with typed errors, not hang.
    let mut rt = runtime(4);
    rt.fail_link(1, 0); // reduce edge 1 -> 0 at the first level
    let report = rt.run(|p, world| {
        if p.rank() == 1 {
            // Rank 1 will fail to send its partial to rank 0; surface it.
            let r = world.reduce(p, 0, 1.0f64, |a, b| a + b);
            match r {
                Err(CommError::LinkDown { src: 1, dst: 0 }) => Ok("failed-as-expected"),
                other => panic!("rank 1 expected LinkDown, got {other:?}"),
            }
        } else if p.rank() == 0 {
            // The root will never hear from rank 1: PeerGone (rank 1's
            // thread exits) or Timeout are both acceptable terminations.
            match world.reduce(p, 0, 1.0f64, |a, b| a + b) {
                Err(CommError::PeerGone { .. }) | Err(CommError::Timeout { .. }) => {
                    Ok("root-saw-failure")
                }
                other => panic!("root expected a failure, got {other:?}"),
            }
        } else {
            // Other ranks' sub-trees are unaffected; their sends target
            // healthy links (2->0 would... 2 sends to 0 at level 2 — that
            // link is healthy; 3 sends to 2).
            world.reduce(p, 0, 1.0f64, |a, b| a + b).map(|_| "ok")
        }
    });
    assert_eq!(report.ranks[1].result, Ok("failed-as-expected"));
    assert_eq!(report.ranks[0].result, Ok("root-saw-failure"));
}

#[test]
fn tsqr_surfaces_failure_on_the_reduction_edge() {
    use grid_tsqr::core::domains::DomainLayout;
    use grid_tsqr::core::tree::{ReductionTree, TreeShape};
    use grid_tsqr::core::tsqr::{tsqr_rank_program, TsqrConfig};

    let mut rt = runtime(4);
    rt.fail_link(1, 0); // the binary tree's first combine edge
    let layout = DomainLayout::build(rt.topology(), 256, 4, 4);
    let tree = ReductionTree::build(&TreeShape::Binary, 4, &layout.clusters());
    let cfg = TsqrConfig {
        shape: TreeShape::Binary,
        domains_per_cluster: 4,
        ..Default::default()
    };
    let report = rt.run(|p, _| tsqr_rank_program(p, &layout, &tree, &cfg, 1, None));
    // Rank 1 hits the dead link; rank 0 can then never finish its combine.
    assert!(matches!(
        report.ranks[1].result,
        Err(CommError::LinkDown { src: 1, dst: 0 })
    ));
    assert!(report.ranks[0].result.is_err());
    // Rank 3 -> 2 leg is healthy and completes its send.
    assert!(report.ranks[3].result.is_ok());
}

/// Two clusters × two nodes × two procs per node: the smallest grid on
/// which every link class (intra-node, intra-cluster, inter-cluster)
/// appears. Ranks 0–3 are cluster 0 (0,1 share a node), ranks 4–7 are
/// cluster 1.
fn multi_class_runtime() -> Runtime {
    let specs = (0..2)
        .map(|i| ClusterSpec {
            name: format!("c{i}"),
            nodes: 2,
            procs_per_node: 2,
            peak_gflops_per_proc: 8.0,
        })
        .collect();
    let topo = GridTopology::block_placement(specs, 2, 2);
    let mut rt =
        Runtime::new(topo, CostModel::homogeneous(LinkParams::from_ms_mbps(0.1, 890.0), 1e9, 2));
    // Failure tests intentionally starve some ranks; fail fast.
    rt.set_recv_timeout(std::time::Duration::from_secs(2));
    rt
}

#[test]
fn fail_link_is_directional_for_every_link_class() {
    // One representative pair per link class, failed in each direction:
    // the failed direction surfaces as LinkDown at the sender while the
    // reverse direction still carries data.
    for (a, b, class) in [
        (0usize, 1usize, "intra-node"),
        (0, 2, "intra-cluster"),
        (0, 4, "inter-cluster"),
    ] {
        for (src, dst) in [(a, b), (b, a)] {
            let mut rt = multi_class_runtime();
            rt.fail_link(src, dst);
            let report = rt.run(|p, _| {
                if p.rank() == src {
                    match p.send(dst, 0, 1.0f64) {
                        Err(CommError::LinkDown { src: s, dst: d }) if s == src && d == dst => {}
                        other => {
                            panic!("{class} {src}->{dst}: expected LinkDown, got {other:?}")
                        }
                    }
                    // The reverse direction is untouched.
                    p.recv::<f64>(dst, 1)
                } else if p.rank() == dst {
                    p.send(src, 1, 2.0f64)?;
                    Ok(2.0)
                } else {
                    Ok(0.0)
                }
            });
            assert_eq!(report.ranks[src].result, Ok(2.0), "{class} {src}->{dst}");
            assert!(report.ranks[dst].result.is_ok(), "{class} {src}->{dst}");
        }
    }
}

#[test]
fn starving_rank_terminates_typed_for_every_link_class() {
    // The receiver waits on a message that can never arrive (its only
    // sender hits a dead link and exits). It must terminate with a typed
    // error — PeerGone once the sender's thread is gone, or the
    // wall-clock Timeout net — never hang.
    for (src, dst, class) in [
        (1usize, 0usize, "intra-node"),
        (2, 0, "intra-cluster"),
        (4, 0, "inter-cluster"),
    ] {
        let mut rt = multi_class_runtime();
        rt.fail_link(src, dst);
        let report = rt.run(|p, _| {
            if p.rank() == src {
                match p.send(dst, 0, 1.0f64) {
                    Err(CommError::LinkDown { .. }) => Ok("sender-saw-linkdown"),
                    other => panic!("{class}: sender expected LinkDown, got {other:?}"),
                }
            } else if p.rank() == dst {
                match p.recv::<f64>(src, 0) {
                    Err(CommError::PeerGone { .. } | CommError::Timeout { .. }) => {
                        Ok("starved-but-typed")
                    }
                    other => panic!("{class}: starved rank expected a typed end, got {other:?}"),
                }
            } else {
                Ok("idle")
            }
        });
        assert_eq!(report.ranks[src].result, Ok("sender-saw-linkdown"), "{class}");
        assert_eq!(report.ranks[dst].result, Ok("starved-but-typed"), "{class}");
    }
}

#[test]
fn unrelated_traffic_is_unaffected() {
    let mut rt = runtime(4);
    rt.fail_link(0, 1);
    let report = rt.run(|p, _| {
        // Ring among ranks 2 and 3 only.
        match p.rank() {
            2 => {
                p.send(3, 0, 7.0f64)?;
                p.recv::<f64>(3, 1)
            }
            3 => {
                let x: f64 = p.recv(2, 0)?;
                p.send(2, 1, x * 2.0)?;
                Ok(x)
            }
            _ => Ok(-1.0),
        }
    });
    assert_eq!(report.ranks[2].result, Ok(14.0));
    assert_eq!(report.ranks[3].result, Ok(7.0));
}
