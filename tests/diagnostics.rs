//! Reconciliation of the diagnostics layer against the independent
//! bookkeeping of the runtime: the wait-state classification must sum to
//! the metrics registry's `recv_wait_s`, the comm matrix and link-usage
//! totals must match the traffic counters, and the WAN message counts
//! must match the paper's closed-form predictions for both algorithms
//! (Tables I/II: `O(log C)` tree crossings for TSQR vs per-column
//! all-reduces for ScaLAPACK QR2).

use grid_tsqr::core::experiment::{
    run_experiment, Algorithm, Experiment, ExperimentResult, Mode,
};
use grid_tsqr::core::tree::TreeShape;
use grid_tsqr::gridmpi::{Diagnosis, Runtime};
use grid_tsqr::netsim::grid5000;

/// A scaled-down Grid'5000 (real constants, few nodes) so the golden
/// configurations stay fast and readable.
fn small_grid5000(sites: usize, nodes: usize) -> Runtime {
    let clusters = grid5000::clusters().into_iter().take(sites).collect();
    let topo = grid_tsqr::netsim::GridTopology::block_placement(clusters, nodes, 2);
    Runtime::new(topo, grid5000::cost_model())
}

fn traced(rt: &mut Runtime, m: u64, n: usize, algorithm: Algorithm) -> ExperimentResult {
    rt.enable_tracing();
    run_experiment(
        rt,
        &Experiment {
            m,
            n,
            algorithm,
            compute_q: false,
            mode: Mode::Symbolic,
            rate_flops: Some(1.0e9),
            combine_rate_flops: Some(1.0e9),
        },
    )
}

fn diagnose(rt: &Runtime, res: &ExperimentResult) -> Diagnosis {
    res.trace
        .as_ref()
        .expect("tracing enabled")
        .diagnose(rt.topology().num_procs(), 32)
}

/// Asserts the central reconciliation invariant: classified wait states
/// equal `recv_wait_s` per rank *and* per phase, to 1e-9 relative.
fn assert_reconciles(diag: &Diagnosis, res: &ExperimentResult) {
    let drift = diag.reconcile(&res.metrics);
    let scale = diag.total().total_wait_s().max(1.0);
    assert!(
        drift <= 1e-9 * scale,
        "wait-state totals must reconcile with recv_wait_s (drift {drift:.3e} s)"
    );
    // The same invariant, restated end-to-end: summed over everything.
    let classified: f64 = diag.per_rank.iter().map(|b| b.total_wait_s()).sum();
    let recorded: f64 = res.metrics.iter().map(|m| m.total().recv_wait_s).sum();
    assert!(
        (classified - recorded).abs() <= 1e-9 * recorded.max(1.0),
        "classified {classified} s vs recorded {recorded} s"
    );
}

#[test]
fn tsqr_diagnosis_reconciles_on_two_sites() {
    let mut rt = small_grid5000(2, 2); // 2 sites x 4 procs = 8 ranks
    let res = traced(&mut rt, 1 << 16, 16, Algorithm::Tsqr {
        shape: TreeShape::GridHierarchical,
        domains_per_cluster: 4,
    });
    let diag = diagnose(&rt, &res);
    assert_reconciles(&diag, &res);

    // Golden shape of the 2-site run: some wait time exists (the tree has
    // dependencies), nothing is unmatched, and the WAN was crossed exactly
    // C - 1 = 1 time, which the comm matrix and counters agree on.
    assert!(diag.total().total_wait_s() > 0.0);
    assert_eq!(diag.total().unmatched_s, 0.0);
    assert_eq!(diag.wan_msgs(), 1);
    assert_eq!(res.totals.inter_cluster_msgs(), 1);
    assert_eq!(diag.comm.total_msgs(), res.totals.total_msgs());
    assert_eq!(diag.comm.total_bytes(), res.totals.total_bytes());
    let makespan = res.makespan.secs();
    assert!((diag.makespan_s - makespan).abs() <= 1e-12 * makespan.max(1.0));

    // The critical path's idle time is a subset of the classified waits.
    let cp = res.trace.as_ref().unwrap().critical_path();
    let gap = cp.summary().gap_s;
    assert!(gap >= 0.0);
    assert!(
        gap <= diag.total().total_wait_s() + 1e-9,
        "critical-path gap {gap} s cannot exceed total waits"
    );
}

#[test]
fn scalapack_diagnosis_reconciles_on_four_sites() {
    let mut rt = small_grid5000(4, 2); // 4 sites x 4 procs = 16 ranks
    let res = traced(&mut rt, 1 << 14, 8, Algorithm::ScalapackQr2);
    let diag = diagnose(&rt, &res);
    assert_reconciles(&diag, &res);
    assert_eq!(diag.total().unmatched_s, 0.0);
    assert_eq!(diag.comm.total_msgs(), res.totals.total_msgs());
    assert_eq!(diag.wan_msgs(), res.totals.inter_cluster_msgs());

    // Per-link-class usage totals agree with the traffic counters.
    for bucket in 0..3 {
        assert_eq!(diag.link_usage.msgs(bucket), res.totals.msgs[bucket]);
        assert_eq!(diag.link_usage.bytes(bucket), res.totals.bytes[bucket]);
    }
}

#[test]
fn tsqr_wan_crossings_follow_the_reduction_tree() {
    // Table II / Fig. 2: the grid-hierarchical tree crosses the WAN
    // C - 1 times in total, and only ceil(log2 C) of those crossings can
    // ever be on one dependency chain.
    for sites in [2usize, 3, 4] {
        let mut rt = small_grid5000(sites, 2);
        let res = traced(&mut rt, 1 << 16, 16, Algorithm::Tsqr {
            shape: TreeShape::GridHierarchical,
            domains_per_cluster: 4,
        });
        let diag = diagnose(&rt, &res);
        let c = sites as u64;
        assert_eq!(diag.wan_msgs(), c - 1, "total WAN crossings at {sites} sites");
        let cp = res.trace.as_ref().unwrap().critical_path();
        let depth = (sites as f64).log2().ceil() as usize;
        let cp_wan = cp.summary().wan_messages;
        if sites.is_power_of_two() {
            // The inter-cluster stage is a balanced binary tree: exactly
            // ceil(log2 C) crossings lie on the longest dependency chain.
            assert_eq!(cp_wan, depth, "critical-path WAN crossings at {sites} sites");
        } else {
            // Unbalanced trees can finish on a chain whose last-arriving
            // subtree crossed the WAN fewer times; the depth still bounds it.
            assert!(
                (1..=depth).contains(&cp_wan),
                "critical-path WAN crossings at {sites} sites: {cp_wan} not in 1..={depth}"
            );
        }
        assert_reconciles(&diag, &res);
    }
}

#[test]
fn scalapack_wan_crossings_follow_two_allreduces_per_column() {
    // §II-B: PDGEQR2 performs two all-reduces per column (norm +
    // trailing update), the last column needing only the norm one:
    // 2N - 1 all-reduces in total. Recursive doubling over P ranks in C
    // equal clusters (both powers of two) crosses the WAN in log2(C) of
    // its log2(P) rounds, P messages per round — and only log2(C)
    // crossings per all-reduce lie on any single dependency chain.
    let (sites, nodes, n) = (4usize, 2usize, 8usize);
    let mut rt = small_grid5000(sites, nodes);
    let p = rt.topology().num_procs() as u64; // 16
    let c = sites as u64;
    let res = traced(&mut rt, 1 << 14, n, Algorithm::ScalapackQr2);
    let diag = diagnose(&rt, &res);

    let allreduces = 2 * n as u64 - 1;
    let log2c = c.ilog2() as u64;
    let log2p = p.ilog2() as u64;
    assert_eq!(
        diag.wan_msgs(),
        allreduces * p * log2c,
        "total WAN messages: (2N-1) all-reduces x P x log2(C) rounds"
    );
    assert_eq!(
        res.totals.total_msgs(),
        allreduces * p * log2p,
        "total messages: (2N-1) all-reduces x P x log2(P) rounds"
    );
    let cp = res.trace.as_ref().unwrap().critical_path();
    assert_eq!(
        cp.summary().wan_messages as u64,
        allreduces * log2c,
        "critical-path WAN messages: log2(C) per all-reduce"
    );
    // The asymptotic claim of the paper, as data: ScaLAPACK's WAN bill
    // scales with N x P while TSQR's is C - 1, independent of N and P.
    assert!(diag.wan_msgs() > 100 * (c - 1));
}

#[test]
fn analyze_renders_all_sections() {
    let mut rt = small_grid5000(2, 1);
    let res = traced(&mut rt, 1 << 12, 8, Algorithm::Tsqr {
        shape: TreeShape::GridHierarchical,
        domains_per_cluster: 2,
    });
    let diag = diagnose(&rt, &res);
    let text = diag.render();
    for section in ["== wait states ==", "== link utilization ==", "== communication matrix =="]
    {
        assert!(text.contains(section), "missing {section} in:\n{text}");
    }
    // And the model fit exists for the same run.
    let fit = grid_tsqr::core::modelfit::fit(
        &grid_tsqr::core::modelfit::samples_from_metrics(&res.metrics),
    )
    .expect("fit exists");
    assert!(fit.rel_residual.is_finite());
}
