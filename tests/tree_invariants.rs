//! Property-based tests of the generalized reduction trees (the
//! autotuner's search space): every generated or custom tree must yield
//! a valid communication schedule, and running TSQR over *any* tree must
//! produce the same R factor as the flat reference.
//!
//! Two equality regimes, deliberately distinct:
//!
//! - **Bitwise**: re-encoding a built-in shape as
//!   `TreeShape::Custom(tree.parents())` reproduces the *identical*
//!   schedule, so the arithmetic is the same operations in the same
//!   order and R matches bit for bit. This is what makes `Custom` a
//!   faithful interchange format for the autotuner's greedy-cost trees.
//! - **Sign-normalized tolerance**: across *different* trees the combine
//!   order differs, so floating-point rounding differs in the last bits
//!   and the row signs of R (which QR leaves free) can flip. Exact
//!   bitwise equality across arbitrary trees is unattainable in floating
//!   point; the invariant that *is* true — and that Demmel et al.'s
//!   any-tree theorem promises — is equality up to sign normalization
//!   at factorization accuracy, which `r_distance` measures.

use proptest::prelude::*;

use grid_tsqr::core::domains::DomainLayout;
use grid_tsqr::core::tree::{ReductionTree, Step, TreeShape};
use grid_tsqr::core::tsqr::{tsqr_rank_program, TsqrConfig};
use grid_tsqr::gridmpi::Runtime;
use grid_tsqr::linalg::verify::r_distance;
use grid_tsqr::linalg::Matrix;
use grid_tsqr::netsim::{ClusterSpec, CostModel, GridTopology, LinkParams};

/// Deterministic splittable generator for structural randomness (tree
/// shapes derived from a proptest-supplied seed).
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random *heap-ordered* parent vector: every parent index is below
/// its child (`parents[i] ∈ 0..i`), the class every built-in generator
/// produces and the one the self-healing TSQR requires.
fn random_heap_parents(n: usize, seed: u64) -> Vec<Option<usize>> {
    (0..n)
        .map(|i| if i == 0 { None } else { Some((mix(seed, i as u64) as usize) % i) })
        .collect()
}

/// A uniformly scrambled tree rooted at 0 with *no* heap ordering:
/// nodes attach in a random order to a random already-attached node, so
/// parents frequently carry higher indices than their children.
fn random_scrambled_parents(n: usize, seed: u64) -> Vec<Option<usize>> {
    let mut order: Vec<usize> = (1..n).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, (mix(seed, 1000 + i as u64) as usize) % (i + 1));
    }
    let mut parents = vec![None; n];
    let mut attached = vec![0usize];
    for (step, &v) in order.iter().enumerate() {
        let p = attached[(mix(seed, 2000 + step as u64) as usize) % attached.len()];
        parents[v] = Some(p);
        attached.push(v);
    }
    parents
}

/// Replays a schedule through per-participant mailboxes; returns true if
/// every value reaches the root (i.e. the schedule is complete and
/// acyclic — a cyclic or dropped dependency would leave mail undelivered).
fn reduces_to_root(tree: &ReductionTree) -> bool {
    let n = tree.len();
    let mut holding: Vec<u64> = (0..n as u64).map(|i| 1 << i.min(62)).collect();
    let mut done = vec![false; n];
    let mut progressed = true;
    let mut cursor = vec![0usize; n];
    let mut inbox: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    while progressed {
        progressed = false;
        for p in 0..n {
            while cursor[p] < tree.steps[p].len() {
                match tree.steps[p][cursor[p]] {
                    Step::Recv(from) => {
                        if let Some(pos) = inbox[p].iter().position(|(s, _)| *s == from) {
                            let (_, v) = inbox[p].remove(pos);
                            holding[p] |= v;
                            cursor[p] += 1;
                            progressed = true;
                        } else {
                            break;
                        }
                    }
                    Step::Send(to) => {
                        inbox[to].push((p, holding[p]));
                        cursor[p] += 1;
                        progressed = true;
                    }
                }
            }
            if cursor[p] == tree.steps[p].len() {
                done[p] = true;
            }
        }
    }
    done.iter().all(|d| *d) && holding[0] == (0..n as u64).fold(0, |a, i| a | (1 << i.min(62)))
}

/// Structural validity of one schedule: root never sends, every other
/// participant sends exactly once and only after all of its receives.
fn assert_valid_schedule(tree: &ReductionTree) -> Result<(), String> {
    for (i, steps) in tree.steps.iter().enumerate() {
        let sends = steps.iter().filter(|s| matches!(s, Step::Send(_))).count();
        if i == 0 {
            if sends != 0 {
                return Err(format!("root sends ({sends} times)"));
            }
        } else {
            if sends != 1 {
                return Err(format!("participant {i} sends {sends} times"));
            }
            if !matches!(steps.last(), Some(Step::Send(_))) {
                return Err(format!("participant {i}: Send is not the final step"));
            }
        }
    }
    if !reduces_to_root(tree) {
        return Err("schedule does not deliver every contribution to the root".into());
    }
    Ok(())
}

fn small_grid(clusters: usize, procs: usize) -> Runtime {
    let specs = (0..clusters)
        .map(|i| ClusterSpec {
            name: format!("c{i}"),
            nodes: procs,
            procs_per_node: 1,
            peak_gflops_per_proc: 8.0,
        })
        .collect();
    let topo = GridTopology::block_placement(specs, procs, 1);
    let model = CostModel::homogeneous(LinkParams::from_ms_mbps(0.07, 890.0), 1e9, clusters);
    Runtime::new(topo, model)
}

/// Runs real-numerics TSQR over an explicit tree and returns rank 0's R.
fn r_under_tree(rt: &Runtime, layout: &DomainLayout, shape: &TreeShape, seed: u64) -> Matrix {
    let tree = ReductionTree::build(shape, layout.num_domains(), &layout.clusters());
    let cfg = TsqrConfig {
        shape: shape.clone(),
        domains_per_cluster: layout.num_domains() / rt.topology().num_clusters(),
        ..Default::default()
    };
    let report = rt.run(|p, _| tsqr_rank_program(p, layout, &tree, &cfg, seed, None));
    report.ranks[0].result.as_ref().unwrap().r.clone().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated family and every random custom tree (heap-ordered
    /// or scrambled) yields a structurally valid schedule for arbitrary
    /// participant counts and cluster maps.
    #[test]
    fn any_tree_yields_a_valid_schedule(
        n in 1usize..48,
        clusters in 1usize..5,
        k in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let cluster_of: Vec<usize> = (0..n).map(|i| i * clusters.min(n) / n).collect();
        let mut shapes = vec![
            TreeShape::Flat,
            TreeShape::Binary,
            TreeShape::GridHierarchical,
            TreeShape::Kary(k),
            TreeShape::Binomial,
            TreeShape::Greedy,
            TreeShape::Custom(random_heap_parents(n, seed)),
        ];
        if n > 1 {
            shapes.push(TreeShape::Custom(random_scrambled_parents(n, seed)));
        }
        for shape in shapes {
            let tree = ReductionTree::build(&shape, n, &cluster_of);
            prop_assert_eq!(tree.len(), n);
            prop_assert_eq!(tree.total_messages(), n - 1);
            if let Err(why) = assert_valid_schedule(&tree) {
                prop_assert!(false, "{shape:?} n={n}: {why}");
            }
        }
    }

    /// Re-encoding any built-in or generated shape as
    /// `Custom(tree.parents())` reproduces the exact schedule, so the
    /// distributed R is *bitwise* identical — Custom is a lossless
    /// interchange format for tuned trees.
    #[test]
    fn custom_round_trip_r_is_bitwise_identical(
        clusters in 1usize..4,
        procs_pow in 1u32..4,
        shape_ix in 0u8..5,
        n in 2usize..8,
        seed in 0u64..1_000_000,
    ) {
        let procs = 1usize << procs_pow;
        let shape = match shape_ix {
            0 => TreeShape::Flat,
            1 => TreeShape::Binary,
            2 => TreeShape::GridHierarchical,
            3 => TreeShape::Kary(3),
            _ => TreeShape::Binomial,
        };
        let rt = small_grid(clusters, procs);
        let m = (clusters * procs * n) as u64 * 3;
        let layout = DomainLayout::build(rt.topology(), m, n, procs);
        let tree = ReductionTree::build(&shape, layout.num_domains(), &layout.clusters());
        let encoded = TreeShape::Custom(tree.parents());
        let round_trip = ReductionTree::build(&encoded, layout.num_domains(), &layout.clusters());
        prop_assert_eq!(&tree, &round_trip, "{:?}: schedules differ", &shape);
        let a = r_under_tree(&rt, &layout, &shape, seed);
        let b = r_under_tree(&rt, &layout, &encoded, seed);
        let bitwise = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        prop_assert!(bitwise, "{:?}: R differs from its Custom re-encoding", &shape);
    }

    /// TSQR over an arbitrary random tree — heap-ordered or scrambled —
    /// agrees with the flat-tree R to factorization accuracy (up to the
    /// row signs QR leaves free; see the module docs for why bitwise
    /// equality across *different* trees is not a meaningful target).
    #[test]
    fn arbitrary_random_tree_matches_flat_r(
        clusters in 1usize..4,
        procs_pow in 1u32..4,
        n in 2usize..8,
        scrambled in proptest::bool::ANY,
        seed in 0u64..1_000_000,
    ) {
        let procs = 1usize << procs_pow;
        let rt = small_grid(clusters, procs);
        let m = (clusters * procs * n) as u64 * 3;
        let layout = DomainLayout::build(rt.topology(), m, n, procs);
        let d = layout.num_domains();
        let parents = if scrambled && d > 1 {
            random_scrambled_parents(d, seed)
        } else {
            random_heap_parents(d, seed)
        };
        let flat = r_under_tree(&rt, &layout, &TreeShape::Flat, seed);
        let random = r_under_tree(&rt, &layout, &TreeShape::Custom(parents), seed);
        let dist = r_distance(&random, &flat);
        prop_assert!(dist < 1e-10, "random tree R drifted from flat R: {dist:.3e}");
    }
}
