//! The PR's acceptance ladder for fault-tolerant serving, pinned as one
//! integration test per rung (docs/serving.md §Failures):
//!
//! 1. a site crash mid-job kills the lease, and the victim recovers via a
//!    *checkpointed* retry that pays only the residual WAN drain — the
//!    checkpointed run strictly beats the full-restart twin;
//! 2. the same crash under a 4-site-wide shape exhausts the requested
//!    width, and the engine *elastically re-plans* the reduction tree
//!    over the three survivors instead of failing the queue;
//! 3. a sustained WAN-degradation window drives retry pressure over the
//!    brownout watermark: admission sheds loose-deadline arrivals, then
//!    recovers — and the whole faulty run replays byte-identically.
//!
//! The scenarios are the same seeded configurations the COMMCHECK and
//! BENCH baselines pin (`serve-fault-*` / `serve-faults/*`), so a change
//! that breaks a rung here also trips a golden.

use grid_tsqr::netsim::{FailureSchedule, VirtualTime};
use grid_tsqr::qcg::ResourceCatalog;
use grid_tsqr::serve::{
    serve, BrownoutConfig, Disposition, FaultKind, PolicyReport, RecoveryAction, RetryPolicy,
    ServeConfig,
};

fn crash_cfg(checkpoint_drain: bool) -> ServeConfig {
    ServeConfig {
        requests: 30,
        load: 1.0,
        seed: 7,
        faults: FailureSchedule::new(1).crash_site(2, VirtualTime::from_secs(0.1)),
        retry: RetryPolicy { checkpoint_drain, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn site_crash_recovers_via_checkpointed_retry_and_beats_full_restart() {
    let catalog = ResourceCatalog::grid5000();
    let ckpt = serve(&catalog, &crash_cfg(true));
    let restart = serve(&catalog, &crash_cfg(false));

    // The crash must actually hit someone, and recovery must route
    // through a retry — checkpointed in one run, full restart in the
    // other — with no permanent failures in either.
    for (out, want_ckpt) in [(&ckpt, true), (&restart, false)] {
        let crashes: Vec<_> = out
            .faults
            .iter()
            .filter(|f| matches!(f.kind, FaultKind::SiteCrashed { site: 2 }))
            .collect();
        assert!(!crashes.is_empty(), "the scripted crash fired");
        for f in &crashes {
            match f.action {
                RecoveryAction::Retried { checkpointed, .. } => {
                    assert_eq!(checkpointed, want_ckpt, "recovery mode follows the policy");
                }
                RecoveryAction::FailedPermanent { .. } => {
                    panic!("the default retry budget must absorb one crash")
                }
            }
        }
        assert!(
            out.records.iter().any(|r| matches!(
                r.disposition,
                Disposition::Completed { attempts, .. } if attempts > 1
            )),
            "a crashed job completes on a later attempt"
        );
    }

    // Rung 1's measurable claim: paying only the residual WAN drain is
    // strictly cheaper than recomputing the local phase.
    let ckpt_rep = PolicyReport::from_outcome(&ckpt);
    let restart_rep = PolicyReport::from_outcome(&restart);
    assert!(
        ckpt_rep.mean_sojourn_s <= restart_rep.mean_sojourn_s,
        "checkpointed drain ({} s mean) must not lose to full restart ({} s mean)",
        ckpt_rep.mean_sojourn_s,
        restart_rep.mean_sojourn_s
    );
}

#[test]
fn slot_exhaustion_triggers_elastic_replan_on_survivors() {
    // Shape 3 wants 4 sites; the catalog has exactly 4, so after site 2
    // dies every post-crash dispatch *must* re-plan narrower or the run
    // would wedge. Completion of all 30 requests is the proof.
    let cfg = ServeConfig { single_shape: Some(3), ..crash_cfg(true) };
    let out = serve(&ResourceCatalog::grid5000(), &cfg);
    let crash_t = 0.1;
    let mut post_crash_completions = 0;
    for r in &out.records {
        match r.disposition {
            Disposition::Completed { start, .. } => {
                if start.secs() > crash_t {
                    post_crash_completions += 1;
                }
            }
            ref other => panic!("request {} must complete, got {other:?}", r.request.id),
        }
    }
    assert!(
        post_crash_completions > 0,
        "4-site jobs completed after the 4th site died — only possible via re-plan"
    );
    assert!(
        !out.faults.is_empty(),
        "the mid-flight victim of the crash leaves an audit entry"
    );
}

#[test]
fn wan_degradation_browns_out_sheds_and_replays_byte_identically() {
    let cfg = ServeConfig {
        requests: 40,
        load: 0.5,
        seed: 7,
        faults: (0..6)
            .fold(FailureSchedule::new(1), |s, nth| s.drop_nth_message(0, 2, nth))
            .degrade_all_wan(
                VirtualTime::from_secs(0.05),
                VirtualTime::from_secs(5.0),
                1.0,
                8.0,
            ),
        retry: RetryPolicy { backoff_base_s: 0.2, ..Default::default() },
        brownout: BrownoutConfig { enter_watermark: 1, exit_watermark: 0, shed_slack: 0.0 },
        ..Default::default()
    };
    let catalog = ResourceCatalog::grid5000();
    let out = serve(&catalog, &cfg);

    let shed = out
        .records
        .iter()
        .filter(|r| matches!(r.disposition, Disposition::Shed))
        .count();
    assert!(shed > 0, "sustained retry pressure must shed arrivals");
    assert!(!out.brownout_windows.is_empty(), "shedding opens a brownout window");
    for &(s, e) in &out.brownout_windows {
        assert!(s <= e, "brownout windows are well-formed");
    }
    // Recovery: shedding is not a death spiral — completions still
    // happen, and some of them are retries that survived the window.
    let completed = out
        .records
        .iter()
        .filter(|r| matches!(r.disposition, Disposition::Completed { .. }))
        .count();
    assert!(completed > 0, "the system keeps serving through the brownout");
    assert!(
        out.records.iter().any(|r| matches!(
            r.disposition,
            Disposition::Completed { attempts, .. } if attempts > 1
        )),
        "dropped drains recover via retry"
    );

    // Rung 3's determinism claim: the full faulty run — dispositions,
    // fault trail, brownout windows, rendered report — replays
    // byte-identically from the same seeds.
    let twin = serve(&catalog, &cfg);
    assert_eq!(out, twin, "faulty outcomes replay byte-identically");
    assert_eq!(
        PolicyReport::from_outcome(&out).render(),
        PolicyReport::from_outcome(&twin).render()
    );
}
