//! Smoke tests of the `grid-tsqr` command-line front end.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_grid-tsqr"))
}

#[test]
fn info_lists_the_catalog() {
    let out = cli().arg("info").output().expect("run cli");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for site in ["orsay", "toulouse", "bordeaux", "sophia"] {
        assert!(text.contains(site), "missing {site} in:\n{text}");
    }
}

#[test]
fn symbolic_tsqr_reports_the_wan_bill() {
    let out = cli()
        .args(["tsqr", "--m", "1048576", "--n", "64", "--sites", "3"])
        .output()
        .expect("run cli");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("(2 WAN)"), "3 sites -> 2 WAN messages:\n{text}");
}

#[test]
fn real_run_verifies_r() {
    let out = cli()
        .args(["tsqr", "--m", "4096", "--n", "8", "--sites", "2", "--real", "--seed", "5"])
        .output()
        .expect("run cli");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("R verified"), "{text}");
}

#[test]
fn scalapack_blocked_and_unblocked_both_run() {
    for extra in [vec![], vec!["--blocked"]] {
        let mut args = vec!["scalapack", "--m", "65536", "--n", "32", "--sites", "1"];
        args.extend(extra.iter().copied());
        let out = cli().args(&args).output().expect("run cli");
        assert!(out.status.success(), "args: {args:?}");
    }
}

#[test]
fn compare_declares_a_winner() {
    let out = cli()
        .args(["compare", "--m", "8388608", "--n", "64", "--sites", "4"])
        .output()
        .expect("run cli");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("speedup:"));
}

#[test]
fn analyze_prints_the_full_diagnosis() {
    let out = cli()
        .args(["analyze", "--m", "262144", "--n", "32", "--sites", "2", "--bins", "16"])
        .output()
        .expect("run cli");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for section in [
        "wait states reconcile",
        "== wait states ==",
        "== link utilization ==",
        "== communication matrix ==",
        "== model fit (Eq. 1) ==",
        "relative residual",
    ] {
        assert!(text.contains(section), "missing {section:?} in:\n{text}");
    }
}

#[test]
fn analyze_scalapack_classifies_waits() {
    let out = cli()
        .args(["analyze", "--m", "65536", "--n", "16", "--sites", "4", "--algo", "scalapack"])
        .output()
        .expect("run cli");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("TOTAL"), "{text}");
    assert!(text.contains("worst waiting ranks"), "{text}");
}

#[test]
fn serve_scores_every_policy_on_one_trace() {
    let out = cli()
        .args(["serve", "--policy", "all", "--requests", "25", "--load", "1.5", "--seed", "7"])
        .output()
        .expect("run cli");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    for section in ["policy fifo", "policy sjf", "policy edf", "policy fair", "summary"] {
        assert!(text.contains(section), "missing {section:?} in:\n{text}");
    }
}

#[test]
fn serve_batching_coalesces_a_same_shape_burst() {
    let base = [
        "serve", "--policy", "fifo", "--requests", "20", "--load", "4.0", "--shape", "3",
        "--seed", "9",
    ];
    let run = |batch: bool| {
        let mut args: Vec<&str> = base.to_vec();
        if batch {
            args.push("--batch");
        }
        let out = cli().args(&args).output().expect("run cli");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).unwrap()
    };
    let plain = run(false);
    let batched = run(true);
    let wan = |text: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with("dispatches"))
            .and_then(|l| l.split_whitespace().nth(5))
            .and_then(|v| v.parse().ok())
            .expect("dispatches line carries the wan count")
    };
    assert!(
        wan(&batched) < wan(&plain),
        "batching must cut WAN messages: {} vs {}",
        wan(&batched),
        wan(&plain)
    );
}

#[test]
fn serve_sweep_renders_the_knee_table() {
    let out = cli()
        .args(["serve", "--sweep", "0.5,2.0", "--requests", "15"])
        .output()
        .expect("run cli");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("load sweep"), "{text}");
    assert!(text.contains("p99 s"), "{text}");
}

#[test]
fn bad_input_exits_nonzero_with_usage() {
    for args in [
        vec!["bogus"],
        vec!["tsqr", "--sites", "9"],
        vec!["tsqr", "--m", "zzz"],
        vec!["serve", "--policy", "lifo"],
        vec!["serve", "--shape", "9"],
    ] {
        let out = cli().args(&args).output().expect("run cli");
        assert!(!out.status.success(), "args: {args:?}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("USAGE"), "{err}");
    }
}
