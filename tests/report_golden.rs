//! Gate tests of `grid-tsqr report`: the dashboard rendered over the
//! committed ledger must match the blessed `REPORT_baseline.md` (prefix-
//! pinned, so appending runs never breaks it), `--check` must pass on the
//! committed history, and — the anomaly detector's reason to exist — an
//! injected entry whose per-phase Eq. (1) prediction drifts beyond the
//! threshold must fail the build.

use std::path::{Path, PathBuf};
use std::process::Command;

use grid_tsqr::obs::ledger::{append_entry, parse_entry, read_ledger};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn cli() -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_grid-tsqr"));
    c.current_dir(repo_root());
    c
}

/// Copies the committed ledger into a scratch file the test may extend.
fn scratch_ledger(tag: &str) -> PathBuf {
    let src = repo_root().join("ledger/runs.jsonl");
    let dst = std::env::temp_dir()
        .join(format!("tsqr_ledger_{tag}_{}.jsonl", std::process::id()));
    std::fs::copy(&src, &dst).expect("committed ledger exists");
    dst
}

#[test]
fn report_matches_committed_baseline_and_check_passes() {
    let out = cli()
        .args([
            "report",
            "--ledger",
            "ledger/runs.jsonl",
            "--golden",
            "REPORT_baseline.md",
            "--check",
        ])
        .output()
        .expect("run cli");
    let text = String::from_utf8_lossy(&out.stdout);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{text}\nstderr:\n{err}");
    assert!(text.contains("report matches REPORT_baseline.md"), "{text}");
    assert!(text.contains("report check OK"), "{text}");
}

#[test]
fn appending_a_clean_run_keeps_golden_and_check_green() {
    // The golden is prefix-pinned on its `- entries: K` header, so a new
    // honest run appended to the ledger must not invalidate it.
    let path = scratch_ledger("clean");
    let entries = read_ledger(&path).unwrap();
    let again = entries.last().cloned().expect("seeded ledger is non-empty");
    append_entry(&path, again).unwrap();
    let out = cli()
        .args(["report", "--ledger"])
        .arg(&path)
        .args(["--golden", "REPORT_baseline.md", "--check"])
        .output()
        .expect("run cli");
    let text = String::from_utf8_lossy(&out.stdout);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stdout:\n{text}\nstderr:\n{err}");
    assert!(text.contains("report matches"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn injected_model_drift_fails_the_check() {
    // Take a real entry, push one phase's Eq. (1) prediction 50% away
    // from what was observed, and append it as a new run of the same
    // scenario: `report --check` must exit nonzero and name the phase.
    let path = scratch_ledger("anomaly");
    let entries = read_ledger(&path).unwrap();
    let mut tampered = entries
        .iter()
        .find(|e| e.phases.iter().any(|p| p.observed_s() > 0.0))
        .cloned()
        .expect("some entry has an active phase");
    let phase = tampered
        .phases
        .iter_mut()
        .find(|p| p.observed_s() > 0.0)
        .unwrap();
    let name = phase.name.clone();
    phase.predicted_s = phase.observed_s() * 1.5;
    append_entry(&path, tampered).unwrap();

    let out = cli()
        .args(["report", "--ledger"])
        .arg(&path)
        .args(["--check"])
        .output()
        .expect("run cli");
    assert!(
        !out.status.success(),
        "an injected 50% model drift must fail --check"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("anomalous"), "stderr:\n{err}");
    assert!(err.contains(&name), "anomaly must name phase {name}:\n{err}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn ledger_lines_round_trip_through_the_public_api() {
    // Every committed line parses, re-serializes canonically, and keeps
    // strictly increasing sequence numbers (append-only discipline).
    let text =
        std::fs::read_to_string(repo_root().join("ledger/runs.jsonl")).unwrap();
    let mut last_seq = 0;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let entry = parse_entry(line).expect("committed ledger line parses");
        assert!(entry.seq > last_seq, "seq must increase: {}", entry.seq);
        last_seq = entry.seq;
        let reparsed =
            parse_entry(&grid_tsqr::obs::ledger::entry_to_json(&entry)).unwrap();
        assert_eq!(entry, reparsed);
    }
    assert!(last_seq >= 14, "seeded ledger holds the full bench trajectory");
}
