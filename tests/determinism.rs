//! Determinism regression tests for the commcheck work
//! (`docs/static-analysis.md`):
//!
//! 1. two independent runs of the same experiment emit **byte-identical**
//!    Chrome-trace JSON and equal metrics registries (the regression test
//!    guarding the `BTreeMap`-everywhere policy the `commlint`
//!    `hashmap-iter` rule enforces statically);
//! 2. a deliberately injected receive race (a test-only wildcard
//!    `recv_any` fold) is caught by the happens-before analyzer *and*
//!    makes the DPOR-lite explorer refuse its determinism proof;
//! 3. the explorer **proves** the real-numerics TSQR bit-identical —
//!    R factor, makespan, metrics — across every explored delivery order
//!    on an 8-rank grid (the exhaustive regime of `schedules_for`).

use grid_tsqr::core::domains::DomainLayout;
use grid_tsqr::core::experiment::{run_experiment, Algorithm, Experiment, Mode};
use grid_tsqr::core::tree::{ReductionTree, TreeShape};
use grid_tsqr::core::tsqr::{tsqr_rank_program, TsqrConfig};
use grid_tsqr::gridmpi::{explore, fnv1a, schedules_for, Runtime};
use grid_tsqr::netsim::{grid5000, ClusterSpec, CostModel, GridTopology, LinkParams};

/// A scaled-down Grid'5000 (real constants, few nodes): 2 sites × 2 nodes
/// × 2 procs = 8 ranks.
fn small_grid5000() -> Runtime {
    let clusters = grid5000::clusters().into_iter().take(2).collect();
    let topo = GridTopology::block_placement(clusters, 2, 2);
    Runtime::new(topo, grid5000::cost_model())
}

/// A dedicated 8-rank two-cluster grid with one domain per rank — the
/// same topology `grid-tsqr check --explore` uses for its proof.
fn explorer_grid() -> Runtime {
    let topo = GridTopology::block_placement(
        vec![
            ClusterSpec {
                name: "expl-a".into(),
                nodes: 4,
                procs_per_node: 1,
                peak_gflops_per_proc: 8.0,
            },
            ClusterSpec {
                name: "expl-b".into(),
                nodes: 4,
                procs_per_node: 1,
                peak_gflops_per_proc: 8.0,
            },
        ],
        4,
        1,
    );
    let model = CostModel::homogeneous(LinkParams::from_ms_mbps(0.5, 800.0), 1e9, 2);
    Runtime::new(topo, model)
}

#[test]
fn two_runs_emit_byte_identical_chrome_json() {
    let run = || {
        let mut rt = small_grid5000();
        rt.enable_tracing();
        let res = run_experiment(
            &rt,
            &Experiment {
                m: 1 << 14,
                n: 16,
                algorithm: Algorithm::Tsqr {
                    shape: TreeShape::GridHierarchical,
                    domains_per_cluster: 4,
                },
                compute_q: false,
                mode: Mode::Symbolic,
                rate_flops: Some(1.0e9),
                combine_rate_flops: Some(1.0e9),
            },
        );
        let json = res.trace.as_ref().expect("tracing enabled").chrome_json();
        (json, res.metrics.clone(), res.makespan.secs().to_bits())
    };
    let (json1, metrics1, makespan1) = run();
    let (json2, metrics2, makespan2) = run();
    assert_eq!(json1, json2, "Chrome-trace JSON must be byte-identical across runs");
    assert_eq!(metrics1, metrics2, "per-rank metrics must be identical across runs");
    assert_eq!(makespan1, makespan2, "makespan must be bit-identical across runs");
    // The export is genuinely non-trivial (guards against a vacuous pass).
    assert!(json1.len() > 1000, "suspiciously small trace: {} bytes", json1.len());
}

#[test]
fn injected_wildcard_race_is_caught_by_analyzer_and_explorer() {
    // Rank 0 folds with a non-commutative operation over *wildcard*
    // receives — the canonical seeded race. No shipped rank program uses
    // `recv_any` (the commlint wildcard-recv rule denies it outside test
    // code); this test keeps the detector honest.
    let make = || {
        let topo = GridTopology::block_placement(
            vec![ClusterSpec {
                name: "race".into(),
                nodes: 4,
                procs_per_node: 1,
                peak_gflops_per_proc: 8.0,
            }],
            4,
            1,
        );
        let model = CostModel::homogeneous(LinkParams::from_ms_mbps(0.5, 800.0), 1e9, 1);
        Runtime::new(topo, model)
    };

    // Single run, tracing on: the analyzer flags the wildcard receives.
    let mut rt = make();
    rt.enable_tracing();
    let report = rt.run(|p, _| {
        if p.rank() == 0 {
            let mut acc = 1.0f64;
            for _ in 1..p.size() {
                let (_, x) = p.recv_any::<f64>(1)?;
                acc = acc * 3.0 + x; // order-sensitive fold
            }
            Ok(acc)
        } else {
            p.send(0, 1, p.rank() as f64)?;
            Ok(0.0)
        }
    });
    let hb = report.trace.as_ref().expect("tracing enabled").hb_analysis();
    assert!(hb.wildcard_recvs >= 3, "expected 3 wildcard receives, saw {}", hb.wildcard_recvs);
    assert!(!hb.races.is_empty(), "the analyzer must flag the wildcard race");
    assert!(!hb.ok());

    // And the explorer refuses the determinism proof for the same program.
    let rep = explore(
        make,
        |p, _| {
            if p.rank() == 0 {
                let mut acc = 1.0f64;
                for _ in 1..p.size() {
                    let (_, x) = p.recv_any::<f64>(1)?;
                    acc = acc * 3.0 + x;
                }
                Ok(acc)
            } else {
                p.send(0, 1, p.rank() as f64)?;
                Ok(0.0)
            }
        },
        |x| x.to_bits(),
        &schedules_for(4),
    );
    assert!(
        !rep.proves_determinism(),
        "a wildcard fold must never be proved deterministic:\n{}",
        rep.render()
    );
}

#[test]
fn explorer_proves_tsqr_r_bit_identical_for_p8() {
    // The upgrade of the fault-tolerance PR's single-seed replay test:
    // for P = 8 the explorer permutes every commutable delivery order
    // (27 schedules) and requires bit-identical R, makespan and metrics,
    // with race-free traces — an exhaustive argument for small trees.
    let layout = DomainLayout::build(explorer_grid().topology(), 4096, 8, 4);
    let tree = ReductionTree::build(
        &TreeShape::GridHierarchical,
        layout.num_domains(),
        &layout.clusters(),
    );
    let cfg = TsqrConfig {
        shape: TreeShape::GridHierarchical,
        domains_per_cluster: 4,
        compute_q: false,
        combine_rate_flops: None,
        ..Default::default()
    };
    let rep = explore(
        explorer_grid,
        |p, _| tsqr_rank_program(p, &layout, &tree, &cfg, 42, None),
        |o| {
            o.r.as_ref().map_or(0, |r| {
                let mut bytes = Vec::with_capacity(r.as_slice().len() * 8);
                for x in r.as_slice() {
                    bytes.extend_from_slice(&x.to_bits().to_le_bytes());
                }
                fnv1a(&bytes)
            })
        },
        &schedules_for(8),
    );
    assert_eq!(rep.schedules(), 27, "P ≤ 8 is the exhaustive regime");
    assert!(
        rep.proves_determinism(),
        "TSQR must be schedule-independent:\n{}",
        rep.render()
    );
    // The R digest is real: rank 0 held an R in the first run.
    assert!(matches!(rep.runs[0].rank_digests[0], Ok(d) if d != 0));
}
