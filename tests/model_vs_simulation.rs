//! The paper's Eq. (1) closed-form model against the discrete simulation:
//! on a homogeneous network (the model's own assumption, §IV) the
//! predicted and simulated times must agree closely; the five Properties
//! must hold in both.

use grid_tsqr::core::experiment::{run_experiment, Algorithm, Experiment, Mode};
use grid_tsqr::core::model;
use grid_tsqr::core::modelfit;
use grid_tsqr::core::tree::TreeShape;
use grid_tsqr::gridmpi::Runtime;
use grid_tsqr::netsim::{ClusterSpec, CostModel, GridTopology, LinkParams};

const BETA_MS: f64 = 1.0;
const MBPS: f64 = 100.0;
const RATE: f64 = 1.0e9;

fn homogeneous_runtime(procs: usize) -> Runtime {
    let topo = GridTopology::block_placement(
        vec![ClusterSpec {
            name: "c".into(),
            nodes: procs,
            procs_per_node: 1,
            peak_gflops_per_proc: 8.0,
        }],
        procs,
        1,
    );
    Runtime::new(
        topo,
        CostModel::homogeneous(LinkParams::from_ms_mbps(BETA_MS, MBPS), RATE, 1),
    )
}

fn eq1_params() -> (f64, f64, f64) {
    let beta = BETA_MS * 1e-3;
    let alpha_word = 64.0 / (MBPS * 1e6); // 8 bytes = 64 bits per word
    let gamma = 1.0 / RATE;
    (beta, alpha_word, gamma)
}

#[test]
fn tsqr_simulated_time_matches_eq1() {
    let procs = 16;
    let rt = homogeneous_runtime(procs);
    let (beta, alpha, gamma) = eq1_params();
    for (m, n) in [(1u64 << 20, 32usize), (1 << 22, 64), (1 << 18, 16)] {
        let sim = run_experiment(
            &rt,
            &Experiment {
                m,
                n,
                algorithm: Algorithm::Tsqr { shape: TreeShape::Binary, domains_per_cluster: procs },
                compute_q: false,
                mode: Mode::Symbolic,
                rate_flops: Some(RATE),
                combine_rate_flops: Some(RATE),
            },
        );
        let predicted = model::tsqr_r_only(m, n as u64, procs as u64).time(beta, alpha, gamma);
        let ratio = sim.makespan.secs() / predicted;
        assert!(
            (0.85..1.20).contains(&ratio),
            "M={m} N={n}: simulated {:.4}s vs Eq.(1) {predicted:.4}s (ratio {ratio:.3})",
            sim.makespan.secs()
        );
    }
}

#[test]
fn scalapack_simulated_time_matches_eq1() {
    let procs = 16;
    let rt = homogeneous_runtime(procs);
    let (beta, alpha, gamma) = eq1_params();
    for (m, n) in [(1u64 << 20, 32usize), (1 << 21, 64)] {
        let sim = run_experiment(
            &rt,
            &Experiment {
                m,
                n,
                algorithm: Algorithm::ScalapackQr2,
                compute_q: false,
                mode: Mode::Symbolic,
                rate_flops: Some(RATE),
                combine_rate_flops: None,
            },
        );
        let predicted =
            model::scalapack_r_only(m, n as u64, procs as u64).time(beta, alpha, gamma);
        let ratio = sim.makespan.secs() / predicted;
        assert!(
            (0.85..1.25).contains(&ratio),
            "M={m} N={n}: simulated {:.4}s vs Eq.(1) {predicted:.4}s (ratio {ratio:.3})",
            sim.makespan.secs()
        );
    }
}

#[test]
fn least_squares_fit_recovers_eq1_on_homogeneous_network() {
    // The inverse problem: fit (beta, alpha, gamma) back from the
    // per-(rank, phase) metrics of a finished run. On the homogeneous
    // network the execution *is* Eq. (1), so the relative residual must
    // stay under 5% and the recovered flop rate must match the
    // configured one. (On the grid model the residual is larger — that
    // gap is exactly what `grid-tsqr analyze` reports.)
    let procs = 16;
    let rt = homogeneous_runtime(procs);
    let (_, _, gamma) = eq1_params();
    for algorithm in [
        Algorithm::Tsqr { shape: TreeShape::Binary, domains_per_cluster: procs },
        Algorithm::ScalapackQr2,
    ] {
        let res = run_experiment(
            &rt,
            &Experiment {
                m: 1 << 20,
                n: 32,
                algorithm: algorithm.clone(),
                compute_q: false,
                mode: Mode::Symbolic,
                rate_flops: Some(RATE),
                combine_rate_flops: Some(RATE),
            },
        );
        let samples = modelfit::samples_from_metrics(&res.metrics);
        let fit = modelfit::fit(&samples).expect("fit exists");
        assert!(
            fit.rel_residual < 0.05,
            "{algorithm:?}: homogeneous residual {:.4} must stay under 5%",
            fit.rel_residual
        );
        if matches!(algorithm, Algorithm::Tsqr { .. }) {
            // TSQR's phases (compute-only leaf-qr vs message-heavy
            // tree-reduce) make gamma identifiable and it must match the
            // configured rate. ScaLAPACK's symbolic run gives every rank
            // the identical (msgs, words, flops) cell, so its individual
            // coefficients are legitimately undetermined — only its
            // prediction (checked below) is pinned.
            assert!(
                (fit.gamma_s_per_flop - gamma).abs() / gamma < 0.05,
                "fitted gamma {:.3e} vs configured {gamma:.3e}",
                fit.gamma_s_per_flop
            );
        }
        // The fit predicts the run it saw: per-phase observed vs
        // predicted seconds agree in aggregate.
        let (obs, pred): (f64, f64) = fit
            .per_phase
            .iter()
            .fold((0.0, 0.0), |(o, p), (_, po, pp)| (o + po, p + pp));
        assert!((obs - pred).abs() / obs.max(1e-12) < 0.05, "{algorithm:?}");
    }
}

#[test]
fn model_and_simulation_agree_on_the_winner() {
    // Wherever Eq. (1) says TSQR wins by a clear margin, the simulation
    // must agree (and vice versa at huge N where ScaLAPACK wins).
    let procs = 16;
    let rt = homogeneous_runtime(procs);
    let (beta, alpha, gamma) = eq1_params();
    for (m, n) in [(1u64 << 20, 16usize), (1 << 20, 64), (1 << 17, 128)] {
        let mk = |algorithm| Experiment {
            m,
            n,
            algorithm,
            compute_q: false,
            mode: Mode::Symbolic,
            rate_flops: Some(RATE),
            combine_rate_flops: Some(RATE),
        };
        let sim_tsqr = run_experiment(
            &rt,
            &mk(Algorithm::Tsqr { shape: TreeShape::Binary, domains_per_cluster: procs }),
        )
        .makespan
        .secs();
        let sim_scal = run_experiment(&rt, &mk(Algorithm::ScalapackQr2)).makespan.secs();
        let mod_tsqr = model::tsqr_r_only(m, n as u64, procs as u64).time(beta, alpha, gamma);
        let mod_scal =
            model::scalapack_r_only(m, n as u64, procs as u64).time(beta, alpha, gamma);
        assert_eq!(
            sim_tsqr < sim_scal,
            mod_tsqr < mod_scal,
            "winner disagreement at M={m}, N={n}"
        );
    }
}

#[test]
fn properties_3_and_4_hold_in_simulation() {
    let procs = 16;
    let rt = homogeneous_runtime(procs);
    let gflops = |m: u64, n: usize| {
        run_experiment(
            &rt,
            &Experiment {
                m,
                n,
                algorithm: Algorithm::Tsqr { shape: TreeShape::Binary, domains_per_cluster: procs },
                compute_q: false,
                mode: Mode::Symbolic,
                rate_flops: Some(RATE),
                combine_rate_flops: Some(RATE),
            },
        )
        .gflops
    };
    // Property 3: grows with M.
    let mut last = 0.0;
    for m in [1u64 << 16, 1 << 18, 1 << 20, 1 << 22] {
        let g = gflops(m, 32);
        assert!(g > last, "Gflop/s must grow with M");
        last = g;
    }
    // Property 4: grows with N.
    let mut last = 0.0;
    for n in [8usize, 16, 32, 64] {
        let g = gflops(1 << 20, n);
        assert!(g > last, "Gflop/s must grow with N");
        last = g;
    }
}

#[test]
fn property_5_crossover_in_simulation() {
    // At fixed (shortish) M, TSQR wins mid-range N but the extra
    // 2/3·log₂(P)·N³ flops eventually hand the win to ScaLAPACK.
    let procs = 16;
    let rt = homogeneous_runtime(procs);
    let time = |algorithm, n: usize, m: u64| {
        run_experiment(
            &rt,
            &Experiment {
                m,
                n,
                algorithm,
                compute_q: false,
                mode: Mode::Symbolic,
                rate_flops: Some(RATE),
                combine_rate_flops: Some(RATE),
            },
        )
        .makespan
        .secs()
    };
    let tsqr_cfg = Algorithm::Tsqr { shape: TreeShape::Binary, domains_per_cluster: procs };
    let m = 1u64 << 17;
    // Mid-range N: TSQR faster.
    assert!(time(tsqr_cfg.clone(), 64, m) < time(Algorithm::ScalapackQr2, 64, m));
    // Very large N (8192 rows per rank, N = 3072): TSQR's extra
    // 2/3·log₂(P)·N³ flops exceed ScaLAPACK's 2N·log₂(P) latency bill and
    // ScaLAPACK wins — the crossover of Property 5.
    assert!(time(tsqr_cfg, 3072, m) > time(Algorithm::ScalapackQr2, 3072, m));
}
