//! End-to-end integration: QCG allocation → runtime → distributed
//! factorization → numerical verification, across the public APIs of all
//! five crates.

use grid_tsqr::core::experiment::{run_experiment, Algorithm, Experiment, Mode};
use grid_tsqr::core::tree::TreeShape;
use grid_tsqr::core::{caqr, workload};
use grid_tsqr::gridmpi::Runtime;
use grid_tsqr::linalg::prelude::*;
use grid_tsqr::linalg::verify::{orthogonality, r_distance, relative_residual};
use grid_tsqr::netsim::grid5000;
use grid_tsqr::qcg::{allocate, JobProfile, ResourceCatalog};

/// A scaled-down Grid'5000: real topology and network constants, but only
/// a few nodes per site so real-numerics runs stay fast.
fn small_grid5000(sites: usize, nodes: usize) -> Runtime {
    let clusters = grid5000::clusters().into_iter().take(sites).collect();
    let topo = grid_tsqr::netsim::GridTopology::block_placement(clusters, nodes, 2);
    Runtime::new(topo, grid5000::cost_model())
}

fn reference_r(seed: u64, m: usize, n: usize) -> grid_tsqr::linalg::Matrix {
    QrFactors::compute(&workload::full_matrix(seed, m, n), 32).r().upper_triangular_padded()
}

#[test]
fn tsqr_on_grid5000_network_matches_reference() {
    let rt = small_grid5000(4, 2); // 4 sites x 4 procs = 16 ranks
    let (m, n, seed) = (2048u64, 12usize, 9u64);
    for dpc in [1usize, 2, 4] {
        let res = run_experiment(
            &rt,
            &Experiment {
                m,
                n,
                algorithm: Algorithm::Tsqr {
                    shape: TreeShape::GridHierarchical,
                    domains_per_cluster: dpc,
                },
                compute_q: false,
                mode: Mode::Real { seed },
                rate_flops: None,
                combine_rate_flops: None,
            },
        );
        let r = res.r.expect("R at rank 0");
        assert!(
            r_distance(&r, &reference_r(seed, m as usize, n)) < 1e-10,
            "dpc = {dpc}"
        );
        // The tuned tree crosses the WAN exactly sites-1 times.
        assert_eq!(res.totals.inter_cluster_msgs(), 3);
    }
}

#[test]
fn scalapack_baseline_matches_reference_on_grid() {
    let rt = small_grid5000(2, 2);
    let (m, n, seed) = (1024u64, 10usize, 11u64);
    let res = run_experiment(
        &rt,
        &Experiment {
            m,
            n,
            algorithm: Algorithm::ScalapackQr2,
            compute_q: false,
            mode: Mode::Real { seed },
            rate_flops: None,
            combine_rate_flops: None,
        },
    );
    let r = res.r.expect("R at rank 0");
    assert!(r_distance(&r, &reference_r(seed, m as usize, n)) < 1e-10);
    // Per-column reductions cross the WAN ~2N·(WAN rounds) times — vastly
    // more than TSQR's 1.
    assert!(res.totals.inter_cluster_msgs() > 2 * n as u64);
}

#[test]
fn tsqr_beats_scalapack_under_grid5000_pricing() {
    let rt = small_grid5000(4, 2);
    let (m, n) = (1u64 << 22, 64usize);
    let mk = |algorithm| Experiment {
        m,
        n,
        algorithm,
        compute_q: false,
        mode: Mode::Symbolic,
        rate_flops: Some(0.55e9),
        combine_rate_flops: Some(1.5e9),
    };
    let tsqr = run_experiment(
        &rt,
        &mk(Algorithm::Tsqr { shape: TreeShape::GridHierarchical, domains_per_cluster: 4 }),
    );
    let scal = run_experiment(&rt, &mk(Algorithm::ScalapackQr2));
    assert!(
        tsqr.makespan < scal.makespan,
        "TSQR {:.3}s vs ScaLAPACK {:.3}s",
        tsqr.makespan.secs(),
        scal.makespan.secs()
    );
}

#[test]
fn full_qcg_pipeline_allocation_to_factorization() {
    // JobProfile → meta-scheduler → placed topology → factorization.
    let catalog = ResourceCatalog::grid5000();
    let profile = JobProfile::cluster_of_clusters(3, 4);
    let alloc = allocate(&catalog, &profile).expect("allocation succeeds");
    assert_eq!(alloc.topology.num_procs(), 12);
    let rt = Runtime::new(alloc.topology.clone(), alloc.network.clone());
    let (m, n, seed) = (1440u64, 8usize, 13u64);
    let res = run_experiment(
        &rt,
        &Experiment {
            m,
            n,
            algorithm: Algorithm::Tsqr {
                shape: TreeShape::GridHierarchical,
                domains_per_cluster: 4,
            },
            compute_q: false,
            mode: Mode::Real { seed },
            rate_flops: Some(alloc.effective_gflops_per_proc * 1e9),
            combine_rate_flops: None,
        },
    );
    assert!(r_distance(&res.r.unwrap(), &reference_r(seed, m as usize, n)) < 1e-10);
    assert_eq!(res.totals.inter_cluster_msgs(), 2);
}

#[test]
fn explicit_q_distributed_equals_local_qr() {
    use grid_tsqr::core::domains::DomainLayout;
    use grid_tsqr::core::tree::ReductionTree;
    use grid_tsqr::core::tsqr::{tsqr_rank_program, TsqrConfig};

    let rt = small_grid5000(2, 1); // 2 sites x 2 procs
    let (m, n, seed) = (512u64, 6usize, 17u64);
    let layout = DomainLayout::build(rt.topology(), m, n, 2);
    let tree = ReductionTree::build(&TreeShape::GridHierarchical, 4, &layout.clusters());
    let cfg = TsqrConfig {
        shape: TreeShape::GridHierarchical,
        domains_per_cluster: 2,
        compute_q: true,
        ..Default::default()
    };
    let report = rt.run(|p, _| tsqr_rank_program(p, &layout, &tree, &cfg, seed, None));
    let outs: Vec<_> = report.ranks.into_iter().map(|r| r.result.unwrap()).collect();
    let r = outs[0].r.clone().unwrap();
    let mut blocks: Vec<_> =
        outs.iter().map(|o| (o.row0, o.q_block.clone().unwrap())).collect();
    blocks.sort_by_key(|(row0, _)| *row0);
    let refs: Vec<&grid_tsqr::linalg::Matrix> = blocks.iter().map(|(_, b)| b).collect();
    let q = grid_tsqr::linalg::Matrix::vstack_all(&refs);
    let a = workload::full_matrix(seed, m as usize, n);
    assert!(orthogonality(&q) < 1e-12);
    assert!(relative_residual(&a, &q, &r) < 1e-12);
}

#[test]
fn caqr_extends_tsqr_to_general_matrices() {
    // The §VI extension: CAQR's panel *is* TSQR; a square matrix factored
    // by CAQR must agree with the reference QR.
    let a = workload::full_matrix(19, 48, 48);
    let f = caqr::caqr(&a, 8, 16);
    let q = f.q_thin();
    assert!(relative_residual(&a, &q, f.r()) < 1e-11);
    assert!(orthogonality(&q) < 1e-11);
    let reference = QrFactors::compute(&a, 8).r();
    assert!(r_distance(f.r(), &reference) < 1e-10);
}

#[test]
fn scheduler_rejects_impossible_profiles() {
    let catalog = ResourceCatalog::grid5000();
    assert!(allocate(&catalog, &JobProfile::cluster_of_clusters(5, 8)).is_err());
    assert!(allocate(&catalog, &JobProfile::cluster_of_clusters(4, 10_000)).is_err());
}

#[test]
fn property_one_holds_end_to_end() {
    let rt = small_grid5000(2, 2);
    let (m, n) = (1u64 << 18, 32usize);
    let mk = |compute_q| Experiment {
        m,
        n,
        algorithm: Algorithm::Tsqr { shape: TreeShape::GridHierarchical, domains_per_cluster: 4 },
        compute_q,
        mode: Mode::Symbolic,
        rate_flops: Some(0.5e9),
        combine_rate_flops: None,
    };
    let r_only = run_experiment(&rt, &mk(false));
    let with_q = run_experiment(&rt, &mk(true));
    let ratio = with_q.makespan.secs() / r_only.makespan.secs();
    assert!((1.6..=2.4).contains(&ratio), "Property 1 ratio {ratio}");
}

#[test]
fn tracing_itemizes_the_wan_bill() {
    use grid_tsqr::core::domains::DomainLayout;
    use grid_tsqr::core::tree::ReductionTree;
    use grid_tsqr::core::tsqr::{tsqr_rank_program, TsqrConfig};
    use grid_tsqr::gridmpi::EventKind;

    let clusters = grid_tsqr::netsim::grid5000::clusters().into_iter().take(3).collect();
    let topo = grid_tsqr::netsim::GridTopology::block_placement(clusters, 2, 2);
    let mut rt = Runtime::new(topo, grid_tsqr::netsim::grid5000::cost_model());
    rt.enable_tracing();

    let (m, n) = (512u64, 4usize);
    let layout = DomainLayout::build(rt.topology(), m, n, 4);
    let tree = ReductionTree::build(&TreeShape::GridHierarchical, 12, &layout.clusters());
    let cfg = TsqrConfig {
        shape: TreeShape::GridHierarchical,
        domains_per_cluster: 4,
        ..Default::default()
    };
    let report = rt.run(|p, _| tsqr_rank_program(p, &layout, &tree, &cfg, 7, None).map(|_| ()));
    let trace = report.trace.expect("tracing enabled");

    // The WAN bill, itemized: exactly sites - 1 = 2 inter-cluster sends,
    // and they agree with the aggregate counters.
    let wan = trace.wan_sends();
    assert_eq!(wan.len(), 2);
    assert_eq!(report.totals.inter_cluster_msgs(), 2);
    // Each WAN send carries a packed R triangle: n(n+1)/2 doubles.
    for e in &wan {
        match e.kind {
            EventKind::Send { bytes, .. } => assert_eq!(bytes, 8 * (4 * 5 / 2)),
            _ => unreachable!("wan_sends returns sends"),
        }
        assert!(e.end > e.start, "a WAN send takes time");
        assert!((e.end - e.start).secs() > 6e-3, "WAN latency is milliseconds");
    }
    // The timeline renders one line per event and the utilization summary
    // covers all ranks.
    assert_eq!(trace.render().lines().count(), trace.len());
    let util = trace.compute_utilization(12);
    assert_eq!(util.len(), 12);
    assert!(util.iter().all(|&u| (0.0..=1.0).contains(&u)));
    assert!(util.iter().any(|&u| u > 0.0));
}
