//! Block eigensolving with TSQR orthonormalization — the motivating
//! application of the paper's §II-E: "block-iterative methods need to
//! regularly perform this operation in order to obtain an orthogonal basis
//! for a set of vectors; this step is of particular importance for block
//! eigensolvers (BLOPEX, SLEPc, PRIMME). Currently these packages rely on
//! unstable orthogonalization schemes to avoid too many communications.
//! TSQR is a stable algorithm that enables the same total number of
//! messages."
//!
//! This example drives the library's distributed block subspace iteration
//! (`tsqr_core::eigsolve`) on a simulated two-site grid — every sweep
//! re-orthonormalizes the block with an explicit-Q TSQR over the tuned
//! tree — and contrasts it with the notoriously unstable normalize-only
//! scheme, whose basis collapses.
//!
//! Run: `cargo run --release --example block_eigensolver`

use grid_tsqr::core::domains::DomainLayout;
use grid_tsqr::core::eigsolve::{
    eigsolve_rank_program, DenseOperator, EigsolveConfig, EigsolveRankOutput,
};
use grid_tsqr::core::tree::{ReductionTree, TreeShape};
use grid_tsqr::gridmpi::Runtime;
use grid_tsqr::linalg::verify::orthogonality;
use grid_tsqr::linalg::Matrix;
use grid_tsqr::netsim::{ClusterSpec, CostModel, GridTopology, LinkParams};

/// A symmetric test matrix with a well-separated dominant spectrum: the
/// top four eigenvalues sit near 2m, 1.5m, 1.2m and m, the rest below m/4.
fn test_matrix(m: usize) -> Matrix {
    let s = Matrix::random_uniform(m, m, 7);
    let diag = |i: usize| -> f64 {
        let mf = m as f64;
        match i {
            0 => 2.0 * mf,
            1 => 1.5 * mf,
            2 => 1.2 * mf,
            3 => mf,
            _ => 0.25 * mf * (m - i) as f64 / m as f64,
        }
    };
    Matrix::from_fn(m, m, |i, j| {
        let sym = 0.05 * (s[(i, j)] + s[(j, i)]);
        if i == j {
            diag(i) + sym
        } else {
            sym
        }
    })
}

/// The "cheap" scheme some packages fall back to: scale each column to
/// unit norm, no reorthogonalization.
fn normalize_only(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    for j in 0..out.cols() {
        let norm = grid_tsqr::linalg::blas::nrm2(out.col(j));
        if norm > 0.0 {
            grid_tsqr::linalg::blas::scal(1.0 / norm, out.col_mut(j));
        }
    }
    out
}

fn main() {
    let (m, k, sweeps) = (512usize, 4usize, 30usize);
    let a = test_matrix(m);
    let op = DenseOperator { a: a.clone() };

    // Two clusters of four single-socket nodes, WAN between them.
    let specs = (0..2)
        .map(|i| ClusterSpec {
            name: format!("c{i}"),
            nodes: 4,
            procs_per_node: 1,
            peak_gflops_per_proc: 8.0,
        })
        .collect();
    let topo = GridTopology::block_placement(specs, 4, 1);
    let mut model = CostModel::homogeneous(LinkParams::from_ms_mbps(0.07, 890.0), 3.67e9, 2);
    model.inter_cluster[0][1] = LinkParams::from_ms_mbps(8.0, 80.0);
    model.inter_cluster[1][0] = LinkParams::from_ms_mbps(8.0, 80.0);
    let rt = Runtime::new(topo, model);

    // Distributed subspace iteration through the library API.
    let layout = DomainLayout::build(rt.topology(), m as u64, k, 4);
    let tree = ReductionTree::build(&TreeShape::GridHierarchical, 8, &layout.clusters());
    let cfg = EigsolveConfig {
        k,
        sweeps,
        domains_per_cluster: 4,
        shape: TreeShape::GridHierarchical,
        seed: 3,
    };
    let report = rt.run(|p, world| eigsolve_rank_program(p, world, &layout, &tree, &op, &cfg));
    let wan_total = report.totals.inter_cluster_msgs();
    let outs: Vec<EigsolveRankOutput> =
        report.ranks.into_iter().map(|r| r.result.expect("rank ok")).collect();
    let mut blocks: Vec<(u64, Matrix)> =
        outs.iter().map(|o| (o.row0, o.x_block.clone())).collect();
    blocks.sort_by_key(|(r0, _)| *r0);
    let refs: Vec<&Matrix> = blocks.iter().map(|(_, b)| b).collect();
    let q = Matrix::vstack_all(&refs);
    let ritz = &outs[0].ritz_values;

    println!("TSQR-orthonormalized subspace iteration ({sweeps} sweeps):");
    println!("  Ritz values: {ritz:.2?}");
    let expected = [2.0 * m as f64, 1.5 * m as f64, 1.2 * m as f64, m as f64];
    println!("  expected (dominant diagonal): ~{expected:.0?}");
    println!("  basis orthogonality ||QᵀQ - I|| = {:.2e}", orthogonality(&q));
    println!(
        "  WAN messages per sweep: ~{} (allgather + TSQR up/down)",
        wan_total / (sweeps as u64 + 2)
    );
    for (i, &e) in ritz.iter().enumerate() {
        let want = expected[i];
        assert!((e - want).abs() / want < 0.02, "ritz value {i}: {e} vs {want}");
    }
    assert!(orthogonality(&q) < 1e-12);

    // The unstable alternative: columns collapse onto the dominant
    // eigenvector and the basis stops being a basis.
    let mut x = Matrix::random_uniform(m, k, 3);
    for _ in 0..sweeps {
        x = normalize_only(&a.matmul(&x));
    }
    println!("normalize-only scheme after {sweeps} sweeps:");
    println!("  basis orthogonality ||XᵀX - I|| = {:.2e} (collapsed)", orthogonality(&x));
    assert!(
        orthogonality(&x) > 0.1,
        "the unstable scheme should visibly lose orthogonality"
    );
    println!("OK: TSQR keeps the block orthogonal; the cheap scheme does not.");
}
