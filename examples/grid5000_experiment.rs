//! A slice of the paper's evaluation, end to end: allocate the Grid'5000
//! platform through the QCG meta-scheduler, then race QCG-TSQR against the
//! ScaLAPACK-style baseline on 1, 2 and 4 geographical sites at paper
//! scale (symbolic execution — real message schedules, model-priced
//! virtual time).
//!
//! Run: `cargo run --release --example grid5000_experiment`

use grid_tsqr::core::experiment::{run_experiment, Algorithm, Experiment, Mode};
use grid_tsqr::core::tree::TreeShape;
use grid_tsqr::gridmpi::Runtime;
use grid_tsqr::qcg::{allocate, JobProfile, ResourceCatalog};

fn main() {
    let catalog = ResourceCatalog::grid5000();
    println!(
        "catalog: {} clusters, {} processors total",
        catalog.clusters.len(),
        catalog.total_procs()
    );

    let (m, n) = (33_554_432u64, 64usize); // the paper's tallest matrix
    println!("\nfactoring a {m} x {n} matrix (R factor):");
    println!(
        "{:>6} {:>22} {:>22} {:>9}",
        "sites", "TSQR (Gflop/s)", "ScaLAPACK (Gflop/s)", "WAN msgs"
    );

    let mut tsqr_one_site = 0.0;
    for sites in [1usize, 2, 4] {
        // The application describes what it needs; the meta-scheduler
        // finds matching resources (§II-D / §III).
        let profile = JobProfile::cluster_of_clusters(sites, 64);
        let alloc = allocate(&catalog, &profile).expect("allocation");
        let rt = Runtime::new(alloc.topology.clone(), alloc.network.clone());

        let mk = |algorithm| Experiment {
            m,
            n,
            algorithm,
            compute_q: false,
            mode: Mode::Symbolic,
            rate_flops: Some(0.55e9), // calibrated leaf rate at N = 64
            combine_rate_flops: Some(1.5e9),
        };
        let tsqr = run_experiment(
            &rt,
            &mk(Algorithm::Tsqr { shape: TreeShape::GridHierarchical, domains_per_cluster: 64 }),
        );
        let scal = run_experiment(&rt, &mk(Algorithm::ScalapackQr2));
        println!(
            "{:>6} {:>22.1} {:>22.1} {:>9}",
            sites,
            tsqr.gflops,
            scal.gflops,
            tsqr.totals.inter_cluster_msgs()
        );
        if sites == 1 {
            tsqr_one_site = tsqr.gflops;
        } else if sites == 4 {
            let speedup = tsqr.gflops / tsqr_one_site;
            println!(
                "\nTSQR speedup on 4 sites vs 1 site: {speedup:.2}x \
                 (the paper's central claim: ~linear in the number of sites)"
            );
            assert!(speedup > 3.3, "expected near-linear site scaling");
            assert!(
                tsqr.gflops > scal.gflops,
                "TSQR must beat the baseline on the grid"
            );
        }
    }
    println!("OK: dense linear algebra *can* speed up across geographical sites.");
}
