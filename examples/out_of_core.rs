//! Out-of-core QR and streaming least squares: factor a matrix far larger
//! than the resident window by streaming row blocks through the
//! bounded-memory accumulator (`tsqr_core::oocqr`) — the flat-tree TSQR of
//! the paper's citation [26] (Gunter & van de Geijn's out-of-core QR).
//!
//! Run: `cargo run --release --example out_of_core`

use grid_tsqr::core::oocqr::StreamingQr;
use grid_tsqr::core::workload;
use grid_tsqr::linalg::prelude::*;
use grid_tsqr::linalg::verify::r_distance;

fn main() {
    // A 1,000,000 x 32 matrix (256 MB of doubles) streamed through a
    // 16,384-row window (4 MB resident) — a 61x memory reduction.
    let (m, n, seed) = (1_000_000u64, 32usize, 77u64);
    let window_rows = 16_384usize;

    // The right-hand side streams along, so one pass yields both R and
    // the least-squares solution.
    let x_true: Vec<f64> = (0..n).map(|j| (j as f64 * 0.3).cos() * 2.0).collect();

    let mut acc = StreamingQr::new(n);
    let mut row0 = 0u64;
    let mut blocks = 0;
    while row0 < m {
        let rows = (window_rows as u64).min(m - row0) as usize;
        let block = workload::block(seed, row0, rows, n);
        let rhs: Vec<f64> = (0..rows)
            .map(|i| (0..n).map(|j| block[(i, j)] * x_true[j]).sum())
            .collect();
        acc.push_block(&block, Some(&rhs));
        row0 += rows as u64;
        blocks += 1;
    }
    println!(
        "streamed {m} x {n} ({:.0} MB) through a {window_rows}-row window ({:.1} MB) in {blocks} blocks",
        (m as usize * n * 8) as f64 / 1e6,
        (window_rows * n * 8) as f64 / 1e6,
    );
    println!("  charged flops: {:.2e} (~2MN²)", acc.flops as f64);

    // The solution from one pass.
    let x = acc.solve();
    let err = x
        .iter()
        .zip(&x_true)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0f64, f64::max);
    println!("  streaming least-squares max error: {err:.3e}");
    assert!(err < 1e-9);

    // Cross-check R against an in-memory factorization of a smaller
    // prefix (the full matrix would defeat the point).
    let prefix_m = 65_536usize;
    let mut prefix_acc = StreamingQr::new(n);
    let mut r0 = 0;
    while r0 < prefix_m {
        let rows = window_rows.min(prefix_m - r0);
        prefix_acc.push_block(&workload::block(seed, r0 as u64, rows, n), None);
        r0 += rows;
    }
    let reference = QrFactors::compute(&workload::full_matrix(seed, prefix_m, n), 64)
        .r()
        .upper_triangular_padded();
    let dist = r_distance(prefix_acc.r(), &reference);
    println!("  R (65,536-row prefix) vs in-memory QR: max diff {dist:.3e}");
    assert!(dist < 1e-10);
    println!("OK: bounded-memory TSQR reproduces the in-memory factorization.");
}
