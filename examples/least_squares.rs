//! Distributed least-squares fitting with TSQR — polynomial regression on
//! a two-site grid without ever forming Q.
//!
//! The `(R, c)` pair rides the same tuned reduction tree as TSQR's R
//! factor, so the whole solve costs one WAN message per site boundary plus
//! the broadcast of the n-vector solution. For contrast we also solve the
//! normal equations (CholeskyQR-style) and show the accuracy gap on an
//! ill-conditioned Vandermonde basis.
//!
//! Run: `cargo run --release --example least_squares`

use grid_tsqr::core::lstsq::lstsq_distributed;
use grid_tsqr::core::tree::TreeShape;
use grid_tsqr::gridmpi::Runtime;
use grid_tsqr::linalg::cholesky::potrf_upper;
use grid_tsqr::linalg::tri::{trsv, Triangle};
use grid_tsqr::linalg::Matrix;
use grid_tsqr::netsim::{ClusterSpec, CostModel, GridTopology, LinkParams};

/// Vandermonde design matrix on `m` points in [0, 1]: column j = t^j.
/// Notoriously ill-conditioned as the degree grows.
fn vandermonde(m: usize, degree: usize) -> Matrix {
    Matrix::from_fn(m, degree + 1, |i, j| {
        let t = i as f64 / (m - 1) as f64;
        t.powi(j as i32)
    })
}

fn main() {
    // A two-site grid, four processes per site.
    let specs = (0..2)
        .map(|i| ClusterSpec {
            name: format!("site{i}"),
            nodes: 4,
            procs_per_node: 1,
            peak_gflops_per_proc: 8.0,
        })
        .collect();
    let topo = GridTopology::block_placement(specs, 4, 1);
    let mut model = CostModel::homogeneous(LinkParams::from_ms_mbps(0.07, 890.0), 3.67e9, 2);
    model.inter_cluster[0][1] = LinkParams::from_ms_mbps(8.0, 80.0);
    model.inter_cluster[1][0] = LinkParams::from_ms_mbps(8.0, 80.0);
    let rt = Runtime::new(topo, model);

    // Ground truth: a degree-9 polynomial sampled on 4096 points.
    let (m, degree) = (4096usize, 9usize);
    let truth: Vec<f64> = (0..=degree).map(|j| ((j as f64) * 0.7 - 2.0).sin() * 3.0).collect();
    let a = vandermonde(m, degree);
    let b: Vec<f64> = (0..m)
        .map(|i| (0..=degree).map(|j| a[(i, j)] * truth[j]).sum())
        .collect();

    // --- Distributed TSQR least squares. ---
    let out = lstsq_distributed(&rt, &a, &b, 4, TreeShape::GridHierarchical);
    let tsqr_err: f64 = out
        .x
        .iter()
        .zip(&truth)
        .map(|(g, w)| (g - w).abs())
        .fold(0.0, f64::max);
    println!("degree-{degree} Vandermonde fit on {m} points, 8 processes / 2 sites");
    println!("  TSQR solve:             max coefficient error {tsqr_err:.3e}");
    println!("  R min diagonal (conditioning probe): {:.3e}", out.r_min_diag);

    // --- Normal equations for contrast (squares the condition number). ---
    let g = a.t_matmul(&a);
    let atb = a.t_matmul(&Matrix::from_col_major(m, 1, b.clone()).unwrap());
    let ne_err = match potrf_upper(&g) {
        Ok(r) => {
            let mut y = atb.col(0).to_vec();
            trsv(Triangle::Lower, &r.transpose().view(), &mut y);
            trsv(Triangle::Upper, &r.view(), &mut y);
            y.iter().zip(&truth).map(|(g, w)| (g - w).abs()).fold(0.0, f64::max)
        }
        Err(e) => {
            println!("  normal equations:       Cholesky failed ({e})");
            f64::INFINITY
        }
    };
    if ne_err.is_finite() {
        println!("  normal equations solve: max coefficient error {ne_err:.3e}");
    }

    assert!(tsqr_err < 1e-6, "TSQR fit should recover the coefficients");
    assert!(
        tsqr_err < ne_err / 10.0 || ne_err.is_infinite(),
        "QR-based solve must beat the normal equations on this conditioning \
         (tsqr {tsqr_err:.3e} vs normal equations {ne_err:.3e})"
    );
    println!(
        "OK: the QR-based distributed solve is ~{:.0}x more accurate here.",
        (ne_err / tsqr_err).min(1e9)
    );
}
