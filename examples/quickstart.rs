//! Quickstart: factor a tall-and-skinny matrix with QCG-TSQR on a
//! simulated two-site grid, verify the result numerically, and look at
//! what the topology-aware reduction tree did to the communication bill.
//!
//! Run: `cargo run --release --example quickstart`

use grid_tsqr::core::experiment::{run_experiment, Algorithm, Experiment, Mode};
use grid_tsqr::core::tree::TreeShape;
use grid_tsqr::core::workload;
use grid_tsqr::gridmpi::Runtime;
use grid_tsqr::linalg::prelude::*;
use grid_tsqr::linalg::verify::r_distance;
use grid_tsqr::netsim::grid5000;

fn main() {
    // 1. A grid: two Grid'5000 sites, 32 dual-processor nodes each
    //    (128 processes), with the measured latencies/bandwidths of the
    //    paper's Fig. 3(a).
    let rt = Runtime::new(grid5000::topology(2), grid5000::cost_model());
    println!(
        "grid: {} processes over {} sites",
        rt.topology().num_procs(),
        rt.topology().num_clusters()
    );

    // 2. Factor a 65,536 x 32 random matrix with TSQR: one domain per
    //    process, binary reduction inside each site, then across sites.
    let (m, n, seed) = (65_536u64, 32usize, 42u64);
    let result = run_experiment(
        &rt,
        &Experiment {
            m,
            n,
            algorithm: Algorithm::Tsqr {
                shape: TreeShape::GridHierarchical,
                domains_per_cluster: 64,
            },
            compute_q: false,
            mode: Mode::Real { seed },
            rate_flops: None,
            combine_rate_flops: None,
        },
    );
    let r = result.r.expect("rank 0 returns the R factor");

    // 3. Verify against a single-process reference factorization.
    let a = workload::full_matrix(seed, m as usize, n);
    let reference = QrFactors::compute(&a, 32).r().upper_triangular_padded();
    let err = r_distance(&r, &reference);
    println!("max |R - R_ref| after sign normalization: {err:.3e}");
    assert!(err < 1e-10, "distributed R must match the reference");

    // 4. The communication bill: the tuned tree crossed the wide-area
    //    link exactly once (= #sites - 1), no matter how many columns.
    println!(
        "simulated time {:.3} s, {:.1} Gflop/s, {} messages total, {} over the WAN",
        result.makespan.secs(),
        result.gflops,
        result.totals.total_msgs(),
        result.totals.inter_cluster_msgs(),
    );
    assert_eq!(result.totals.inter_cluster_msgs(), 1);
    println!("OK: R verified, and only one inter-site message was needed.");
}
