//! Why topology-awareness matters: the same TSQR reduction with four tree
//! shapes / placements, and what each costs on a grid whose wide-area
//! links are two orders of magnitude slower than the cluster fabric
//! (the paper's Figs. 1–2 in executable form).
//!
//! Also demonstrates the QCG-OMPI programming model of §III: the
//! application retrieves its group identifiers from the middleware and
//! builds per-site communicators with `split_by`.
//!
//! Run: `cargo run --release --example topology_aware`

use grid_tsqr::core::domains::DomainLayout;
use grid_tsqr::core::tree::{ReductionTree, TreeShape};
use grid_tsqr::core::tsqr::{tsqr_rank_program, TsqrConfig};
use grid_tsqr::gridmpi::Runtime;
use grid_tsqr::netsim::grid5000;
use grid_tsqr::qcg::{allocate, JobProfile, ResourceCatalog};

fn run_shape(rt: &Runtime, shape: TreeShape, label: &str, m: u64, n: usize) {
    let layout = DomainLayout::build(rt.topology(), m, n, 64);
    let tree = ReductionTree::build(&shape, layout.num_domains(), &layout.clusters());
    let cfg = TsqrConfig { shape, domains_per_cluster: 64, ..Default::default() };
    let report = rt.run(|p, _| tsqr_rank_program(p, &layout, &tree, &cfg, 1, None).map(|_| ()));
    println!(
        "  {label:<28} {:>8.3} s   {:>4} WAN msgs   tree depth {}",
        report.makespan.secs(),
        report.totals.inter_cluster_msgs(),
        tree.depth()
    );
}

fn main() {
    let (m, n) = (262_144u64, 16usize);

    // --- The QCG programming model: profile -> allocation -> groups. ---
    let catalog = ResourceCatalog::grid5000();
    let alloc = allocate(&catalog, &JobProfile::cluster_of_clusters(4, 64)).expect("allocation");
    println!(
        "allocation: {} groups of 64, throttled to {:.1} Gflop/s/process",
        alloc.num_groups(),
        alloc.effective_gflops_per_proc
    );
    let group_of = alloc.group_of.clone();
    let rt = Runtime::new(alloc.topology, alloc.network);

    // Each rank retrieves its group id (the QCG-OMPI MPI attribute) and
    // builds a per-site communicator, then sums a value inside its site —
    // zero WAN traffic.
    let report = rt.run(|p, world| {
        let my_group = group_of[p.rank()];
        let site = world.split_by(p, |r| group_of[r] as u64, |r| r as u64);
        let local_sum = site.allreduce(p, 1.0f64, |a, b| a + b)?;
        Ok((my_group, local_sum))
    });
    let (g0, sum0) = report.ranks[0].result.clone().unwrap();
    println!(
        "rank 0: group {g0}, intra-site allreduce counted {sum0} processes, \
         {} WAN messages for all 256 ranks",
        report.totals.inter_cluster_msgs()
    );
    assert_eq!(sum0, 64.0);
    assert_eq!(report.totals.inter_cluster_msgs(), 0);

    // --- Tree shapes on the real cost model. ---
    println!("\nTSQR reduction of a {m} x {n} matrix, 256 domains on 4 sites:");
    run_shape(&rt, TreeShape::GridHierarchical, "grid-tuned (Fig. 2)", m, n);
    run_shape(&rt, TreeShape::Binary, "binary, block placement", m, n);
    run_shape(&rt, TreeShape::Flat, "flat (out-of-core shape)", m, n);

    // A topology-oblivious runtime that scattered ranks across sites:
    // the per-column all-reduces of the ScaLAPACK baseline now cross the
    // WAN at almost every tree edge (Fig. 1's caption: "if process ranks
    // are randomly distributed, the figure can be worse").
    let scal = |rt: &Runtime, label: &str| {
        let res = grid_tsqr::core::experiment::run_experiment(
            rt,
            &grid_tsqr::core::experiment::Experiment {
                m,
                n,
                algorithm: grid_tsqr::core::experiment::Algorithm::ScalapackQr2,
                compute_q: false,
                mode: grid_tsqr::core::experiment::Mode::Symbolic,
                rate_flops: None,
                combine_rate_flops: None,
            },
        );
        println!(
            "  {label:<28} {:>8.3} s   {:>4} WAN msgs",
            res.makespan.secs(),
            res.totals.inter_cluster_msgs()
        );
        res.totals.inter_cluster_msgs()
    };
    println!("\nScaLAPACK QR2 on the same problem (2 all-reduces per column):");
    let wan_block = scal(&rt, "QCG placement");
    let shuffled = Runtime::new(grid5000::topology(4).shuffled(9), grid5000::cost_model());
    let wan_shuffled = scal(&shuffled, "shuffled (oblivious) placement");
    assert!(wan_shuffled > wan_block);

    println!(
        "\nThe tuned tree pays the 6-9 ms WAN latency exactly {} times; every\n\
         other combination pays it more often — that is the whole paper.",
        4 - 1
    );
}
