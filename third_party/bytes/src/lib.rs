//! Offline stub of `bytes`. The workspace declares the dependency but
//! does not currently use it; a minimal `Bytes` alias is provided in
//! case that changes. See `third_party/README.md`.

/// Cheap byte-buffer stand-in (no refcounted slicing).
pub type Bytes = Vec<u8>;
