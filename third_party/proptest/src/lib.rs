//! Offline stub of the subset of `proptest` 1.x this workspace uses.
//!
//! Samples strategies uniformly from a deterministic per-test RNG and
//! runs the body for `ProptestConfig::cases` iterations. Differences
//! from the real crate, by design (see `third_party/README.md`):
//! no shrinking, `*.proptest-regressions` files are ignored, and
//! `prop_assert!`/`prop_assert_eq!` panic (with the case number in the
//! message) instead of returning `TestCaseError`.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration (subset: `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic test RNG (SplitMix64 seeded from the test path and
/// case index) — every run samples the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test named `path`.
    pub fn deterministic(path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values. Subset of the real trait: sampling only,
/// no shrink tree.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as u64)
                    .wrapping_sub(*self.start() as u64)
                    .wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                self.start() + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy generating `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length distribution for [`vec`] — built from `usize` ranges.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The names `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written by the caller, as with
/// the real crate) running `body` for `cases` sampled argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for __proptest_case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __proptest_case,
                );
                $(let $arg = $crate::Strategy::new_value(&($strat), &mut __proptest_rng);)+
                let __proptest_case = __proptest_case; // visible to prop_assert!
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test, reporting the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("[proptest stub] property failed: {}", format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)*), l, r
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Skips the current case when the assumption fails. The stub simply
/// `continue`s to the next case (real proptest resamples).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3usize..10, b in 0u64..5, x in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((0usize..4, 0.0f64..1.0), 1..=5),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(!v.is_empty() && v.len() <= 5);
            for (i, x) in &v {
                prop_assert!(*i < 4 && (0.0..1.0).contains(x));
            }
            let _ = flag;
        }

        #[test]
        fn prop_map_applies(n in (1usize..4).prop_map(|x| x * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::deterministic("x::y", 3);
        let mut b = TestRng::deterministic("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
