//! Offline stub of `parking_lot`. The workspace declares the dependency
//! but does not currently use it; thin aliases to the std primitives are
//! provided in case that changes. See `third_party/README.md`.

pub use std::sync::{Mutex, RwLock};
