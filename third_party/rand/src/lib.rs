//! Offline stub of the subset of `rand` 0.8 this workspace uses.
//!
//! See `third_party/README.md`: activated only through an out-of-repo
//! `[patch.crates-io]`; numerically different from the real crate (the
//! `StdRng` is a SplitMix64, not ChaCha12) but API-compatible for the
//! calls the workspace makes, and deterministic for a given seed.

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value API (subset).
pub trait Rng: RngCore {
    /// A uniform value in `[0, 1)`.
    fn gen_f64_unit(&mut self) -> f64 {
        // 53 random mantissa bits, the standard [0, 1) construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: a SplitMix64. Deterministic
    /// per seed, statistically fine for test workloads, *not* the real
    /// ChaCha12 stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele et al.), the canonical seeding mixer.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Distributions (subset: `Uniform<f64>`).
pub mod distributions {
    use super::Rng;

    /// A distribution sampling values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a closed interval of `f64`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl Uniform<f64> {
        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: f64, hi: f64) -> Self {
            assert!(lo <= hi, "empty uniform range");
            Uniform { lo, hi }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            self.lo + rng.gen_f64_unit() * (self.hi - self.lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::SeedableRng;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let dist = Uniform::new_inclusive(-1.0, 1.0);
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32).map(|_| dist.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
        assert!(draw(7).iter().all(|x| (-1.0..=1.0).contains(x)));
    }
}
