//! Offline stub of `serde`: exposes the `Serialize`/`Deserialize`
//! derive macros (which expand to nothing) and matching empty marker
//! traits for bounds. The workspace derives the traits on its wire
//! types for downstream consumers but never serializes in-tree (there
//! is no `serde_json` here), so no-op impls suffice. See
//! `third_party/README.md`.

pub use serde_derive::{Deserialize, Serialize};
