//! Offline stub of the subset of `crossbeam` this workspace uses:
//! `channel::{unbounded, Sender, Receiver, RecvTimeoutError, ...}`,
//! backed by `std::sync::mpsc`. Semantics match for the patterns the
//! runtime relies on (cloned senders, single receiver per process,
//! `recv_timeout`, `try_recv`, disconnect on drop). The std receiver is
//! not `Clone`/`Sync` like crossbeam's, which this workspace never
//! needs. See `third_party/README.md`.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};
    pub use std::sync::mpsc::{Receiver, Sender};

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_timeout_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(8).unwrap();
        assert_eq!(rx.try_recv(), Ok(8));
        drop(tx2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
