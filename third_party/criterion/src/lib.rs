//! Offline stub of the subset of `criterion` this workspace's benches
//! use. `cargo bench` with this stub runs every benchmark body exactly
//! once and prints its wall time — a smoke test, not a measurement.
//! See `third_party/README.md`.

pub use std::hint::black_box;
use std::time::Instant;

/// Benchmark driver (stub: just a name sink).
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }
}

/// A named benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sample count hint — ignored by the stub.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark body (once).
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher { elapsed_ns: 0 };
        f(&mut b);
        println!("bench {}/{id}: {} ns (single run, stub)", self.name, b.elapsed_ns);
        self
    }

    /// Runs one parameterized benchmark body (once).
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher { elapsed_ns: 0 };
        f(&mut b, input);
        println!("bench {}/{}: {} ns (single run, stub)", self.name, id.id, b.elapsed_ns);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures handed to [`BenchmarkGroup`] entries.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs the routine once and records its wall time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Declares the benchmark entry list, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
