//! Offline stub of `serde_derive`: the derives expand to nothing.
//!
//! Nothing in this workspace actually serializes (there is no
//! `serde_json` dependency); the derives only need to *compile*, along
//! with `#[serde(...)]` field attributes. See `third_party/README.md`.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
