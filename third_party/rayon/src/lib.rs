//! Offline stub of the subset of `rayon` this workspace uses:
//! `current_num_threads` and `prelude::*` providing `par_chunks_mut`.
//! Everything runs sequentially on the calling thread — `par_*` methods
//! return the corresponding std iterators, so adapters like
//! `.enumerate().for_each(...)` still compile and produce identical
//! results (the blocked gemm writes disjoint strips either way). See
//! `third_party/README.md`.

/// Number of worker threads: always 1 in the sequential stub.
pub fn current_num_threads() -> usize {
    1
}

/// The names `use rayon::prelude::*` is expected to bring in.
pub mod prelude {
    /// Sequential stand-in for rayon's `ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        /// "Parallel" mutable chunks — sequentially, via `chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_covers_all_elements() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }
}
