//! Grid topology: clusters of multi-socket nodes and process placement.

use serde::{Deserialize, Serialize};

/// Static description of one cluster (geographical site).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Human-readable site name (e.g. `"orsay"`).
    pub name: String,
    /// Number of nodes available at the site.
    pub nodes: usize,
    /// Processor sockets per node (the paper's clusters are dual-processor).
    pub procs_per_node: usize,
    /// Per-processor theoretical peak in Gflop/s (8.0–10.4 on Grid'5000).
    pub peak_gflops_per_proc: f64,
}

/// Where a process (MPI rank) lives in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProcLocation {
    /// Cluster (site) index.
    pub cluster: usize,
    /// Node index within the cluster.
    pub node: usize,
    /// Processor slot within the node.
    pub slot: usize,
}

/// A concrete grid: clusters plus the placement of every process rank.
///
/// `placement[rank]` gives the rank's physical coordinate; the runtime uses
/// it (through [`crate::cost::CostModel`]) to price every message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridTopology {
    /// Per-site descriptions.
    pub clusters: Vec<ClusterSpec>,
    /// Physical coordinates of each rank.
    pub placement: Vec<ProcLocation>,
}

impl GridTopology {
    /// Builds a topology placing `procs_per_node × nodes_per_cluster` ranks
    /// on each of the first `n_clusters` clusters, filling node slots first
    /// (ranks are dense within a cluster, clusters are contiguous rank
    /// ranges — the layout QCG-OMPI's group allocation produces).
    pub fn block_placement(
        clusters: Vec<ClusterSpec>,
        nodes_per_cluster: usize,
        procs_per_node: usize,
    ) -> Self {
        let mut placement = Vec::new();
        for (c, spec) in clusters.iter().enumerate() {
            assert!(
                nodes_per_cluster <= spec.nodes,
                "cluster {} has only {} nodes, {} requested",
                spec.name,
                spec.nodes,
                nodes_per_cluster
            );
            assert!(
                procs_per_node <= spec.procs_per_node,
                "cluster {} has only {} procs/node, {} requested",
                spec.name,
                spec.procs_per_node,
                procs_per_node
            );
            for node in 0..nodes_per_cluster {
                for slot in 0..procs_per_node {
                    placement.push(ProcLocation { cluster: c, node, slot });
                }
            }
        }
        GridTopology { clusters, placement }
    }

    /// Total number of placed processes.
    pub fn num_procs(&self) -> usize {
        self.placement.len()
    }

    /// Number of sites.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Location of a rank.
    pub fn location(&self, rank: usize) -> ProcLocation {
        self.placement[rank]
    }

    /// The cluster index of a rank.
    pub fn cluster_of(&self, rank: usize) -> usize {
        self.placement[rank].cluster
    }

    /// Ranks belonging to cluster `c`, in rank order.
    pub fn ranks_in_cluster(&self, c: usize) -> Vec<usize> {
        (0..self.num_procs()).filter(|&r| self.placement[r].cluster == c).collect()
    }

    /// A random (shuffled) placement of the same coordinates — models an
    /// MPI runtime that is *not* topology-aware, where consecutive ranks
    /// land on arbitrary sites (the pathological case of Fig. 1's caption:
    /// "if process ranks are randomly distributed, the figure can be
    /// worse").
    pub fn shuffled(&self, seed: u64) -> Self {
        // Fisher–Yates on the shared SplitMix64 stream; the seed is
        // offset by one gamma to preserve the historical sequence from
        // before the generator moved to `crate::rng`.
        let mut rng = crate::rng::SplitMix64::new(seed.wrapping_add(crate::rng::GOLDEN_GAMMA));
        let mut next = move || rng.next_u64();
        let mut placement = self.placement.clone();
        for i in (1..placement.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            placement.swap(i, j);
        }
        GridTopology { clusters: self.clusters.clone(), placement }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sites() -> Vec<ClusterSpec> {
        vec![
            ClusterSpec {
                name: "a".into(),
                nodes: 4,
                procs_per_node: 2,
                peak_gflops_per_proc: 8.0,
            },
            ClusterSpec {
                name: "b".into(),
                nodes: 4,
                procs_per_node: 2,
                peak_gflops_per_proc: 10.0,
            },
        ]
    }

    #[test]
    fn block_placement_is_contiguous_per_cluster() {
        let topo = GridTopology::block_placement(two_sites(), 2, 2);
        assert_eq!(topo.num_procs(), 8);
        assert_eq!(topo.cluster_of(0), 0);
        assert_eq!(topo.cluster_of(3), 0);
        assert_eq!(topo.cluster_of(4), 1);
        assert_eq!(topo.ranks_in_cluster(1), vec![4, 5, 6, 7]);
    }

    #[test]
    fn slots_fill_within_nodes_first() {
        let topo = GridTopology::block_placement(two_sites(), 2, 2);
        assert_eq!(topo.location(0), ProcLocation { cluster: 0, node: 0, slot: 0 });
        assert_eq!(topo.location(1), ProcLocation { cluster: 0, node: 0, slot: 1 });
        assert_eq!(topo.location(2), ProcLocation { cluster: 0, node: 1, slot: 0 });
    }

    #[test]
    #[should_panic(expected = "has only")]
    fn over_allocation_panics() {
        let _ = GridTopology::block_placement(two_sites(), 5, 2);
    }

    #[test]
    fn shuffled_is_permutation_and_deterministic() {
        let topo = GridTopology::block_placement(two_sites(), 4, 2);
        let s1 = topo.shuffled(7);
        let s2 = topo.shuffled(7);
        assert_eq!(s1, s2, "same seed must give the same shuffle");
        let mut a = topo.placement.clone();
        let mut b = s1.placement.clone();
        let key = |p: &ProcLocation| (p.cluster, p.node, p.slot);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b, "shuffle must be a permutation");
        assert_ne!(topo.placement, s1.placement, "16 elements should actually move");
    }
}
