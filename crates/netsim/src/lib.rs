//! Simulated grid substrate: topology, link classification, and the
//! communication/computation cost model of the paper's Eq. (1).
//!
//! The paper evaluates on Grid'5000 — four clusters (Bordeaux, Orsay,
//! Toulouse, Sophia) of 32 dual-processor nodes each, Gigabit Ethernet
//! inside a cluster and dedicated dark fiber between sites. We reproduce
//! that environment as data: a [`topology::GridTopology`] places every
//! process on a `(cluster, node, slot)` coordinate, and a
//! [`cost::CostModel`] prices every message with
//! `time = β + bytes·α` where `(β, α)` depend on the link class
//! (intra-node / intra-cluster / inter-cluster site pair), plus
//! `flops·γ` for local computation. The constants of the
//! [`grid5000`] preset are the measured values of the paper's Fig. 3(a)
//! and §V-A/§V-B.
//!
//! Virtual time ([`time::VirtualTime`]) is a plain `f64` of seconds carried
//! on every simulated message by the `tsqr-gridmpi` runtime; nothing in this
//! crate depends on wall-clock time, which is what makes the simulation
//! deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod desktop;
pub mod fault;
pub mod grid5000;
pub mod occupancy;
pub mod rng;
pub mod time;
pub mod topology;

pub use cost::{CostModel, LinkClass, LinkParams};
pub use fault::{Degradation, FailureSchedule};
pub use occupancy::{CommMatrix, LinkUsage, SharedLinks, UtilizationTimeline};
pub use rng::SplitMix64;
pub use time::VirtualTime;
pub use topology::{ClusterSpec, GridTopology, ProcLocation};
