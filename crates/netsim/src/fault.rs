//! Deterministic, virtual-time failure schedules.
//!
//! A grid is a volatile environment: nodes crash, wide-area links between
//! sites degrade, and individual messages are lost. The paper targets the
//! QCG-OMPI middleware precisely because plain MPI gives up on such
//! platforms; our simulator therefore needs a way to *script* failures so
//! that robustness experiments are reproducible.
//!
//! A [`FailureSchedule`] is that script. It is consulted by the simulated
//! runtime (`gridmpi`) at every send/receive and by the Eq. (1) cost model
//! when pricing messages:
//!
//! * **rank crashes** — rank `r` dies at virtual time *t*; every operation
//!   it attempts at or after *t* fails, and peers detect the death via a
//!   virtual-time deadline rather than a wall-clock guess;
//! * **permanent link failures** — the directed link `src → dst` is down
//!   for the whole run (this subsumes the former static `failed_links`
//!   set of the runtime);
//! * **transient message drops** — either "drop the `n`-th message on a
//!   directed pair" (precise, for unit tests) or a seeded per-message
//!   coin flip (reproducible: the same seed always drops the same
//!   messages);
//! * **WAN-link degradation** — for a virtual-time window, a link class
//!   has its latency multiplied and its bandwidth divided by a factor
//!   (e.g. cross-traffic on the Orsay–Toulouse path between *t*₀ and
//!   *t*₁).
//!
//! # Determinism contract
//!
//! Every query is a pure function of the schedule and its arguments —
//! no wall clock, no global RNG. Two runs with the same (matrix,
//! schedule, seed) observe byte-identical failures, which is what makes
//! the self-healing TSQR's recovered R bitwise reproducible. An **empty**
//! schedule answers "no" to everything and leaves message pricing
//! bit-identical to the schedule-free path (the perf-regression gate
//! relies on this).

use serde::{Deserialize, Serialize};

use crate::cost::{CostModel, LinkClass, LinkParams};
use crate::time::VirtualTime;
use crate::topology::ProcLocation;

/// A scripted degradation of one link class during a virtual-time window.
///
/// While `from <= t < until`, any message on a link of class `class`
/// (coarse bucket match for `wan`: any inter-cluster pair unless a
/// specific site pair is given) is priced with `latency × latency_factor`
/// and `bandwidth ÷ bandwidth_divisor`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Degradation {
    /// Which link class is degraded. `InterCluster(a, b)` (with `a < b`)
    /// hits only that site pair; to degrade *all* WAN links use
    /// [`FailureSchedule::degrade_all_wan`].
    pub class: LinkClass,
    /// Start of the window (inclusive), in virtual time.
    pub from: VirtualTime,
    /// End of the window (exclusive), in virtual time.
    pub until: VirtualTime,
    /// Latency multiplier (`k ≥ 1` for a degradation).
    pub latency_factor: f64,
    /// Bandwidth divisor (`k ≥ 1` for a degradation).
    pub bandwidth_divisor: f64,
}

impl Degradation {
    /// True when this window is active at time `t` for a link of
    /// class `class`.
    fn applies(&self, class: LinkClass, t: VirtualTime) -> bool {
        let class_match = match self.class {
            LinkClass::InterCluster(usize::MAX, _) => class.is_inter_cluster(),
            c => c == class,
        };
        class_match && t >= self.from && t < self.until
    }

    /// The degraded parameters for `base`.
    fn apply(&self, base: LinkParams) -> LinkParams {
        LinkParams {
            latency_s: base.latency_s * self.latency_factor,
            bandwidth_bps: base.bandwidth_bps / self.bandwidth_divisor,
        }
    }
}

/// A precise transient-drop rule: lose the `nth` (0-based) message sent
/// on the directed pair `src → dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct DropNth {
    src: usize,
    dst: usize,
    nth: u64,
}

/// A seeded probabilistic drop rule on a directed pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct DropProb {
    src: usize,
    dst: usize,
    prob: f64,
}

/// A deterministic, virtual-time script of failures (see the module docs
/// for the failure classes and the determinism contract).
///
/// Build one with the fluent methods and hand it to the runtime:
///
/// ```
/// use tsqr_netsim::{FailureSchedule, VirtualTime};
///
/// let sched = FailureSchedule::new(42)
///     .crash_rank(3, VirtualTime::from_millis(5.0))
///     .drop_nth_message(0, 1, 0); // lose the first message 0 → 1
/// assert_eq!(sched.crash_time(3), Some(VirtualTime::from_millis(5.0)));
/// assert!(sched.should_drop(0, 1, 0));
/// assert!(!sched.should_drop(0, 1, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureSchedule {
    /// Seed for the probabilistic drop coin flips.
    seed: u64,
    /// `(rank, crash time)` pairs; a rank appears at most once.
    crashes: Vec<(usize, VirtualTime)>,
    /// `(site, crash time)` pairs for whole-cluster failures; a site
    /// appears at most once. The serving layer's failure unit.
    site_crashes: Vec<(usize, VirtualTime)>,
    /// Directed links that are down for the whole run.
    downed_links: Vec<(usize, usize)>,
    /// Precise drop rules.
    drop_nth: Vec<DropNth>,
    /// Probabilistic drop rules.
    drop_prob: Vec<DropProb>,
    /// Degradation windows.
    degradations: Vec<Degradation>,
}

impl Default for FailureSchedule {
    fn default() -> Self {
        FailureSchedule::new(0)
    }
}

impl FailureSchedule {
    /// An empty schedule with the given drop-coin seed.
    pub fn new(seed: u64) -> Self {
        FailureSchedule {
            seed,
            crashes: Vec::new(),
            site_crashes: Vec::new(),
            downed_links: Vec::new(),
            drop_nth: Vec::new(),
            drop_prob: Vec::new(),
            degradations: Vec::new(),
        }
    }

    /// True when the schedule contains no failure of any kind.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.site_crashes.is_empty()
            && self.downed_links.is_empty()
            && self.drop_nth.is_empty()
            && self.drop_prob.is_empty()
            && self.degradations.is_empty()
    }

    /// The seed used by the probabilistic drop rules.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    // ---- builders ------------------------------------------------------

    /// Schedules rank `rank` to crash at virtual time `at`. A crashed
    /// rank fails every operation it attempts at or after `at`, and
    /// peers observe the crash through the failure detector.
    ///
    /// # Panics
    /// Panics if the rank already has a crash scheduled.
    pub fn crash_rank(mut self, rank: usize, at: VirtualTime) -> Self {
        assert!(
            self.crashes.iter().all(|&(r, _)| r != rank),
            "rank {rank} already has a crash scheduled"
        );
        self.crashes.push((rank, at));
        self
    }

    /// Schedules catalog cluster `site` to disappear entirely at virtual
    /// time `at` — the grid-level failure unit (a whole QCG site drops
    /// off the grid, taking every node it hosts with it). Consumed by
    /// the serving engine: leases on the dead site are killed, its slots
    /// are written off, and it never hosts another allocation. Rank-level
    /// crashes ([`FailureSchedule::crash_rank`]) are a separate,
    /// unaffected axis used by the `gridmpi` runtime.
    ///
    /// # Panics
    /// Panics if the site already has a crash scheduled.
    pub fn crash_site(mut self, site: usize, at: VirtualTime) -> Self {
        assert!(
            self.site_crashes.iter().all(|&(s, _)| s != site),
            "site {site} already has a crash scheduled"
        );
        self.site_crashes.push((site, at));
        self
    }

    /// Marks the directed link `src → dst` as permanently down.
    pub fn fail_link(mut self, src: usize, dst: usize) -> Self {
        if !self.downed_links.contains(&(src, dst)) {
            self.downed_links.push((src, dst));
        }
        self
    }

    /// Drops the `nth` (0-based) message sent on the directed pair
    /// `src → dst`.
    pub fn drop_nth_message(mut self, src: usize, dst: usize, nth: u64) -> Self {
        self.drop_nth.push(DropNth { src, dst, nth });
        self
    }

    /// Drops each message on the directed pair `src → dst` independently
    /// with probability `prob`, using a deterministic per-message coin
    /// seeded by the schedule seed.
    ///
    /// # Panics
    /// Panics unless `0 ≤ prob ≤ 1`.
    pub fn drop_probability(mut self, src: usize, dst: usize, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0, 1]");
        self.drop_prob.push(DropProb { src, dst, prob });
        self
    }

    /// Degrades one link class in a virtual-time window: latency ×
    /// `latency_factor`, bandwidth ÷ `bandwidth_divisor` while
    /// `from ≤ t < until`.
    ///
    /// # Panics
    /// Panics unless both factors are ≥ 1 and the window is non-empty.
    pub fn degrade_link(
        mut self,
        class: LinkClass,
        from: VirtualTime,
        until: VirtualTime,
        latency_factor: f64,
        bandwidth_divisor: f64,
    ) -> Self {
        assert!(latency_factor >= 1.0, "latency factor must be ≥ 1");
        assert!(bandwidth_divisor >= 1.0, "bandwidth divisor must be ≥ 1");
        assert!(from < until, "degradation window must be non-empty");
        self.degradations.push(Degradation {
            class,
            from,
            until,
            latency_factor,
            bandwidth_divisor,
        });
        self
    }

    /// Degrades **every** wide-area (inter-cluster) link for the window —
    /// the "storm over the backbone" scenario.
    ///
    /// # Panics
    /// Same contract as [`FailureSchedule::degrade_link`].
    pub fn degrade_all_wan(
        self,
        from: VirtualTime,
        until: VirtualTime,
        latency_factor: f64,
        bandwidth_divisor: f64,
    ) -> Self {
        // `InterCluster(usize::MAX, _)` is the private wildcard marker
        // matched in `Degradation::applies`.
        self.degrade_link(
            LinkClass::InterCluster(usize::MAX, usize::MAX),
            from,
            until,
            latency_factor,
            bandwidth_divisor,
        )
    }

    // ---- queries -------------------------------------------------------

    /// The virtual time at which `rank` crashes, if scheduled.
    pub fn crash_time(&self, rank: usize) -> Option<VirtualTime> {
        self.crashes.iter().find(|&&(r, _)| r == rank).map(|&(_, t)| t)
    }

    /// All scheduled crashes as `(rank, time)` pairs, in insertion order.
    pub fn crashes(&self) -> &[(usize, VirtualTime)] {
        &self.crashes
    }

    /// The virtual time at which `site` (a whole cluster) crashes, if
    /// scheduled.
    pub fn site_crash_time(&self, site: usize) -> Option<VirtualTime> {
        self.site_crashes.iter().find(|&&(s, _)| s == site).map(|&(_, t)| t)
    }

    /// All scheduled site crashes as `(site, time)` pairs, in insertion
    /// order.
    pub fn site_crashes(&self) -> &[(usize, VirtualTime)] {
        &self.site_crashes
    }

    /// True when `site` has crashed at or before `t`.
    pub fn site_down(&self, site: usize, t: VirtualTime) -> bool {
        self.site_crash_time(site).is_some_and(|at| at <= t)
    }

    /// The bandwidth divisor in effect on the WAN site pair `(a, b)` at
    /// virtual time `t`: the product of every active degradation window
    /// matching the pair (wildcard windows from
    /// [`FailureSchedule::degrade_all_wan`] included), `1.0` when none.
    /// Fluid-model integrators divide a flow's drain rate by it.
    pub fn wan_divisor(&self, a: usize, b: usize, t: VirtualTime) -> f64 {
        let class = LinkClass::InterCluster(a.min(b), a.max(b));
        let mut div = 1.0;
        for d in &self.degradations {
            if d.applies(class, t) {
                div *= d.bandwidth_divisor;
            }
        }
        div
    }

    /// Every instant the schedule changes state — site-crash times and
    /// degradation-window edges — sorted ascending, deduplicated.
    /// Piecewise-constant event loops add these to their candidate event
    /// set so rates stay constant within each advanced segment.
    pub fn event_times(&self) -> Vec<VirtualTime> {
        let mut times: Vec<VirtualTime> =
            self.site_crashes.iter().map(|&(_, at)| at).collect();
        for d in &self.degradations {
            times.push(d.from);
            times.push(d.until);
        }
        times.sort_by(|x, y| x.secs().total_cmp(&y.secs()));
        times.dedup();
        times
    }

    /// True when the directed link `src → dst` is permanently down.
    pub fn link_down(&self, src: usize, dst: usize) -> bool {
        self.downed_links.contains(&(src, dst))
    }

    /// True when the `nth` (0-based) message on `src → dst` must be
    /// dropped — by a precise rule or by the seeded coin.
    pub fn should_drop(&self, src: usize, dst: usize, nth: u64) -> bool {
        if self.drop_nth.iter().any(|d| d.src == src && d.dst == dst && d.nth == nth) {
            return true;
        }
        self.drop_prob.iter().any(|d| {
            d.src == src && d.dst == dst && {
                let h = crate::rng::hash64(
                    self.seed
                        ^ crate::rng::hash64((src as u64) << 40 ^ (dst as u64) << 20 ^ nth),
                );
                crate::rng::unit_f64(h) < d.prob
            }
        })
    }

    /// True when any transient-drop rule targets the pair `src → dst`
    /// (used to decide whether retry logic is worth arming).
    pub fn has_drop_rules(&self, src: usize, dst: usize) -> bool {
        self.drop_nth.iter().any(|d| d.src == src && d.dst == dst)
            || self.drop_prob.iter().any(|d| d.src == src && d.dst == dst)
    }

    /// True when the schedule carries *any* transient-drop rule at all —
    /// consumers that pay per-message bookkeeping (e.g. the serve
    /// engine's per-link drain counters) skip it entirely otherwise.
    pub fn any_drop_rules(&self) -> bool {
        !self.drop_nth.is_empty() || !self.drop_prob.is_empty()
    }

    /// The link parameters in effect for a link of class `class` with
    /// base parameters `base` at virtual time `t`. With no active window
    /// this returns `base` unchanged (bit-identical).
    pub fn effective_params(
        &self,
        base: LinkParams,
        class: LinkClass,
        t: VirtualTime,
    ) -> LinkParams {
        let mut p = base;
        for d in &self.degradations {
            if d.applies(class, t) {
                p = d.apply(p);
            }
        }
        p
    }

    /// True when any degradation window is active for `class` at `t`.
    pub fn is_degraded(&self, class: LinkClass, t: VirtualTime) -> bool {
        self.degradations.iter().any(|d| d.applies(class, t))
    }

    /// The degradation windows of the schedule, in insertion order.
    pub fn degradations(&self) -> &[Degradation] {
        &self.degradations
    }
}

impl CostModel {
    /// Eq. (1) message time from `a` to `b` at virtual time `t` under a
    /// failure schedule: the link's base parameters are first passed
    /// through any active degradation window, then priced exactly like
    /// [`CostModel::message_time`] (including the WAN congestion
    /// surcharge on inter-cluster links).
    ///
    /// With an empty schedule this is **bit-identical** to
    /// [`CostModel::message_time`].
    pub fn message_time_under(
        &self,
        a: ProcLocation,
        b: ProcLocation,
        bytes: u64,
        t: VirtualTime,
        schedule: &FailureSchedule,
    ) -> VirtualTime {
        let class = LinkClass::between(a, b);
        let params = schedule.effective_params(self.link(a, b), class, t);
        let base = params.transfer_time(bytes);
        if class.is_inter_cluster() {
            base + VirtualTime::from_secs(self.wan_overhead_s)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ProcLocation;

    fn loc(cluster: usize) -> ProcLocation {
        ProcLocation { cluster, node: 0, slot: 0 }
    }

    #[test]
    fn empty_schedule_answers_no_to_everything() {
        let s = FailureSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.crash_time(0), None);
        assert!(!s.link_down(0, 1));
        assert!(!s.should_drop(0, 1, 0));
        let base = LinkParams::from_ms_mbps(8.0, 100.0);
        let p = s.effective_params(base, LinkClass::InterCluster(0, 1), VirtualTime::ZERO);
        assert_eq!(p, base);
    }

    #[test]
    fn crash_times_are_per_rank() {
        let s = FailureSchedule::new(1)
            .crash_rank(2, VirtualTime::from_secs(1.0))
            .crash_rank(5, VirtualTime::from_secs(2.0));
        assert_eq!(s.crash_time(2), Some(VirtualTime::from_secs(1.0)));
        assert_eq!(s.crash_time(5), Some(VirtualTime::from_secs(2.0)));
        assert_eq!(s.crash_time(0), None);
        assert_eq!(s.crashes().len(), 2);
    }

    #[test]
    #[should_panic(expected = "already has a crash")]
    fn double_crash_rejected() {
        let _ = FailureSchedule::new(0)
            .crash_rank(1, VirtualTime::ZERO)
            .crash_rank(1, VirtualTime::from_secs(1.0));
    }

    #[test]
    fn site_crashes_are_per_site_and_time_ordered_queries_work() {
        let s = FailureSchedule::new(0)
            .crash_site(1, VirtualTime::from_secs(0.5))
            .crash_site(3, VirtualTime::from_secs(0.1));
        assert_eq!(s.site_crash_time(1), Some(VirtualTime::from_secs(0.5)));
        assert_eq!(s.site_crash_time(0), None);
        assert!(!s.site_down(1, VirtualTime::from_secs(0.4)));
        assert!(s.site_down(1, VirtualTime::from_secs(0.5)), "crash instant is inclusive");
        assert!(s.site_down(3, VirtualTime::from_secs(0.2)));
        assert!(!s.is_empty());
        // Rank crashes are a separate axis.
        assert_eq!(s.crash_time(1), None);
    }

    #[test]
    #[should_panic(expected = "already has a crash")]
    fn double_site_crash_rejected() {
        let _ = FailureSchedule::new(0)
            .crash_site(2, VirtualTime::ZERO)
            .crash_site(2, VirtualTime::from_secs(1.0));
    }

    #[test]
    fn wan_divisor_stacks_windows_and_respects_pairs() {
        let s = FailureSchedule::new(0)
            .degrade_all_wan(VirtualTime::ZERO, VirtualTime::from_secs(2.0), 1.0, 4.0)
            .degrade_link(
                LinkClass::InterCluster(0, 1),
                VirtualTime::from_secs(1.0),
                VirtualTime::from_secs(2.0),
                1.0,
                2.0,
            );
        // Only the wildcard applies before 1.0 s.
        assert_eq!(s.wan_divisor(0, 1, VirtualTime::from_secs(0.5)), 4.0);
        // Both windows stack multiplicatively inside [1, 2).
        assert_eq!(s.wan_divisor(1, 0, VirtualTime::from_secs(1.5)), 8.0, "pair order canonical");
        // The specific window misses other pairs.
        assert_eq!(s.wan_divisor(2, 3, VirtualTime::from_secs(1.5)), 4.0);
        // After every window: unit divisor.
        assert_eq!(s.wan_divisor(0, 1, VirtualTime::from_secs(2.0)), 1.0);
        // Empty schedule: exactly 1.0 everywhere.
        assert_eq!(FailureSchedule::default().wan_divisor(0, 1, VirtualTime::ZERO), 1.0);
    }

    #[test]
    fn event_times_are_sorted_and_deduplicated() {
        let s = FailureSchedule::new(0)
            .crash_site(2, VirtualTime::from_secs(1.0))
            .degrade_all_wan(VirtualTime::from_secs(0.5), VirtualTime::from_secs(1.0), 2.0, 2.0);
        let times = s.event_times();
        assert_eq!(
            times,
            vec![VirtualTime::from_secs(0.5), VirtualTime::from_secs(1.0)],
            "window end and crash coincide → one boundary"
        );
        assert!(FailureSchedule::default().event_times().is_empty());
    }

    #[test]
    fn link_failures_are_directed() {
        let s = FailureSchedule::new(0).fail_link(3, 4);
        assert!(s.link_down(3, 4));
        assert!(!s.link_down(4, 3));
    }

    #[test]
    fn nth_drop_is_precise() {
        let s = FailureSchedule::new(0).drop_nth_message(1, 2, 3);
        assert!(!s.should_drop(1, 2, 2));
        assert!(s.should_drop(1, 2, 3));
        assert!(!s.should_drop(1, 2, 4));
        assert!(!s.should_drop(2, 1, 3));
        assert!(s.has_drop_rules(1, 2));
        assert!(!s.has_drop_rules(2, 1));
    }

    #[test]
    fn probabilistic_drops_are_seeded_and_reproducible() {
        let a = FailureSchedule::new(7).drop_probability(0, 1, 0.5);
        let b = FailureSchedule::new(7).drop_probability(0, 1, 0.5);
        let c = FailureSchedule::new(8).drop_probability(0, 1, 0.5);
        let seq_a: Vec<bool> = (0..64).map(|n| a.should_drop(0, 1, n)).collect();
        let seq_b: Vec<bool> = (0..64).map(|n| b.should_drop(0, 1, n)).collect();
        let seq_c: Vec<bool> = (0..64).map(|n| c.should_drop(0, 1, n)).collect();
        assert_eq!(seq_a, seq_b, "same seed → same drops");
        assert_ne!(seq_a, seq_c, "different seed → different drops");
        let hits = seq_a.iter().filter(|&&d| d).count();
        assert!(hits > 8 && hits < 56, "p=0.5 over 64 flips should be near half, got {hits}");
    }

    #[test]
    fn probability_extremes() {
        let never = FailureSchedule::new(0).drop_probability(0, 1, 0.0);
        let always = FailureSchedule::new(0).drop_probability(0, 1, 1.0);
        assert!((0..32).all(|n| !never.should_drop(0, 1, n)));
        assert!((0..32).all(|n| always.should_drop(0, 1, n)));
    }

    #[test]
    fn degradation_window_scales_latency_and_bandwidth() {
        let base = LinkParams::from_ms_mbps(8.0, 100.0);
        let s = FailureSchedule::new(0).degrade_link(
            LinkClass::InterCluster(0, 1),
            VirtualTime::from_secs(1.0),
            VirtualTime::from_secs(2.0),
            3.0,
            4.0,
        );
        let wan = LinkClass::InterCluster(0, 1);
        // Before / after the window: untouched.
        assert_eq!(s.effective_params(base, wan, VirtualTime::from_secs(0.5)), base);
        assert_eq!(s.effective_params(base, wan, VirtualTime::from_secs(2.0)), base);
        // Inside: scaled.
        let p = s.effective_params(base, wan, VirtualTime::from_secs(1.5));
        assert!((p.latency_s - base.latency_s * 3.0).abs() < 1e-15);
        assert!((p.bandwidth_bps - base.bandwidth_bps / 4.0).abs() < 1e-6);
        // Other classes and other site pairs: untouched.
        assert_eq!(
            s.effective_params(base, LinkClass::IntraCluster, VirtualTime::from_secs(1.5)),
            base
        );
        assert_eq!(
            s.effective_params(base, LinkClass::InterCluster(0, 2), VirtualTime::from_secs(1.5)),
            base
        );
        assert!(s.is_degraded(wan, VirtualTime::from_secs(1.5)));
        assert!(!s.is_degraded(wan, VirtualTime::from_secs(0.5)));
    }

    #[test]
    fn wan_wildcard_hits_every_site_pair_but_not_local_links() {
        let base = LinkParams::from_ms_mbps(8.0, 100.0);
        let s = FailureSchedule::new(0).degrade_all_wan(
            VirtualTime::ZERO,
            VirtualTime::from_secs(10.0),
            2.0,
            2.0,
        );
        for (a, b) in [(0, 1), (0, 3), (2, 3)] {
            let p = s.effective_params(base, LinkClass::InterCluster(a, b), VirtualTime::ZERO);
            assert!((p.latency_s - base.latency_s * 2.0).abs() < 1e-15);
        }
        assert_eq!(s.effective_params(base, LinkClass::IntraNode, VirtualTime::ZERO), base);
        assert_eq!(s.effective_params(base, LinkClass::IntraCluster, VirtualTime::ZERO), base);
    }

    #[test]
    fn message_time_under_matches_plain_pricing_when_idle() {
        let m = CostModel::homogeneous(LinkParams::from_ms_mbps(1.0, 100.0), 1e9, 2)
            .with_wan_overhead(5e-3);
        let s = FailureSchedule::default();
        for bytes in [0u64, 1, 1024, 1 << 20] {
            let plain = m.message_time(loc(0), loc(1), bytes);
            let under = m.message_time_under(loc(0), loc(1), bytes, VirtualTime::ZERO, &s);
            assert_eq!(plain.secs().to_bits(), under.secs().to_bits(), "bit-identical pricing");
        }
    }

    #[test]
    fn message_time_under_applies_degradation_and_keeps_wan_overhead() {
        let m = CostModel::homogeneous(LinkParams::from_ms_mbps(1.0, 100.0), 1e9, 2)
            .with_wan_overhead(5e-3);
        let s = FailureSchedule::new(0).degrade_all_wan(
            VirtualTime::ZERO,
            VirtualTime::from_secs(1.0),
            2.0,
            1.0,
        );
        let t = m.message_time_under(loc(0), loc(1), 0, VirtualTime::ZERO, &s);
        // 2 × 1 ms latency + 5 ms overhead.
        assert!((t.secs() - 7e-3).abs() < 1e-12);
        // Outside the window: plain price again.
        let t2 = m.message_time_under(loc(0), loc(1), 0, VirtualTime::from_secs(2.0), &s);
        assert!((t2.secs() - 6e-3).abs() < 1e-12);
    }
}
