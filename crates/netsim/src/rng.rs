//! The workspace's one deterministic PRNG: SplitMix64.
//!
//! Four subsystems used to carry private copies of the same three-line
//! mixer — the failure injector's drop coins (`fault`), the workload
//! matrix hash (`tsqr-core::workload`), the seeded delivery-order
//! permuter (`tsqr-gridmpi`), and the topology shuffler
//! ([`crate::topology::GridTopology::shuffled`]). This module is the
//! single implementation they all share, and the one the serving layer
//! (`tsqr-serve`) draws its Poisson-like arrival process from. `rand`
//! is an inert offline stub in this workspace, so owning the generator
//! is not an optimization but the only option.
//!
//! Everything here is a pure function of its arguments: no wall clock,
//! no global state, no thread-locals — the commlint determinism rules
//! apply to this module like any other. Two forms are exposed:
//!
//! * [`mix64`] / [`hash64`] — stateless finalizer and one-shot hash,
//!   for coin flips keyed by coordinates (seed ^ src ^ dst ^ nth …);
//! * [`SplitMix64`] — the sequential stream (state += golden gamma,
//!   output = finalizer(state)), for generators that draw many values.
//!
//! The constants are Sebastiano Vigna's reference SplitMix64; the
//! `[0, 1)` mapping keeps the historical 53-bit convention used by the
//! failure injector, so extracting this module changed no blessed
//! baseline bit.

/// The golden-gamma increment of the SplitMix64 stream.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer: a fixed-point-free bijection on `u64` with
/// good avalanche behavior. This is the mixing step alone — callers
/// hashing a key usually want [`hash64`], which first offsets the key by
/// [`GOLDEN_GAMMA`] exactly like one step of the stream.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One-shot hash of a key: `mix64(key + GOLDEN_GAMMA)` — the value a
/// [`SplitMix64`] seeded with `key` would emit first. Use this for
/// stateless per-coordinate coins (drop decisions, matrix entries).
#[inline]
pub fn hash64(key: u64) -> u64 {
    mix64(key.wrapping_add(GOLDEN_GAMMA))
}

/// Maps 64 hash bits to `[0, 1)` with the full 53 bits of an `f64`
/// mantissa — the convention every seeded coin in the workspace uses.
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0) // 2^-53
}

/// The sequential SplitMix64 generator: `state += GOLDEN_GAMMA`, output
/// `mix64(state)`. Deterministic, `Copy`-cheap, and splittable by
/// construction (seed a child with any output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded at `seed`; the first output is [`hash64`]`(seed)`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Uniform draw from `[0, 1)` (53-bit precision).
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        unit_f64(self.next_u64())
    }

    /// Uniform draw from `0..n`. The modulo bias is below 2⁻⁵³ for every
    /// `n` this workspace uses (menus, tenant counts — tiny versus 2⁶⁴).
    ///
    /// # Panics
    /// Panics when `n == 0`.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }

    /// Exponentially distributed draw with the given mean — the
    /// inter-arrival time of a Poisson process. Uses the inverse CDF on
    /// a `[0, 1)` uniform, so it is exactly reproducible from the seed.
    ///
    /// # Panics
    /// Panics unless `mean` is finite and positive.
    #[inline]
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "exponential mean must be positive");
        // 1 - u ∈ (0, 1], so ln never sees zero.
        -mean * (1.0 - self.next_unit()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_matches_one_stream_step() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut s = SplitMix64::new(seed);
            assert_eq!(s.next_u64(), hash64(seed));
        }
    }

    #[test]
    fn streams_are_reproducible_and_seed_sensitive() {
        let a: Vec<u64> = (0..8).scan(SplitMix64::new(7), |s, _| Some(s.next_u64())).collect();
        let b: Vec<u64> = (0..8).scan(SplitMix64::new(7), |s, _| Some(s.next_u64())).collect();
        let c: Vec<u64> = (0..8).scan(SplitMix64::new(8), |s, _| Some(s.next_u64())).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_draws_stay_in_range_and_spread() {
        let mut s = SplitMix64::new(3);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..4096 {
            let u = s.next_unit();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "uniform draws should cover [0, 1): {lo}..{hi}");
    }

    #[test]
    fn exponential_has_the_requested_mean() {
        let mut s = SplitMix64::new(11);
        let n = 1 << 14;
        let sum: f64 = (0..n).map(|_| s.next_exp(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.1, "sample mean {mean} should be near 2.5");
    }

    #[test]
    fn next_below_is_bounded() {
        let mut s = SplitMix64::new(5);
        for _ in 0..256 {
            assert!(s.next_below(7) < 7);
        }
    }

    #[test]
    fn reference_vector() {
        // SplitMix64 reference sequence for seed 1234567 (Vigna's
        // constants); guards against silent drift in the shared mixer.
        let mut s = SplitMix64::new(1234567);
        assert_eq!(s.next_u64(), 0x599e_d017_fb08_fc85);
        assert_eq!(s.next_u64(), 0x2c73_f084_5854_0fa5);
        assert_eq!(s.next_u64(), 0x883e_bce5_a3f2_7c77);
    }
}
