//! An internet-scale desktop-grid preset — the environment the paper's
//! §II-E leaves as future work ("porting the work to a general desktop
//! grid") and §II-D sizes ("the difference can reach three or four orders
//! of magnitude on an international, shared network such as the
//! Internet").
//!
//! The model: volunteer hosts grouped into geographic regions (the
//! "cluster-like setups" of Superlink@Technion / the Lattice project /
//! EdGES / the Condor pool that §II-E says contribute most of the power).
//! Consumer-broadband links inside a region, intercontinental shared
//! internet between regions:
//!
//! | link | latency | throughput |
//! |---|---|---|
//! | same host (procs) | 20 µs | 5 Gb/s |
//! | intra-region | 25 ms | 50 Mb/s |
//! | inter-region | 150 ms | 8 Mb/s |
//!
//! Inter-region latency is ~2,000× the Grid'5000 intra-cluster latency —
//! the "three or four orders of magnitude" regime, where ScaLAPACK's
//! per-column reductions are hopeless and the tuned-tree argument is at
//! its strongest (see `cargo run -p tsqr-bench --bin desktop_grid`).

use crate::cost::{CostModel, LinkParams};
use crate::topology::{ClusterSpec, GridTopology};

/// Hosts booked per region in the preset experiments.
pub const HOSTS_PER_REGION: usize = 32;

/// Sustained per-host rate: a volunteer desktop core, ≈ 1 Gflop/s.
pub const HOST_GFLOPS: f64 = 1.0;

/// Region descriptions (names are illustrative).
pub fn regions(count: usize) -> Vec<ClusterSpec> {
    let names = ["europe", "north-america", "asia", "south-america", "oceania"];
    assert!(count >= 1 && count <= names.len(), "1..=5 regions supported");
    names
        .iter()
        .take(count)
        .map(|&name| ClusterSpec {
            name: name.to_string(),
            nodes: 1024, // plenty of volunteers
            procs_per_node: 1,
            peak_gflops_per_proc: HOST_GFLOPS,
        })
        .collect()
}

/// The desktop-grid cost model (see module docs for the constants).
pub fn cost_model(region_count: usize) -> CostModel {
    let inter = LinkParams::from_ms_mbps(150.0, 8.0);
    CostModel {
        intra_node: LinkParams::from_ms_mbps(0.02, 5000.0),
        intra_cluster: LinkParams::from_ms_mbps(25.0, 50.0),
        inter_cluster: vec![vec![inter; region_count]; region_count],
        flops_per_proc: HOST_GFLOPS * 1e9,
        wan_overhead_s: 0.0,
    }
}

/// A placed desktop grid: `region_count` regions × [`HOSTS_PER_REGION`]
/// single-core volunteer hosts.
pub fn topology(region_count: usize) -> GridTopology {
    GridTopology::block_placement(regions(region_count), HOSTS_PER_REGION, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::ProcLocation;

    #[test]
    fn preset_sizes() {
        assert_eq!(topology(1).num_procs(), 32);
        assert_eq!(topology(4).num_procs(), 128);
        assert_eq!(regions(5).len(), 5);
    }

    #[test]
    fn latency_regime_is_three_orders_beyond_grid5000() {
        // §II-D: inter-region latency vs Grid'5000's 0.07 ms intra-cluster.
        let m = cost_model(2);
        let a = ProcLocation { cluster: 0, node: 0, slot: 0 };
        let b = ProcLocation { cluster: 1, node: 0, slot: 0 };
        let wan = m.message_time(a, b, 0).secs();
        assert!(wan / 0.07e-3 > 1000.0, "ratio {}", wan / 0.07e-3);
    }

    #[test]
    fn hierarchy_holds() {
        let m = cost_model(3);
        let host = ProcLocation { cluster: 0, node: 0, slot: 0 };
        let neighbor = ProcLocation { cluster: 0, node: 5, slot: 0 };
        let far = ProcLocation { cluster: 2, node: 5, slot: 0 };
        let bytes = 1 << 20;
        assert!(m.message_time(host, neighbor, bytes) < m.message_time(host, far, bytes));
    }

    #[test]
    #[should_panic(expected = "regions supported")]
    fn too_many_regions_panics() {
        let _ = regions(9);
    }
}
