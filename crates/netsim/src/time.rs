//! Virtual time for the deterministic grid simulation.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point (or span) of simulated time, in seconds.
///
/// Wraps an `f64` with a total order (`total_cmp`) so clocks can be
/// compared and maxed; simulated message-passing programs never read the
/// wall clock, so runs are bit-reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VirtualTime(pub f64);

impl VirtualTime {
    /// Time zero.
    pub const ZERO: VirtualTime = VirtualTime(0.0);

    /// Constructs from seconds.
    pub fn from_secs(s: f64) -> Self {
        debug_assert!(s.is_finite(), "virtual time must be finite");
        VirtualTime(s)
    }

    /// Constructs from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Constructs from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// The value in seconds.
    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: VirtualTime) -> VirtualTime {
        if self.0.total_cmp(&other.0).is_ge() {
            self
        } else {
            other
        }
    }
}

impl Eq for VirtualTime {}

impl PartialOrd for VirtualTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VirtualTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign for VirtualTime {
    fn add_assign(&mut self, rhs: VirtualTime) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtualTime {
    type Output = VirtualTime;
    fn sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 - rhs.0)
    }
}

impl Sum for VirtualTime {
    fn sum<I: Iterator<Item = VirtualTime>>(iter: I) -> VirtualTime {
        VirtualTime(iter.map(|t| t.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(VirtualTime::from_millis(1.0).secs(), 1e-3);
        assert_eq!(VirtualTime::from_micros(17.0).secs(), 17e-6);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = VirtualTime::from_secs(1.0);
        let b = VirtualTime::from_secs(2.5);
        assert_eq!((a + b).secs(), 3.5);
        assert_eq!((b - a).secs(), 1.5);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        let mut c = a;
        c += b;
        assert_eq!(c.secs(), 3.5);
    }

    #[test]
    fn sum_of_spans() {
        let total: VirtualTime =
            [1.0, 2.0, 3.0].iter().map(|&s| VirtualTime::from_secs(s)).sum();
        assert_eq!(total.secs(), 6.0);
    }

    #[test]
    fn max_handles_equal_values() {
        let a = VirtualTime::from_secs(1.0);
        assert_eq!(a.max(a), a);
    }
}
