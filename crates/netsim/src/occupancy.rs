//! Per-link-class occupancy accounting: wire-busy intervals, utilization
//! timelines, and a rank×rank communication matrix.
//!
//! The simulation already *prices* every message (see [`crate::cost`]);
//! this module answers the follow-up question — **how busy was each class
//! of link, when, and between whom?** The types here are plain
//! accumulators with no notion of ranks' programs: the `tsqr-gridmpi`
//! diagnostics layer feeds them from a trace (each send event is one
//! busy interval on its link class) and renders the result, so the same
//! structures serve any future event source (e.g. a packet-level
//! simulator).
//!
//! Three views:
//!
//! * [`LinkUsage`] — per-class totals: messages, bytes, and busy
//!   (wire-occupancy) seconds, plus the utilization fraction over a
//!   horizon.
//! * [`UtilizationTimeline`] — the same busy seconds, bucketed into a
//!   fixed number of time bins, so you can *see* the paper's Fig. 1/2
//!   story: a long silent leaf phase, then a burst of cluster traffic,
//!   then one WAN message.
//! * [`CommMatrix`] — who sent how much to whom (messages and bytes per
//!   ordered rank pair).
//!
//! All three are deterministic and mergeable; the rendered forms are
//! documented in `docs/observability.md` §8.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::cost::LinkClass;

/// Number of coarse link-class buckets (mirrors [`LinkClass::N_BUCKETS`]).
const B: usize = LinkClass::N_BUCKETS;

/// Aggregate per-link-class usage: message/byte counts and busy seconds.
///
/// "Busy" sums the wire-occupancy spans of individual messages; because a
/// class aggregates many physical links that can be active concurrently,
/// the utilization of a class over a horizon can exceed 1.0 — that is
/// parallelism, not an error.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkUsage {
    msgs: [u64; B],
    bytes: [u64; B],
    busy_s: [f64; B],
}

impl LinkUsage {
    /// Records one message of `bytes` occupying a `bucket`-class link for
    /// `start_s..end_s` seconds.
    pub fn record(&mut self, bucket: usize, bytes: u64, start_s: f64, end_s: f64) {
        assert!(bucket < B, "link-class bucket out of range: {bucket}");
        self.msgs[bucket] += 1;
        self.bytes[bucket] += bytes;
        self.busy_s[bucket] += (end_s - start_s).max(0.0);
    }

    /// Messages recorded on one class bucket.
    pub fn msgs(&self, bucket: usize) -> u64 {
        self.msgs[bucket]
    }

    /// Bytes recorded on one class bucket.
    pub fn bytes(&self, bucket: usize) -> u64 {
        self.bytes[bucket]
    }

    /// Busy (wire-occupancy) seconds of one class bucket.
    pub fn busy_s(&self, bucket: usize) -> f64 {
        self.busy_s[bucket]
    }

    /// Messages across all classes.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Messages on wide-area links (the last bucket).
    pub fn wan_msgs(&self) -> u64 {
        self.msgs[B - 1]
    }

    /// Busy seconds of a class divided by `horizon_s` (0.0 on an empty
    /// horizon). Can exceed 1.0 when several links of the class were
    /// active concurrently.
    pub fn utilization(&self, bucket: usize, horizon_s: f64) -> f64 {
        if horizon_s <= 0.0 {
            0.0
        } else {
            self.busy_s[bucket] / horizon_s
        }
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &LinkUsage) {
        for i in 0..B {
            self.msgs[i] += other.msgs[i];
            self.bytes[i] += other.bytes[i];
            self.busy_s[i] += other.busy_s[i];
        }
    }

    /// One row per class: `class  msgs  bytes  busy s  util`.
    pub fn render(&self, horizon_s: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>14} {:>12} {:>8}",
            "class", "msgs", "bytes", "busy s", "util"
        );
        for b in 0..B {
            let _ = writeln!(
                out,
                "{:<8} {:>10} {:>14} {:>12.6} {:>8.3}",
                LinkClass::bucket_label(b),
                self.msgs[b],
                self.bytes[b],
                self.busy_s[b],
                self.utilization(b, horizon_s),
            );
        }
        out
    }
}

/// Per-class busy seconds bucketed into fixed time bins over
/// `[0, horizon]` — a poor man's bandwidth chart.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationTimeline {
    horizon_s: f64,
    /// `bins[class][bin]` = busy seconds of that class inside the bin.
    bins: Vec<[f64; B]>,
}

impl UtilizationTimeline {
    /// An empty timeline over `[0, horizon_s]` with `bins` equal bins.
    pub fn new(horizon_s: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(horizon_s >= 0.0, "horizon must be non-negative");
        UtilizationTimeline { horizon_s, bins: vec![[0.0; B]; bins] }
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// The horizon the bins cover.
    pub fn horizon_s(&self) -> f64 {
        self.horizon_s
    }

    /// Width of one bin in seconds.
    pub fn bin_width_s(&self) -> f64 {
        self.horizon_s / self.bins.len() as f64
    }

    /// Records a busy interval `start_s..end_s` on class `bucket`,
    /// splitting it across the bins it overlaps. Portions outside the
    /// horizon are clamped away.
    pub fn record(&mut self, bucket: usize, start_s: f64, end_s: f64) {
        assert!(bucket < B, "link-class bucket out of range: {bucket}");
        if self.horizon_s <= 0.0 || end_s <= start_s {
            return;
        }
        let w = self.bin_width_s();
        let lo = (start_s.max(0.0) / w).floor() as usize;
        let hi = ((end_s.min(self.horizon_s) / w).ceil() as usize).min(self.bins.len());
        for bin in lo..hi {
            let bin_start = bin as f64 * w;
            let bin_end = bin_start + w;
            let overlap = end_s.min(bin_end) - start_s.max(bin_start);
            if overlap > 0.0 {
                self.bins[bin][bucket] += overlap;
            }
        }
    }

    /// Busy seconds of class `bucket` inside `bin`.
    pub fn busy_s(&self, bucket: usize, bin: usize) -> f64 {
        self.bins[bin][bucket]
    }

    /// Busy fraction of class `bucket` inside `bin` (busy seconds over
    /// bin width; can exceed 1.0 when links of the class run in
    /// parallel).
    pub fn fraction(&self, bucket: usize, bin: usize) -> f64 {
        let w = self.bin_width_s();
        if w <= 0.0 {
            0.0
        } else {
            self.bins[bin][bucket] / w
        }
    }

    /// One sparkline-style row per class; each bin renders as a digit-ish
    /// glyph scaled by its busy fraction (`.` idle, `9`/`#` saturated or
    /// oversubscribed).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bins: {} x {:.6} s (glyph = busy fraction, '#' >= 1.0 i.e. links active in parallel)",
            self.num_bins(),
            self.bin_width_s()
        );
        for b in 0..B {
            let mut row = String::new();
            for bin in 0..self.num_bins() {
                let f = self.fraction(b, bin);
                row.push(if f <= 0.0 {
                    '.'
                } else if f >= 1.0 {
                    '#'
                } else {
                    // 0 < f < 1 → '1'..='9'.
                    char::from_digit(((f * 10.0) as u32).clamp(1, 9), 10).unwrap()
                });
            }
            let _ = writeln!(out, "{:<8} |{row}|", LinkClass::bucket_label(b));
        }
        out
    }
}

/// Fluid-flow processor sharing over a set of physical links — the
/// pricing hook a multi-job scheduler uses to make concurrent transfers
/// genuinely slow each other down.
///
/// Each *flow* (one job's wide-area traffic) occupies a set of links,
/// identified by an ordered site pair `(a, b)` with `a <= b`. A link
/// serving `k` flows gives each of them `1/k` of its capacity, and a
/// flow progresses at the rate of its **most contended** link — the
/// max-of-bottlenecks convention matching the cost model's NIC
/// serialization (a job's WAN sends already serialize at the receiving
/// root, so its drain is a single queue throttled by the worst link).
///
/// The tracker is a plain deterministic accumulator: `join`/`leave`
/// update per-link flow counts, [`SharedLinks::rate`] answers "at what
/// fraction of solo speed does this flow drain *right now*". Event-loop
/// integration (advancing remainders piecewise while counts are
/// constant) is the caller's job; see `tsqr-serve`'s engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharedLinks {
    flows: BTreeMap<(usize, usize), usize>,
}

impl SharedLinks {
    /// Normalizes a site pair to the canonical `(min, max)` key.
    pub fn key(a: usize, b: usize) -> (usize, usize) {
        (a.min(b), a.max(b))
    }

    /// Registers one flow on every link in `links` (keys from
    /// [`SharedLinks::key`]; duplicates in the slice count once — pass a
    /// deduplicated set).
    pub fn join(&mut self, links: &[(usize, usize)]) {
        for &l in links {
            *self.flows.entry(l).or_insert(0) += 1;
        }
    }

    /// Removes one flow from every link in `links`.
    ///
    /// # Panics
    /// Panics when a link has no registered flow — a join/leave
    /// imbalance is a scheduler bug worth failing loudly on.
    pub fn leave(&mut self, links: &[(usize, usize)]) {
        for &l in links {
            let n = self.flows.get_mut(&l).expect("leave without matching join");
            *n -= 1;
            if *n == 0 {
                self.flows.remove(&l);
            }
        }
    }

    /// Flows currently sharing one link.
    pub fn flows_on(&self, link: (usize, usize)) -> usize {
        self.flows.get(&link).copied().unwrap_or(0)
    }

    /// Links with at least one registered flow, in canonical key order
    /// (deterministic — the map is a `BTreeMap`).
    pub fn active_links(&self) -> Vec<(usize, usize)> {
        self.flows.keys().copied().collect()
    }

    /// The drain rate (fraction of solo capacity, in `(0, 1]`) of a flow
    /// occupying `links`: `1 / max(flow count)` across them. A flow with
    /// no links (a single-site job) drains at full rate.
    pub fn rate(&self, links: &[(usize, usize)]) -> f64 {
        let worst = links.iter().map(|l| self.flows_on(*l)).max().unwrap_or(0);
        if worst <= 1 {
            1.0
        } else {
            1.0 / worst as f64
        }
    }
}

/// A dense rank×rank communication matrix: messages and bytes per ordered
/// `(src, dst)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CommMatrix {
    n: usize,
    msgs: Vec<u64>,
    bytes: Vec<u64>,
}

impl CommMatrix {
    /// An empty `n × n` matrix.
    pub fn new(n: usize) -> Self {
        CommMatrix { n, msgs: vec![0; n * n], bytes: vec![0; n * n] }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.n
    }

    /// Records one `bytes`-sized message from `src` to `dst`.
    pub fn record(&mut self, src: usize, dst: usize, bytes: u64) {
        assert!(src < self.n && dst < self.n, "rank out of range ({src}, {dst})");
        self.msgs[src * self.n + dst] += 1;
        self.bytes[src * self.n + dst] += bytes;
    }

    /// Messages sent from `src` to `dst`.
    pub fn msgs(&self, src: usize, dst: usize) -> u64 {
        self.msgs[src * self.n + dst]
    }

    /// Bytes sent from `src` to `dst`.
    pub fn bytes(&self, src: usize, dst: usize) -> u64 {
        self.bytes[src * self.n + dst]
    }

    /// Total messages.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Messages sent by `src` to anyone.
    pub fn row_msgs(&self, src: usize) -> u64 {
        (0..self.n).map(|d| self.msgs(src, d)).sum()
    }

    /// Messages received by `dst` from anyone.
    pub fn col_msgs(&self, dst: usize) -> u64 {
        (0..self.n).map(|s| self.msgs(s, dst)).sum()
    }

    /// The `k` heaviest ordered pairs by bytes (ties broken by `(src,
    /// dst)` for determinism), as `(src, dst, msgs, bytes)`.
    pub fn top_pairs(&self, k: usize) -> Vec<(usize, usize, u64, u64)> {
        let mut pairs: Vec<(usize, usize, u64, u64)> = (0..self.n)
            .flat_map(|s| (0..self.n).map(move |d| (s, d)))
            .filter(|&(s, d)| self.msgs(s, d) > 0)
            .map(|(s, d)| (s, d, self.msgs(s, d), self.bytes(s, d)))
            .collect();
        pairs.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        pairs.truncate(k);
        pairs
    }

    /// Element-wise sum. Panics on mismatched sizes.
    pub fn merge(&mut self, other: &CommMatrix) {
        assert_eq!(self.n, other.n, "comm-matrix size mismatch");
        for i in 0..self.msgs.len() {
            self.msgs[i] += other.msgs[i];
            self.bytes[i] += other.bytes[i];
        }
    }

    /// A dense message-count table when `n` is small, else the heaviest
    /// pairs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.n <= 16 {
            let _ = write!(out, "{:>6}", "msgs");
            for d in 0..self.n {
                let _ = write!(out, " {d:>5}");
            }
            out.push('\n');
            for s in 0..self.n {
                let _ = write!(out, "{s:>6}");
                for d in 0..self.n {
                    let m = self.msgs(s, d);
                    if m == 0 {
                        let _ = write!(out, " {:>5}", ".");
                    } else {
                        let _ = write!(out, " {m:>5}");
                    }
                }
                out.push('\n');
            }
        } else {
            let _ = writeln!(
                out,
                "{} ranks, {} msgs, {} bytes; heaviest pairs:",
                self.n,
                self.total_msgs(),
                self.total_bytes()
            );
            for (s, d, m, b) in self.top_pairs(10) {
                let _ = writeln!(out, "  {s:>4} -> {d:<4} {m:>8} msgs {b:>14} bytes");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_usage_accumulates_and_normalizes() {
        let mut u = LinkUsage::default();
        u.record(0, 100, 0.0, 0.5);
        u.record(0, 50, 1.0, 1.5);
        u.record(2, 8, 0.0, 2.0);
        assert_eq!(u.msgs(0), 2);
        assert_eq!(u.bytes(0), 150);
        assert_eq!(u.total_msgs(), 3);
        assert_eq!(u.wan_msgs(), 1);
        assert!((u.busy_s(0) - 1.0).abs() < 1e-12);
        assert!((u.utilization(0, 2.0) - 0.5).abs() < 1e-12);
        assert!((u.utilization(2, 2.0) - 1.0).abs() < 1e-12);
        assert_eq!(u.utilization(1, 0.0), 0.0);
        let mut v = LinkUsage::default();
        v.record(1, 10, 0.0, 0.25);
        u.merge(&v);
        assert_eq!(u.msgs(1), 1);
        assert!(u.render(2.0).contains("wan"));
    }

    #[test]
    fn timeline_splits_intervals_across_bins() {
        let mut t = UtilizationTimeline::new(4.0, 4);
        // Covers all of bin 1 and half of bin 2.
        t.record(1, 1.0, 2.5);
        assert!((t.busy_s(1, 0)).abs() < 1e-12);
        assert!((t.busy_s(1, 1) - 1.0).abs() < 1e-12);
        assert!((t.busy_s(1, 2) - 0.5).abs() < 1e-12);
        assert!((t.fraction(1, 1) - 1.0).abs() < 1e-12);
        assert!((t.fraction(1, 2) - 0.5).abs() < 1e-12);
        // Overlapping second interval oversubscribes the bin.
        t.record(1, 1.0, 2.0);
        assert!(t.fraction(1, 1) > 1.0);
        let r = t.render();
        assert!(r.contains("cluster"));
        assert!(r.contains('#'), "oversubscribed bin renders as #:\n{r}");
    }

    #[test]
    fn timeline_clamps_out_of_horizon_intervals() {
        let mut t = UtilizationTimeline::new(1.0, 2);
        t.record(0, 0.75, 9.0); // tail clamped to the horizon
        t.record(0, 5.0, 6.0); // entirely outside
        assert!((t.busy_s(0, 1) - 0.25).abs() < 1e-12);
        assert_eq!(t.busy_s(0, 0), 0.0);
        // Degenerate horizon is a no-op.
        let mut z = UtilizationTimeline::new(0.0, 2);
        z.record(0, 0.0, 1.0);
        assert_eq!(z.busy_s(0, 0), 0.0);
        assert_eq!(z.fraction(0, 0), 0.0);
    }

    #[test]
    fn shared_links_processor_sharing() {
        let mut s = SharedLinks::default();
        let a = vec![SharedLinks::key(1, 0), SharedLinks::key(0, 2)];
        let b = vec![SharedLinks::key(0, 1)];
        assert_eq!(a[0], (0, 1), "keys normalize to (min, max)");
        assert_eq!(s.rate(&a), 1.0, "empty tracker: full rate");
        s.join(&a);
        assert_eq!(s.rate(&a), 1.0, "solo flow: full rate");
        s.join(&b);
        assert_eq!(s.flows_on((0, 1)), 2);
        assert_eq!(s.rate(&a), 0.5, "bottlenecked by the shared (0,1) link");
        assert_eq!(s.rate(&b), 0.5);
        assert_eq!(s.rate(&[]), 1.0, "link-free flow is never throttled");
        s.leave(&b);
        assert_eq!(s.rate(&a), 1.0);
        s.leave(&a);
        assert_eq!(s, SharedLinks::default(), "fully drained tracker is empty");
    }

    #[test]
    #[should_panic(expected = "leave without matching join")]
    fn shared_links_unbalanced_leave_panics() {
        let mut s = SharedLinks::default();
        s.leave(&[(0, 1)]);
    }

    #[test]
    fn comm_matrix_counts_pairs() {
        let mut m = CommMatrix::new(4);
        m.record(0, 1, 100);
        m.record(0, 1, 50);
        m.record(2, 3, 8);
        assert_eq!(m.msgs(0, 1), 2);
        assert_eq!(m.bytes(0, 1), 150);
        assert_eq!(m.msgs(1, 0), 0);
        assert_eq!(m.total_msgs(), 3);
        assert_eq!(m.total_bytes(), 158);
        assert_eq!(m.row_msgs(0), 2);
        assert_eq!(m.col_msgs(1), 2);
        assert_eq!(m.top_pairs(1), vec![(0, 1, 2, 150)]);
        let mut other = CommMatrix::new(4);
        other.record(0, 1, 1);
        m.merge(&other);
        assert_eq!(m.msgs(0, 1), 3);
        assert!(m.render().contains("msgs"));
    }

    #[test]
    fn comm_matrix_renders_big_as_top_pairs() {
        let mut m = CommMatrix::new(32);
        m.record(3, 17, 1000);
        m.record(9, 2, 10);
        let r = m.render();
        assert!(r.contains("heaviest pairs"));
        assert!(r.contains("3 -> 17"));
    }
}
