//! The Grid'5000 preset: the exact environment of the paper's §V-A,
//! with the measured communication constants of Fig. 3(a).
//!
//! Four clusters — Orsay, Toulouse, Bordeaux, Sophia-Antipolis — of
//! dual-processor nodes; the experiments reserve 32 nodes (64 processors,
//! two processes per node with serial BLAS, §V-B) per site. Intra-cluster
//! links are Gigabit Ethernet (890 Mb/s measured); sites are connected by
//! 10 Gb/s dark fiber but measured end-to-end at 61–102 Mb/s with 6–9 ms
//! latency; processes on the same node communicate through shared memory at
//! 5 Gb/s with 17 µs latency.

use crate::cost::{CostModel, LinkParams};
use crate::topology::{ClusterSpec, GridTopology};

/// Site indices of the preset, in the order of the paper's Fig. 3(a).
pub const ORSAY: usize = 0;
/// Toulouse site index.
pub const TOULOUSE: usize = 1;
/// Bordeaux site index.
pub const BORDEAUX: usize = 2;
/// Sophia-Antipolis site index.
pub const SOPHIA: usize = 3;

/// Nodes reserved per site in the paper's experiments.
pub const NODES_PER_SITE: usize = 32;
/// Processes per node (two single-threaded processes, §V-B).
pub const PROCS_PER_NODE: usize = 2;

/// The paper's practical per-process flop rate: serial GotoBLAS DGEMM,
/// ≈ 3.67 Gflop/s (256 processes × 3.67 ≈ 940 Gflop/s practical bound).
pub const DGEMM_GFLOPS: f64 = 3.67;

/// Per-site cluster descriptions (§V-A: full cluster sizes; peaks
/// 8.0–10.4 Gflop/s per processor).
pub fn clusters() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec {
            name: "orsay".into(),
            nodes: 312,
            procs_per_node: 2,
            peak_gflops_per_proc: 8.0,
        },
        ClusterSpec {
            name: "toulouse".into(),
            nodes: 80,
            procs_per_node: 2,
            peak_gflops_per_proc: 8.6,
        },
        ClusterSpec {
            name: "bordeaux".into(),
            nodes: 93,
            procs_per_node: 2,
            peak_gflops_per_proc: 10.4,
        },
        ClusterSpec {
            name: "sophia".into(),
            nodes: 56,
            procs_per_node: 2,
            peak_gflops_per_proc: 8.8,
        },
    ]
}

/// Measured inter-site latency in milliseconds (Fig. 3(a), upper triangle;
/// the table is symmetric).
pub const INTER_LATENCY_MS: [[f64; 4]; 4] = [
    // to:   orsay  toulouse bordeaux sophia
    /* orsay    */ [0.07, 7.97, 6.98, 6.12],
    /* toulouse */ [7.97, 0.03, 9.03, 8.18],
    /* bordeaux */ [6.98, 9.03, 0.05, 7.18],
    /* sophia   */ [6.12, 8.18, 7.18, 0.06],
];

/// Measured inter-site throughput in Mb/s (Fig. 3(a)).
pub const INTER_THROUGHPUT_MBPS: [[f64; 4]; 4] = [
    /* orsay    */ [890.0, 78.0, 90.0, 102.0],
    /* toulouse */ [78.0, 890.0, 77.0, 90.0],
    /* bordeaux */ [90.0, 77.0, 890.0, 83.0],
    /* sophia   */ [102.0, 90.0, 83.0, 890.0],
];

/// The measured cost model of Fig. 3(a) and §V-A:
/// intra-node 17 µs / 5 Gb/s, intra-cluster 70 µs / 890 Mb/s,
/// inter-cluster per the measured site-pair matrix.
pub fn cost_model() -> CostModel {
    let inter: Vec<Vec<LinkParams>> = (0..4)
        .map(|a| {
            (0..4)
                .map(|b| {
                    LinkParams::from_ms_mbps(INTER_LATENCY_MS[a][b], INTER_THROUGHPUT_MBPS[a][b])
                })
                .collect()
        })
        .collect();
    CostModel {
        intra_node: LinkParams::from_ms_mbps(0.017, 5000.0),
        intra_cluster: LinkParams::from_ms_mbps(0.07, 890.0),
        inter_cluster: inter,
        flops_per_proc: DGEMM_GFLOPS * 1e9,
        wan_overhead_s: 0.0,
    }
}

/// The experimental platform of §V: `sites` clusters (taken in the paper's
/// order), 32 nodes each, 2 processes per node.
///
/// `sites = 1` gives the 64-process single-site runs, `2` the 128-process
/// and `4` the 256-process grid runs of Figs. 4–8.
pub fn topology(sites: usize) -> GridTopology {
    assert!((1..=4).contains(&sites), "Grid'5000 preset has 4 sites, {sites} requested");
    let clusters = clusters().into_iter().take(sites).collect();
    GridTopology::block_placement(clusters, NODES_PER_SITE, PROCS_PER_NODE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::LinkClass;
    use crate::topology::ProcLocation;

    #[test]
    fn preset_sizes_match_the_paper() {
        assert_eq!(topology(1).num_procs(), 64);
        assert_eq!(topology(2).num_procs(), 128);
        assert_eq!(topology(4).num_procs(), 256);
    }

    #[test]
    fn latency_matrix_is_symmetric_and_hierarchical() {
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(INTER_LATENCY_MS[a][b], INTER_LATENCY_MS[b][a]);
                assert_eq!(INTER_THROUGHPUT_MBPS[a][b], INTER_THROUGHPUT_MBPS[b][a]);
                if a != b {
                    // Two orders of magnitude between intra and inter (§II-D).
                    assert!(INTER_LATENCY_MS[a][b] > 50.0 * 0.07);
                    assert!(INTER_THROUGHPUT_MBPS[a][b] < 890.0);
                }
            }
        }
    }

    #[test]
    fn cost_model_orders_link_classes() {
        let m = cost_model();
        let n0 = ProcLocation { cluster: 0, node: 0, slot: 0 };
        let n1 = ProcLocation { cluster: 0, node: 0, slot: 1 };
        let n2 = ProcLocation { cluster: 0, node: 7, slot: 0 };
        let n3 = ProcLocation { cluster: 3, node: 0, slot: 0 };
        let bytes = 64 * 1024;
        let t_node = m.message_time(n0, n1, bytes);
        let t_clus = m.message_time(n0, n2, bytes);
        let t_wan = m.message_time(n0, n3, bytes);
        assert!(t_node < t_clus && t_clus < t_wan);
        // Inter-cluster latency dominated, ≥ 6 ms.
        assert!(t_wan.secs() > 6e-3);
    }

    #[test]
    fn inter_cluster_pairs_use_their_measured_link() {
        let m = cost_model();
        let orsay = ProcLocation { cluster: ORSAY, node: 0, slot: 0 };
        let toulouse = ProcLocation { cluster: TOULOUSE, node: 0, slot: 0 };
        let sophia = ProcLocation { cluster: SOPHIA, node: 0, slot: 0 };
        // Orsay–Toulouse: 7.97 ms; Orsay–Sophia: 6.12 ms.
        assert!((m.link(orsay, toulouse).latency_s - 7.97e-3).abs() < 1e-12);
        assert!((m.link(orsay, sophia).latency_s - 6.12e-3).abs() < 1e-12);
        assert_eq!(
            LinkClass::between(orsay, toulouse),
            LinkClass::InterCluster(ORSAY, TOULOUSE)
        );
    }

    #[test]
    fn practical_peak_is_940_gflops() {
        let total = topology(4).num_procs() as f64 * DGEMM_GFLOPS;
        assert!((total - 939.5).abs() < 1.0, "got {total}");
    }

    #[test]
    #[should_panic(expected = "4 sites")]
    fn too_many_sites_panics() {
        let _ = topology(5);
    }
}
