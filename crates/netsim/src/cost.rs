//! The α/β/γ cost model of the paper's Eq. (1).
//!
//! `time = β·(#msg) + α·(volume) + γ·(#flops)` — β is the latency of a link,
//! α the inverse bandwidth, γ the inverse flop rate of a domain. A message
//! between two ranks is priced by the class of the link between them:
//! intra-node, intra-cluster, or the specific inter-cluster site pair.

use serde::{Deserialize, Serialize};

use crate::time::VirtualTime;
use crate::topology::{GridTopology, ProcLocation};

/// The class of the link between two process locations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Same node (shared-memory transport).
    IntraNode,
    /// Same cluster, different nodes (cluster interconnect).
    IntraCluster,
    /// Different clusters (wide-area link between sites `a < b`).
    InterCluster(usize, usize),
}

impl LinkClass {
    /// Classifies the link between two locations.
    pub fn between(a: ProcLocation, b: ProcLocation) -> LinkClass {
        if a.cluster != b.cluster {
            let (lo, hi) = if a.cluster < b.cluster {
                (a.cluster, b.cluster)
            } else {
                (b.cluster, a.cluster)
            };
            LinkClass::InterCluster(lo, hi)
        } else if a.node != b.node {
            LinkClass::IntraCluster
        } else {
            LinkClass::IntraNode
        }
    }

    /// True for wide-area (between-site) links.
    pub fn is_inter_cluster(self) -> bool {
        matches!(self, LinkClass::InterCluster(_, _))
    }

    /// A coarse three-way bucket (used by the traffic counters).
    pub fn bucket(self) -> usize {
        match self {
            LinkClass::IntraNode => 0,
            LinkClass::IntraCluster => 1,
            LinkClass::InterCluster(_, _) => 2,
        }
    }

    /// Number of coarse buckets ([`LinkClass::bucket`] values `0..N_BUCKETS`).
    pub const N_BUCKETS: usize = 3;

    /// Short human-readable label for this link class: `"node"`,
    /// `"cluster"` or `"wan"`. Stable — used verbatim in trace exports
    /// and metrics tables (see `docs/observability.md`).
    pub fn label(self) -> &'static str {
        Self::bucket_label(self.bucket())
    }

    /// The label of a coarse bucket index (see [`LinkClass::bucket`]).
    ///
    /// # Panics
    /// Panics when `bucket >= N_BUCKETS`.
    pub fn bucket_label(bucket: usize) -> &'static str {
        match bucket {
            0 => "node",
            1 => "cluster",
            2 => "wan",
            _ => panic!("link-class bucket out of range: {bucket}"),
        }
    }
}

/// Latency/bandwidth of one link class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// One-way latency β, in seconds.
    pub latency_s: f64,
    /// Bandwidth, in bits per second.
    pub bandwidth_bps: f64,
}

impl LinkParams {
    /// Builds from a latency in milliseconds and a throughput in Mb/s —
    /// the units of the paper's Fig. 3(a).
    pub fn from_ms_mbps(latency_ms: f64, throughput_mbps: f64) -> Self {
        LinkParams { latency_s: latency_ms * 1e-3, bandwidth_bps: throughput_mbps * 1e6 }
    }

    /// Time to move `bytes` over this link: `β + 8·bytes / bandwidth`.
    pub fn transfer_time(&self, bytes: u64) -> VirtualTime {
        VirtualTime::from_secs(self.latency_s + (bytes as f64) * 8.0 / self.bandwidth_bps)
    }
}

/// Complete pricing of a grid: per-class link parameters plus per-process
/// sustained flop rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Shared-memory transport inside a node.
    pub intra_node: LinkParams,
    /// Cluster interconnect (assumed uniform across sites, as on Grid'5000
    /// where every site measured 890 Mb/s).
    pub intra_cluster: LinkParams,
    /// `inter[a][b]` (and `[b][a]`) for sites `a ≠ b`.
    pub inter_cluster: Vec<Vec<LinkParams>>,
    /// Sustained per-process flop rate in flop/s used for `γ` (the paper's
    /// practical bound: serial GotoBLAS DGEMM, 3.67 Gflop/s).
    pub flops_per_proc: f64,
    /// Congestion surcharge added to every **inter-cluster** message, in
    /// seconds (default 0).
    ///
    /// Long shared wide-area paths punish chatty protocols beyond the
    /// clean `β + α·v` price: TCP slow-start, cross-traffic and software
    /// overheads land on every message. Algorithms that send `O(log P)`
    /// WAN messages barely notice; ScaLAPACK's `O(N·log P)` per-column
    /// reductions feel every millisecond — which is the paper's Fig. 4
    /// multi-site collapse. See `ablation_wan_congestion`.
    #[serde(default)]
    pub wan_overhead_s: f64,
}

impl CostModel {
    /// Link parameters between two locations.
    pub fn link(&self, a: ProcLocation, b: ProcLocation) -> LinkParams {
        match LinkClass::between(a, b) {
            LinkClass::IntraNode => self.intra_node,
            LinkClass::IntraCluster => self.intra_cluster,
            LinkClass::InterCluster(x, y) => self.inter_cluster[x][y],
        }
    }

    /// Time for a `bytes`-sized message from `a` to `b` (Eq. (1)'s
    /// `β + α·vol` for a single message, plus the WAN congestion
    /// surcharge on inter-cluster links).
    pub fn message_time(&self, a: ProcLocation, b: ProcLocation, bytes: u64) -> VirtualTime {
        let base = self.link(a, b).transfer_time(bytes);
        if LinkClass::between(a, b).is_inter_cluster() {
            base + VirtualTime::from_secs(self.wan_overhead_s)
        } else {
            base
        }
    }

    /// Returns a copy with the given WAN congestion surcharge.
    pub fn with_wan_overhead(mut self, seconds: f64) -> Self {
        assert!(seconds >= 0.0, "overhead must be non-negative");
        self.wan_overhead_s = seconds;
        self
    }

    /// Time for `flops` floating-point operations at rate `rate_flops`
    /// (flop/s), or at the model's default rate when `rate_flops` is `None`.
    pub fn compute_time(&self, flops: u64, rate_flops: Option<f64>) -> VirtualTime {
        let rate = rate_flops.unwrap_or(self.flops_per_proc);
        assert!(rate > 0.0, "flop rate must be positive");
        VirtualTime::from_secs(flops as f64 / rate)
    }

    /// A uniform model (every link identical) — useful for unit tests and
    /// for reproducing the homogeneous-network assumption of §IV.
    pub fn homogeneous(link: LinkParams, flops_per_proc: f64, n_clusters: usize) -> Self {
        CostModel {
            intra_node: link,
            intra_cluster: link,
            inter_cluster: vec![vec![link; n_clusters]; n_clusters],
            flops_per_proc,
            wan_overhead_s: 0.0,
        }
    }

    /// Checks the model covers every site of `topo` (panics otherwise);
    /// returns `self` for chaining.
    pub fn validated_for(self, topo: &GridTopology) -> Self {
        let n = topo.num_clusters();
        assert!(
            self.inter_cluster.len() >= n
                && self.inter_cluster.iter().take(n).all(|row| row.len() >= n),
            "cost model covers {} sites, topology has {n}",
            self.inter_cluster.len()
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(cluster: usize, node: usize, slot: usize) -> ProcLocation {
        ProcLocation { cluster, node, slot }
    }

    #[test]
    fn link_classification() {
        assert_eq!(LinkClass::between(loc(0, 0, 0), loc(0, 0, 1)), LinkClass::IntraNode);
        assert_eq!(LinkClass::between(loc(0, 0, 0), loc(0, 1, 0)), LinkClass::IntraCluster);
        assert_eq!(
            LinkClass::between(loc(2, 0, 0), loc(1, 3, 1)),
            LinkClass::InterCluster(1, 2)
        );
        assert!(LinkClass::between(loc(0, 0, 0), loc(1, 0, 0)).is_inter_cluster());
    }

    #[test]
    fn labels_match_buckets() {
        assert_eq!(LinkClass::IntraNode.label(), "node");
        assert_eq!(LinkClass::IntraCluster.label(), "cluster");
        assert_eq!(LinkClass::InterCluster(0, 3).label(), "wan");
        for b in 0..LinkClass::N_BUCKETS {
            assert!(!LinkClass::bucket_label(b).is_empty());
        }
    }

    #[test]
    fn link_class_is_symmetric() {
        let a = loc(3, 1, 0);
        let b = loc(1, 2, 1);
        assert_eq!(LinkClass::between(a, b), LinkClass::between(b, a));
    }

    #[test]
    fn transfer_time_units() {
        // 1 ms latency, 8 Mb/s → 1 byte costs 1 µs of bandwidth time.
        let p = LinkParams::from_ms_mbps(1.0, 8.0);
        let t = p.transfer_time(1000);
        assert!((t.secs() - (1e-3 + 1e-3)).abs() < 1e-12);
        // Zero-byte message costs exactly the latency.
        assert!((p.transfer_time(0).secs() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn message_time_picks_the_right_class() {
        let fast = LinkParams::from_ms_mbps(0.017, 5000.0);
        let med = LinkParams::from_ms_mbps(0.07, 890.0);
        let slow = LinkParams::from_ms_mbps(8.0, 80.0);
        let model = CostModel {
            intra_node: fast,
            intra_cluster: med,
            inter_cluster: vec![vec![slow; 2]; 2],
            flops_per_proc: 3.67e9,
            wan_overhead_s: 0.0,
        };
        let t_node = model.message_time(loc(0, 0, 0), loc(0, 0, 1), 1024);
        let t_clus = model.message_time(loc(0, 0, 0), loc(0, 5, 0), 1024);
        let t_wan = model.message_time(loc(0, 0, 0), loc(1, 0, 0), 1024);
        assert!(t_node < t_clus && t_clus < t_wan);
    }

    #[test]
    fn compute_time_uses_rate() {
        let model = CostModel::homogeneous(LinkParams::from_ms_mbps(1.0, 100.0), 1e9, 1);
        assert!((model.compute_time(2_000_000_000, None).secs() - 2.0).abs() < 1e-12);
        assert!((model.compute_time(1_000_000_000, Some(0.5e9)).secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wan_overhead_applies_to_inter_cluster_only() {
        let p = LinkParams::from_ms_mbps(1.0, 100.0);
        let m = CostModel::homogeneous(p, 1e9, 2).with_wan_overhead(5e-3);
        let local = m.message_time(loc(0, 0, 0), loc(0, 1, 0), 0);
        let wan = m.message_time(loc(0, 0, 0), loc(1, 0, 0), 0);
        assert!((local.secs() - 1e-3).abs() < 1e-12);
        assert!((wan.secs() - 6e-3).abs() < 1e-12);
    }

    #[test]
    fn homogeneous_model_is_uniform() {
        let p = LinkParams::from_ms_mbps(1.0, 10.0);
        let m = CostModel::homogeneous(p, 1e9, 3);
        assert_eq!(m.link(loc(0, 0, 0), loc(0, 0, 1)), p);
        assert_eq!(m.link(loc(0, 0, 0), loc(2, 1, 1)), p);
    }
}
