//! Property-based tests of the cost model and topology.

use proptest::prelude::*;

use tsqr_netsim::{grid5000, CostModel, GridTopology, LinkClass, LinkParams, ProcLocation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transfer time is monotone in bytes and bounded below by latency.
    #[test]
    fn transfer_monotone(
        lat_ms in 0.001f64..20.0,
        mbps in 1.0f64..10_000.0,
        bytes in 0u64..10_000_000,
        extra in 1u64..1_000_000,
    ) {
        let p = LinkParams::from_ms_mbps(lat_ms, mbps);
        let t1 = p.transfer_time(bytes);
        let t2 = p.transfer_time(bytes + extra);
        prop_assert!(t2 > t1);
        prop_assert!(t1.secs() >= lat_ms * 1e-3);
    }

    /// Link classification is symmetric and consistent with the bucket.
    #[test]
    fn classification_symmetric(
        c1 in 0usize..4, n1 in 0usize..32, s1 in 0usize..2,
        c2 in 0usize..4, n2 in 0usize..32, s2 in 0usize..2,
    ) {
        let a = ProcLocation { cluster: c1, node: n1, slot: s1 };
        let b = ProcLocation { cluster: c2, node: n2, slot: s2 };
        let ab = LinkClass::between(a, b);
        prop_assert_eq!(ab, LinkClass::between(b, a));
        prop_assert_eq!(ab.is_inter_cluster(), c1 != c2);
        let expected_bucket = if c1 != c2 { 2 } else if n1 != n2 { 1 } else { 0 };
        prop_assert_eq!(ab.bucket(), expected_bucket);
    }

    /// On the Grid'5000 model the link hierarchy holds for every pair of
    /// placements: intra-node <= intra-cluster <= inter-cluster, for any
    /// message size.
    #[test]
    fn grid5000_hierarchy(bytes in 0u64..50_000_000) {
        let m = grid5000::cost_model();
        let node = ProcLocation { cluster: 0, node: 0, slot: 0 };
        let same_node = ProcLocation { cluster: 0, node: 0, slot: 1 };
        let same_cluster = ProcLocation { cluster: 0, node: 9, slot: 0 };
        for other_cluster in 1..4 {
            let wan = ProcLocation { cluster: other_cluster, node: 0, slot: 0 };
            let t0 = m.message_time(node, same_node, bytes);
            let t1 = m.message_time(node, same_cluster, bytes);
            let t2 = m.message_time(node, wan, bytes);
            prop_assert!(t0 <= t1 && t1 <= t2, "bytes={} cluster={}", bytes, other_cluster);
        }
    }

    /// The WAN surcharge adds exactly once per inter-cluster message and
    /// never to local ones.
    #[test]
    fn wan_overhead_additivity(
        over_ms in 0.0f64..50.0,
        bytes in 0u64..1_000_000,
    ) {
        let base = grid5000::cost_model();
        let with = base.clone().with_wan_overhead(over_ms * 1e-3);
        let a = ProcLocation { cluster: 0, node: 0, slot: 0 };
        let local = ProcLocation { cluster: 0, node: 3, slot: 0 };
        let remote = ProcLocation { cluster: 2, node: 0, slot: 0 };
        prop_assert_eq!(base.message_time(a, local, bytes), with.message_time(a, local, bytes));
        let diff = with.message_time(a, remote, bytes) - base.message_time(a, remote, bytes);
        prop_assert!((diff.secs() - over_ms * 1e-3).abs() < 1e-12);
    }

    /// Block placement invariants: contiguous clusters, dense nodes/slots,
    /// shuffling preserves the multiset of coordinates.
    #[test]
    fn placement_invariants(
        clusters in 1usize..5,
        nodes in 1usize..8,
        ppn in 1usize..3,
        seed in 0u64..1000,
    ) {
        let specs = (0..clusters)
            .map(|i| tsqr_netsim::ClusterSpec {
                name: format!("c{i}"),
                nodes,
                procs_per_node: ppn,
                peak_gflops_per_proc: 8.0,
            })
            .collect();
        let topo = GridTopology::block_placement(specs, nodes, ppn);
        prop_assert_eq!(topo.num_procs(), clusters * nodes * ppn);
        // Ranks within a cluster are contiguous.
        for c in 0..clusters {
            let ranks = topo.ranks_in_cluster(c);
            prop_assert_eq!(ranks.len(), nodes * ppn);
            prop_assert!(ranks.windows(2).all(|w| w[1] == w[0] + 1));
        }
        let shuffled = topo.shuffled(seed);
        let key = |p: &ProcLocation| (p.cluster, p.node, p.slot);
        let mut a: Vec<_> = topo.placement.iter().map(key).collect();
        let mut b: Vec<_> = shuffled.placement.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// compute_time is linear in flops and inverse in rate.
    #[test]
    fn compute_time_scaling(flops in 1u64..1_000_000_000, rate in 1e6f64..1e12) {
        let m = CostModel::homogeneous(LinkParams::from_ms_mbps(1.0, 100.0), rate, 1);
        let t = m.compute_time(flops, None).secs();
        prop_assert!((t - flops as f64 / rate).abs() < 1e-12 * t.max(1.0));
        let t2 = m.compute_time(flops, Some(rate * 2.0)).secs();
        prop_assert!((t2 * 2.0 - t).abs() < 1e-9 * t.max(1.0));
    }
}
