//! Perfectly clean crate: every allow entry in this fixture therefore
//! suppresses nothing and must be reported as stale.

pub fn id(x: u64) -> u64 {
    x
}
