//! Non-deterministic helper crate: the wall-clock read lives here, two
//! calls away from the deterministic crate — the hole a line-level
//! lint cannot see.

pub fn leaf() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}
