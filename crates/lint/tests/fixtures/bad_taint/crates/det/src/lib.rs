//! Deterministic (replay-critical) crate that indirectly reaches a
//! wall-clock source through `tsqr_util::leaf` — nondet-taint must
//! fire exactly once.

pub fn entry() -> u64 {
    tsqr_util::leaf()
}
