//! Seeded violation: uses `tsqr_extra` in source without declaring the
//! dependency in Cargo.toml (undeclared inter-crate edge).

pub fn top() -> u64 {
    tsqr_base::base() + tsqr_extra::extra()
}
