//! Innocent layer-0 crate; `top` uses it without declaring it.

pub fn extra() -> u64 {
    2
}
