//! Seeded violation: this layer-0 crate declares a dependency on the
//! layer-1 crate above it (upward manifest edge).

pub fn base() -> u64 {
    1
}
