//! Clean fixture crate one layer up: a declared, downward edge.

pub fn run() -> f64 {
    let mut p = tsqr_base::Port;
    tsqr_base::ping(&mut p)
}
