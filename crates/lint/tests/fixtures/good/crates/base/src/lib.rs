//! Clean fixture crate: paired tag traffic plus a documented
//! allow(taint) boundary. archlint must report zero findings here.

pub const TAG_PING: u32 = 7;

pub struct Port;

impl Port {
    pub fn send<T>(&mut self, _to: usize, _tag: u32, _v: &T) {}
    pub fn recv<T: Default>(&mut self, _from: usize, _tag: u32) -> T {
        T::default()
    }
}

pub fn ping(p: &mut Port) -> f64 {
    p.send(1, TAG_PING, &1.0f64);
    p.recv(0, TAG_PING)
}

// archlint: allow(taint) — fixture analogue of the sanctioned rank
// spawner: the thread spawn is a documented boundary.
pub fn watchdog() {
    std::thread::spawn(|| {});
}
