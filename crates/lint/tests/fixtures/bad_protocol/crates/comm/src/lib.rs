//! Seeded protocol violations: `TAG_ONE` is sent but never received
//! (protocol-flow), and `TAG_OOR` = 500 falls outside every declared
//! tag range (protocol-range). The committed model golden is stale on
//! purpose (protocol-model).

pub const TAG_ONE: u32 = 5;
pub const TAG_OOR: u32 = 500;

pub struct Port;

impl Port {
    pub fn send<T>(&mut self, _to: usize, _tag: u32, _v: &T) {}
    pub fn recv<T: Default>(&mut self, _from: usize, _tag: u32) -> T {
        T::default()
    }
}

pub fn one_sided(p: &mut Port) {
    p.send(1, TAG_ONE, &1.0f64);
}

pub fn out_of_range(p: &mut Port) -> f64 {
    p.send(1, TAG_OOR, &1.0f64);
    p.recv(0, TAG_OOR)
}
