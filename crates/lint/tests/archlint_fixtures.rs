//! End-to-end fixture tests for the lint binaries (`archlint`,
//! `commlint`), run against the mini-workspaces under
//! `tests/fixtures/`. Each seeded violation must fire its rule exactly
//! once on the known-bad fixture and not at all on the known-good one,
//! and `--bless` must regenerate the model golden byte-exactly.
//!
//! The fixture trees live under `tests/`, so the real lints skip them
//! (`is_nonshipped`) and cargo does not treat the nested `Cargo.toml`
//! files as workspace members.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn run(bin: &str, root: &Path, extra: &[&str]) -> Output {
    Command::new(bin)
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {bin}: {e}"))
}

fn archlint(root: &Path, extra: &[&str]) -> Output {
    run(env!("CARGO_BIN_EXE_archlint"), root, extra)
}

fn commlint(root: &Path) -> Output {
    run(env!("CARGO_BIN_EXE_commlint"), root, &[])
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn count(haystack: &str, needle: &str) -> usize {
    haystack.matches(needle).count()
}

/// Copies a fixture tree into a scratch dir (for tests that mutate the
/// model golden via `--bless`).
fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("mkdir");
    for e in std::fs::read_dir(from).expect("read_dir").flatten() {
        let src = e.path();
        let dst = to.join(e.file_name());
        if src.is_dir() {
            copy_tree(&src, &dst);
        } else {
            std::fs::copy(&src, &dst).expect("copy");
        }
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("archlint-fixture-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn good_fixture_is_clean_for_both_binaries() {
    let root = fixture("good");
    let a = archlint(&root, &[]);
    let out = stdout(&a);
    assert!(a.status.success(), "archlint failed on the good fixture:\n{out}");
    assert!(out.contains("0 finding(s)"), "{out}");
    let c = commlint(&root);
    let out = stdout(&c);
    assert!(c.status.success(), "commlint failed on the good fixture:\n{out}");
    assert!(out.contains("0 finding(s)"), "{out}");
}

#[test]
fn layering_violations_fire_exactly_once_each() {
    let a = archlint(&fixture("bad_layering"), &[]);
    let out = stdout(&a);
    assert!(!a.status.success(), "{out}");
    assert_eq!(count(&out, "[layering]"), 2, "{out}");
    assert!(out.contains("strictly down"), "upward manifest edge not flagged:\n{out}");
    assert!(out.contains("undeclared inter-crate edge"), "{out}");
    assert!(out.contains("2 finding(s)"), "unexpected extra findings:\n{out}");
}

#[test]
fn indirect_taint_fires_exactly_once_with_chain() {
    let a = archlint(&fixture("bad_taint"), &[]);
    let out = stdout(&a);
    assert!(!a.status.success(), "{out}");
    assert_eq!(count(&out, "[nondet-taint]"), 1, "{out}");
    // The whole point of the pass: the wall-clock read is two calls
    // away from the deterministic crate, and the chain names both ends.
    assert!(out.contains("det::entry -> util::leaf"), "{out}");
    assert!(out.contains("Instant::now"), "{out}");
    assert!(out.contains("1 finding(s)"), "{out}");
}

#[test]
fn protocol_violations_fire_exactly_once_each() {
    let a = archlint(&fixture("bad_protocol"), &[]);
    let out = stdout(&a);
    assert!(!a.status.success(), "{out}");
    assert_eq!(count(&out, "[protocol-flow]"), 1, "{out}");
    assert_eq!(count(&out, "[protocol-range]"), 1, "{out}");
    assert_eq!(count(&out, "[protocol-model]"), 1, "{out}");
    assert!(out.contains("TAG_ONE` is unpaired"), "{out}");
    assert!(out.contains("TAG_OOR` = 500 falls in no declared range"), "{out}");
    assert!(out.contains("drifted"), "{out}");
    assert!(out.contains("3 finding(s)"), "{out}");
}

#[test]
fn bless_clears_model_drift_but_not_real_violations() {
    let dir = scratch("drift");
    copy_tree(&fixture("bad_protocol"), &dir);
    // --bless rewrites the golden from the live extraction; the drift
    // finding disappears, the genuine protocol violations stay.
    let blessed = archlint(&dir, &["--bless"]);
    let out = stdout(&blessed);
    assert!(!blessed.status.success(), "{out}");
    assert_eq!(count(&out, "[protocol-model]"), 0, "{out}");
    assert!(out.contains("2 finding(s)"), "{out}");
    let rerun = archlint(&dir, &[]);
    assert_eq!(count(&stdout(&rerun), "[protocol-model]"), 0, "{}", stdout(&rerun));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn missing_model_is_flagged_and_bless_recreates_it_byte_exactly() {
    let dir = scratch("missing");
    copy_tree(&fixture("good"), &dir);
    let committed =
        std::fs::read_to_string(dir.join("scripts/archlint.model")).expect("committed golden");
    std::fs::remove_file(dir.join("scripts/archlint.model")).expect("rm model");
    let broken = archlint(&dir, &[]);
    let out = stdout(&broken);
    assert!(!broken.status.success(), "{out}");
    assert!(out.contains("model golden is missing"), "{out}");
    let blessed = archlint(&dir, &["--bless"]);
    assert!(blessed.status.success(), "{}", stdout(&blessed));
    let regenerated =
        std::fs::read_to_string(dir.join("scripts/archlint.model")).expect("regenerated golden");
    assert_eq!(regenerated, committed, "bless must reproduce the committed golden byte-exactly");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn stale_allow_entries_are_denied_by_both_binaries() {
    let root = fixture("stale_allow");
    let a = archlint(&root, &[]);
    let out = stdout(&a);
    assert!(!a.status.success(), "{out}");
    assert_eq!(count(&out, "[stale-allow]"), 1, "{out}");
    assert!(out.contains("scripts/archlint.allow:3"), "{out}");
    let c = commlint(&root);
    let out = stdout(&c);
    assert!(!c.status.success(), "{out}");
    assert_eq!(count(&out, "[stale-allow]"), 1, "{out}");
    assert!(out.contains("scripts/commlint.allow:3"), "{out}");
}
