//! Shared source-scanning machinery for the lint binaries.
//!
//! Everything here is deliberately dependency-free and line-level: the
//! workspace builds offline, so the lints are token scanners, not
//! `syn`-based parsers. They are conservative where they must guess.
//!
//! The pipeline every lint shares:
//!
//! 1. [`collect_rs`] walks a directory tree for `.rs` files;
//! 2. [`strip_noncode`] blanks comments, string literals and char
//!    literals (newlines preserved, so line numbers survive);
//! 3. [`truncate_at_test_module`] cuts the file at its trailing
//!    `#[cfg(test)]` module (repo convention: unit tests live in one
//!    `mod tests` at the bottom), so only shipped code is linted;
//! 4. findings are filtered through an allowlist
//!    ([`load_allowlist`] / [`partition_findings`]), and allow entries
//!    that no longer suppress anything are themselves reported as
//!    stale ([`stale_allow_findings`]).

use std::fs;
use std::path::{Path, PathBuf};

/// One lint hit, rendered as `path:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Short rule name (`wall-clock`, `layering`, `nondet-taint`, …).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line number; 0 when the finding is file- or spec-level.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Renders the finding in the shared `path:line: [rule] message`
    /// format used by every lint binary.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// One allowlist entry: suppresses `rule` findings in paths containing
/// `path_part`.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule name the entry suppresses.
    pub rule: String,
    /// Path substring the entry applies to.
    pub path_part: String,
    /// 1-based line in the allow file (for stale-entry reporting).
    pub line: usize,
}

impl Allow {
    /// True when this entry suppresses the finding.
    pub fn matches(&self, f: &Finding) -> bool {
        f.rule == self.rule && f.path.contains(&self.path_part)
    }
}

/// Loads `rule path-substring` allow entries, skipping blanks and `#`
/// comments. A missing file is an empty allowlist.
pub fn load_allowlist(path: &Path) -> Vec<Allow> {
    let Ok(text) = fs::read_to_string(path) else { return Vec::new() };
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|(line, l)| {
            let mut it = l.split_whitespace();
            Some(Allow {
                rule: it.next()?.to_string(),
                path_part: it.next()?.to_string(),
                line,
            })
        })
        .collect()
}

/// Splits findings into `(kept, suppressed)` under the allowlist.
pub fn partition_findings(
    findings: Vec<Finding>,
    allow: &[Allow],
) -> (Vec<Finding>, Vec<Finding>) {
    findings.into_iter().partition(|f| !allow.iter().any(|a| a.matches(f)))
}

/// One `stale-allow` finding per allowlist entry that suppressed zero
/// findings. Dead exceptions rot silently otherwise: the hazard they
/// documented is gone (or the path moved), but the hole in the gate
/// stays open. `allow_file` is the repo-relative path reported.
pub fn stale_allow_findings(
    allow: &[Allow],
    suppressed: &[Finding],
    allow_file: &str,
) -> Vec<Finding> {
    allow
        .iter()
        .filter(|a| !suppressed.iter().any(|f| a.matches(f)))
        .map(|a| Finding {
            rule: "stale-allow",
            path: allow_file.to_string(),
            line: a.line,
            message: format!(
                "allow entry `{} {}` suppresses zero findings — the exception is \
                 dead; delete it (or fix the path substring)",
                a.rule, a.path_part
            ),
        })
        .collect()
}

/// Recursively collects `.rs` files under `dir` (skipping any `target`
/// directory). Missing directories are silently empty.
pub fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

/// True for paths the lints skip: integration tests, benches and
/// examples are not shipped runtime code.
pub fn is_nonshipped(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/")
}

/// Replaces comments, string literals and char literals with spaces
/// (newlines preserved, so line numbers survive).
pub fn strip_noncode(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => {
                if c == '/' && next == Some('/') {
                    st = St::Line;
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::Block(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == 'r' && (next == Some('"') || next == Some('#')) {
                    // Raw string r"…" / r#"…"# / r##"…"## …
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == '"' {
                    st = St::Str;
                    out.push(' ');
                    i += 1;
                } else if c == '\'' {
                    // Lifetime or char literal?
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => b.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        st = St::Char;
                        out.push(' ');
                        i += 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            St::Line => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::Block(depth) => {
                if c == '*' && next == Some('/') {
                    st = if depth == 1 { St::Code } else { St::Block(depth - 1) };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::Block(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut n = 0;
                    while n < hashes && b.get(j) == Some(&'#') {
                        n += 1;
                        j += 1;
                    }
                    if n == hashes {
                        st = St::Code;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
                i += 1;
            }
            St::Char => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    out
}

/// Cuts the file at its trailing `#[cfg(test)]` module (repo convention:
/// unit tests live in one `mod tests` at the bottom).
pub fn truncate_at_test_module(code: &str) -> &str {
    match code.find("#[cfg(test)]") {
        Some(i) => &code[..i],
        None => code,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_preserves_lines_and_drops_strings() {
        let src = "let a = \"Instant::now\"; // Instant::now\nlet b = 1;\n";
        let s = strip_noncode(src);
        assert_eq!(s.lines().count(), src.lines().count());
        assert!(!s.contains("Instant::now"));
        assert!(s.contains("let b = 1;"));
    }

    #[test]
    fn stripper_handles_raw_strings_and_chars() {
        let src = "let r = r#\"HashMap \"quoted\" inside\"#; let c = '\\n'; let l: &'static str;";
        let s = strip_noncode(src);
        assert!(!s.contains("HashMap"));
        assert!(s.contains("&'static str"));
    }

    #[test]
    fn truncates_at_test_module() {
        let code = "fn a() {}\n#[cfg(test)]\nmod tests { Instant::now; }\n";
        assert!(!truncate_at_test_module(code).contains("Instant"));
    }

    #[test]
    fn stale_allow_detects_dead_entries() {
        let allow = vec![
            Allow { rule: "wall-clock".into(), path_part: "proc.rs".into(), line: 3 },
            Allow { rule: "wall-clock".into(), path_part: "gone.rs".into(), line: 7 },
        ];
        let suppressed = vec![Finding {
            rule: "wall-clock",
            path: "crates/x/src/proc.rs".into(),
            line: 1,
            message: String::new(),
        }];
        let stale = stale_allow_findings(&allow, &suppressed, "scripts/x.allow");
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].line, 7);
        assert!(stale[0].message.contains("gone.rs"));
    }
}
