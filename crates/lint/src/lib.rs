//! `tsqr-lint` — dependency-free static analysis for the grid-tsqr
//! workspace.
//!
//! This library backs three binaries (see `docs/static-analysis.md`):
//!
//! * **`commlint`** — the line-level determinism lint: wall-clock
//!   reads, HashMap/HashSet iteration, wildcard receives, tag-protocol
//!   declaration drift.
//! * **`archlint`** — the workspace-level analyzer: the crate-layering
//!   pass ([`layering`], spec in `scripts/layering.toml`), the
//!   nondeterminism-taint propagation pass ([`taint`], catching the
//!   indirect `Instant::now` two calls away that commlint cannot see),
//!   and the static message-flow/protocol model ([`flow`], golden in
//!   `scripts/archlint.model`).
//! * **`linkcheck`** — the markdown link/anchor gate for the docs.
//!
//! Everything is deliberately `syn`-free: the workspace builds offline
//! with no external dependencies, so the analyses are line-level token
//! scanners over comment/string-stripped sources ([`scan`]). They are
//! conservative where they must guess, and every accepted exception
//! lives either in a committed allowlist (`scripts/*.allow`, with
//! stale entries themselves denied) or in an in-source
//! `archlint: allow(taint)` annotation that carries its justification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod layering;
pub mod protocol;
pub mod scan;
pub mod taint;
pub mod workspace;
