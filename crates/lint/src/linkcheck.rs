//! linkcheck: dependency-free markdown link checker for the repository's
//! documentation.
//!
//! Scans the given markdown files (default: the repo's root `*.md` plus
//! `docs/*.md`) for inline links and images, and verifies that
//!
//! - **relative file links** point at files or directories that exist
//!   (resolved against the linking file's directory), and
//! - **anchor links** (`#section`, in-file or cross-file) resolve to a
//!   heading, using GitHub's slugification rules (lowercase, spaces to
//!   hyphens, punctuation dropped, duplicate slugs suffixed `-1`, `-2`…).
//!
//! Absolute URLs (`http://`, `https://`, `mailto:`) are *not* fetched —
//! the gate must pass offline — and links inside fenced code blocks or
//! inline code spans are ignored, as are autolinks (`<https://…>`).
//!
//! Exit status: 0 when every link resolves, 1 otherwise (one line per
//! broken link). Wired into `scripts/verify.sh` and CI next to
//! `commlint`.
//!
//! ```text
//! linkcheck [--root <dir>] [files...]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// GitHub-style heading slug: lowercase; keep alphanumerics, hyphens and
/// underscores; spaces become hyphens; everything else is dropped.
fn slugify(heading: &str) -> String {
    let mut out = String::new();
    for ch in heading.trim().chars() {
        let lower = ch.to_lowercase();
        if ch.is_alphanumeric() || ch == '_' {
            out.extend(lower);
        } else if ch == ' ' || ch == '-' {
            out.push('-');
        }
        // other punctuation: dropped
    }
    out
}

/// Strips markdown decoration a heading may carry before slugification:
/// inline code backticks, link syntax (`[text](target)` → `text`), and
/// emphasis markers.
fn strip_heading_markup(h: &str) -> String {
    let mut out = String::new();
    let mut chars = h.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '`' | '*' => {}
            '[' => {}
            ']' => {
                // Skip a following "(...)" target if present.
                if chars.peek() == Some(&'(') {
                    for c2 in chars.by_ref() {
                        if c2 == ')' {
                            break;
                        }
                    }
                }
            }
            _ => out.push(c),
        }
    }
    out
}

/// All heading anchors of one markdown document, with GitHub's
/// duplicate-slug numbering.
fn anchors_of(text: &str) -> Vec<String> {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut anchors = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            let rest = rest.trim_start_matches('#');
            if let Some(title) = rest.strip_prefix(' ') {
                let slug = slugify(&strip_heading_markup(title));
                let n = counts.entry(slug.clone()).or_insert(0);
                anchors.push(if *n == 0 { slug } else { format!("{slug}-{n}") });
                *n += 1;
            }
        }
    }
    anchors
}

/// One `[text](target)` or `![alt](target)` occurrence.
#[derive(Debug)]
struct Link {
    target: String,
    line: usize,
}

/// Extracts inline links, skipping fenced code blocks and inline code
/// spans. Reference-style definitions (`[x]: url`) are rare in this repo
/// and intentionally out of scope.
fn links_of(text: &str) -> Vec<Link> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for (ln, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Blank out inline code spans so links inside backticks are ignored.
        let mut clean = String::with_capacity(line.len());
        let mut in_code = false;
        for c in line.chars() {
            if c == '`' {
                in_code = !in_code;
                clean.push(' ');
            } else {
                clean.push(if in_code { ' ' } else { c });
            }
        }
        let bytes = clean.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'[' {
                // Find the matching ']' at nesting depth 0.
                let mut depth = 1usize;
                let mut j = i + 1;
                while j < bytes.len() && depth > 0 {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                if depth == 0 && j < bytes.len() && bytes[j] == b'(' {
                    if let Some(end) = clean[j + 1..].find(')') {
                        let target = clean[j + 1..j + 1 + end].trim();
                        // Drop an optional title: (path "title")
                        let target = target.split_whitespace().next().unwrap_or("");
                        if !target.is_empty() {
                            links.push(Link { target: target.to_string(), line: ln + 1 });
                        }
                        i = j + 1 + end;
                        continue;
                    }
                }
                i += 1;
            } else {
                i += 1;
            }
        }
    }
    links
}

fn is_external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with("ftp://")
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("usage: linkcheck [--root <dir>] [files...]");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: linkcheck [--root <dir>] [files...]");
                return ExitCode::from(2);
            }
            other => files.push(PathBuf::from(other)),
        }
    }
    if files.is_empty() {
        // Default scan set: root-level markdown plus docs/.
        for dir in [root.clone(), root.join("docs")] {
            let Ok(entries) = std::fs::read_dir(&dir) else { continue };
            let mut found: Vec<PathBuf> = entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "md"))
                .collect();
            found.sort();
            files.extend(found);
        }
    }
    if files.is_empty() {
        eprintln!("linkcheck: no markdown files found under {}", root.display());
        return ExitCode::FAILURE;
    }

    let mut problems: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            problems.push(format!("{}: cannot read", file.display()));
            continue;
        };
        let own_anchors = anchors_of(&text);
        let dir = file.parent().unwrap_or(Path::new("."));
        for link in links_of(&text) {
            if is_external(&link.target) {
                continue;
            }
            checked += 1;
            let (path_part, anchor) = match link.target.split_once('#') {
                Some((p, a)) => (p, Some(a)),
                None => (link.target.as_str(), None),
            };
            let (target_file, target_anchors): (PathBuf, Option<Vec<String>>) =
                if path_part.is_empty() {
                    (file.clone(), Some(own_anchors.clone()))
                } else {
                    let resolved = dir.join(path_part);
                    if !resolved.exists() {
                        problems.push(format!(
                            "{}:{}: broken link {:?} (no such file)",
                            file.display(),
                            link.line,
                            link.target
                        ));
                        continue;
                    }
                    let a = if resolved.extension().is_some_and(|e| e == "md") {
                        std::fs::read_to_string(&resolved).ok().map(|t| anchors_of(&t))
                    } else {
                        None
                    };
                    (resolved, a)
                };
            if let Some(anchor) = anchor {
                let Some(anchors) = &target_anchors else {
                    problems.push(format!(
                        "{}:{}: anchor {:?} into non-markdown {:?}",
                        file.display(),
                        link.line,
                        anchor,
                        target_file.display()
                    ));
                    continue;
                };
                let want = anchor.to_lowercase();
                if !anchors.contains(&want) {
                    problems.push(format!(
                        "{}:{}: broken anchor {:?} (no heading slug {:?} in {})",
                        file.display(),
                        link.line,
                        link.target,
                        want,
                        target_file.display()
                    ));
                }
            }
        }
    }

    if problems.is_empty() {
        println!(
            "linkcheck OK: {checked} relative link(s) across {} file(s) all resolve",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("linkcheck FAILED ({} problem(s)):", problems.len());
        for p in &problems {
            eprintln!("  - {p}");
        }
        ExitCode::FAILURE
    }
}
