//! Loader for `scripts/commlint.protocol` — the single source of truth
//! for message tags, shared by `commlint` (declaration check) and
//! `archlint` (static message-flow model).
//!
//! Two line forms (blanks and `#` comments skipped):
//!
//! ```text
//! <file-path> <TAG_NAME> <value>            # one declared tag
//! range <name> <lo> <hi> <owner-file>...    # tag-range ownership
//! ```
//!
//! Values are compared after stripping `_` and lowercasing, so
//! `0xFFFF_0001` matches `0xffff0001`. A `range` line declares that tag
//! values in `[lo, hi]` belong to the named module and may only be
//! declared in the listed owner files; ranges must not overlap.

use std::path::Path;

/// Declared tags of one file.
#[derive(Debug, Clone)]
pub struct ProtocolFile {
    /// Repo-relative file path.
    pub path: String,
    /// `(tag name, normalized value)` pairs.
    pub tags: Vec<(String, String)>,
}

/// One tag-range ownership declaration.
#[derive(Debug, Clone)]
pub struct TagRange {
    /// Module label (documentation only).
    pub name: String,
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
    /// Files allowed to declare tags in this range.
    pub owners: Vec<String>,
    /// 1-based line in the protocol file.
    pub line: usize,
}

/// The parsed protocol table.
#[derive(Debug, Clone, Default)]
pub struct Protocol {
    /// Per-file declared tags.
    pub files: Vec<ProtocolFile>,
    /// Declared tag ranges (empty on legacy tables).
    pub ranges: Vec<TagRange>,
}

/// Normalizes a tag value for comparison: strip `_`, lowercase.
pub fn normalize_value(v: &str) -> String {
    v.chars().filter(|c| *c != '_').collect::<String>().to_lowercase()
}

/// Parses a normalized value (`0x…` hex or decimal) to a number.
pub fn parse_value(v: &str) -> Option<u64> {
    let v = normalize_value(v);
    if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

/// Loads the protocol table. A missing file is an empty table.
pub fn load_protocol(path: &Path) -> Protocol {
    let Ok(text) = std::fs::read_to_string(path) else { return Protocol::default() };
    let mut out = Protocol::default();
    for (i, l) in text.lines().enumerate() {
        let l = l.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let mut it = l.split_whitespace();
        let Some(first) = it.next() else { continue };
        if first == "range" {
            let (Some(name), Some(lo), Some(hi)) = (it.next(), it.next(), it.next()) else {
                continue;
            };
            let (Some(lo), Some(hi)) = (parse_value(lo), parse_value(hi)) else { continue };
            out.ranges.push(TagRange {
                name: name.to_string(),
                lo,
                hi,
                owners: it.map(str::to_string).collect(),
                line: i + 1,
            });
            continue;
        }
        let (Some(tag), Some(value)) = (it.next(), it.next()) else { continue };
        let value = normalize_value(value);
        match out.files.iter_mut().find(|p| p.path == first) {
            Some(p) => p.tags.push((tag.to_string(), value)),
            None => out.files.push(ProtocolFile {
                path: first.to_string(),
                tags: vec![(tag.to_string(), value)],
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tags_and_ranges() {
        let dir = std::env::temp_dir().join(format!("archlint-proto-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("p.protocol");
        std::fs::write(
            &p,
            "# header\nx.rs TAG_A 0xFFFF_0001\nx.rs TAG_B 7\nrange coll 0xFFFF_0000 0xFFFF_FFFF x.rs\nrange alg 1 99 x.rs y.rs\n",
        )
        .unwrap();
        let proto = load_protocol(&p);
        assert_eq!(proto.files.len(), 1);
        assert_eq!(proto.files[0].tags[0], ("TAG_A".to_string(), "0xffff0001".to_string()));
        assert_eq!(proto.ranges.len(), 2);
        assert_eq!(proto.ranges[0].lo, 0xFFFF_0000);
        assert_eq!(proto.ranges[1].owners, vec!["x.rs", "y.rs"]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn value_parsing_handles_hex_and_decimal() {
        assert_eq!(parse_value("0xFFFF_0001"), Some(0xFFFF_0001));
        assert_eq!(parse_value("1001"), Some(1001));
        assert_eq!(parse_value("nope"), None);
    }
}
