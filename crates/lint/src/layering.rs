//! Pass 1 of `archlint`: workspace layering.
//!
//! `docs/architecture.md` documents the crate map as "layered strictly
//! bottom-up"; this pass makes that sentence machine-checked. The spec
//! lives in `scripts/layering.toml` (a deliberately tiny TOML subset):
//!
//! ```toml
//! [layers]
//! linalg = 0      # layer 0 is the bottom
//! gridmpi = 1
//! ...
//!
//! [deterministic]
//! crates = ["core", "gridmpi", ...]   # consumed by the taint pass
//! ```
//!
//! A crate may depend only on crates in **strictly lower** layers. Both
//! manifest edges (`[dependencies]`/`[dev-dependencies]`) and source
//! edges (`use tsqr_x…` / `tsqr_x::…` paths) are checked; a source edge
//! with no matching manifest edge is an *undeclared* dependency even
//! when the layering would allow it. Spec entries naming crates that no
//! longer exist — and crates missing from the spec — are findings too,
//! so the spec cannot rot.

use std::path::Path;

use crate::scan::Finding;
use crate::workspace::Workspace;

/// The parsed layering spec.
#[derive(Debug, Clone, Default)]
pub struct LayerSpec {
    /// `(short crate name, layer)` pairs, in file order.
    pub layers: Vec<(String, u32)>,
    /// Short names of the crates the taint pass treats as
    /// deterministic (replay-critical).
    pub deterministic: Vec<String>,
    /// Repo-relative path of the spec file (for findings).
    pub rel: String,
}

impl LayerSpec {
    /// Layer of `short`, if declared.
    pub fn layer_of(&self, short: &str) -> Option<u32> {
        self.layers.iter().find(|(n, _)| n == short).map(|(_, l)| *l)
    }
}

/// Parses `scripts/layering.toml`. Returns the spec plus any parse
/// findings (unparsable lines are findings, not panics).
pub fn load_layer_spec(path: &Path, rel: &str) -> (LayerSpec, Vec<Finding>) {
    let mut spec = LayerSpec { rel: rel.to_string(), ..Default::default() };
    let mut findings = Vec::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        findings.push(Finding {
            rule: "layering",
            path: rel.to_string(),
            line: 0,
            message: "layering spec is missing — archlint needs scripts/layering.toml".into(),
        });
        return (spec, findings);
    };
    #[derive(PartialEq)]
    enum Sec {
        None,
        Layers,
        Deterministic,
    }
    let mut sec = Sec::None;
    for (i, line) in text.lines().enumerate() {
        let t = match line.find('#') {
            Some(h) => line[..h].trim(),
            None => line.trim(),
        };
        if t.is_empty() {
            continue;
        }
        if t.starts_with('[') {
            sec = match t {
                "[layers]" => Sec::Layers,
                "[deterministic]" => Sec::Deterministic,
                _ => {
                    findings.push(Finding {
                        rule: "layering",
                        path: rel.to_string(),
                        line: i + 1,
                        message: format!("unknown section {t} in layering spec"),
                    });
                    Sec::None
                }
            };
            continue;
        }
        let Some((key, value)) = t.split_once('=') else {
            findings.push(Finding {
                rule: "layering",
                path: rel.to_string(),
                line: i + 1,
                message: format!("unparsable spec line `{t}`"),
            });
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        match sec {
            Sec::Layers => match value.parse::<u32>() {
                Ok(layer) => spec.layers.push((key.to_string(), layer)),
                Err(_) => findings.push(Finding {
                    rule: "layering",
                    path: rel.to_string(),
                    line: i + 1,
                    message: format!("layer of `{key}` must be an integer, got `{value}`"),
                }),
            },
            Sec::Deterministic if key == "crates" => {
                for name in value.trim_matches(['[', ']']).split(',') {
                    let name = name.trim().trim_matches('"');
                    if !name.is_empty() {
                        spec.deterministic.push(name.to_string());
                    }
                }
            }
            _ => findings.push(Finding {
                rule: "layering",
                path: rel.to_string(),
                line: i + 1,
                message: format!("unexpected key `{key}` outside a known section"),
            }),
        }
    }
    (spec, findings)
}

/// Runs the layering pass: spec↔workspace agreement, manifest edges,
/// and source (`use`) edges.
pub fn layering_pass(ws: &Workspace, spec: &LayerSpec) -> Vec<Finding> {
    let mut out = Vec::new();

    // Spec entries that no longer correspond to real crates.
    for (name, _) in &spec.layers {
        if ws.get(name).is_none() {
            out.push(Finding {
                rule: "layering",
                path: spec.rel.clone(),
                line: 0,
                message: format!(
                    "spec names crate `{name}` but no workspace crate by that short \
                     name exists — delete the entry or restore the crate"
                ),
            });
        }
    }
    for name in &spec.deterministic {
        if ws.get(name).is_none() {
            out.push(Finding {
                rule: "layering",
                path: spec.rel.clone(),
                line: 0,
                message: format!("deterministic list names unknown crate `{name}`"),
            });
        }
    }
    // Crates the spec forgot.
    for c in &ws.crates {
        if spec.layer_of(&c.short).is_none() {
            out.push(Finding {
                rule: "layering",
                path: c.manifest_rel.clone(),
                line: 0,
                message: format!(
                    "crate `{}` is not in the layering spec ({}) — assign it a layer",
                    c.short, spec.rel
                ),
            });
        }
    }

    // Manifest edges must point strictly down.
    for c in &ws.crates {
        let Some(from) = spec.layer_of(&c.short) else { continue };
        for (dep, line) in &c.deps {
            let Some(to) = spec.layer_of(dep) else { continue };
            if to >= from {
                out.push(Finding {
                    rule: "layering",
                    path: c.manifest_rel.clone(),
                    line: *line,
                    message: format!(
                        "crate `{}` (layer {from}) depends on `{dep}` (layer {to}) — \
                         dependency edges must point strictly down the layering",
                        c.short
                    ),
                });
            }
        }
    }

    // Source edges: every `tsqr_x…` / `grid_tsqr…` path in shipped code
    // must be backed by a manifest edge (and the manifest check above
    // then enforces the direction).
    for c in &ws.crates {
        for other in &ws.crates {
            if other.short == c.short {
                continue;
            }
            if c.deps.iter().any(|(d, _)| *d == other.short) {
                continue;
            }
            for f in &c.files {
                if let Some(line) = first_ident_use(&f.code, &other.lib_ident) {
                    out.push(Finding {
                        rule: "layering",
                        path: f.rel.clone(),
                        line,
                        message: format!(
                            "crate `{}` uses `{}` but `{}` is not declared in {} — \
                             undeclared inter-crate edge",
                            c.short, other.lib_ident, other.package, c.manifest_rel
                        ),
                    });
                    break; // one finding per (crate, dep) pair is enough
                }
            }
        }
    }

    out
}

/// First line (1-based) where `ident` occurs as a standalone identifier
/// in `code`, or `None`.
fn first_ident_use(code: &str, ident: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(i) = code[from..].find(ident) {
        let at = from + i;
        from = at + ident.len();
        let before_ok = at == 0 || {
            let c = bytes[at - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let after_ok = at + ident.len() >= code.len() || {
            let c = bytes[at + ident.len()] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return Some(code[..at].bytes().filter(|&b| b == b'\n').count() + 1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{SourceFile, WorkspaceCrate};

    fn mini_ws() -> Workspace {
        let mk = |short: &str, deps: Vec<&str>, code: &str| WorkspaceCrate {
            short: short.into(),
            package: format!("tsqr-{short}"),
            lib_ident: format!("tsqr_{short}"),
            manifest_rel: format!("crates/{short}/Cargo.toml"),
            deps: deps.into_iter().map(|d| (d.to_string(), 9)).collect(),
            files: vec![SourceFile {
                rel: format!("crates/{short}/src/lib.rs"),
                raw: code.into(),
                code: code.into(),
            }],
        };
        Workspace {
            crates: vec![
                mk("alpha", vec![], "pub fn a() {}\n"),
                mk("beta", vec!["alpha"], "use tsqr_alpha::a;\npub fn b() { a() }\n"),
            ],
        }
    }

    fn mini_spec() -> LayerSpec {
        LayerSpec {
            layers: vec![("alpha".into(), 0), ("beta".into(), 1)],
            deterministic: vec!["alpha".into()],
            rel: "scripts/layering.toml".into(),
        }
    }

    #[test]
    fn clean_workspace_has_no_findings() {
        assert!(layering_pass(&mini_ws(), &mini_spec()).is_empty());
    }

    #[test]
    fn upward_manifest_edge_is_denied() {
        let mut ws = mini_ws();
        ws.crates[0].deps.push(("beta".into(), 12)); // alpha (0) → beta (1)
        let f = layering_pass(&ws, &mini_spec());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("strictly down"));
        assert_eq!(f[0].line, 12);
    }

    #[test]
    fn undeclared_source_edge_is_denied() {
        let mut ws = mini_ws();
        ws.crates[0].files[0].code = "pub fn a() { tsqr_beta::b() }\n".into();
        let f = layering_pass(&ws, &mini_spec());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("undeclared"));
    }

    #[test]
    fn spec_drift_is_flagged_both_ways() {
        let mut spec = mini_spec();
        spec.layers.push(("ghost".into(), 3));
        let mut ws = mini_ws();
        ws.crates.push(WorkspaceCrate {
            short: "newcomer".into(),
            package: "tsqr-newcomer".into(),
            lib_ident: "tsqr_newcomer".into(),
            manifest_rel: "crates/newcomer/Cargo.toml".into(),
            deps: vec![],
            files: vec![],
        });
        let f = layering_pass(&ws, &spec);
        assert!(f.iter().any(|x| x.message.contains("ghost")), "{f:?}");
        assert!(f.iter().any(|x| x.message.contains("newcomer")), "{f:?}");
    }

    #[test]
    fn spec_parser_reads_layers_and_deterministic() {
        let dir = std::env::temp_dir().join(format!("archlint-spec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("layering.toml");
        std::fs::write(
            &p,
            "# comment\n[layers]\nalpha = 0\nbeta = 1 # inline\n\n[deterministic]\ncrates = [\"alpha\", \"beta\"]\n",
        )
        .unwrap();
        let (spec, findings) = load_layer_spec(&p, "scripts/layering.toml");
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(spec.layer_of("beta"), Some(1));
        assert_eq!(spec.deterministic, vec!["alpha", "beta"]);
        let _ = std::fs::remove_dir_all(dir);
    }
}
