//! Workspace discovery for `archlint`: which crates exist, what each
//! one's manifest declares, and every shipped source file — stripped
//! and test-truncated, ready for the passes.
//!
//! Crate naming convention: every workspace member lives in
//! `crates/<short>/` as package `tsqr-<short>` (lib ident
//! `tsqr_<short>`); the root package (`grid-tsqr`, the CLI plus the
//! umbrella lib in `src/`) is the pseudo-crate **`bin`**. The layering
//! spec (`scripts/layering.toml`) speaks in short names.

use std::fs;
use std::path::{Path, PathBuf};

use crate::scan::{collect_rs, is_nonshipped, strip_noncode, truncate_at_test_module};

/// One shipped source file of a crate.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub rel: String,
    /// Raw file contents (annotations are read from here — comments
    /// survive).
    pub raw: String,
    /// Stripped (comments/strings blanked) and test-truncated code.
    pub code: String,
}

/// One workspace crate: manifest facts plus shipped sources.
#[derive(Debug, Clone)]
pub struct WorkspaceCrate {
    /// Short name (`linalg`, `gridmpi`, …, or `bin` for the root).
    pub short: String,
    /// Package name from `Cargo.toml` (`tsqr-linalg`, `grid-tsqr`).
    pub package: String,
    /// The ident other crates `use` (`tsqr_linalg`, `grid_tsqr`).
    pub lib_ident: String,
    /// Repo-relative path of the manifest.
    pub manifest_rel: String,
    /// Workspace dependencies (short names) from `[dependencies]` and
    /// `[dev-dependencies]`, with the manifest line of each edge.
    pub deps: Vec<(String, usize)>,
    /// Shipped sources (src/ only; tests/benches/examples skipped).
    pub files: Vec<SourceFile>,
}

/// The whole workspace as archlint sees it.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// All crates, sorted by short name.
    pub crates: Vec<WorkspaceCrate>,
}

impl Workspace {
    /// Looks a crate up by short name.
    pub fn get(&self, short: &str) -> Option<&WorkspaceCrate> {
        self.crates.iter().find(|c| c.short == short)
    }

    /// Short names of `short`'s workspace dependencies, transitively.
    pub fn transitive_deps(&self, short: &str) -> Vec<String> {
        let mut seen: Vec<String> = Vec::new();
        let mut stack = vec![short.to_string()];
        while let Some(cur) = stack.pop() {
            if let Some(c) = self.get(&cur) {
                for (d, _) in &c.deps {
                    if !seen.contains(d) {
                        seen.push(d.clone());
                        stack.push(d.clone());
                    }
                }
            }
        }
        seen.sort();
        seen
    }
}

/// Maps a package name to its short name (`tsqr-linalg` → `linalg`,
/// `grid-tsqr` → `bin`).
pub fn short_name(package: &str) -> String {
    if package == "grid-tsqr" {
        "bin".to_string()
    } else {
        package.strip_prefix("tsqr-").unwrap_or(package).to_string()
    }
}

/// Discovers every workspace crate under `root`: `crates/*/Cargo.toml`
/// plus the root package. Sources are loaded, stripped and truncated.
pub fn load_workspace(root: &Path) -> Workspace {
    let mut crates = Vec::new();
    let mut manifest_dirs: Vec<(PathBuf, String)> = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let dir = e.path();
            if dir.is_dir() && dir.join("Cargo.toml").is_file() {
                let rel = format!(
                    "crates/{}/Cargo.toml",
                    dir.file_name().unwrap_or_default().to_string_lossy()
                );
                manifest_dirs.push((dir, rel));
            }
        }
    }
    if root.join("Cargo.toml").is_file() && root.join("src").is_dir() {
        manifest_dirs.push((root.to_path_buf(), "Cargo.toml".to_string()));
    }
    let known_packages: Vec<String> = manifest_dirs
        .iter()
        .filter_map(|(dir, _)| parse_package_name(&dir.join("Cargo.toml")))
        .collect();

    for (dir, manifest_rel) in manifest_dirs {
        let manifest = dir.join("Cargo.toml");
        let Some(package) = parse_package_name(&manifest) else { continue };
        let short = short_name(&package);
        let lib_ident = package.replace('-', "_");
        let deps = parse_workspace_deps(&manifest, &known_packages);
        let files = load_sources(root, &dir.join("src"));
        crates.push(WorkspaceCrate { short, package, lib_ident, manifest_rel, deps, files });
    }
    crates.sort_by(|a, b| a.short.cmp(&b.short));
    Workspace { crates }
}

/// Extracts `name = "…"` from the `[package]` section of a manifest.
fn parse_package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Some(rest.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Extracts workspace-member dependency edges (short names) from the
/// `[dependencies]` / `[dev-dependencies]` sections. Only packages in
/// `known_packages` count — external crates are not layering edges.
fn parse_workspace_deps(manifest: &Path, known_packages: &[String]) -> Vec<(String, usize)> {
    let Ok(text) = fs::read_to_string(manifest) else { return Vec::new() };
    let mut deps = Vec::new();
    let mut in_deps = false;
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.starts_with('[') {
            // `[target.'cfg(…)'.dependencies]` would match too; the
            // workspace doesn't use target-specific deps.
            in_deps = t == "[dependencies]" || t == "[dev-dependencies]";
            continue;
        }
        if !in_deps || t.is_empty() || t.starts_with('#') {
            continue;
        }
        let name: String = t
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if !name.is_empty() && known_packages.contains(&name) {
            let short = short_name(&name);
            if !deps.iter().any(|(d, _)| *d == short) {
                deps.push((short, i + 1));
            }
        }
    }
    deps
}

/// Loads every shipped `.rs` file under `src_dir`, stripped and
/// test-truncated, with repo-relative paths.
fn load_sources(root: &Path, src_dir: &Path) -> Vec<SourceFile> {
    let mut paths = Vec::new();
    collect_rs(src_dir, &mut paths);
    paths.sort();
    let mut files = Vec::new();
    for p in paths {
        let rel = p.strip_prefix(root).unwrap_or(&p).to_string_lossy().replace('\\', "/");
        if is_nonshipped(&rel) {
            continue;
        }
        let Ok(raw) = fs::read_to_string(&p) else { continue };
        let stripped = strip_noncode(&raw);
        let code = truncate_at_test_module(&stripped).to_string();
        files.push(SourceFile { rel, raw, code });
    }
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names_map_packages() {
        assert_eq!(short_name("tsqr-linalg"), "linalg");
        assert_eq!(short_name("grid-tsqr"), "bin");
    }

    #[test]
    fn real_workspace_loads_all_crates() {
        // The lint crate sits at crates/lint — two levels below the
        // workspace root.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let ws = load_workspace(&root);
        let shorts: Vec<&str> = ws.crates.iter().map(|c| c.short.as_str()).collect();
        for want in ["linalg", "netsim", "gridmpi", "qcg", "core", "serve", "obs", "bench", "lint", "bin"] {
            assert!(shorts.contains(&want), "missing {want} in {shorts:?}");
        }
        let core = ws.get("core").unwrap();
        assert!(core.deps.iter().any(|(d, _)| d == "gridmpi"), "{:?}", core.deps);
        assert!(!core.files.is_empty());
        // Transitive closure reaches the bottom layer.
        assert!(ws.transitive_deps("serve").contains(&"linalg".to_string()));
    }
}
