//! Pass 3 of `archlint`: the static message-flow model.
//!
//! Communication-optimal TSQR's correctness argument is a *protocol*
//! argument — a fixed tag/pairing discipline per reduction step. The
//! dynamic side (happens-before gate, DPOR-lite explorer) checks the
//! schedules we replay; this pass checks **all code paths**: it
//! extracts every `send`/`recv`/`recv_any`/`exchange` call site with
//! its tag constant into a per-file message-flow table, verifies
//! send/recv pairing and tag-range ownership against
//! `scripts/commlint.protocol`, and renders the table as a pinned
//! golden artifact (`scripts/archlint.model`, regenerate with
//! `archlint --bless`) so protocol drift shows up as a diff in review,
//! not a deadlock in replay.

use crate::protocol::{parse_value, Protocol};
use crate::scan::Finding;
use crate::workspace::Workspace;

/// Communication operations the model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Op {
    /// Point-to-point send (a send-side use).
    Send,
    /// Named-source receive (a recv-side use).
    Recv,
    /// Wildcard receive (a recv-side use; also policed by commlint).
    RecvAny,
    /// Paired exchange — counts on both sides.
    Exchange,
}

/// One row of the extracted model: a `(file, tag)` pair with its
/// declared value and static call-site counts.
#[derive(Debug, Clone, Default)]
pub struct FlowRow {
    /// Declared constant value (normalized), if the file declares it.
    pub value: Option<String>,
    /// Call-site counts per op: `[send, recv, recv_any, exchange]`.
    pub counts: [usize; 4],
}

/// The extracted workspace model: `(file, tag) → row`, ordered.
pub type FlowTable = std::collections::BTreeMap<(String, String), FlowRow>;

/// `const TAG_*` declarations in one stripped file:
/// `(name, normalized value, line)`.
pub fn extract_tag_decls(code: &str) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    for (ln, line) in code.lines().enumerate() {
        let Some(ci) = line.find("const TAG_") else { continue };
        let decl = &line[ci + 6..];
        let name: String = decl.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        let Some(eq) = decl.find('=') else { continue };
        let value =
            crate::protocol::normalize_value(decl[eq + 1..].trim().trim_end_matches(';').trim());
        out.push((name, value, ln + 1));
    }
    out
}

/// Extracts `(op, tag, line)` call sites from one stripped file. The
/// tag is any `TAG_*` identifier inside the call's balanced argument
/// list (calls passing a computed tag variable carry no row — the
/// declaration check still covers their constants).
pub fn extract_call_sites(code: &str) -> Vec<(Op, String, usize)> {
    const PATTERNS: [(&str, Op); 7] = [
        (".send(", Op::Send),
        (".recv(", Op::Recv),
        (".recv::<", Op::Recv),
        (".recv_any(", Op::RecvAny),
        (".recv_any::<", Op::RecvAny),
        (".exchange(", Op::Exchange),
        (".exchange::<", Op::Exchange),
    ];
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (pat, op) in PATTERNS {
        let mut from = 0;
        while let Some(i) = code[from..].find(pat) {
            let at = from + i;
            from = at + pat.len();
            // Find the argument list. For plain patterns the `(` is the
            // pattern's last byte; for turbofish forms the balanced
            // `<…>` block (which may itself contain parens, e.g.
            // `recv::<Vec<(usize, M)>>`) must be skipped first.
            let open = if pat.ends_with('(') {
                at + pat.len() - 1
            } else {
                let mut angle = 0i32;
                let mut k = at + pat.len() - 1; // the `<` of `::<`
                loop {
                    match bytes.get(k) {
                        Some(b'<') => angle += 1,
                        Some(b'>') => {
                            angle -= 1;
                            if angle == 0 {
                                break;
                            }
                        }
                        Some(b';') | Some(b'{') | None => break,
                        _ => {}
                    }
                    k += 1;
                }
                if angle != 0 || bytes.get(k + 1) != Some(&b'(') {
                    continue;
                }
                k + 1
            };
            let mut depth = 0i32;
            let mut end = open;
            for (j, b) in bytes[open..].iter().enumerate() {
                match b {
                    b'(' => depth += 1,
                    b')' => {
                        depth -= 1;
                        if depth == 0 {
                            end = open + j;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let args = &code[open..end];
            let line = 1 + code[..at].bytes().filter(|&b| b == b'\n').count();
            // Dynamic-tag sites (no TAG_ literal in the argument list)
            // carry no row; the pairing check only constrains declared
            // tags.
            let mut a = 0;
            while let Some(t) = args[a..].find("TAG_") {
                let ts = a + t;
                let before_ok = ts == 0 || {
                    let c = args.as_bytes()[ts - 1] as char;
                    !(c.is_alphanumeric() || c == '_')
                };
                let name: String = args[ts..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                a = ts + name.len().max(4);
                if before_ok && name.len() > 4 {
                    out.push((op, name, line));
                }
            }
        }
    }
    out.sort_by(|a, b| (a.2, a.0, &a.1).cmp(&(b.2, b.0, &b.1)));
    out
}

/// Builds the message-flow table for the whole workspace.
pub fn build_flow_table(ws: &Workspace) -> FlowTable {
    let mut table = FlowTable::new();
    for c in &ws.crates {
        for f in &c.files {
            for (name, value, _) in extract_tag_decls(&f.code) {
                table
                    .entry((f.rel.clone(), name))
                    .or_default()
                    .value
                    .get_or_insert(value);
            }
            for (op, tag, _) in extract_call_sites(&f.code) {
                table.entry((f.rel.clone(), tag)).or_default().counts[op as usize] += 1;
            }
        }
    }
    table
}

/// Renders the model artifact — one deterministic line per row.
pub fn render_model(table: &FlowTable) -> String {
    let mut out = String::from(
        "# archlint message-flow model v1 — extracted send/recv/exchange call\n\
         # sites per (file, tag). Pinned golden: regenerate with `archlint\n\
         # --bless` after an intentional protocol change; any other diff is\n\
         # protocol drift. Format:\n\
         #   <file> <tag>=<declared value|?> send=N recv=N recv_any=N exchange=N\n",
    );
    for ((file, tag), row) in table {
        out.push_str(&format!(
            "{file} {tag}={} send={} recv={} recv_any={} exchange={}\n",
            row.value.as_deref().unwrap_or("?"),
            row.counts[0],
            row.counts[1],
            row.counts[2],
            row.counts[3],
        ));
    }
    out
}

/// Runs the protocol checks: declaration agreement, static send/recv
/// pairing, tag-range ownership, and golden-model comparison.
///
/// `golden` is the committed `scripts/archlint.model` contents (`None`
/// when the file is missing); `model_rel` its repo-relative path.
pub fn flow_pass(
    ws: &Workspace,
    proto: &Protocol,
    table: &FlowTable,
    golden: Option<&str>,
    model_rel: &str,
    protocol_rel: &str,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let all_files: Vec<&str> =
        ws.crates.iter().flat_map(|c| c.files.iter().map(|f| f.rel.as_str())).collect();

    // Declaration agreement (supersedes commlint's declaration-only
    // check — same table, but against extracted call sites too).
    for pf in &proto.files {
        if !all_files.contains(&pf.path.as_str()) {
            out.push(Finding {
                rule: "tag-protocol",
                path: pf.path.clone(),
                line: 0,
                message: "file listed in the protocol table does not exist".into(),
            });
            continue;
        }
        for (tag, want) in &pf.tags {
            let row = table.get(&(pf.path.clone(), tag.clone()));
            match row.and_then(|r| r.value.as_ref()) {
                None => out.push(Finding {
                    rule: "tag-protocol",
                    path: pf.path.clone(),
                    line: 0,
                    message: format!("tag `{tag}` is in the protocol table but not declared here"),
                }),
                Some(got) if got != want => out.push(Finding {
                    rule: "tag-protocol",
                    path: pf.path.clone(),
                    line: 0,
                    message: format!("tag `{tag}` = {got} but the protocol table says {want}"),
                }),
                Some(_) => {}
            }
            // Static pairing over extracted call sites.
            if let Some(row) = row {
                let sends = row.counts[Op::Send as usize] + row.counts[Op::Exchange as usize];
                let recvs = row.counts[Op::Recv as usize]
                    + row.counts[Op::RecvAny as usize]
                    + row.counts[Op::Exchange as usize];
                if sends == 0 || recvs == 0 {
                    let mut sides = Vec::new();
                    if sends == 0 {
                        sides.push("no send-side call site");
                    }
                    if recvs == 0 {
                        sides.push("no recv-side call site");
                    }
                    out.push(Finding {
                        rule: "protocol-flow",
                        path: pf.path.clone(),
                        line: 0,
                        message: format!(
                            "tag `{tag}` is unpaired in the extracted message flow: {} — \
                             a one-sided tag is a deadlock or dead code",
                            sides.join(", ")
                        ),
                    });
                }
            }
        }
    }

    // Declared TAG_ constants missing from the table.
    for ((file, tag), row) in table {
        if row.value.is_some()
            && !proto
                .files
                .iter()
                .any(|pf| pf.path == *file && pf.tags.iter().any(|(t, _)| t == tag))
        {
            out.push(Finding {
                rule: "tag-protocol",
                path: file.clone(),
                line: 0,
                message: format!(
                    "tag `{tag}` is not in {protocol_rel} — declare it there (and give \
                     its module a range)"
                ),
            });
        }
    }

    // Range ownership.
    for (i, a) in proto.ranges.iter().enumerate() {
        for b in proto.ranges.iter().skip(i + 1) {
            if a.lo <= b.hi && b.lo <= a.hi {
                out.push(Finding {
                    rule: "protocol-range",
                    path: protocol_rel.to_string(),
                    line: b.line,
                    message: format!(
                        "range `{}` [{}, {}] overlaps range `{}` [{}, {}]",
                        b.name, b.lo, b.hi, a.name, a.lo, a.hi
                    ),
                });
            }
        }
    }
    if !proto.ranges.is_empty() {
        for ((file, tag), row) in table {
            let Some(value) = row.value.as_ref().and_then(|v| parse_value(v)) else { continue };
            match proto.ranges.iter().find(|r| r.lo <= value && value <= r.hi) {
                None => out.push(Finding {
                    rule: "protocol-range",
                    path: file.clone(),
                    line: 0,
                    message: format!(
                        "tag `{tag}` = {value} falls in no declared range — add a \
                         `range` line to {protocol_rel}"
                    ),
                }),
                Some(r) if !r.owners.iter().any(|o| o == file) => out.push(Finding {
                    rule: "protocol-range",
                    path: file.clone(),
                    line: 0,
                    message: format!(
                        "tag `{tag}` = {value} lies in range `{}` [{}, {}] owned by {} — \
                         this file is not an owner",
                        r.name,
                        r.lo,
                        r.hi,
                        r.owners.join(", ")
                    ),
                }),
                Some(_) => {}
            }
        }
    }

    // Golden-model comparison (byte-exact).
    let rendered = render_model(table);
    match golden {
        None => out.push(Finding {
            rule: "protocol-model",
            path: model_rel.to_string(),
            line: 0,
            message: "model golden is missing — run `archlint --bless` and commit it".into(),
        }),
        Some(g) if g != rendered => {
            let drift = g
                .lines()
                .zip(rendered.lines())
                .enumerate()
                .find(|(_, (a, b))| a != b)
                .map(|(i, (a, b))| format!("first drift at line {}: `{a}` -> `{b}`", i + 1))
                .unwrap_or_else(|| "line count changed".to_string());
            out.push(Finding {
                rule: "protocol-model",
                path: model_rel.to_string(),
                line: 0,
                message: format!(
                    "extracted message-flow model drifted from the committed golden \
                     ({drift}) — review the protocol change, then `archlint --bless`"
                ),
            });
        }
        Some(_) => {}
    }

    out.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ProtocolFile, TagRange};
    use crate::workspace::{SourceFile, WorkspaceCrate};

    fn ws_one(code: &str) -> Workspace {
        Workspace {
            crates: vec![WorkspaceCrate {
                short: "core".into(),
                package: "tsqr-core".into(),
                lib_ident: "tsqr_core".into(),
                manifest_rel: "crates/core/Cargo.toml".into(),
                deps: vec![],
                files: vec![SourceFile {
                    rel: "crates/core/src/x.rs".into(),
                    raw: code.into(),
                    code: code.into(),
                }],
            }],
        }
    }

    fn proto_one(tags: Vec<(&str, &str)>, ranges: Vec<TagRange>) -> Protocol {
        Protocol {
            files: vec![ProtocolFile {
                path: "crates/core/src/x.rs".into(),
                tags: tags
                    .into_iter()
                    .map(|(t, v)| (t.to_string(), v.to_string()))
                    .collect(),
            }],
            ranges,
        }
    }

    const PAIRED: &str = "const TAG_A: u32 = 1001;\n\
        fn f(p: &mut P) {\n    p.send(1, TAG_A, &x);\n    let y: f64 = p.recv(0, TAG_A);\n}\n";

    #[test]
    fn call_sites_extract_ops_and_tags() {
        let sites = extract_call_sites(
            "p.send(1, TAG_A, &x);\nlet y = p.recv::<f64>(0, TAG_A);\nlet z = q.exchange(r, TAG_B, &w);\n",
        );
        assert_eq!(sites.len(), 3, "{sites:?}");
        assert_eq!(sites[0], (Op::Send, "TAG_A".into(), 1));
        assert_eq!(sites[1], (Op::Recv, "TAG_A".into(), 2));
        assert_eq!(sites[2], (Op::Exchange, "TAG_B".into(), 3));
    }

    #[test]
    fn paired_tag_in_range_is_clean() {
        let ws = ws_one(PAIRED);
        let table = build_flow_table(&ws);
        let proto = proto_one(
            vec![("TAG_A", "1001")],
            vec![TagRange {
                name: "alg".into(),
                lo: 1000,
                hi: 1099,
                owners: vec!["crates/core/src/x.rs".into()],
                line: 1,
            }],
        );
        let golden = render_model(&table);
        let f = flow_pass(&ws, &proto, &table, Some(&golden), "scripts/archlint.model", "scripts/commlint.protocol");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unpaired_tag_is_flagged() {
        let code = "const TAG_A: u32 = 1001;\nfn f(p: &mut P) {\n    p.send(1, TAG_A, &x);\n}\n";
        let ws = ws_one(code);
        let table = build_flow_table(&ws);
        let proto = proto_one(vec![("TAG_A", "1001")], vec![]);
        let golden = render_model(&table);
        let f = flow_pass(&ws, &proto, &table, Some(&golden), "m", "p");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "protocol-flow");
        assert!(f[0].message.contains("no recv-side"));
    }

    #[test]
    fn range_ownership_is_enforced() {
        let ws = ws_one(PAIRED);
        let table = build_flow_table(&ws);
        let proto = proto_one(
            vec![("TAG_A", "1001")],
            vec![TagRange {
                name: "other".into(),
                lo: 1000,
                hi: 1099,
                owners: vec!["crates/other/src/y.rs".into()],
                line: 1,
            }],
        );
        let golden = render_model(&table);
        let f = flow_pass(&ws, &proto, &table, Some(&golden), "m", "p");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "protocol-range");
        assert!(f[0].message.contains("not an owner"));
    }

    #[test]
    fn model_drift_is_flagged() {
        let ws = ws_one(PAIRED);
        let table = build_flow_table(&ws);
        let proto = proto_one(vec![("TAG_A", "1001")], vec![]);
        let f = flow_pass(&ws, &proto, &table, Some("stale golden\n"), "m", "p");
        assert!(f.iter().any(|x| x.rule == "protocol-model"), "{f:?}");
        let f2 = flow_pass(&ws, &proto, &table, None, "m", "p");
        assert!(f2.iter().any(|x| x.message.contains("--bless")), "{f2:?}");
    }

    #[test]
    fn overlapping_ranges_are_flagged() {
        let ws = ws_one(PAIRED);
        let table = build_flow_table(&ws);
        let mk = |name: &str, lo, hi, line| TagRange {
            name: name.into(),
            lo,
            hi,
            owners: vec!["crates/core/src/x.rs".into()],
            line,
        };
        let proto = proto_one(vec![("TAG_A", "1001")], vec![mk("a", 1000, 1099, 1), mk("b", 1050, 1200, 2)]);
        let golden = render_model(&table);
        let f = flow_pass(&ws, &proto, &table, Some(&golden), "m", "p");
        assert!(f.iter().any(|x| x.message.contains("overlaps")), "{f:?}");
    }
}
