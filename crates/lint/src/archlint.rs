//! `archlint` — the workspace-level static analyzer (see
//! `docs/static-analysis.md`).
//!
//! Three passes over the whole workspace, each rendering findings in
//! commlint's `path:line: [rule] message` format and sharing its
//! allowlist machinery (`scripts/archlint.allow`, stale entries
//! denied):
//!
//! 1. **layering** — the inter-crate dependency graph (manifest edges
//!    plus `use` edges) against `scripts/layering.toml`;
//! 2. **nondet-taint** — taint propagation from nondeterminism sources
//!    through the call graph into the deterministic crates;
//! 3. **protocol** — the static message-flow model: send/recv pairing
//!    and tag-range ownership against `scripts/commlint.protocol`,
//!    with the extracted model pinned as `scripts/archlint.model`
//!    (`--bless` regenerates it after an intentional change).
//!
//! Exit code is nonzero on any kept finding, so the tool gates
//! `scripts/verify.sh` and CI at zero findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use tsqr_lint::flow::{build_flow_table, flow_pass, render_model};
use tsqr_lint::layering::{layering_pass, load_layer_spec};
use tsqr_lint::protocol::load_protocol;
use tsqr_lint::scan::{load_allowlist, partition_findings, stale_allow_findings};
use tsqr_lint::taint::taint_pass;
use tsqr_lint::workspace::load_workspace;

const ALLOW_REL: &str = "scripts/archlint.allow";
const SPEC_REL: &str = "scripts/layering.toml";
const PROTOCOL_REL: &str = "scripts/commlint.protocol";
const MODEL_REL: &str = "scripts/archlint.model";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut verbose = false;
    let mut bless = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = PathBuf::from(args.next().expect("--root needs a value")),
            "--bless" => bless = true,
            "-v" | "--verbose" => verbose = true,
            "--help" | "-h" => {
                println!("usage: archlint [--root DIR] [--bless] [-v]");
                println!("  layering + nondeterminism-taint + protocol-model passes;");
                println!("  --bless regenerates {MODEL_REL}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("archlint: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let ws = load_workspace(&root);
    if ws.crates.is_empty() {
        eprintln!("archlint: no workspace crates under {} — wrong --root?", root.display());
        return ExitCode::FAILURE;
    }
    if verbose {
        for c in &ws.crates {
            eprintln!(
                "archlint: crate {} ({} files, deps: {})",
                c.short,
                c.files.len(),
                c.deps.iter().map(|(d, _)| d.as_str()).collect::<Vec<_>>().join(", ")
            );
        }
    }

    let (spec, mut findings) = load_layer_spec(&root.join(SPEC_REL), SPEC_REL);
    findings.extend(layering_pass(&ws, &spec));
    findings.extend(taint_pass(&ws, &spec.deterministic));

    let proto = load_protocol(&root.join(PROTOCOL_REL));
    let table = build_flow_table(&ws);
    if bless {
        let rendered = render_model(&table);
        if let Err(e) = fs::write(root.join(MODEL_REL), &rendered) {
            eprintln!("archlint: cannot write {MODEL_REL}: {e}");
            return ExitCode::FAILURE;
        }
        println!("archlint: blessed {MODEL_REL} ({} rows)", table.len());
    }
    let golden = fs::read_to_string(root.join(MODEL_REL)).ok();
    findings.extend(flow_pass(&ws, &proto, &table, golden.as_deref(), MODEL_REL, PROTOCOL_REL));

    let allow = load_allowlist(&root.join(ALLOW_REL));
    let (mut kept, suppressed) = partition_findings(findings, &allow);
    kept.extend(stale_allow_findings(&allow, &suppressed, ALLOW_REL));

    for f in &kept {
        println!("{}", f.render());
    }
    let files: usize = ws.crates.iter().map(|c| c.files.len()).sum();
    println!(
        "archlint: {} crate(s), {} file(s), {} model row(s); {} finding(s), {} suppressed by allowlist",
        ws.crates.len(),
        files,
        table.len(),
        kept.len(),
        suppressed.len()
    );
    if kept.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
