//! Pass 2 of `archlint`: nondeterminism-taint propagation.
//!
//! `commlint` denies *direct* uses of the nondeterminism sources
//! (wall-clock, unordered-map iteration, …) at the line level; it
//! cannot see a helper that reads `Instant::now()` two calls away from
//! `core/tsqr.rs`. This pass closes that hole: it extracts every
//! function definition and call site from the stripped sources, builds
//! a name-resolved call graph across the workspace (a call in crate X
//! can bind to any same-named function in X or X's transitive
//! workspace dependencies — deliberately conservative), seeds taint at
//! the sources, propagates it from callee to caller, and denies any
//! taint that reaches a function defined in one of the *deterministic*
//! crates (the `[deterministic]` list of `scripts/layering.toml`).
//!
//! Sources:
//!
//! * **wall-clock** — `Instant::now`, `SystemTime`, blocking
//!   `.recv_timeout(` waits;
//! * **unordered iteration** — iteration over bindings typed
//!   `HashMap`/`HashSet` (per-process seeded order);
//! * **unseeded RNG** — `thread_rng`, `rand::random`, `from_entropy`,
//!   `OsRng` (seeded `StdRng::seed_from_u64` et al. are fine);
//! * **environment** — `std::env::{var, var_os, vars, args, args_os,
//!   temp_dir}` reads;
//! * **thread spawns** — `thread::spawn` / `.spawn(` (an OS scheduler
//!   is a nondeterminism source until a happens-before proof says
//!   otherwise).
//!
//! Escape hatches, read from the **raw** source (comments included) on
//! the line(s) directly above a `fn`:
//!
//! * `archlint: allow(taint) — reason` — the function is a *documented
//!   boundary*: sources inside it are not reported and taint does not
//!   propagate through it to callers. This is how the gridmpi
//!   wall-clock safety net and the rank-thread spawner are sanctioned
//!   (each carries its justification in the annotation comment).
//! * `archlint: source — reason` — force-marks the function as a taint
//!   source even when no pattern matches (for wrappers whose body
//!   hides the source behind another crate or a macro).

use crate::scan::Finding;
use crate::workspace::{SourceFile, Workspace};

/// One extracted function definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Short name of the defining crate.
    pub crate_short: String,
    /// Repo-relative file path.
    pub file: String,
    /// Bare function name (last path segment, no generics).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Byte span of the body in the stripped file (empty for bodyless
    /// trait-method declarations).
    pub body: (usize, usize),
    /// `archlint: allow(taint)` annotation present.
    pub allow_taint: bool,
    /// `archlint: source` annotation present.
    pub forced_source: bool,
}

/// One seeded taint occurrence inside a function.
#[derive(Debug, Clone)]
struct Source {
    fn_idx: usize,
    kind: &'static str,
    what: String,
    line: usize,
}

/// Extracts every `fn` definition from one stripped file.
///
/// Line-level parsing: a `fn` token (not part of a longer identifier)
/// introduces a definition; the body is the brace-balanced block after
/// the signature (tracking `(`/`[` depth so `fn f(x: [u8; 3])` and
/// `where` clauses parse); a `;` at depth 0 before any `{` means a
/// bodyless trait-method declaration.
pub fn extract_fns(crate_short: &str, file: &SourceFile, annotations: &[(usize, bool, bool)]) -> Vec<FnDef> {
    let code = file.code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 3 < code.len() {
        // Find `fn` as a standalone token.
        if !(code[i] == b'f' && code[i + 1] == b'n' && !ident_byte(code[i + 2])) {
            i += 1;
            continue;
        }
        if i > 0 && ident_byte(code[i - 1]) {
            i += 1;
            continue;
        }
        let fn_at = i;
        i += 2;
        // Skip whitespace, read the name.
        while i < code.len() && (code[i] as char).is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < code.len() && ident_byte(code[i]) {
            i += 1;
        }
        if i == name_start {
            continue; // `fn` in `Fn(...)` bounds has no ident after it
        }
        let name = String::from_utf8_lossy(&code[name_start..i]).to_string();
        // Scan the signature for the body `{` or a terminating `;`.
        let mut depth = 0i32;
        let mut body = (0usize, 0usize);
        while i < code.len() {
            match code[i] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b';' if depth == 0 => {
                    i += 1;
                    break;
                }
                b'{' if depth == 0 => {
                    let start = i;
                    let end = match_brace(code, i);
                    body = (start, end);
                    i = end;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let line = 1 + file.code[..fn_at].bytes().filter(|&b| b == b'\n').count();
        out.push(FnDef {
            crate_short: crate_short.to_string(),
            file: file.rel.clone(),
            name,
            line,
            body,
            allow_taint: false,
            forced_source: false,
        });
    }
    // An annotation binds to the *first* fn after it (within 12 lines,
    // so attributes and doc lines may sit between) — never to a later
    // neighbor that also happens to fall inside the window.
    for (ann_line, allow, source) in annotations {
        if let Some(d) = out
            .iter_mut()
            .filter(|d| d.line > *ann_line && d.line - ann_line <= 12)
            .min_by_key(|d| d.line)
        {
            d.allow_taint |= allow;
            d.forced_source |= source;
        }
    }
    out
}

/// Reads `archlint:` annotations from the raw source. Returns
/// `(line, allow_taint, source)` per annotated line; the annotation
/// applies to the next `fn` within 12 lines (attributes and doc lines
/// may sit between).
pub fn extract_annotations(raw: &str) -> Vec<(usize, bool, bool)> {
    raw.lines()
        .enumerate()
        .filter_map(|(i, l)| {
            let allow = l.contains("archlint: allow(taint)");
            let source = l.contains("archlint: source");
            (allow || source).then_some((i + 1, allow, source))
        })
        .collect()
}

fn ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Index just past the brace block opening at `open` (best-effort on
/// unbalanced input: end of file).
fn match_brace(code: &[u8], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < code.len() {
        match code[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    code.len()
}

/// Rust keywords that look like calls when followed by `(`.
const KEYWORDS: [&str; 24] = [
    "if", "else", "for", "while", "loop", "match", "return", "fn", "let", "mut", "pub", "impl",
    "where", "move", "unsafe", "as", "in", "use", "mod", "ref", "break", "continue", "await",
    "dyn",
];

/// Extracts callee names from a body span: identifiers directly
/// followed by `(` or by a `::<…>` turbofish and `(`. Macro
/// invocations (`name!`) and non-terminal path segments (`seg::`) are
/// skipped.
pub fn extract_calls(code: &str, span: (usize, usize)) -> Vec<String> {
    let body = &code.as_bytes()[span.0..span.1];
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if !ident_byte(body[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < body.len() && ident_byte(body[i]) {
            i += 1;
        }
        let ident = std::str::from_utf8(&body[start..i]).unwrap_or("");
        if start > 0 && body[start - 1] == b'\'' {
            continue; // lifetime
        }
        let mut j = i;
        // Turbofish: `name::<T>(…)`.
        if body.get(j) == Some(&b':') && body.get(j + 1) == Some(&b':') && body.get(j + 2) == Some(&b'<') {
            let mut angle = 0i32;
            let mut k = j + 2;
            while k < body.len() {
                match body[k] {
                    b'<' => angle += 1,
                    b'>' => {
                        angle -= 1;
                        if angle == 0 {
                            break;
                        }
                    }
                    b';' | b'{' => break, // not a turbofish after all
                    _ => {}
                }
                k += 1;
            }
            if angle == 0 && k < body.len() {
                j = k + 1;
            } else {
                continue;
            }
        } else if body.get(j) == Some(&b':') && body.get(j + 1) == Some(&b':') {
            continue; // non-terminal path segment; the last one is scanned on its own
        }
        if body.get(j) == Some(&b'!') {
            continue; // macro
        }
        if body.get(j) != Some(&b'(') {
            continue;
        }
        if KEYWORDS.contains(&ident) || ident.is_empty() {
            continue;
        }
        // `fn name(` is the definition, not a call.
        let mut back = start;
        while back > 0 && (body[back - 1] as char).is_whitespace() {
            back -= 1;
        }
        if back >= 2 && &body[back - 2..back] == b"fn" && (back < 3 || !ident_byte(body[back - 3])) {
            continue;
        }
        out.push(ident.to_string());
    }
    out.sort();
    out.dedup();
    out
}

/// Textual nondeterminism-source patterns: `(kind, pattern)`.
const SOURCE_PATTERNS: [(&str, &str); 12] = [
    ("wall-clock", "Instant::now"),
    ("wall-clock", "SystemTime"),
    ("wall-clock", ".recv_timeout("),
    ("unseeded-rng", "thread_rng"),
    ("unseeded-rng", "rand::random"),
    ("unseeded-rng", "from_entropy"),
    ("unseeded-rng", "OsRng"),
    ("env-read", "env::var"),
    ("env-read", "env::vars"),
    ("env-read", "env::args"),
    ("env-read", "env::temp_dir"),
    ("thread-spawn", "thread::spawn"),
];

/// Finds source occurrences in one file: `(kind, what, line)`.
fn find_sources(file: &SourceFile) -> Vec<(&'static str, String, usize)> {
    let mut out = Vec::new();
    for (ln, line) in file.code.lines().enumerate() {
        for (kind, pat) in SOURCE_PATTERNS {
            if line.contains(pat) {
                out.push((kind, pat.trim_matches(['.', '(']).to_string(), ln + 1));
            }
        }
        // `.spawn(` catches scoped/builder spawns; exclude the textual
        // `thread::spawn` double-count (already matched above).
        if line.contains(".spawn(") && !line.contains("thread::spawn") {
            out.push(("thread-spawn", "spawn".to_string(), ln + 1));
        }
        // HashMap/HashSet iteration: any iterator-adapter use on a line
        // that also mentions the unordered types, plus `for … in` over
        // them. Bindings are resolved per file below.
    }
    for (name, ln) in unordered_bindings(&file.code) {
        out.push(("unordered-iter", name, ln));
    }
    out
}

/// Lines iterating over bindings typed `HashMap`/`HashSet` in this
/// file: `(binding name, line of the iteration)`. Same heuristic as
/// commlint's `hashmap-iter` rule.
fn unordered_bindings(code: &str) -> Vec<(String, usize)> {
    let mut names: Vec<String> = Vec::new();
    for line in code.lines() {
        let mut rest = line;
        while let Some(i) = rest.find("let ") {
            let after = &rest[i + 4..];
            let after = after.strip_prefix("mut ").unwrap_or(after);
            let name: String =
                after.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !name.is_empty()
                && (after[name.len()..].contains("HashMap")
                    || after[name.len()..].contains("HashSet"))
            {
                names.push(name);
            }
            rest = &rest[i + 4..];
        }
    }
    names.sort();
    names.dedup();
    let suffixes =
        [".iter()", ".iter_mut()", ".keys()", ".values()", ".values_mut()", ".into_iter()", ".drain("];
    let mut out = Vec::new();
    for (ln, line) in code.lines().enumerate() {
        for name in &names {
            let hit = suffixes.iter().any(|suf| {
                let pat = format!("{name}{suf}");
                line.find(&pat).is_some_and(|at| {
                    at == 0 || {
                        let c = line[..at].chars().next_back().unwrap();
                        !(c.is_alphanumeric() || c == '_' || c == '.')
                    }
                })
            }) || (line.contains("for ")
                && [format!("in {name} "), format!("in &{name} "), format!("in &mut {name} ")]
                    .iter()
                    .any(|pat| format!("{line} ").contains(pat.as_str())));
            if hit {
                out.push((name.clone(), ln + 1));
            }
        }
    }
    out
}

/// Runs the taint pass over the workspace. `deterministic` lists the
/// crates (short names) whose functions must stay taint-free.
pub fn taint_pass(ws: &Workspace, deterministic: &[String]) -> Vec<Finding> {
    // 1. Extract all functions and their annotations.
    let mut fns: Vec<FnDef> = Vec::new();
    let mut sources: Vec<Source> = Vec::new();
    for c in &ws.crates {
        for f in &c.files {
            let ann = extract_annotations(&f.raw);
            let defs = extract_fns(&c.short, f, &ann);
            let file_sources = find_sources(f);
            let base = fns.len();
            // Attribute each source line to its innermost enclosing fn.
            for (kind, what, line) in file_sources {
                let off = line_to_offset(&f.code, line);
                let mut best: Option<(usize, usize)> = None; // (span len, idx)
                for (idx, d) in defs.iter().enumerate() {
                    let (s, e) = d.body;
                    if s < e && s <= off && off < e {
                        let len = e - s;
                        if best.is_none_or(|(bl, _)| len < bl) {
                            best = Some((len, idx));
                        }
                    }
                }
                if let Some((_, idx)) = best {
                    sources.push(Source { fn_idx: base + idx, kind, what, line });
                }
                // Sources outside any fn (consts, statics) can't execute
                // at runtime on their own; skip them.
            }
            for (idx, d) in defs.iter().enumerate() {
                if d.forced_source {
                    sources.push(Source {
                        fn_idx: base + idx,
                        kind: "annotated",
                        what: "archlint: source".into(),
                        line: d.line,
                    });
                }
            }
            fns.extend(defs);
        }
    }

    // 2. Name index and per-crate dependency closure.
    let mut by_name: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
    for (i, d) in fns.iter().enumerate() {
        by_name.entry(&d.name).or_default().push(i);
    }
    let closures: std::collections::BTreeMap<String, Vec<String>> = ws
        .crates
        .iter()
        .map(|c| {
            let mut cl = ws.transitive_deps(&c.short);
            cl.push(c.short.clone());
            (c.short.clone(), cl)
        })
        .collect();

    // 3. Reverse call edges: callee → callers.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    for c in &ws.crates {
        let visible = &closures[&c.short];
        for f in &c.files {
            let ann = extract_annotations(&f.raw);
            let defs = extract_fns(&c.short, f, &ann);
            // Recompute indices of this file's fns in the global list.
            let file_fn_idx: Vec<usize> = fns
                .iter()
                .enumerate()
                .filter(|(_, d)| d.file == f.rel)
                .map(|(i, _)| i)
                .collect();
            for (local, d) in defs.iter().enumerate() {
                let (s, e) = d.body;
                if s >= e {
                    continue;
                }
                let caller = file_fn_idx[local];
                for callee_name in extract_calls(&f.code, d.body) {
                    if let Some(cands) = by_name.get(callee_name.as_str()) {
                        for &callee in cands {
                            if callee != caller && visible.contains(&fns[callee].crate_short) {
                                callers[callee].push(caller);
                            }
                        }
                    }
                }
            }
        }
    }

    // 4. For each source, BFS callee→caller (blocked at allow(taint)
    //    boundaries) and report if a deterministic-crate fn is reached.
    let mut out = Vec::new();
    let mut reported: Vec<(String, usize)> = Vec::new(); // dedupe by (file, line)
    for src in &sources {
        let origin = &fns[src.fn_idx];
        if origin.allow_taint {
            continue;
        }
        let mut seen = vec![false; fns.len()];
        let mut parent: Vec<Option<usize>> = vec![None; fns.len()];
        let mut queue = std::collections::VecDeque::from([src.fn_idx]);
        seen[src.fn_idx] = true;
        let mut hit: Option<usize> = None;
        while let Some(cur) = queue.pop_front() {
            if deterministic.contains(&fns[cur].crate_short) {
                hit = Some(cur);
                break;
            }
            for &up in &callers[cur] {
                if !seen[up] && !fns[up].allow_taint {
                    seen[up] = true;
                    parent[up] = Some(cur);
                    queue.push_back(up);
                }
            }
        }
        let Some(hit) = hit else { continue };
        let key = (origin.file.clone(), src.line);
        if reported.contains(&key) {
            continue;
        }
        reported.push(key);
        // Chain from the deterministic entry point down to the source.
        let mut chain = Vec::new();
        let mut cur = Some(hit);
        while let Some(i) = cur {
            chain.push(format!("{}::{}", fns[i].crate_short, fns[i].name));
            cur = parent[i];
        }
        let via = if chain.len() > 1 {
            format!(" — reachable from `{}` via {}", chain[0], chain.join(" -> "))
        } else {
            String::new()
        };
        out.push(Finding {
            rule: "nondet-taint",
            path: origin.file.clone(),
            line: src.line,
            message: format!(
                "[{}] `{}` in fn `{}` taints deterministic crate `{}`{} — make the \
                 value schedule-independent, or document the boundary with an \
                 `archlint: allow(taint)` annotation",
                src.kind, src.what, origin.name, fns[hit].crate_short, via
            ),
        });
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Byte offset of the start of 1-based `line` in `code`.
fn line_to_offset(code: &str, line: usize) -> usize {
    if line <= 1 {
        return 0;
    }
    let mut seen = 1;
    for (i, b) in code.bytes().enumerate() {
        if b == b'\n' {
            seen += 1;
            if seen == line {
                return i + 1;
            }
        }
    }
    code.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{SourceFile, WorkspaceCrate};

    fn ws_two(det_code: &str, util_code: &str) -> Workspace {
        let mk = |short: &str, deps: Vec<&str>, code: &str| WorkspaceCrate {
            short: short.into(),
            package: format!("tsqr-{short}"),
            lib_ident: format!("tsqr_{short}"),
            manifest_rel: format!("crates/{short}/Cargo.toml"),
            deps: deps.into_iter().map(|d| (d.to_string(), 1)).collect(),
            files: vec![SourceFile {
                rel: format!("crates/{short}/src/lib.rs"),
                raw: code.into(),
                code: code.into(),
            }],
        };
        Workspace {
            crates: vec![mk("det", vec!["util"], det_code), mk("util", vec![], util_code)],
        }
    }

    #[test]
    fn extracts_fns_and_calls() {
        let f = SourceFile {
            rel: "x.rs".into(),
            raw: String::new(),
            code: "pub fn outer(x: [u8; 3]) -> usize {\n    helper(x.len());\n    x.len()\n}\nfn helper(n: usize) {}\n"
                .into(),
        };
        let defs = extract_fns("c", &f, &[]);
        assert_eq!(defs.len(), 2, "{defs:?}");
        assert_eq!(defs[0].name, "outer");
        assert_eq!(defs[1].line, 5);
        let calls = extract_calls(&f.code, defs[0].body);
        assert!(calls.contains(&"helper".to_string()), "{calls:?}");
        assert!(calls.contains(&"len".to_string()));
        assert!(!calls.contains(&"outer".to_string()));
    }

    #[test]
    fn turbofish_and_macros_parse() {
        let f = SourceFile {
            rel: "x.rs".into(),
            raw: String::new(),
            code: "fn g() {\n    let v = parse::<u32>(s);\n    println(x);\n    assert(y);\n}\n"
                .into(),
        };
        let defs = extract_fns("c", &f, &[]);
        let calls = extract_calls(&f.code, defs[0].body);
        assert!(calls.contains(&"parse".to_string()), "{calls:?}");
    }

    #[test]
    fn indirect_wall_clock_is_caught() {
        // The hole commlint cannot see: det::entry → util::helper →
        // Instant::now.
        let det = "pub fn entry() -> u64 {\n    tsqr_util::helper()\n}\n";
        let util = "pub fn helper() -> u64 {\n    let t = Instant::now();\n    0\n}\n";
        let f = taint_pass(&ws_two(det, util), &["det".to_string()]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "nondet-taint");
        assert!(f[0].message.contains("det::entry"), "{}", f[0].message);
        assert!(f[0].message.contains("util::helper"));
    }

    #[test]
    fn allow_annotation_stops_propagation() {
        let det = "pub fn entry() -> u64 {\n    tsqr_util::helper()\n}\n";
        let util = "// archlint: allow(taint) — documented safety net\npub fn helper() -> u64 {\n    let t = Instant::now();\n    0\n}\n";
        let f = taint_pass(&ws_two(det, util), &["det".to_string()]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn forced_source_annotation_seeds_taint() {
        let det = "pub fn entry() -> u64 {\n    tsqr_util::helper()\n}\n";
        let util = "// archlint: source — wraps an opaque nondeterminism source\npub fn helper() -> u64 { 0 }\n";
        let f = taint_pass(&ws_two(det, util), &["det".to_string()]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("annotated"));
    }

    #[test]
    fn taint_in_nondeterministic_crate_is_fine() {
        let det = "pub fn entry() -> u64 { 0 }\n";
        let util = "pub fn helper() -> u64 {\n    let t = Instant::now();\n    0\n}\n";
        let f = taint_pass(&ws_two(det, util), &["det".to_string()]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unordered_iteration_is_a_source() {
        let det = "pub fn entry() {\n    let m: HashMap<u32, u32> = HashMap::new();\n    for k in m.keys() { use_it(k) }\n}\n";
        let f = taint_pass(&ws_two(det, "pub fn unused() {}\n"), &["det".to_string()]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("unordered-iter"), "{}", f[0].message);
    }
}
