//! `commlint` — the static half of commcheck (see
//! `docs/static-analysis.md`).
//!
//! A dependency-free source lint that denies the three ways a rank
//! program (or the runtime under it) can silently become
//! schedule-dependent, plus a protocol-table check on message tags:
//!
//! * **wall-clock** — `Instant::now`, `SystemTime` and blocking
//!   `.recv_timeout(` calls outside the allowlisted wall-clock safety
//!   net. Virtual-time paths must never read the wall clock.
//! * **hashmap-iter** — iteration (`.iter()`, `.keys()`, `.values()`,
//!   `.drain(…)`, `for … in`) over bindings typed `HashMap`/`HashSet`:
//!   the order is seeded per process, so anything derived from it is
//!   nondeterministic. Use `BTreeMap`/`BTreeSet` or sort before
//!   draining.
//! * **wildcard-recv** — `.recv_any(` outside test code: a wildcard
//!   receive makes the matched sender delivery-order-dependent.
//! * **tag-protocol** — every protocol file's `const TAG_*` declarations
//!   must match the declared table (`scripts/commlint.protocol`)
//!   exactly, and every tag must appear on both a send side and a
//!   receive side.
//!
//! The scanner strips comments and string literals first and truncates
//! each file at its trailing `#[cfg(test)]` module (repo convention), so
//! only shipped code is linted. Findings are suppressed by
//! `scripts/commlint.allow` lines of the form `rule path-substring`; an
//! allow entry that suppresses nothing is itself a finding
//! (**stale-allow**), so dead exceptions cannot rot silently.
//!
//! This is the line-level lint; `archlint` (same crate) runs the
//! workspace-level passes — crate layering, transitive
//! nondeterminism-taint, and the extracted message-flow model that
//! supersedes this tool's per-file pairing heuristic with real
//! call-site extraction. The shared machinery lives in the `tsqr_lint`
//! library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use tsqr_lint::protocol::{load_protocol, ProtocolFile};
use tsqr_lint::scan::{
    collect_rs, is_nonshipped, load_allowlist, partition_findings, stale_allow_findings,
    strip_noncode, truncate_at_test_module, Finding,
};

const ALLOW_REL: &str = "scripts/commlint.allow";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = PathBuf::from(args.next().expect("--root needs a value")),
            "-v" | "--verbose" => verbose = true,
            "--help" | "-h" => {
                println!("usage: commlint [--root DIR] [-v]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("commlint: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let allow = load_allowlist(&root.join(ALLOW_REL));
    let protocol = load_protocol(&root.join("scripts/commlint.protocol"));

    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files);
    collect_rs(&root.join("src"), &mut files);
    files.sort();

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for f in &files {
        let rel = f.strip_prefix(&root).unwrap_or(f).to_string_lossy().replace('\\', "/");
        if is_nonshipped(&rel) {
            continue;
        }
        let Ok(raw) = std::fs::read_to_string(f) else { continue };
        scanned += 1;
        let code = strip_noncode(&raw);
        let code = truncate_at_test_module(&code);
        if verbose {
            eprintln!("commlint: scanning {rel}");
        }
        lint_wall_clock(&rel, code, &mut findings);
        lint_hashmap_iter(&rel, code, &mut findings);
        lint_wildcard_recv(&rel, code, &mut findings);
        if let Some(expected) = protocol.files.iter().find(|p| p.path == rel) {
            lint_tag_protocol(&rel, code, expected, &mut findings);
        }
    }
    // Protocol files that vanished are a protocol violation too.
    for p in &protocol.files {
        if !files.iter().any(|f| {
            f.strip_prefix(&root).unwrap_or(f).to_string_lossy().replace('\\', "/") == p.path
        }) {
            findings.push(Finding {
                rule: "tag-protocol",
                path: p.path.clone(),
                line: 0,
                message: "file listed in commlint.protocol does not exist".into(),
            });
        }
    }

    let (mut kept, suppressed) = partition_findings(findings, &allow);
    kept.extend(stale_allow_findings(&allow, &suppressed, ALLOW_REL));

    for f in &kept {
        println!("{}", f.render());
    }
    println!(
        "commlint: {} file(s) scanned, {} finding(s), {} suppressed by allowlist",
        scanned,
        kept.len(),
        suppressed.len()
    );
    if kept.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------- rules

const ITER_SUFFIXES: [&str; 7] =
    [".iter()", ".iter_mut()", ".keys()", ".values()", ".values_mut()", ".into_iter()", ".drain("];

fn lint_wall_clock(path: &str, code: &str, out: &mut Vec<Finding>) {
    for (ln, line) in code.lines().enumerate() {
        for pat in ["Instant::now", "SystemTime"] {
            if line.contains(pat) {
                out.push(Finding {
                    rule: "wall-clock",
                    path: path.to_string(),
                    line: ln + 1,
                    message: format!(
                        "`{pat}` in a virtual-time codebase — wall-clock reads break replay \
                         determinism (allowlist only the simulator safety net)"
                    ),
                });
            }
        }
        if line.contains(".recv_timeout(") {
            out.push(Finding {
                rule: "wall-clock",
                path: path.to_string(),
                line: ln + 1,
                message: "blocking `.recv_timeout(` — wall-clock wait outside the allowlisted \
                          deadlock safety net"
                    .into(),
            });
        }
    }
}

fn lint_hashmap_iter(path: &str, code: &str, out: &mut Vec<Finding>) {
    // Pass 1: names bound to HashMap/HashSet in this file.
    let mut names: Vec<String> = Vec::new();
    for line in code.lines() {
        let mut rest = line;
        while let Some(i) = rest.find("let ") {
            let after = &rest[i + 4..];
            let after = after.strip_prefix("mut ").unwrap_or(after);
            let name: String =
                after.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !name.is_empty()
                && (after[name.len()..].contains("HashMap") || after[name.len()..].contains("HashSet"))
            {
                names.push(name);
            }
            rest = &rest[i + 4..];
        }
    }
    names.sort();
    names.dedup();
    // Pass 2: iteration over a tracked name.
    for (ln, line) in code.lines().enumerate() {
        for name in &names {
            for suf in ITER_SUFFIXES {
                let pat = format!("{name}{suf}");
                if occurs_as_ident_use(line, name, &pat) {
                    out.push(Finding {
                        rule: "hashmap-iter",
                        path: path.to_string(),
                        line: ln + 1,
                        message: format!(
                            "iteration over `{name}` (HashMap/HashSet): order is seeded per \
                             process — use BTreeMap/BTreeSet or sort before draining"
                        ),
                    });
                }
            }
            for pat in [format!("in {name} "), format!("in &{name} "), format!("in &mut {name} ")] {
                let probe = format!("{line} ");
                if probe.contains(&pat) && line.contains("for ") {
                    out.push(Finding {
                        rule: "hashmap-iter",
                        path: path.to_string(),
                        line: ln + 1,
                        message: format!("`for … in {name}` iterates a HashMap/HashSet"),
                    });
                }
            }
        }
    }
}

/// True when `pat` occurs in `line` and the character before the match is
/// not part of a longer identifier (so `sends.iter()` doesn't match the
/// tracked name `ends`).
fn occurs_as_ident_use(line: &str, _name: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(i) = line[from..].find(pat) {
        let at = from + i;
        let before_ok = at == 0 || {
            let c = line[..at].chars().next_back().unwrap();
            !(c.is_alphanumeric() || c == '_' || c == '.')
        };
        if before_ok {
            return true;
        }
        from = at + pat.len();
    }
    false
}

fn lint_wildcard_recv(path: &str, code: &str, out: &mut Vec<Finding>) {
    for (ln, line) in code.lines().enumerate() {
        if line.contains(".recv_any(") || line.contains(".recv_any::<") {
            out.push(Finding {
                rule: "wildcard-recv",
                path: path.to_string(),
                line: ln + 1,
                message: "wildcard receive — the matched sender depends on delivery order; \
                          name the source or move this into test code"
                    .into(),
            });
        }
    }
}

fn lint_tag_protocol(path: &str, code: &str, expected: &ProtocolFile, out: &mut Vec<Finding>) {
    // Extract `const TAG_*: u32 = VALUE;` declarations.
    let mut declared: Vec<(String, String, usize)> = Vec::new();
    for (ln, line) in code.lines().enumerate() {
        let Some(ci) = line.find("const TAG_") else { continue };
        let decl = &line[ci + 6..];
        let name: String =
            decl.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        let Some(eq) = decl.find('=') else { continue };
        let value: String = decl[eq + 1..]
            .trim()
            .trim_end_matches(';')
            .trim()
            .chars()
            .filter(|c| *c != '_')
            .collect::<String>()
            .to_lowercase();
        declared.push((name, value, ln + 1));
    }
    for (name, value, ln) in &declared {
        match expected.tags.iter().find(|(n, _)| n == name) {
            None => out.push(Finding {
                rule: "tag-protocol",
                path: path.to_string(),
                line: *ln,
                message: format!(
                    "tag `{name}` is not in scripts/commlint.protocol — declare it there"
                ),
            }),
            Some((_, want)) if want != value => out.push(Finding {
                rule: "tag-protocol",
                path: path.to_string(),
                line: *ln,
                message: format!("tag `{name}` = {value} but the protocol table says {want}"),
            }),
            _ => {}
        }
    }
    for (name, _) in &expected.tags {
        let Some((_, _, decl_ln)) = declared.iter().find(|(n, _, _)| n == name) else {
            out.push(Finding {
                rule: "tag-protocol",
                path: path.to_string(),
                line: 0,
                message: format!("tag `{name}` is in the protocol table but not declared here"),
            });
            continue;
        };
        // Pairing: the tag must be used on a send side and a receive
        // side (exchange counts as both). Look back a short window from
        // each use for the call name, so multi-line calls still match.
        // (archlint's message-flow model does this properly, from
        // balanced-paren call-site extraction; this windowed heuristic
        // stays as the fast line-level first gate.)
        let (mut send_side, mut recv_side) = (false, false);
        let bytes = code.as_bytes();
        let mut from = 0;
        while let Some(i) = code[from..].find(name.as_str()) {
            let at = from + i;
            from = at + name.len();
            // Skip the declaration itself and longer identifiers.
            let line_no = code[..at].bytes().filter(|&b| b == b'\n').count() + 1;
            let before_ok = at == 0 || {
                let c = bytes[at - 1] as char;
                !(c.is_alphanumeric() || c == '_')
            };
            let after_ok = at + name.len() >= code.len() || {
                let c = bytes[at + name.len()] as char;
                !(c.is_alphanumeric() || c == '_')
            };
            if !before_ok || !after_ok || line_no == *decl_ln {
                continue;
            }
            let window_start = at.saturating_sub(240);
            let window = &code[window_start..at];
            if window.contains("send(") || window.contains("exchange(") || window.contains("exchange::<") {
                send_side = true;
            }
            if window.contains("recv(")
                || window.contains("recv::<")
                || window.contains("recv_any")
                || window.contains("exchange(")
                || window.contains("exchange::<")
            {
                recv_side = true;
            }
        }
        if !send_side || !recv_side {
            let mut sides = String::new();
            if !send_side {
                let _ = write!(sides, "no send-side use");
            }
            if !recv_side {
                if !sides.is_empty() {
                    sides.push_str(", ");
                }
                let _ = write!(sides, "no recv-side use");
            }
            out.push(Finding {
                rule: "tag-protocol",
                path: path.to_string(),
                line: *decl_ln,
                message: format!("tag `{name}` is unpaired: {sides}"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_rule_fires() {
        let mut f = Vec::new();
        lint_wall_clock("x.rs", "let t = Instant::now();\nlet y = inbox.recv_timeout(d);\n", &mut f);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == "wall-clock"));
        // set_recv_timeout is a configuration call, not a wall-clock wait.
        let mut g = Vec::new();
        lint_wall_clock("x.rs", "rt.set_recv_timeout(d);\n", &mut g);
        assert!(g.is_empty());
    }

    #[test]
    fn hashmap_iter_rule_tracks_bindings() {
        let code = "let mut m: HashMap<u32, u32> = HashMap::new();\n\
                    for k in m.keys() { }\n\
                    let ok: BTreeMap<u32, u32> = BTreeMap::new();\n\
                    for k in ok.keys() { }\n";
        let mut f = Vec::new();
        lint_hashmap_iter("x.rs", code, &mut f);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn wildcard_recv_rule_fires() {
        let mut f = Vec::new();
        lint_wildcard_recv("x.rs", "let (s, m) = p.recv_any::<f64>(1)?;\n", &mut f);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn tag_protocol_checks_values_and_pairing() {
        let expected = ProtocolFile {
            path: "x.rs".into(),
            tags: vec![("TAG_A".into(), "1001".into()), ("TAG_B".into(), "1002".into())],
        };
        let code = "const TAG_A: u32 = 1001;\nconst TAG_B: u32 = 9;\n\
                    p.send(1, TAG_A, x)?;\nlet y: f64 = p.recv(0, TAG_A)?;\n";
        let mut f = Vec::new();
        lint_tag_protocol("x.rs", code, &expected, &mut f);
        // TAG_B: wrong value + unpaired (no uses at all).
        assert!(f.iter().any(|x| x.message.contains("TAG_B") && x.message.contains("1002")));
        assert!(f.iter().any(|x| x.message.contains("unpaired")));
        assert!(!f.iter().any(|x| x.message.contains("`TAG_A`")), "{f:?}");
    }
}
