//! Givens rotations and Givens-based QR.
//!
//! The paper's §II-C reads the 1970s/80s parallel QR literature (Heller;
//! Sameh & Kuck; Lord, Kowalik & Kumar) as "scalar implementations using a
//! flat tree of the algorithm in Demmel et al." — i.e. Givens QR *is*
//! TSQR with one-row blocks. This module provides the rotations
//! themselves ("advantageous when zeroing out a few elements of a matrix",
//! §II-B), a row-streaming Givens QR, and the test-suite proves the
//! scalar-flat-tree reading by checking it against the blocked TSQR
//! machinery.

use crate::matrix::Matrix;

/// A Givens rotation `G = [[c, s], [−s, c]]` chosen so that
/// `Gᵀ·(a, b)ᵀ = (r, 0)ᵀ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GivensRotation {
    /// Cosine component.
    pub c: f64,
    /// Sine component.
    pub s: f64,
}

impl GivensRotation {
    /// Computes the rotation zeroing `b` against `a`; returns `(G, r)`
    /// with `r = ±√(a² + b²)` (LAPACK `dlartg`-style, overflow-safe).
    pub fn zeroing(a: f64, b: f64) -> (GivensRotation, f64) {
        if b == 0.0 {
            return (GivensRotation { c: 1.0, s: 0.0 }, a);
        }
        if a == 0.0 {
            return (GivensRotation { c: 0.0, s: 1.0 }, b);
        }
        let r = a.hypot(b).copysign(a);
        (GivensRotation { c: a / r, s: b / r }, r)
    }

    /// Applies `Gᵀ` to the row pair `(x, y)` element-wise:
    /// `x' = c·x + s·y`, `y' = −s·x + c·y`.
    pub fn apply_to_rows(&self, x: &mut [f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        for (xi, yi) in x.iter_mut().zip(y.iter_mut()) {
            let t = self.c * *xi + self.s * *yi;
            *yi = -self.s * *xi + self.c * *yi;
            *xi = t;
        }
    }

    /// The inverse (transpose) rotation.
    pub fn inverse(&self) -> GivensRotation {
        GivensRotation { c: self.c, s: -self.s }
    }
}

/// A recorded elimination step: the rotation applied to rows `(i, j)`
/// (zeroing `A[j, col]` against `A[i, col]`).
#[derive(Debug, Clone, Copy)]
pub struct GivensStep {
    /// Pivot row.
    pub i: usize,
    /// Row whose `col` entry was annihilated.
    pub j: usize,
    /// Column that was zeroed.
    pub col: usize,
    /// The rotation.
    pub rot: GivensRotation,
}

/// A Givens QR factorization: the rotation sequence plus R.
#[derive(Debug, Clone)]
pub struct GivensQr {
    /// Eliminations in application order (`Qᵀ = G_k ⋯ G_1`).
    pub steps: Vec<GivensStep>,
    /// The `min(m,n) × n` upper-trapezoidal factor.
    pub r: Matrix,
    /// Original row count.
    pub m: usize,
}

/// Givens QR in the classic row-streaming order: rows arrive one at a
/// time and each new row is annihilated against the triangle — exactly
/// TSQR's flat tree with one-row blocks (§II-C's reading of the
/// 1970s algorithms).
pub fn givens_qr(a: &Matrix) -> GivensQr {
    let (m, n) = a.shape();
    let mut work = a.clone();
    let mut steps = Vec::new();
    for row in 1..m {
        // Annihilate row `row` against pivot rows 0..min(row, n).
        for col in 0..n.min(row) {
            let pivot = work[(col, col)];
            let target = work[(row, col)];
            if target == 0.0 {
                continue;
            }
            let (rot, _) = GivensRotation::zeroing(pivot, target);
            // Apply to both rows across all columns >= col.
            for k in col..n {
                let x = work[(col, k)];
                let y = work[(row, k)];
                work[(col, k)] = rot.c * x + rot.s * y;
                work[(row, k)] = -rot.s * x + rot.c * y;
            }
            steps.push(GivensStep { i: col, j: row, col, rot });
        }
    }
    let k = m.min(n);
    let r = Matrix::from_fn(k, n, |i, j| if i <= j { work[(i, j)] } else { 0.0 });
    GivensQr { steps, r, m }
}

impl GivensQr {
    /// `C := Qᵀ·C` in place.
    pub fn apply_qt(&self, c: &mut Matrix) {
        assert_eq!(c.rows(), self.m, "apply_qt: row mismatch");
        let n = c.cols();
        for s in &self.steps {
            for k in 0..n {
                let x = c[(s.i, k)];
                let y = c[(s.j, k)];
                c[(s.i, k)] = s.rot.c * x + s.rot.s * y;
                c[(s.j, k)] = -s.rot.s * x + s.rot.c * y;
            }
        }
    }

    /// `C := Q·C` in place (rotations inverted, reverse order).
    pub fn apply_q(&self, c: &mut Matrix) {
        assert_eq!(c.rows(), self.m, "apply_q: row mismatch");
        let n = c.cols();
        for s in self.steps.iter().rev() {
            let inv = s.rot.inverse();
            for k in 0..n {
                let x = c[(s.i, k)];
                let y = c[(s.j, k)];
                c[(s.i, k)] = inv.c * x + inv.s * y;
                c[(s.j, k)] = -inv.s * x + inv.c * y;
            }
        }
    }

    /// The explicit thin Q (`m × min(m,n)`).
    pub fn q_thin(&self) -> Matrix {
        let k = self.m.min(self.r.cols());
        let mut q = Matrix::zeros(self.m, k);
        for i in 0..k {
            q[(i, i)] = 1.0;
        }
        self.apply_q(&mut q);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::QrFactors;
    use crate::verify::{orthogonality, r_distance, relative_residual};

    #[test]
    fn rotation_zeroes_the_second_component() {
        for (a, b) in [(3.0, 4.0), (-3.0, 4.0), (0.0, 2.0), (2.0, 0.0), (1e-200, 1e-200)] {
            let (g, r) = GivensRotation::zeroing(a, b);
            // Apply to the generating pair.
            let mut x = [a];
            let mut y = [b];
            g.apply_to_rows(&mut x, &mut y);
            assert!((x[0] - r).abs() <= 1e-12 * r.abs().max(1.0), "a={a} b={b}");
            assert!(y[0].abs() <= 1e-12 * r.abs().max(1e-300));
            // Orthogonality: c² + s² = 1.
            assert!((g.c * g.c + g.s * g.s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn givens_qr_matches_householder() {
        for (m, n) in [(8usize, 8usize), (20, 5), (5, 9), (1, 1)] {
            let a = Matrix::random_uniform(m, n, 61 + (m * n) as u64);
            let g = givens_qr(&a);
            let reference = QrFactors::compute(&a, 8).r();
            assert!(
                r_distance(&g.r, &reference) < 1e-11,
                "R mismatch for {m}x{n}"
            );
            let q = g.q_thin();
            assert!(orthogonality(&q) < 1e-12);
            assert!(relative_residual(&a, &q, &g.r) < 1e-12);
        }
    }

    #[test]
    fn qt_then_q_is_identity() {
        let a = Matrix::random_uniform(12, 4, 63);
        let g = givens_qr(&a);
        let c0 = Matrix::random_uniform(12, 3, 64);
        let mut c = c0.clone();
        g.apply_qt(&mut c);
        g.apply_q(&mut c);
        assert!(c.approx_eq(&c0, 1e-12));
    }

    #[test]
    fn rotation_count_matches_the_annihilation_pattern() {
        // Dense m×n with m > n: (m−1)·n − n(n−1)/2 entries below the
        // diagonal to kill.
        let (m, n) = (10usize, 4usize);
        let a = Matrix::random_uniform(m, n, 65);
        let g = givens_qr(&a);
        let expect = (m - 1) * n - n * (n - 1) / 2;
        assert_eq!(g.steps.len(), expect);
    }

    #[test]
    fn scalar_flat_tree_tsqr_equivalence() {
        // §II-C: Givens row-streaming QR *is* TSQR with one-row blocks on
        // a flat tree. Stream the same matrix through the stacked-triangle
        // machinery one row at a time and compare R factors.
        let (m, n) = (24usize, 5usize);
        let a = Matrix::random_uniform(m, n, 67);
        // Flat-tree scalar TSQR: R accumulates row by row.
        let mut acc = QrFactors::compute(&a.sub_matrix(0, 0, n, n), 8)
            .r()
            .upper_triangular_padded();
        for row in n..m {
            let mut b = a.sub_matrix(row, 0, 1, n);
            let f = crate::stacked::tpqrt_dense(&mut acc, &mut b);
            let _ = f;
            acc = acc.upper_triangular_padded();
        }
        let g = givens_qr(&a);
        assert!(r_distance(&acc, &g.r) < 1e-11, "the two scalar schemes agree");
    }
}
