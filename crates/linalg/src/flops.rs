//! Closed-form floating-point operation counts for the kernels in this
//! crate.
//!
//! These are the standard leading-order LAPACK working notes counts; the
//! symbolic execution engine of `tsqr-core` charges exactly these costs, and
//! the performance model of the paper (Tables I and II) is expressed in the
//! same terms, so model-vs-measured comparisons are apples to apples.

/// Flops of a Householder QR of an `m × n` matrix (R only):
/// `2mn² − 2n³/3` for `m ≥ n`.
pub fn geqrf(m: u64, n: u64) -> u64 {
    debug_assert!(m >= n, "geqrf flops formula assumes a tall matrix");
    (2 * m * n * n).saturating_sub(2 * n * n * n / 3)
}

/// Flops of the structured QR of two stacked `n × n` triangles
/// ([`crate::stacked::tpqrt`]): `≈ 2n³/3`.
///
/// This is the per-tree-level surcharge in the paper's Table I
/// (`2/3·log₂(P)·N³` over `log₂(P)` levels).
pub fn tpqrt(n: u64) -> u64 {
    2 * n * n * n / 3
}

/// Flops of a dense QR of the `2n × n` stack — what the combine would cost
/// without exploiting structure. The ratio `stack_qr_dense / tpqrt ≈ 5`
/// quantifies the value of the structured kernel.
pub fn stack_qr_dense(n: u64) -> u64 {
    geqrf(2 * n, n)
}

/// Flops of forming the thin explicit Q (`m × n`) from a factored `m × n`
/// matrix (`org2r`): `2mn² − 2n³/3` to leading order — the same as the
/// factorization, which is why computing both Q and R costs twice the
/// R-only factorization (the paper's Property 1 / Table II).
pub fn org2r(m: u64, n: u64) -> u64 {
    geqrf(m, n)
}

/// Flops of applying the implicit Q of a [`crate::stacked::tpqrt`]
/// factorization to a stacked pair of `n × k` blocks: `≈ 2n²k` per side
/// pair (dot + axpy over the triangular profile), i.e. `4·(n²/2)·k·…` —
/// we charge `3n²k` to leading order (dot `n²k`, two updates `2n²k`).
pub fn tpmqrt(n: u64, k: u64) -> u64 {
    3 * n * n * k
}

/// Flops of the structured QR of an `n × n` triangle stacked on a dense
/// `q × n` block ([`crate::stacked::tpqrt_dense`]): `≈ 2qn²`.
pub fn tpqrt_dense(n: u64, q: u64) -> u64 {
    2 * q * n * n
}

/// Flops of applying a [`crate::stacked::tpqrt_dense`] Q to a stacked pair
/// with `k` columns: `≈ 4qnk`.
pub fn tpmqrt_dense(n: u64, q: u64, k: u64) -> u64 {
    4 * q * n * k
}

/// Flops of `C += op(A)·op(B)` with `C` being `m × n` and inner dimension
/// `k`: `2mnk`.
pub fn gemm(m: u64, n: u64, k: u64) -> u64 {
    2 * m * n * k
}

/// Flops charged to one column step of the distributed `PDGEQR2` panel
/// factorization.
///
/// `m_loc` is the member's local row count, `j` the column index, `g` the
/// group size and `n_trail` the trailing column count. ScaLAPACK
/// distributes rows block-cyclically, so the `j` rows already reduced to
/// the triangle are shed *uniformly* across the group — each member works
/// on `≈ m_loc − j/g` active rows. Reflector generation costs `≈ 2·a`
/// flops and the update `≈ 4·a·n_trail`.
pub fn pdgeqr2_column(m_loc: u64, j: u64, g: u64, n_trail: u64) -> u64 {
    let active = m_loc.saturating_sub(j / g.max(1));
    2 * active + 4 * active * n_trail
}

/// Total flops of `PDGEQR2` on a local `m_loc × n` block in a group of
/// `g` — summing [`pdgeqr2_column`] reproduces
/// `≈ 2·m_loc·n² − (2n³/3)/g`, i.e. the ScaLAPACK QR2 row of Table I with
/// `M = g·m_loc` divided across the `P = g` processes.
pub fn pdgeqr2_local(m_loc: u64, n: u64, g: u64) -> u64 {
    (0..n).map(|j| pdgeqr2_column(m_loc, j, g, n - j - 1)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geqrf_square_and_tall() {
        assert_eq!(geqrf(10, 10), 2 * 10 * 100 - 2 * 1000 / 3);
        // Very tall: dominated by 2mn².
        let m = 1_000_000;
        let n = 64;
        let f = geqrf(m, n);
        assert!((f as f64 / (2.0 * m as f64 * (n * n) as f64) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn structured_combine_is_about_5x_cheaper() {
        let n = 256;
        let ratio = stack_qr_dense(n) as f64 / tpqrt(n) as f64;
        assert!((4.0..6.0).contains(&ratio), "ratio was {ratio}");
    }

    #[test]
    fn pdgeqr2_local_matches_closed_form() {
        // A group of g processes, m_loc rows each: per-process flops must
        // track 2·m_loc·n² − (2n³/3)/g (Table I with M = g·m_loc, P = g).
        for g in [1u64, 2, 8, 64] {
            let (m_loc, n) = (10_000u64, 64u64);
            let measured = pdgeqr2_local(m_loc, n, g) as f64;
            let closed = 2.0 * m_loc as f64 * (n * n) as f64
                - 2.0 / 3.0 * (n * n * n) as f64 / g as f64;
            assert!(
                (measured / closed - 1.0).abs() < 0.01,
                "g={g}: measured {measured} vs closed-form {closed}"
            );
        }
    }

    #[test]
    fn pdgeqr2_single_process_matches_geqrf() {
        // With g = 1 the per-column charges sum to the dense QR count.
        let (m, n) = (5_000u64, 32u64);
        let a = pdgeqr2_local(m, n, 1) as f64;
        let b = geqrf(m, n) as f64;
        assert!((a / b - 1.0).abs() < 0.01, "{a} vs {b}");
    }

    #[test]
    fn q_formation_doubles_total_cost() {
        let (m, n) = (1_000_000u64, 128u64);
        let r_only = geqrf(m, n);
        let with_q = r_only + org2r(m, n);
        let ratio = with_q as f64 / r_only as f64;
        assert!((ratio - 2.0).abs() < 1e-6);
    }

    #[test]
    fn gemm_count() {
        assert_eq!(gemm(2, 3, 4), 48);
    }
}
