//! Householder QR factorization: unblocked (`geqr2`), blocked compact-WY
//! (`geqrf` via `larft`/`larfb`), explicit-Q (`org2r`) and implicit-Q
//! application (`orm2r`).
//!
//! These mirror the LAPACK routines of the same names: the factored matrix
//! holds `R` in its upper triangle and the Householder vectors `V` (unit
//! lower trapezoidal, leading 1s implicit) below the diagonal, with the
//! scaling factors in `tau`. The blocked path is what a ScaLAPACK `PDGEQRF`
//! domain call runs locally; the unblocked path is the `PDGEQR2` panel
//! kernel the paper analyses.

use crate::blas::{axpy, dot, trmm_upper_left};
use crate::householder::{larf_left, larfg};
use crate::matrix::Matrix;
use crate::view::{View, ViewMut};

/// Transpose flag for BLAS-like kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// Which side an implicit Q is applied from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// `C := op(Q)·C`
    Left,
    /// `C := C·op(Q)`
    Right,
}

/// Default panel width for the blocked factorization — matches the
/// ScaLAPACK default `NB = 64` the paper uses (§V-B).
pub const DEFAULT_NB: usize = 64;

/// Unblocked Householder QR of the window `a` (LAPACK `dgeqr2`).
///
/// On exit the upper triangle holds `R`, the strict lower part holds the
/// reflector tails, and `tau[j]` the scaling factors. `tau` must have length
/// `min(rows, cols)`.
pub fn geqr2(a: &mut ViewMut<'_>, tau: &mut [f64]) {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    assert!(tau.len() >= k, "geqr2: tau too short ({} < {k})", tau.len());
    let mut vbuf = vec![0.0; m];
    let mut work = vec![0.0; n];
    for j in 0..k {
        // Generate the reflector for column j, rows j..m.
        let refl = {
            let col = a.col_mut(j);
            larfg(&mut col[j..m])
        };
        tau[j] = refl.tau;
        // Stash v_tail, then set the diagonal to beta.
        let vlen = m - j - 1;
        vbuf[..vlen].copy_from_slice(&a.col(j)[j + 1..m]);
        a.set(j, j, refl.beta);
        // Apply H_j to the trailing columns.
        if j + 1 < n {
            let mut trail = a.sub_mut(j, j + 1, m - j, n - j - 1);
            larf_left(refl.tau, &vbuf[..vlen], &mut trail, &mut work);
        }
    }
}

/// Forms the upper-triangular block reflector factor `T` (LAPACK `dlarft`,
/// forward/columnwise) such that `H₁·H₂⋯H_k = I − V·T·Vᵀ`.
///
/// `v` is the factored panel (only its unit-lower-trapezoidal part is read).
pub fn larft(v: &View<'_>, tau: &[f64]) -> Matrix {
    let m = v.rows();
    let k = v.cols();
    assert!(tau.len() >= k, "larft: tau too short");
    let mut t = Matrix::zeros(k, k);
    let mut w = vec![0.0; k];
    for j in 0..k {
        let tj = tau[j];
        t[(j, j)] = tj;
        if tj == 0.0 || j == 0 {
            continue;
        }
        // w[i] = V(:,i)ᵀ v_j for i < j, with v_j = [0…0, 1, V(j+1..m, j)].
        let vj = v.col(j);
        for (i, wi) in w.iter_mut().enumerate().take(j) {
            let vi = v.col(i);
            *wi = vi[j] + dot(&vi[j + 1..m], &vj[j + 1..m]);
        }
        // T(0..j, j) = −τ_j · T(0..j,0..j) · w
        for i in 0..j {
            let mut s = 0.0;
            for l in i..j {
                s += t[(i, l)] * w[l];
            }
            t[(i, j)] = -tj * s;
        }
    }
    t
}

/// Applies the block reflector `Q = I − V·T·Vᵀ` (or `Qᵀ`) from the left to
/// `c` (LAPACK `dlarfb`, side = left, forward/columnwise).
///
/// `v` is `m × k` unit lower trapezoidal (upper part ignored), `t` the `k × k`
/// triangular factor from [`larft`]. `trans = Yes` applies `Qᵀ`.
pub fn larfb_left(trans: Trans, v: &View<'_>, t: &View<'_>, c: &mut ViewMut<'_>) {
    let m = c.rows();
    let n = c.cols();
    let k = v.cols();
    assert_eq!(v.rows(), m, "larfb: V/C row mismatch");
    assert_eq!((t.rows(), t.cols()), (k, k), "larfb: T shape mismatch");
    if k == 0 || n == 0 {
        return;
    }
    // W = Ṽᵀ·C   (k × n), Ṽ = V with unit diagonal, zero upper part.
    let mut w = Matrix::zeros(k, n);
    for j in 0..n {
        let cj = c.col(j);
        for i in 0..k {
            let vi = v.col(i);
            w[(i, j)] = cj[i] + dot(&vi[i + 1..m], &cj[i + 1..m]);
        }
    }
    // W := op(T)·W, with op = Tᵀ for Qᵀ and T for Q.
    trmm_upper_left(trans, t, &mut w.view_mut());
    // C := C − Ṽ·W.
    for j in 0..n {
        let wj: Vec<f64> = (0..k).map(|i| w[(i, j)]).collect();
        let cj = c.col_mut(j);
        // Rows 0..k: unit lower triangular part.
        for i in (0..k).rev() {
            let mut s = wj[i];
            for (l, &wl) in wj.iter().enumerate().take(i) {
                s += v.get(i, l) * wl;
            }
            cj[i] -= s;
        }
        // Rows k..m: dense part.
        for (l, &wl) in wj.iter().enumerate() {
            let vl = v.col(l);
            axpy(-wl, &vl[k..m], &mut cj[k..m]);
        }
    }
}

/// Blocked Householder QR (LAPACK `dgeqrf`) with panel width `nb`.
///
/// Falls back to [`geqr2`] when the matrix is narrower than one panel.
pub fn geqrf(a: &mut ViewMut<'_>, tau: &mut [f64], nb: usize) {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    assert!(tau.len() >= k, "geqrf: tau too short");
    let nb = nb.max(1);
    let mut j = 0;
    while j < k {
        let ib = nb.min(k - j);
        // Panel = A[j.., j..j+ib]; trailing = A[j.., j+ib..].
        let mut below = a.sub_mut(j, j, m - j, n - j);
        let (mut panel, mut trail) = below.split_cols_at_mut(ib);
        geqr2(&mut panel, &mut tau[j..j + ib]);
        if trail.cols() > 0 {
            let t = larft(&panel.as_view(), &tau[j..j + ib]);
            larfb_left(Trans::Yes, &panel.as_view(), &t.view(), &mut trail);
        }
        j += ib;
    }
}

/// Forms the thin explicit `Q` (`m × k`) from a factored matrix
/// (LAPACK `dorg2r` applied to the first `k` reflectors).
pub fn org2r(factors: &View<'_>, tau: &[f64]) -> Matrix {
    let m = factors.rows();
    let k = factors.cols().min(m).min(tau.len());
    let mut q = Matrix::zeros(m, k);
    for j in 0..k {
        q[(j, j)] = 1.0;
    }
    let mut work = vec![0.0; k];
    for j in (0..k).rev() {
        let vj: Vec<f64> = factors.col(j)[j + 1..m].to_vec();
        let mut window = q.view_mut();
        let mut sub = window.sub_mut(j, j, m - j, k - j);
        larf_left(tau[j], &vj, &mut sub, &mut work);
    }
    q
}

/// Applies the implicit `Q` of a factored matrix to `c`
/// (LAPACK `dorm2r`): `C := op(Q)·C` (left) or `C := C·op(Q)` (right).
pub fn orm2r(side: Side, trans: Trans, factors: &View<'_>, tau: &[f64], c: &mut ViewMut<'_>) {
    let mv = factors.rows();
    let k = factors.cols().min(mv).min(tau.len());
    match side {
        Side::Left => {
            assert_eq!(c.rows(), mv, "orm2r(Left): C row count must match V");
            let n = c.cols();
            let mut work = vec![0.0; n];
            let order: Vec<usize> = match trans {
                Trans::Yes => (0..k).collect(),      // Qᵀ = H_k ⋯ H_1 applied H_1 first
                Trans::No => (0..k).rev().collect(), // Q = H_1 ⋯ H_k applied H_k first
            };
            for j in order {
                let vj: Vec<f64> = factors.col(j)[j + 1..mv].to_vec();
                let mut sub = c.sub_mut(j, 0, mv - j, n);
                larf_left(tau[j], &vj, &mut sub, &mut work);
            }
        }
        Side::Right => {
            assert_eq!(c.cols(), mv, "orm2r(Right): C column count must match V rows");
            let m = c.rows();
            let order: Vec<usize> = match trans {
                Trans::No => (0..k).collect(),       // C·H_1·H_2⋯
                Trans::Yes => (0..k).rev().collect(),
            };
            let mut w = vec![0.0; m];
            for j in order {
                let tj = tau[j];
                if tj == 0.0 {
                    continue;
                }
                let vj: Vec<f64> = factors.col(j)[j + 1..mv].to_vec();
                // w = C[:, j..] · v  (v = [1; vj])
                for (i, wi) in w.iter_mut().enumerate().take(m) {
                    let mut s = c.get(i, j);
                    for (l, &vl) in vj.iter().enumerate() {
                        s += c.get(i, j + 1 + l) * vl;
                    }
                    *wi = s;
                }
                // C[:, j..] -= τ w vᵀ
                for (i, &wi) in w.iter().enumerate().take(m) {
                    let tw = tj * wi;
                    c.col_mut(j)[i] -= tw;
                    for (l, &vl) in vj.iter().enumerate() {
                        c.col_mut(j + 1 + l)[i] -= tw * vl;
                    }
                }
            }
        }
    }
}

/// An owned QR factorization: `R` in the upper triangle of `factors`,
/// Householder vectors below it, scaling factors in `tau`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// The `m × n` factored matrix (R above the diagonal, V below).
    pub factors: Matrix,
    /// Reflector scaling factors, length `min(m, n)`.
    pub tau: Vec<f64>,
}

impl QrFactors {
    /// Factors a copy of `a` using the blocked algorithm.
    pub fn compute(a: &Matrix, nb: usize) -> Self {
        let mut f = a.clone();
        let k = a.rows().min(a.cols());
        let mut tau = vec![0.0; k];
        geqrf(&mut f.view_mut(), &mut tau, nb);
        QrFactors { factors: f, tau }
    }

    /// Factors a copy of `a` with the unblocked algorithm (`geqr2`).
    pub fn compute_unblocked(a: &Matrix) -> Self {
        let mut f = a.clone();
        let k = a.rows().min(a.cols());
        let mut tau = vec![0.0; k];
        geqr2(&mut f.view_mut(), &mut tau);
        QrFactors { factors: f, tau }
    }

    /// The `min(m,n) × n` upper-triangular factor `R`.
    pub fn r(&self) -> Matrix {
        self.factors.upper_triangular()
    }

    /// The thin explicit orthogonal factor `Q` (`m × min(m,n)`).
    pub fn q_thin(&self) -> Matrix {
        let k = self.factors.rows().min(self.factors.cols());
        org2r(&self.factors.sub(0, 0, self.factors.rows(), k), &self.tau)
    }

    /// `C := Qᵀ·C` in place.
    pub fn apply_qt_left(&self, c: &mut Matrix) {
        orm2r(Side::Left, Trans::Yes, &self.factors.view(), &self.tau, &mut c.view_mut());
    }

    /// `C := Q·C` in place.
    pub fn apply_q_left(&self, c: &mut Matrix) {
        orm2r(Side::Left, Trans::No, &self.factors.view(), &self.tau, &mut c.view_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{orthogonality, relative_residual};

    const TOL: f64 = 1e-12;

    fn check_qr(a: &Matrix, f: &QrFactors) {
        let q = f.q_thin();
        let r = f.r();
        assert!(relative_residual(a, &q, &r) < TOL, "residual too large");
        assert!(orthogonality(&q) < TOL, "Q not orthogonal");
        // R upper triangular by construction of `r()`; also check the
        // factored storage agrees above the diagonal.
        for i in 0..r.rows() {
            for j in 0..r.cols() {
                if i > j {
                    assert_eq!(r[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn geqr2_tall_matrix() {
        let a = Matrix::random_uniform(20, 5, 1);
        let f = QrFactors::compute_unblocked(&a);
        check_qr(&a, &f);
    }

    #[test]
    fn geqr2_square_matrix() {
        let a = Matrix::random_uniform(6, 6, 2);
        let f = QrFactors::compute_unblocked(&a);
        check_qr(&a, &f);
    }

    #[test]
    fn geqr2_single_column() {
        let a = Matrix::random_uniform(9, 1, 3);
        let f = QrFactors::compute_unblocked(&a);
        check_qr(&a, &f);
        assert!((f.r()[(0, 0)].abs() - a.norm_fro()).abs() < 1e-12);
    }

    #[test]
    fn geqrf_matches_geqr2() {
        let a = Matrix::random_uniform(40, 12, 4);
        let blocked = QrFactors::compute(&a, 5);
        let unblocked = QrFactors::compute_unblocked(&a);
        assert!(blocked.factors.approx_eq(&unblocked.factors, 1e-11));
        for (x, y) in blocked.tau.iter().zip(&unblocked.tau) {
            assert!((x - y).abs() < 1e-11);
        }
    }

    #[test]
    fn geqrf_various_panel_widths() {
        let a = Matrix::random_uniform(33, 17, 5);
        for nb in [1, 2, 3, 8, 16, 17, 64] {
            let f = QrFactors::compute(&a, nb);
            check_qr(&a, &f);
        }
    }

    #[test]
    fn geqrf_wide_matrix() {
        let a = Matrix::random_uniform(5, 12, 6);
        let f = QrFactors::compute(&a, 3);
        // For wide matrices R is 5x12 upper trapezoidal; check A = Q R.
        let q = f.q_thin();
        let r = f.r();
        assert!(relative_residual(&a, &q, &r) < TOL);
        assert!(orthogonality(&q) < TOL);
    }

    #[test]
    fn larft_reproduces_block_reflector() {
        let a = Matrix::random_uniform(10, 4, 7);
        let f = QrFactors::compute_unblocked(&a);
        let t = larft(&f.factors.view(), &f.tau);
        // Build Q densely from I − V·T·Vᵀ and compare with org2r.
        let m = 10;
        let k = 4;
        let mut v = Matrix::zeros(m, k);
        for j in 0..k {
            v[(j, j)] = 1.0;
            for i in j + 1..m {
                v[(i, j)] = f.factors[(i, j)];
            }
        }
        let vt = v.matmul(&t.upper_triangular()).matmul(&v.transpose());
        let q_dense = Matrix::from_fn(m, m, |i, j| {
            (if i == j { 1.0 } else { 0.0 }) - vt[(i, j)]
        });
        let q_thin = f.q_thin();
        let q_dense_thin = q_dense.sub_matrix(0, 0, m, k);
        assert!(q_thin.approx_eq(&q_dense_thin, 1e-12));
    }

    #[test]
    fn larfb_equals_sequential_reflectors() {
        let a = Matrix::random_uniform(12, 4, 8);
        let f = QrFactors::compute_unblocked(&a);
        let c0 = Matrix::random_uniform(12, 6, 9);
        // Sequential Qᵀ C via orm2r.
        let mut c_seq = c0.clone();
        f.apply_qt_left(&mut c_seq);
        // Blocked Qᵀ C via larfb.
        let t = larft(&f.factors.view(), &f.tau);
        let mut c_blk = c0.clone();
        larfb_left(Trans::Yes, &f.factors.view(), &t.view(), &mut c_blk.view_mut());
        assert!(c_blk.approx_eq(&c_seq, 1e-12));
        // And Q C.
        let mut c_seq = c0.clone();
        f.apply_q_left(&mut c_seq);
        let mut c_blk = c0.clone();
        larfb_left(Trans::No, &f.factors.view(), &t.view(), &mut c_blk.view_mut());
        assert!(c_blk.approx_eq(&c_seq, 1e-12));
    }

    #[test]
    fn apply_q_then_qt_is_identity() {
        let a = Matrix::random_uniform(15, 6, 10);
        let f = QrFactors::compute(&a, 3);
        let c0 = Matrix::random_uniform(15, 4, 11);
        let mut c = c0.clone();
        f.apply_qt_left(&mut c);
        f.apply_q_left(&mut c);
        assert!(c.approx_eq(&c0, 1e-12));
    }

    #[test]
    fn qt_times_a_is_r() {
        let a = Matrix::random_uniform(18, 5, 12);
        let f = QrFactors::compute(&a, 4);
        let mut c = a.clone();
        f.apply_qt_left(&mut c);
        let r = f.r();
        for i in 0..5 {
            for j in 0..5 {
                assert!((c[(i, j)] - r[(i, j)]).abs() < 1e-11);
            }
        }
        // Rows below N must be annihilated.
        for i in 5..18 {
            for j in 0..5 {
                assert!(c[(i, j)].abs() < 1e-11);
            }
        }
    }

    #[test]
    fn orm2r_right_matches_dense() {
        let a = Matrix::random_uniform(7, 3, 13);
        let f = QrFactors::compute_unblocked(&a);
        let q = {
            // Dense square Q via applying to the identity.
            let mut id = Matrix::identity(7);
            f.apply_q_left(&mut id);
            id
        };
        let c0 = Matrix::random_uniform(4, 7, 14);
        // C·Q
        let mut c = c0.clone();
        orm2r(Side::Right, Trans::No, &f.factors.view(), &f.tau, &mut c.view_mut());
        assert!(c.approx_eq(&c0.matmul(&q), 1e-12));
        // C·Qᵀ
        let mut c = c0.clone();
        orm2r(Side::Right, Trans::Yes, &f.factors.view(), &f.tau, &mut c.view_mut());
        assert!(c.approx_eq(&c0.matmul(&q.transpose()), 1e-12));
    }

    #[test]
    fn rank_deficient_matrix_still_factors() {
        // Two identical columns.
        let base = Matrix::random_uniform(10, 1, 15);
        let a = Matrix::from_fn(10, 3, |i, j| {
            if j < 2 {
                base[(i, 0)]
            } else {
                (i as f64).sin()
            }
        });
        let f = QrFactors::compute(&a, 2);
        let q = f.q_thin();
        let r = f.r();
        assert!(relative_residual(&a, &q, &r) < TOL);
        // R(1,1) must be ~0 (second column dependent on first).
        assert!(r[(1, 1)].abs() < 1e-12);
    }

    #[test]
    fn zero_matrix_factors_to_zero_r() {
        let a = Matrix::zeros(8, 3);
        let f = QrFactors::compute(&a, 2);
        assert_eq!(f.r().norm_fro(), 0.0);
        let q = f.q_thin();
        assert!(orthogonality(&q) < TOL);
    }
}
