//! Numerical verification metrics for QR factorizations.
//!
//! The paper's correctness claim rests on TSQR being "numerically as stable
//! as the Householder QR factorization" (§II-C); these metrics are what the
//! test-suite uses to check that claim for every tree shape and engine:
//! scaled residual `‖A − QR‖_F / ‖A‖_F`, orthogonality
//! `‖QᵀQ − I‖_F / √n`, and sign normalization so R factors produced by
//! different reduction orders can be compared entry-wise.

use crate::matrix::Matrix;

/// Scaled residual `‖A − Q·R‖_F / ‖A‖_F` (or the absolute residual when
/// `A = 0`).
pub fn relative_residual(a: &Matrix, q: &Matrix, r: &Matrix) -> f64 {
    let qr = q.matmul(r);
    let num = a.sub_elem(&qr).norm_fro();
    let den = a.norm_fro();
    if den == 0.0 {
        num
    } else {
        num / den
    }
}

/// Deviation from orthonormal columns: `‖QᵀQ − I‖_F / √n`.
pub fn orthogonality(q: &Matrix) -> f64 {
    let n = q.cols();
    if n == 0 {
        return 0.0;
    }
    let gram = q.t_matmul(q);
    gram.sub_elem(&Matrix::identity(n)).norm_fro() / (n as f64).sqrt()
}

/// Rescales the rows of an upper-triangular `R` so every diagonal entry is
/// non-negative.
///
/// The QR factorization is unique only up to the signs of R's rows (§II-B);
/// two valid factorizations of the same matrix agree after this
/// normalization, which is also the convention that makes the TSQR combine
/// operator commutative (§II-C).
pub fn sign_normalize_r(r: &Matrix) -> Matrix {
    let mut out = r.clone();
    let k = r.rows().min(r.cols());
    for i in 0..k {
        if out[(i, i)] < 0.0 {
            for j in 0..r.cols() {
                out[(i, j)] = -out[(i, j)];
            }
        }
    }
    out
}

/// `‖R1 − R2‖_max` after sign normalization — the comparison used to check
/// that two reduction trees computed "the same" R factor.
pub fn r_distance(r1: &Matrix, r2: &Matrix) -> f64 {
    assert_eq!(r1.shape(), r2.shape(), "r_distance: shape mismatch");
    sign_normalize_r(r1).sub_elem(&sign_normalize_r(r2)).norm_max()
}

/// True when the strict lower triangle of `r` is exactly zero.
pub fn is_upper_triangular(r: &Matrix) -> bool {
    for j in 0..r.cols() {
        for i in j + 1..r.rows() {
            if r[(i, j)] != 0.0 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::QrFactors;

    #[test]
    fn residual_zero_for_exact_factorization() {
        let q = Matrix::identity(4);
        let r = Matrix::random_uniform(4, 4, 1).upper_triangular_padded();
        let a = q.matmul(&r);
        assert!(relative_residual(&a, &q, &r) < 1e-15);
    }

    #[test]
    fn residual_positive_for_wrong_factors() {
        let a = Matrix::random_uniform(5, 3, 2);
        let q = Matrix::identity(5).sub_matrix(0, 0, 5, 3);
        let r = Matrix::identity(3);
        assert!(relative_residual(&a, &q, &r) > 0.1);
    }

    #[test]
    fn orthogonality_of_identity_and_rotation() {
        assert!(orthogonality(&Matrix::identity(6)) < 1e-15);
        let c = 0.6_f64;
        let s = 0.8_f64;
        let rot = Matrix::from_rows(&[vec![c, -s], vec![s, c]]).unwrap();
        assert!(orthogonality(&rot) < 1e-15);
        let skew = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]]).unwrap();
        assert!(orthogonality(&skew) > 0.1);
    }

    #[test]
    fn sign_normalize_flips_negative_rows() {
        let r = Matrix::from_rows(&[vec![-2.0, 1.0], vec![0.0, 3.0]]).unwrap();
        let n = sign_normalize_r(&r);
        assert_eq!(n[(0, 0)], 2.0);
        assert_eq!(n[(0, 1)], -1.0);
        assert_eq!(n[(1, 1)], 3.0);
    }

    #[test]
    fn sign_normalize_is_idempotent() {
        let r = Matrix::random_uniform(4, 4, 3).upper_triangular_padded();
        let n1 = sign_normalize_r(&r);
        let n2 = sign_normalize_r(&n1);
        assert!(n1.approx_eq(&n2, 0.0));
    }

    #[test]
    fn r_distance_detects_same_factorization_with_flipped_signs() {
        let a = Matrix::random_uniform(10, 4, 4);
        let f = QrFactors::compute(&a, 2);
        let r = f.r();
        let mut flipped = r.clone();
        for j in 0..4 {
            flipped[(1, j)] = -flipped[(1, j)];
        }
        assert!(r_distance(&r, &flipped) < 1e-15);
    }

    #[test]
    fn is_upper_triangular_checks() {
        assert!(is_upper_triangular(&Matrix::identity(3)));
        let mut m = Matrix::identity(3);
        m[(2, 0)] = 1e-30;
        assert!(!is_upper_triangular(&m));
    }
}
