//! Triangular solves: `trsv` (one right-hand side) and `trsm` (many),
//! upper and lower variants — the substrate for least-squares solves
//! (`R·x = Qᵀb`) and for the CholeskyQR baseline (`Q = A·R⁻¹`).

use crate::matrix::Matrix;
use crate::view::{View, ViewMut};

/// Which triangle of the coefficient matrix is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// Upper triangular (entries below the diagonal ignored).
    Upper,
    /// Lower triangular (entries above the diagonal ignored).
    Lower,
}

/// Solves `T·x = b` in place for a triangular `T` (`x` overwrites `b`).
///
/// Panics if a diagonal entry is exactly zero (singular triangular
/// system) — callers that may face rank deficiency should check
/// [`smallest_diag`] first.
pub fn trsv(tri: Triangle, t: &View<'_>, b: &mut [f64]) {
    let n = t.rows();
    assert_eq!(t.cols(), n, "trsv: T must be square");
    assert_eq!(b.len(), n, "trsv: rhs length mismatch");
    match tri {
        Triangle::Upper => {
            for i in (0..n).rev() {
                let mut s = b[i];
                for j in i + 1..n {
                    s -= t.get(i, j) * b[j];
                }
                let d = t.get(i, i);
                assert!(d != 0.0, "trsv: zero diagonal at {i}");
                b[i] = s / d;
            }
        }
        Triangle::Lower => {
            for i in 0..n {
                let mut s = b[i];
                for j in 0..i {
                    s -= t.get(i, j) * b[j];
                }
                let d = t.get(i, i);
                assert!(d != 0.0, "trsv: zero diagonal at {i}");
                b[i] = s / d;
            }
        }
    }
}

/// Solves `T·X = B` in place, column by column (`X` overwrites `B`).
pub fn trsm_left(tri: Triangle, t: &View<'_>, b: &mut ViewMut<'_>) {
    assert_eq!(t.rows(), b.rows(), "trsm: dimension mismatch");
    for j in 0..b.cols() {
        trsv(tri, t, b.col_mut(j));
    }
}

/// Solves `X·T = B` in place for upper-triangular `T` (right side) —
/// equivalently `Tᵀ·Xᵀ = Bᵀ`. Used by CholeskyQR's `Q = A·R⁻¹`.
pub fn trsm_right_upper(t: &View<'_>, b: &mut ViewMut<'_>) {
    let n = t.rows();
    assert_eq!(t.cols(), n, "trsm_right: T must be square");
    assert_eq!(b.cols(), n, "trsm_right: B column mismatch");
    // Column j of X depends on columns < j: X_j = (B_j − Σ_{k<j} X_k T[k,j]) / T[j,j].
    for j in 0..n {
        let d = t.get(j, j);
        assert!(d != 0.0, "trsm_right: zero diagonal at {j}");
        for k in 0..j {
            let factor = t.get(k, j);
            if factor != 0.0 {
                let (left, mut right) = b.split_cols_at_mut(j);
                let xk = left.col(k).to_vec();
                crate::blas::axpy(-factor, &xk, right.col_mut(0));
            }
        }
        crate::blas::scal(1.0 / d, b.col_mut(j));
    }
}

/// The smallest absolute diagonal entry of a triangular factor — a cheap
/// singularity / conditioning probe.
pub fn smallest_diag(t: &Matrix) -> f64 {
    let n = t.rows().min(t.cols());
    (0..n).map(|i| t[(i, i)].abs()).fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upper(n: usize, seed: u64) -> Matrix {
        let mut m = Matrix::random_uniform(n, n, seed).upper_triangular_padded();
        for i in 0..n {
            m[(i, i)] += 3.0; // well-conditioned
        }
        m
    }

    fn lower(n: usize, seed: u64) -> Matrix {
        upper(n, seed).transpose()
    }

    #[test]
    fn trsv_upper_and_lower() {
        let n = 8;
        for (tri, t) in [(Triangle::Upper, upper(n, 1)), (Triangle::Lower, lower(n, 2))] {
            let x = Matrix::random_uniform(n, 1, 3);
            let b = t.matmul(&x);
            let mut got = b.col(0).to_vec();
            trsv(tri, &t.view(), &mut got);
            for i in 0..n {
                assert!((got[i] - x[(i, 0)]).abs() < 1e-12, "{tri:?} i={i}");
            }
        }
    }

    #[test]
    fn trsm_left_many_rhs() {
        let n = 6;
        let t = upper(n, 4);
        let x = Matrix::random_uniform(n, 4, 5);
        let mut b = t.matmul(&x);
        trsm_left(Triangle::Upper, &t.view(), &mut b.view_mut());
        assert!(b.approx_eq(&x, 1e-12));
    }

    #[test]
    fn trsm_right_upper_solves_xt_eq_b() {
        let n = 5;
        let t = upper(n, 6);
        let x = Matrix::random_uniform(7, n, 7);
        let mut b = x.matmul(&t);
        trsm_right_upper(&t.view(), &mut b.view_mut());
        assert!(b.approx_eq(&x, 1e-12));
    }

    #[test]
    fn smallest_diag_probe() {
        let mut t = upper(4, 8);
        assert!(smallest_diag(&t) >= 2.0);
        t[(2, 2)] = 1e-30;
        assert!(smallest_diag(&t) < 1e-29);
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn singular_system_panics() {
        let mut t = upper(3, 9);
        t[(1, 1)] = 0.0;
        let mut b = vec![1.0, 2.0, 3.0];
        trsv(Triangle::Upper, &t.view(), &mut b);
    }
}
