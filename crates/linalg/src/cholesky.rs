//! Cholesky factorization (`potrf`) of symmetric positive-definite
//! matrices — the kernel behind the CholeskyQR baseline (`AᵀA = RᵀR`),
//! which the paper's §II-E alludes to as the "unstable orthogonalization
//! scheme" block eigensolvers fall back to, and behind the
//! communication-optimal Cholesky the conclusion cites (\[5\]).

use crate::matrix::Matrix;

/// Why a Cholesky factorization failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Index of the pivot that was not positive.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Upper Cholesky factor: `A = RᵀR` with `R` upper triangular and a
/// positive diagonal.
///
/// Only the upper triangle of `a` is read. Fails on a non-positive pivot
/// (the matrix is not numerically positive definite — for CholeskyQR this
/// is exactly the condition-number cliff at `κ(A) ≳ 1/√ε`).
pub fn potrf_upper(a: &Matrix) -> Result<Matrix, NotPositiveDefinite> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "potrf: matrix must be square");
    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal: r_jj = sqrt(a_jj − Σ_{k<j} r_kj²)
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= r[(k, j)] * r[(k, j)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(NotPositiveDefinite { pivot: j });
        }
        let rjj = d.sqrt();
        r[(j, j)] = rjj;
        // Row j of R: r_ji = (a_ji − Σ_{k<j} r_kj·r_ki) / r_jj
        for i in j + 1..n {
            let mut s = a[(j, i)];
            for k in 0..j {
                s -= r[(k, j)] * r[(k, i)];
            }
            r[(j, i)] = s / rjj;
        }
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        // AᵀA + n·I is comfortably positive definite.
        let a = Matrix::random_uniform(2 * n, n, seed);
        let mut g = a.t_matmul(&a);
        for i in 0..n {
            g[(i, i)] += n as f64;
        }
        g
    }

    #[test]
    fn factorizes_spd_matrices() {
        for n in [1, 2, 5, 12] {
            let g = spd(n, n as u64);
            let r = potrf_upper(&g).unwrap();
            let rec = r.t_matmul(&r);
            assert!(rec.approx_eq(&g, 1e-11 * n as f64), "n={n}");
            for i in 0..n {
                assert!(r[(i, i)] > 0.0);
                for j in 0..i {
                    assert_eq!(r[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn rejects_indefinite_matrices() {
        let mut g = spd(4, 9);
        g[(2, 2)] = -5.0;
        let err = potrf_upper(&g).unwrap_err();
        assert!(err.pivot <= 2);
    }

    #[test]
    fn identity_factors_to_identity() {
        let r = potrf_upper(&Matrix::identity(6)).unwrap();
        assert!(r.approx_eq(&Matrix::identity(6), 1e-15));
    }

    #[test]
    fn matches_known_2x2() {
        let g = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 5.0]]).unwrap();
        let r = potrf_upper(&g).unwrap();
        assert!((r[(0, 0)] - 2.0).abs() < 1e-15);
        assert!((r[(0, 1)] - 1.0).abs() < 1e-15);
        assert!((r[(1, 1)] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn lower_triangle_is_ignored() {
        let mut g = spd(5, 11);
        for i in 0..5 {
            for j in 0..i {
                g[(i, j)] = 999.0; // garbage in the unused triangle
            }
        }
        let r = potrf_upper(&g).unwrap();
        let want = potrf_upper(&spd(5, 11)).unwrap();
        assert!(r.approx_eq(&want, 0.0));
    }
}
