//! Symmetric eigenvalue decomposition by the classical Jacobi rotation
//! method — the small dense eigensolver the Rayleigh–Ritz step of a block
//! eigensolver needs (the paper's §II-E application: BLOPEX/SLEPc/PRIMME
//! orthogonalize a tall block, then solve a `k × k` projected problem).
//!
//! Jacobi is quadratically convergent, unconditionally stable, and
//! perfectly adequate for the `k ≲ 100` projected problems that arise
//! here; it is not intended for large dense eigenproblems.

use crate::matrix::Matrix;

/// An eigendecomposition `A = V·diag(λ)·Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, column `i` pairing with `values[i]`.
    pub vectors: Matrix,
}

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi sweeps.
///
/// Only the upper triangle is read; the iteration stops when the
/// off-diagonal Frobenius mass falls below `ε·‖A‖` or after 50 sweeps
/// (never reached in practice for the sizes this library uses).
pub fn sym_eig(a: &Matrix) -> SymEig {
    let n = a.rows();
    assert_eq!(a.cols(), n, "sym_eig: matrix must be square");
    // Work on a symmetrized copy.
    let mut m = Matrix::from_fn(n, n, |i, j| {
        if i <= j {
            a[(i, j)]
        } else {
            a[(j, i)]
        }
    });
    let mut v = Matrix::identity(n);
    let norm = m.norm_fro().max(f64::MIN_POSITIVE);
    let tol = 1e-14 * norm;

    for _sweep in 0..50 {
        let mut off = 0.0;
        for p in 0..n {
            for q in p + 1..n {
                off += m[(p, q)] * m[(p, q)];
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                // Jacobi rotation annihilating (p, q).
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Update rows/columns p and q of M (symmetric two-sided).
                for i in 0..n {
                    let mip = m[(i, p)];
                    let miq = m[(i, q)];
                    m[(i, p)] = c * mip - s * miq;
                    m[(i, q)] = s * mip + c * miq;
                }
                for i in 0..n {
                    let mpi = m[(p, i)];
                    let mqi = m[(q, i)];
                    m[(p, i)] = c * mpi - s * mqi;
                    m[(q, i)] = s * mpi + c * mqi;
                }
                // Accumulate the rotation into V.
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = c * vip - s * viq;
                    v[(i, q)] = s * vip + c * viq;
                }
            }
        }
    }

    // Sort descending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].total_cmp(&m[(i, i)]));
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    SymEig { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::orthogonality;

    fn spectral_reconstruction(e: &SymEig) -> Matrix {
        let n = e.values.len();
        let lam = Matrix::from_fn(n, n, |i, j| if i == j { e.values[i] } else { 0.0 });
        e.vectors.matmul(&lam).matmul(&e.vectors.transpose())
    }

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let s = Matrix::random_uniform(n, n, seed);
        Matrix::from_fn(n, n, |i, j| 0.5 * (s[(i, j)] + s[(j, i)]))
    }

    #[test]
    fn reconstructs_random_symmetric_matrices() {
        for n in [1, 2, 3, 5, 10, 24] {
            let a = random_symmetric(n, 7 + n as u64);
            let e = sym_eig(&a);
            assert!(
                spectral_reconstruction(&e).approx_eq(&a, 1e-11),
                "reconstruction failed for n={n}"
            );
            assert!(orthogonality(&e.vectors) < 1e-12);
            // Descending order.
            assert!(e.values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        }
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_fn(4, 4, |i, j| if i == j { (4 - i) as f64 } else { 0.0 });
        let e = sym_eig(&a);
        for (i, &v) in e.values.iter().enumerate() {
            assert!((v - (4 - i) as f64).abs() < 1e-13);
        }
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = sym_eig(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-13);
        assert!((e.values[1] - 1.0).abs() < 1e-13);
    }

    #[test]
    fn eigenvalues_match_trace_and_gram_spectrum() {
        let a = random_symmetric(12, 99);
        let e = sym_eig(&a);
        let trace: f64 = (0..12).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-11);
        // A² has eigenvalues λ².
        let e2 = sym_eig(&a.matmul(&a));
        let mut sq: Vec<f64> = e.values.iter().map(|v| v * v).collect();
        sq.sort_by(|x, y| y.total_cmp(x));
        for (x, y) in e2.values.iter().zip(&sq) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn repeated_eigenvalues() {
        // 2·I plus a rank-1 bump.
        let n = 6;
        let a = Matrix::from_fn(n, n, |i, j| {
            let bump = if i == 0 && j == 0 { 3.0 } else { 0.0 };
            (if i == j { 2.0 } else { 0.0 }) + bump
        });
        let e = sym_eig(&a);
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        for &v in &e.values[1..] {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }
}
