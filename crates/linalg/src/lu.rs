//! LU factorization with partial pivoting (`getrf`), row-swap application
//! (`laswp`) and the structured kernels TSLU needs — the substrate for the
//! paper's §VI remark that the TSQR/CAQR results "can be (trivially)
//! extended to TSLU/CALU".

use crate::matrix::Matrix;
use crate::tri::{trsm_left, Triangle};

/// An LU factorization with partial pivoting: `P·A = L·U`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Packed factors: `U` on/above the diagonal, unit-`L` multipliers
    /// below.
    pub factors: Matrix,
    /// `ipiv[k] = r` means rows `k` and `r` were swapped at step `k`
    /// (LAPACK convention, 0-based).
    pub ipiv: Vec<usize>,
}

/// LU with partial pivoting of a copy of `a` (LAPACK `dgetrf`, unblocked).
///
/// Works for any `m × n`; factors the leading `min(m, n)` columns.
pub fn getrf(a: &Matrix) -> LuFactors {
    let mut f = a.clone();
    let (m, n) = f.shape();
    let k = m.min(n);
    let mut ipiv = Vec::with_capacity(k);
    for j in 0..k {
        // Pivot: largest |entry| in column j, rows j..m.
        let mut p = j;
        let mut best = f[(j, j)].abs();
        for i in j + 1..m {
            let v = f[(i, j)].abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        ipiv.push(p);
        if p != j {
            for c in 0..n {
                let tmp = f[(j, c)];
                f[(j, c)] = f[(p, c)];
                f[(p, c)] = tmp;
            }
        }
        let pivot = f[(j, j)];
        if pivot == 0.0 {
            continue; // singular column; multipliers stay zero
        }
        for i in j + 1..m {
            let l = f[(i, j)] / pivot;
            f[(i, j)] = l;
            for c in j + 1..n {
                let fjc = f[(j, c)];
                f[(i, c)] -= l * fjc;
            }
        }
    }
    LuFactors { factors: f, ipiv }
}

impl LuFactors {
    /// The unit-lower-triangular factor `L` (`m × min(m,n)`).
    pub fn l(&self) -> Matrix {
        let (m, n) = self.factors.shape();
        let k = m.min(n);
        Matrix::from_fn(m, k, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                self.factors[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// The upper-triangular factor `U` (`min(m,n) × n`).
    pub fn u(&self) -> Matrix {
        let (m, n) = self.factors.shape();
        let k = m.min(n);
        Matrix::from_fn(k, n, |i, j| if i <= j { self.factors[(i, j)] } else { 0.0 })
    }

    /// Applies the recorded row swaps to `b` (LAPACK `dlaswp`): `b := P·b`.
    pub fn apply_p(&self, b: &mut Matrix) {
        for (j, &p) in self.ipiv.iter().enumerate() {
            if p != j {
                for c in 0..b.cols() {
                    let tmp = b[(j, c)];
                    b[(j, c)] = b[(p, c)];
                    b[(p, c)] = tmp;
                }
            }
        }
    }

    /// The rows of `A` selected as pivots, in order — TSLU's "tournament
    /// winners" at a leaf.
    pub fn pivot_rows_of(&self, a: &Matrix) -> Matrix {
        let k = self.ipiv.len();
        // Reconstruct the permutation's first-k destination rows.
        let mut perm: Vec<usize> = (0..a.rows()).collect();
        for (j, &p) in self.ipiv.iter().enumerate() {
            perm.swap(j, p);
        }
        Matrix::from_fn(k, a.cols(), |i, j| a[(perm[i], j)])
    }

    /// Solves `A·x = b` via `P·A = L·U` (square systems).
    pub fn solve(&self, b: &Matrix) -> Matrix {
        let (m, n) = self.factors.shape();
        assert_eq!(m, n, "solve: square systems only");
        assert_eq!(b.rows(), n, "solve: rhs row mismatch");
        let mut x = b.clone();
        self.apply_p(&mut x);
        // Forward solve with unit-lower L.
        let l = self.l();
        for col in 0..x.cols() {
            for i in 0..n {
                let mut s = x[(i, col)];
                for j in 0..i {
                    s -= l[(i, j)] * x[(j, col)];
                }
                x[(i, col)] = s; // unit diagonal
            }
        }
        // Back solve with U.
        let u = self.u();
        trsm_left(Triangle::Upper, &u.view(), &mut x.view_mut());
        x
    }

    /// The largest |multiplier| in `L` — with partial pivoting this is
    /// ≤ 1, the stability property tournament pivoting preserves.
    pub fn max_multiplier(&self) -> f64 {
        let (m, n) = self.factors.shape();
        let mut worst = 0.0f64;
        for j in 0..m.min(n) {
            for i in j + 1..m {
                worst = worst.max(self.factors[(i, j)].abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_plu(a: &Matrix) {
        let f = getrf(a);
        let mut pa = a.clone();
        f.apply_p(&mut pa);
        let rec = f.l().matmul(&f.u());
        assert!(
            rec.approx_eq(&pa, 1e-11 * a.norm_max().max(1.0)),
            "P·A != L·U for {}x{}",
            a.rows(),
            a.cols()
        );
        assert!(f.max_multiplier() <= 1.0 + 1e-15, "partial pivoting bound violated");
    }

    #[test]
    fn square_tall_and_wide() {
        check_plu(&Matrix::random_uniform(8, 8, 1));
        check_plu(&Matrix::random_uniform(16, 5, 2));
        check_plu(&Matrix::random_uniform(5, 12, 3));
        check_plu(&Matrix::random_uniform(1, 1, 4));
    }

    #[test]
    fn solve_round_trip() {
        let a = Matrix::random_uniform(7, 7, 5);
        let x = Matrix::random_uniform(7, 2, 6);
        let b = a.matmul(&x);
        let got = getrf(&a).solve(&b);
        assert!(got.approx_eq(&x, 1e-10));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0]]).unwrap();
        let f = getrf(&a);
        assert_eq!(f.ipiv[0], 1, "must pivot away from the zero");
        let x = f.solve(&Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap());
        // 2x0 + 3x1 = 2; x1 = 1 → x0 = -1/2.
        assert!((x[(0, 0)] + 0.5).abs() < 1e-14);
        assert!((x[(1, 0)] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn pivot_rows_are_the_permuted_top_rows() {
        let a = Matrix::random_uniform(10, 3, 7);
        let f = getrf(&a);
        let rows = f.pivot_rows_of(&a);
        let mut pa = a.clone();
        f.apply_p(&mut pa);
        assert!(rows.approx_eq(&pa.sub_matrix(0, 0, 3, 3), 0.0));
    }

    #[test]
    fn singular_matrix_does_not_panic() {
        let a = Matrix::zeros(4, 4);
        let f = getrf(&a);
        assert_eq!(f.u().norm_fro(), 0.0);
    }
}
