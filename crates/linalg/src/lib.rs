//! Dense linear-algebra substrate for the `grid-tsqr` workspace.
//!
//! This crate provides everything the distributed TSQR/CAQR algorithms need
//! from a LAPACK/BLAS-style library, written from scratch in safe Rust:
//!
//! * [`Matrix`] — an owned, column-major, `f64` dense matrix, plus borrowed
//!   [`View`]/[`ViewMut`] windows with an explicit leading dimension, so
//!   blocked algorithms can operate in place on panels and trailing
//!   sub-matrices without copying.
//! * BLAS-like kernels ([`blas`]): `dot`, `nrm2`, `axpy`, `gemv`, `ger`, a
//!   blocked and optionally rayon-parallel `gemm`, and the small triangular
//!   multiplies the compact-WY update needs.
//! * Householder QR ([`qr`]): the unblocked factorization `geqr2`, the
//!   blocked `geqrf` built on the compact-WY representation
//!   (`larft`/`larfb`), explicit-Q construction (`org2r`) and implicit-Q
//!   application (`orm2r`) — the same algorithms LAPACK uses, which is what
//!   makes the numerical comparisons against the paper meaningful.
//! * Structured "stacked triangles" QR ([`stacked`]): the reduction operator
//!   at the heart of TSQR — the QR factorization of `[R1; R2]` where both
//!   blocks are upper triangular — implemented so it costs `~2/3·n³` flops
//!   instead of the `~10/3·n³` a dense factorization of the stack would pay.
//!   This is the flop/communication trade the paper analyses in Table I.
//! * Verification metrics ([`verify`]): scaled residuals, orthogonality
//!   measures and sign-normalization so factorizations from different
//!   reduction trees can be compared.
//! * Closed-form flop counts ([`flops`]) shared by the symbolic execution
//!   engine and the performance model of `tsqr-core`.
//!
//! # Conventions
//!
//! Matrices are column-major. Element `(i, j)` of a view with leading
//! dimension `ld` lives at `data[i + j*ld]`. Householder reflectors follow
//! the LAPACK convention `H = I − τ·v·vᵀ` with `v[0] = 1` stored implicitly.
//!
//! Dimension mismatches are programming errors and panic; fallible
//! construction from user data goes through the checked constructors on
//! [`Matrix`].

// Numerical kernels index with explicit loop counters on purpose: the
// triangular/banded access patterns (row `j`, columns `j+1..`) read more
// clearly as index arithmetic than as iterator chains.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blas;
pub mod cholesky;
pub mod eig;
pub mod flops;
pub mod givens;
pub mod householder;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod stacked;
pub mod tri;
pub mod verify;
pub mod view;

pub use matrix::Matrix;
pub use view::{View, ViewMut};

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::cholesky::potrf_upper;
    pub use crate::lu::{getrf, LuFactors};
    pub use crate::matrix::Matrix;
    pub use crate::qr::{geqr2, geqrf, org2r, orm2r, QrFactors, Side, Trans};
    pub use crate::stacked::{tpmqrt, tpqrt, StackedFactors};
    pub use crate::tri::{trsm_left, trsm_right_upper, trsv, Triangle};
    pub use crate::verify::{orthogonality, relative_residual, sign_normalize_r};
    pub use crate::view::{View, ViewMut};
}
