//! BLAS-like kernels on column-major views.
//!
//! Levels 1 and 2 are straightforward loops; the level-3 `gemm` is written
//! in the cache-friendly `(j, l, i)` loop order for column-major data and
//! parallelizes over column blocks with rayon once the work is large enough
//! to amortize the fork/join cost (see [`PAR_THRESHOLD_FLOPS`]).

use rayon::prelude::*;

use crate::qr::Trans;
use crate::view::{View, ViewMut};

/// Work (in flops) below which `gemm` stays sequential.
///
/// Forking rayon tasks costs on the order of a microsecond; a 64³ gemm is
/// ~0.5 Mflop, which is comfortably past break-even on any machine this
/// library targets.
pub const PAR_THRESHOLD_FLOPS: usize = 1 << 19;

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm, scaled to avoid overflow/underflow (LAPACK `dnrm2` style).
pub fn nrm2(x: &[f64]) -> f64 {
    let amax = x.iter().fold(0.0_f64, |acc, v| acc.max(v.abs()));
    if amax == 0.0 || !amax.is_finite() {
        return amax;
    }
    let mut s = 0.0;
    for &v in x {
        let t = v / amax;
        s += t * t;
    }
    amax * s.sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// `y := alpha * op(A) * x + beta * y`.
pub fn gemv(trans: Trans, alpha: f64, a: &View<'_>, x: &[f64], beta: f64, y: &mut [f64]) {
    match trans {
        Trans::No => {
            assert_eq!(x.len(), a.cols(), "gemv: x length mismatch");
            assert_eq!(y.len(), a.rows(), "gemv: y length mismatch");
            scal(beta, y);
            for j in 0..a.cols() {
                axpy(alpha * x[j], a.col(j), y);
            }
        }
        Trans::Yes => {
            assert_eq!(x.len(), a.rows(), "gemv^T: x length mismatch");
            assert_eq!(y.len(), a.cols(), "gemv^T: y length mismatch");
            for j in 0..a.cols() {
                y[j] = beta * y[j] + alpha * dot(a.col(j), x);
            }
        }
    }
}

/// Rank-one update `A += alpha * x * yᵀ`.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut ViewMut<'_>) {
    assert_eq!(x.len(), a.rows(), "ger: x length mismatch");
    assert_eq!(y.len(), a.cols(), "ger: y length mismatch");
    for j in 0..a.cols() {
        axpy(alpha * y[j], x, a.col_mut(j));
    }
}

/// Dimensions of `op(A)` for a given transpose flag.
fn op_shape(t: Trans, a: &View<'_>) -> (usize, usize) {
    match t {
        Trans::No => (a.rows(), a.cols()),
        Trans::Yes => (a.cols(), a.rows()),
    }
}

/// General matrix multiply: `C := alpha * op(A) * op(B) + beta * C`.
///
/// Parallelizes over column strips of `C` when the flop count exceeds
/// [`PAR_THRESHOLD_FLOPS`]; results are bit-identical to the sequential path
/// because each output column is computed by exactly one task in the same
/// accumulation order.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: &View<'_>,
    b: &View<'_>,
    beta: f64,
    c: &mut ViewMut<'_>,
) {
    let (m, ka) = op_shape(ta, a);
    let (kb, n) = op_shape(tb, b);
    assert_eq!(ka, kb, "gemm inner dimension mismatch ({ka} vs {kb})");
    assert_eq!(
        (c.rows(), c.cols()),
        (m, n),
        "gemm output shape mismatch: got {}x{}, want {m}x{n}",
        c.rows(),
        c.cols()
    );
    let k = ka;
    let flops = 2 * m * n * k;

    if flops >= PAR_THRESHOLD_FLOPS && n > 1 && m > 0 {
        // Split C into column strips; each rayon task writes only its own
        // columns. Chunking the storage at multiples of `ld` aligns every
        // chunk to a column boundary, so the strips are disjoint windows.
        let ld = c.ld();
        let rows = c.rows();
        let strip = (n / rayon::current_num_threads().max(1)).clamp(1, 256);
        let total = (n - 1) * ld + rows;
        let data = &mut c.raw_mut()[..total];
        data.par_chunks_mut(strip * ld).enumerate().for_each(|(chunk_idx, chunk)| {
            let j0 = chunk_idx * strip;
            let ncols = (n - j0).min(strip);
            let mut cc = ViewMut::from_raw(chunk, rows, ncols, ld);
            gemm_seq(ta, tb, alpha, a, b, beta, &mut cc, j0);
        });
    } else {
        gemm_seq(ta, tb, alpha, a, b, beta, c, 0);
    }
}

/// Cache-block sizes for the packed `gemm` path: an `MC × KC` panel of A
/// (512 KiB) is packed contiguously and reused across every column of the
/// C strip, so A traffic drops from `n` passes to `n/strip` passes.
const MC: usize = 256;
/// K-dimension block (see [`MC`]).
const KC: usize = 256;

/// Sequential gemm onto a column strip of C starting at global column `j0`.
#[allow(clippy::too_many_arguments)]
fn gemm_seq(
    ta: Trans,
    tb: Trans,
    alpha: f64,
    a: &View<'_>,
    b: &View<'_>,
    beta: f64,
    c: &mut ViewMut<'_>,
    j0: usize,
) {
    let (m, k) = op_shape(ta, a);
    let n = c.cols();
    // The hot no-transpose case goes through the packed cache-blocked
    // kernel once the A panel stops fitting comfortably in L2. The
    // accumulation order per output element is identical (k ascending),
    // so results are bit-identical to the simple path.
    if ta == Trans::No && tb == Trans::No && m * k > MC * KC && n > 1 {
        for jl in 0..n {
            scal(beta, &mut c.col_mut(jl)[..m]);
        }
        gemm_nn_packed(alpha, a, b, c, j0);
        return;
    }
    for jl in 0..n {
        let j = j0 + jl;
        let cj = c.col_mut(jl);
        scal(beta, &mut cj[..m]);
        match (ta, tb) {
            (Trans::No, Trans::No) => {
                // C_j += alpha * A * B_j  — axpy per inner index, unit stride.
                let bj = b.col(j);
                for l in 0..k {
                    axpy(alpha * bj[l], a.col(l), &mut cj[..m]);
                }
            }
            (Trans::Yes, Trans::No) => {
                // C_j[i] = alpha * dot(A_i, B_j)
                let bj = b.col(j);
                for i in 0..m {
                    cj[i] += alpha * dot(a.col(i), &bj[..k]);
                }
            }
            (Trans::No, Trans::Yes) => {
                // B^T: element (l, j) of op(B) is B[j, l].
                for l in 0..k {
                    axpy(alpha * b.get(j, l), a.col(l), &mut cj[..m]);
                }
            }
            (Trans::Yes, Trans::Yes) => {
                for i in 0..m {
                    let ai = a.col(i);
                    let mut s = 0.0;
                    for l in 0..k {
                        s += ai[l] * b.get(j, l);
                    }
                    cj[i] += alpha * s;
                }
            }
        }
    }
}

/// Packed cache-blocked `C += alpha·A·B` (both operands as stored).
///
/// Classic three-loop blocking: for each `KC × MC` panel of A, pack it
/// into a contiguous buffer once and stream every column of the C strip
/// against it. Per output element the contributions still arrive in
/// ascending `k` order, so the result is bit-identical to the naive loop.
fn gemm_nn_packed(alpha: f64, a: &View<'_>, b: &View<'_>, c: &mut ViewMut<'_>, j0: usize) {
    let m = a.rows();
    let k = a.cols();
    let n = c.cols();
    let mut pack = vec![0.0f64; MC * KC];
    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        let mut ic = 0;
        while ic < m {
            let mc = MC.min(m - ic);
            // Pack A[ic..ic+mc, pc..pc+kc] column-major contiguous.
            for l in 0..kc {
                let src = &a.col(pc + l)[ic..ic + mc];
                pack[l * mc..(l + 1) * mc].copy_from_slice(src);
            }
            for jl in 0..n {
                let bj = b.col(j0 + jl);
                let cj = &mut c.col_mut(jl)[ic..ic + mc];
                for l in 0..kc {
                    let w = alpha * bj[pc + l];
                    if w != 0.0 {
                        axpy(w, &pack[l * mc..(l + 1) * mc], cj);
                    }
                }
            }
            ic += mc;
        }
        pc += kc;
    }
}

/// In-place triangular multiply `B := op(T) * B` with `T` upper triangular.
///
/// `T` is `k × k`, `B` is `k × n`. Used by the compact-WY update where `T`
/// is the small per-panel triangular factor, so no blocking is needed.
pub fn trmm_upper_left(trans: Trans, t: &View<'_>, b: &mut ViewMut<'_>) {
    let k = t.rows();
    assert_eq!(t.cols(), k, "trmm: T must be square");
    assert_eq!(b.rows(), k, "trmm: B row count must match T");
    for j in 0..b.cols() {
        let bj = b.col_mut(j);
        match trans {
            Trans::No => {
                // b_i := sum_{l >= i} T[i,l] * b_l  (forward, overwrite down)
                for i in 0..k {
                    let mut s = 0.0;
                    for l in i..k {
                        s += t.get(i, l) * bj[l];
                    }
                    bj[i] = s;
                }
            }
            Trans::Yes => {
                // b_i := sum_{l <= i} T[l,i] * b_l (backward, overwrite up)
                for i in (0..k).rev() {
                    let mut s = 0.0;
                    for l in 0..=i {
                        s += t.get(l, i) * bj[l];
                    }
                    bj[i] = s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn naive_gemm(ta: Trans, tb: Trans, a: &Matrix, b: &Matrix) -> Matrix {
        let ao = match ta {
            Trans::No => a.clone(),
            Trans::Yes => a.transpose(),
        };
        let bo = match tb {
            Trans::No => b.clone(),
            Trans::Yes => b.transpose(),
        };
        let (m, k) = ao.shape();
        let n = bo.cols();
        Matrix::from_fn(m, n, |i, j| (0..k).map(|l| ao[(i, l)] * bo[(l, j)]).sum())
    }

    #[test]
    fn dot_axpy_scal() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [3.0, 4.5, 6.0]);
    }

    #[test]
    fn nrm2_is_robust_to_scale() {
        let big = [3.0e150, 4.0e150];
        assert!((nrm2(&big) - 5.0e150).abs() / 5.0e150 < 1e-14);
        let small = [3.0e-200, 4.0e-200];
        assert!((nrm2(&small) - 5.0e-200).abs() / 5.0e-200 < 1e-14);
        assert_eq!(nrm2(&[]), 0.0);
        assert_eq!(nrm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn gemv_both_transposes() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let x = [1.0, -1.0];
        let mut y = [1.0, 1.0, 1.0];
        gemv(Trans::No, 1.0, &a.view(), &x, 0.0, &mut y);
        assert_eq!(y, [-1.0, -1.0, -1.0]);
        let x3 = [1.0, 0.0, -1.0];
        let mut y2 = [0.0, 0.0];
        gemv(Trans::Yes, 2.0, &a.view(), &x3, 0.0, &mut y2);
        assert_eq!(y2, [-8.0, -8.0]);
    }

    #[test]
    fn ger_rank_one() {
        let mut a = Matrix::zeros(2, 3);
        ger(
            2.0,
            &[1.0, 2.0],
            &[1.0, 0.0, -1.0],
            &mut a.view_mut(),
        );
        let want =
            Matrix::from_rows(&[vec![2.0, 0.0, -2.0], vec![4.0, 0.0, -4.0]]).unwrap();
        assert!(a.approx_eq(&want, 0.0));
    }

    #[test]
    fn gemm_matches_naive_all_transposes() {
        let a = Matrix::random_uniform(7, 5, 1);
        let b57 = Matrix::random_uniform(5, 6, 2);
        let b75 = Matrix::random_uniform(6, 5, 3);
        let a57 = Matrix::random_uniform(5, 7, 4);
        for (ta, tb, aa, bb) in [
            (Trans::No, Trans::No, &a, &b57),
            (Trans::No, Trans::Yes, &a, &b75),
            (Trans::Yes, Trans::No, &a57, &b57),
            (Trans::Yes, Trans::Yes, &a57, &b75),
        ] {
            let (m, _) = op_shape(ta, &aa.view());
            let (_, n) = op_shape(tb, &bb.view());
            let mut c = Matrix::zeros(m, n);
            gemm(ta, tb, 1.0, &aa.view(), &bb.view(), 0.0, &mut c.view_mut());
            let want = naive_gemm(ta, tb, aa, bb);
            assert!(c.approx_eq(&want, 1e-12), "mismatch for ({ta:?},{tb:?})");
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = Matrix::random_uniform(4, 3, 5);
        let b = Matrix::random_uniform(3, 4, 6);
        let c0 = Matrix::random_uniform(4, 4, 7);
        let mut c = c0.clone();
        gemm(Trans::No, Trans::No, 2.0, &a.view(), &b.view(), 0.5, &mut c.view_mut());
        let want = Matrix::from_fn(4, 4, |i, j| {
            0.5 * c0[(i, j)] + 2.0 * (0..3).map(|l| a[(i, l)] * b[(l, j)]).sum::<f64>()
        });
        assert!(c.approx_eq(&want, 1e-12));
    }

    #[test]
    fn packed_path_is_bit_identical_to_simple_path() {
        // Large enough to trigger the packed kernel (m*k > MC*KC).
        let (m, k, n) = (300, 300, 8);
        let a = Matrix::random_uniform(m, k, 31);
        let b = Matrix::random_uniform(k, n, 32);
        let c0 = Matrix::random_uniform(m, n, 33);
        let mut c_packed = c0.clone();
        gemm_seq(Trans::No, Trans::No, 1.5, &a.view(), &b.view(), 0.5, &mut c_packed.view_mut(), 0);
        // Simple path, forced: one column at a time (n = 1 never packs).
        let mut c_simple = c0.clone();
        for j in 0..n {
            let mut col = c_simple.sub_matrix(0, j, m, 1);
            gemm_seq(Trans::No, Trans::No, 1.5, &a.view(), &b.sub(0, j, k, 1), 0.5, &mut col.view_mut(), 0);
            c_simple.set_sub(0, j, &col);
        }
        assert!(c_packed.approx_eq(&c_simple, 0.0), "must be bit-identical");
    }

    #[test]
    fn packed_path_handles_ragged_blocks() {
        // Dimensions straddling the MC/KC boundaries.
        for (m, k) in [(257, 511), (512, 257), (300, 300)] {
            let a = Matrix::random_uniform(m, k, 41);
            let b = Matrix::random_uniform(k, 3, 42);
            let mut c = Matrix::zeros(m, 3);
            gemm(Trans::No, Trans::No, 1.0, &a.view(), &b.view(), 0.0, &mut c.view_mut());
            let want = naive_gemm(Trans::No, Trans::No, &a, &b);
            assert!(c.approx_eq(&want, 1e-10), "m={m} k={k}");
        }
    }

    #[test]
    fn gemm_parallel_path_matches_sequential() {
        // Large enough to cross PAR_THRESHOLD_FLOPS.
        let m = 96;
        let a = Matrix::random_uniform(m, m, 11);
        let b = Matrix::random_uniform(m, m, 12);
        let mut c_par = Matrix::zeros(m, m);
        gemm(Trans::No, Trans::No, 1.0, &a.view(), &b.view(), 0.0, &mut c_par.view_mut());
        let mut c_seq = Matrix::zeros(m, m);
        gemm_seq(Trans::No, Trans::No, 1.0, &a.view(), &b.view(), 0.0, &mut c_seq.view_mut(), 0);
        assert!(c_par.approx_eq(&c_seq, 0.0), "parallel gemm must be bit-identical");
    }

    #[test]
    fn gemm_on_subviews() {
        let big = Matrix::random_uniform(10, 10, 13);
        let a = big.sub(1, 1, 4, 3);
        let b = big.sub(2, 4, 3, 5);
        let mut c = Matrix::zeros(4, 5);
        gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut c.view_mut());
        let want = naive_gemm(Trans::No, Trans::No, &a.to_matrix(), &b.to_matrix());
        assert!(c.approx_eq(&want, 1e-13));
    }

    #[test]
    fn trmm_upper_both_transposes() {
        let t = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, 4.0, 5.0], vec![0.0, 0.0, 6.0]])
            .unwrap();
        let b0 = Matrix::random_uniform(3, 4, 21);
        // T * B
        let mut b = b0.clone();
        trmm_upper_left(Trans::No, &t.view(), &mut b.view_mut());
        let want = t.upper_triangular().matmul(&b0);
        assert!(b.approx_eq(&want, 1e-13));
        // T^T * B
        let mut b = b0.clone();
        trmm_upper_left(Trans::Yes, &t.view(), &mut b.view_mut());
        let want = t.upper_triangular().transpose().matmul(&b0);
        assert!(b.approx_eq(&want, 1e-13));
    }

    #[test]
    #[should_panic(expected = "gemm inner dimension mismatch")]
    fn gemm_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm(Trans::No, Trans::No, 1.0, &a.view(), &b.view(), 0.0, &mut c.view_mut());
    }
}
