//! The TSQR reduction operator: QR factorization of two stacked
//! upper-triangular matrices `[R1; R2]`.
//!
//! This is the binary, associative (and, with a sign convention,
//! commutative) operation the paper reduces over its tuned tree (§II-C).
//! Exploiting the triangular structure of both blocks brings the cost down
//! to `≈ 2/3·n³` flops — the `2/3·log₂(P)·N³` critical-path surcharge of
//! Table I — instead of the `≈ 10/3·n³` a dense QR of the `2n × n` stack
//! would pay. The kernels correspond to LAPACK's `dtpqrt2`/`dtpmqrt` with a
//! triangular (not pentagonal) second block.
//!
//! Reflector layout: the reflector for column `j` acts on the row `j` of the
//! `R1` block (implicit leading 1) and rows `0..=j` of the `R2` block; its
//! nonzero tail is stored in column `j`, rows `0..=j` of the returned `V`
//! matrix, which is therefore upper triangular.

use crate::blas::{dot, nrm2};
use crate::matrix::Matrix;
use crate::qr::Trans;

/// Implicit orthogonal factor of a stacked-triangles factorization.
#[derive(Debug, Clone)]
pub struct StackedFactors {
    /// Upper-triangular matrix of reflector tails (`n × n`).
    pub v: Matrix,
    /// Reflector scaling factors (length `n`).
    pub tau: Vec<f64>,
}

impl StackedFactors {
    /// Block size `n` of the combine.
    pub fn n(&self) -> usize {
        self.v.rows()
    }
}

/// Factors `[R1; R2]` in place, with both blocks `n × n` upper triangular.
///
/// On exit `r1` holds the combined `R` factor and `r2` holds the reflector
/// tails `V`; the returned [`StackedFactors`] shares `V`/`τ` for later
/// [`tpmqrt`] applications. Entries strictly below the diagonal of the
/// inputs are ignored (treated as zero).
pub fn tpqrt(r1: &mut Matrix, r2: &mut Matrix) -> StackedFactors {
    let n = r1.rows();
    assert_eq!(r1.shape(), (n, n), "tpqrt: R1 must be square");
    assert_eq!(r2.shape(), (n, n), "tpqrt: R2 must be square");
    let mut tau = vec![0.0; n];
    let mut x = vec![0.0; n + 1];
    for j in 0..n {
        // Build the structured column [R1[j,j]; R2[0..=j, j]].
        x[0] = r1[(j, j)];
        for i in 0..=j {
            x[i + 1] = r2[(i, j)];
        }
        let refl = generate_reflector(&mut x[..j + 2]);
        tau[j] = refl.0;
        r1[(j, j)] = refl.1;
        // Store the reflector tail in R2's column j (rows 0..=j).
        for i in 0..=j {
            r2[(i, j)] = x[i + 1];
        }
        // Update trailing columns k > j of both blocks.
        let tj = tau[j];
        if tj == 0.0 {
            continue;
        }
        for k in j + 1..n {
            // w = R1[j,k] + V(0..=j, j)ᵀ · R2(0..=j, k)
            let mut w = r1[(j, k)];
            for i in 0..=j {
                w += r2[(i, j)] * r2[(i, k)];
            }
            let tw = tj * w;
            r1[(j, k)] -= tw;
            for i in 0..=j {
                let vij = r2[(i, j)];
                r2[(i, k)] -= tw * vij;
            }
        }
    }
    // Zero the strict lower triangle of V for a clean representation.
    let mut v = r2.clone();
    for j in 0..n {
        for i in j + 1..n {
            v[(i, j)] = 0.0;
        }
    }
    *r2 = v.clone();
    StackedFactors { v, tau }
}

/// `larfg` specialised for the in-place buffer used by [`tpqrt`]:
/// returns `(τ, β)` and rewrites `x[1..]` to the reflector tail.
fn generate_reflector(x: &mut [f64]) -> (f64, f64) {
    let alpha = x[0];
    let xnorm = nrm2(&x[1..]);
    if xnorm == 0.0 {
        return (0.0, alpha);
    }
    let norm = alpha.hypot(xnorm);
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for v in &mut x[1..] {
        *v *= scale;
    }
    (tau, beta)
}

/// Applies the implicit `Q` of a [`tpqrt`] factorization (or its transpose)
/// to the stacked pair `[C1; C2]` in place.
///
/// `C1` and `C2` both have `n` rows (any column count `k`); `C1` sits on the
/// `R1` side of the stack, `C2` on the `R2` side.
pub fn tpmqrt(trans: Trans, f: &StackedFactors, c1: &mut Matrix, c2: &mut Matrix) {
    let n = f.n();
    assert_eq!(c1.rows(), n, "tpmqrt: C1 row mismatch");
    assert_eq!(c2.rows(), n, "tpmqrt: C2 row mismatch");
    assert_eq!(c1.cols(), c2.cols(), "tpmqrt: C1/C2 column mismatch");
    let k = c1.cols();
    let order: Vec<usize> = match trans {
        Trans::Yes => (0..n).collect(),      // Qᵀ: H_0 first
        Trans::No => (0..n).rev().collect(), // Q: H_{n−1} first
    };
    for j in order {
        let tj = f.tau[j];
        if tj == 0.0 {
            continue;
        }
        let vj = &f.v.col(j)[..=j];
        for col in 0..k {
            // w = C1[j, col] + vᵀ · C2[0..=j, col]
            let w = c1[(j, col)] + dot(vj, &c2.col(col)[..=j]);
            let tw = tj * w;
            c1[(j, col)] -= tw;
            let c2col = c2.col_mut(col);
            for (i, &vij) in vj.iter().enumerate() {
                c2col[i] -= tw * vij;
            }
        }
    }
}

/// The pair `(E1, E2)` with `[E1; E2] = Q·[I; 0]` — the first `n` columns of
/// the combine's orthogonal factor, split into its `R1`-side and `R2`-side
/// row blocks.
///
/// This is the building block for reconstructing the global TSQR `Q` down
/// the reduction tree: each child's `Q` gets multiplied by its side's block.
pub fn explicit_q_blocks(f: &StackedFactors) -> (Matrix, Matrix) {
    let n = f.n();
    let mut e1 = Matrix::identity(n);
    let mut e2 = Matrix::zeros(n, n);
    tpmqrt(Trans::No, f, &mut e1, &mut e2);
    (e1, e2)
}

/// Factors `[R1; B]` in place where `R1` is `n × n` upper triangular and
/// `B` is a dense `q × n` block — LAPACK `dtpqrt` with a square pentagon.
///
/// This is the tile kernel of CAQR's flat-tree panel factorization
/// (PLASMA's `tsqrt`): on exit `r1` holds the combined R, `b` the dense
/// reflector block `V`. Costs `≈ 2qn²` flops.
pub fn tpqrt_dense(r1: &mut Matrix, b: &mut Matrix) -> DenseStackedFactors {
    let n = r1.rows();
    assert_eq!(r1.shape(), (n, n), "tpqrt_dense: R1 must be square");
    assert_eq!(b.cols(), n, "tpqrt_dense: B column mismatch");
    let q = b.rows();
    let mut tau = vec![0.0; n];
    let mut x = vec![0.0; q + 1];
    for j in 0..n {
        x[0] = r1[(j, j)];
        x[1..=q].copy_from_slice(&b.col(j)[..q]);
        let refl = generate_reflector(&mut x[..q + 1]);
        tau[j] = refl.0;
        r1[(j, j)] = refl.1;
        b.col_mut(j).copy_from_slice(&x[1..=q]);
        let tj = tau[j];
        if tj == 0.0 {
            continue;
        }
        for k in j + 1..n {
            let w = r1[(j, k)] + dot(b.col(j), b.col(k));
            let tw = tj * w;
            r1[(j, k)] -= tw;
            let vj: Vec<f64> = b.col(j).to_vec();
            let ck = b.col_mut(k);
            for (c, v) in ck.iter_mut().zip(&vj) {
                *c -= tw * v;
            }
        }
    }
    DenseStackedFactors { v: b.clone(), tau }
}

/// Implicit orthogonal factor of a [`tpqrt_dense`] factorization.
#[derive(Debug, Clone)]
pub struct DenseStackedFactors {
    /// Dense `q × n` reflector block.
    pub v: Matrix,
    /// Reflector scaling factors (length `n`).
    pub tau: Vec<f64>,
}

impl DenseStackedFactors {
    /// Block size `n` of the combine.
    pub fn n(&self) -> usize {
        self.v.cols()
    }

    /// Height `q` of the dense block.
    pub fn q(&self) -> usize {
        self.v.rows()
    }
}

/// Applies the implicit `Q` of a [`tpqrt_dense`] factorization (or its
/// transpose) to the stacked pair `[C1; C2]` in place, where `C1` has `n`
/// rows and `C2` has `q` rows (PLASMA's `tsmqr`).
pub fn tpmqrt_dense(
    trans: Trans,
    f: &DenseStackedFactors,
    c1: &mut Matrix,
    c2: &mut Matrix,
) {
    let n = f.n();
    let q = f.q();
    assert_eq!(c1.rows(), n, "tpmqrt_dense: C1 row mismatch");
    assert_eq!(c2.rows(), q, "tpmqrt_dense: C2 row mismatch");
    assert_eq!(c1.cols(), c2.cols(), "tpmqrt_dense: column mismatch");
    let k = c1.cols();
    let order: Vec<usize> = match trans {
        Trans::Yes => (0..n).collect(),
        Trans::No => (0..n).rev().collect(),
    };
    for j in order {
        let tj = f.tau[j];
        if tj == 0.0 {
            continue;
        }
        let vj = f.v.col(j);
        for col in 0..k {
            let w = c1[(j, col)] + dot(vj, c2.col(col));
            let tw = tj * w;
            c1[(j, col)] -= tw;
            let c2col = c2.col_mut(col);
            for (c, v) in c2col.iter_mut().zip(vj) {
                *c -= tw * v;
            }
        }
    }
}

/// Reference implementation: dense QR of the `2n × n` stack. Used by tests
/// to validate [`tpqrt`] and by the flop model as the "unstructured" cost.
pub fn stack_qr_dense(r1: &Matrix, r2: &Matrix) -> crate::qr::QrFactors {
    let stacked = r1.upper_triangular_padded().vstack(&r2.upper_triangular_padded());
    crate::qr::QrFactors::compute_unblocked(&stacked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{orthogonality, relative_residual, sign_normalize_r};

    const TOL: f64 = 1e-12;

    fn random_upper(n: usize, seed: u64) -> Matrix {
        Matrix::random_uniform(n, n, seed).upper_triangular_padded()
    }

    #[test]
    fn tpqrt_matches_dense_stack_qr() {
        for n in [1, 2, 3, 5, 8, 16] {
            let r1 = random_upper(n, 100 + n as u64);
            let r2 = random_upper(n, 200 + n as u64);
            let mut a = r1.clone();
            let mut b = r2.clone();
            let _f = tpqrt(&mut a, &mut b);
            let dense = stack_qr_dense(&r1, &r2);
            let r_struct = sign_normalize_r(&a.upper_triangular_padded());
            let r_dense = sign_normalize_r(&dense.r());
            assert!(
                r_struct.approx_eq(&r_dense, 1e-11),
                "R mismatch for n={n}"
            );
        }
    }

    #[test]
    fn tpqrt_r_is_upper_triangular() {
        let mut r1 = random_upper(6, 1);
        let mut r2 = random_upper(6, 2);
        tpqrt(&mut r1, &mut r2);
        // R1 now holds R; its strict lower part was never touched, and the
        // upper_triangular extraction must reproduce the stacked R factor.
        let r = r1.upper_triangular_padded();
        for i in 0..6 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn explicit_q_reconstructs_stack() {
        for n in [1, 2, 4, 7] {
            let r1 = random_upper(n, 300 + n as u64);
            let r2 = random_upper(n, 400 + n as u64);
            let mut a = r1.clone();
            let mut b = r2.clone();
            let f = tpqrt(&mut a, &mut b);
            let r = a.upper_triangular_padded();
            let (e1, e2) = explicit_q_blocks(&f);
            // [R1; R2] = [E1; E2] · R
            let rec1 = e1.matmul(&r);
            let rec2 = e2.matmul(&r);
            assert!(rec1.approx_eq(&r1, TOL), "top block mismatch (n={n})");
            assert!(rec2.approx_eq(&r2, TOL), "bottom block mismatch (n={n})");
            // The stacked E must have orthonormal columns.
            let e = e1.vstack(&e2);
            assert!(orthogonality(&e) < TOL);
        }
    }

    #[test]
    fn tpmqrt_qt_then_q_is_identity() {
        let n = 5;
        let mut r1 = random_upper(n, 11);
        let mut r2 = random_upper(n, 12);
        let f = tpqrt(&mut r1, &mut r2);
        let c1_0 = Matrix::random_uniform(n, 3, 13);
        let c2_0 = Matrix::random_uniform(n, 3, 14);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        tpmqrt(Trans::Yes, &f, &mut c1, &mut c2);
        tpmqrt(Trans::No, &f, &mut c1, &mut c2);
        assert!(c1.approx_eq(&c1_0, TOL));
        assert!(c2.approx_eq(&c2_0, TOL));
    }

    #[test]
    fn tpmqrt_qt_annihilates_bottom_of_stack() {
        // Qᵀ·[R1; R2] = [R; 0].
        let n = 4;
        let r1 = random_upper(n, 21);
        let r2 = random_upper(n, 22);
        let mut a = r1.clone();
        let mut b = r2.clone();
        let f = tpqrt(&mut a, &mut b);
        let mut c1 = r1.clone();
        let mut c2 = r2.clone();
        tpmqrt(Trans::Yes, &f, &mut c1, &mut c2);
        assert!(c1.approx_eq(&a.upper_triangular_padded(), 1e-11));
        assert!(c2.norm_max() < 1e-11, "bottom block must be annihilated");
    }

    #[test]
    fn combine_is_associative_up_to_signs() {
        // ((R1 ⊕ R2) ⊕ R3) and (R1 ⊕ (R2 ⊕ R3)) give the same R up to
        // column signs — the property that makes TSQR a reduction (§II-C).
        let n = 6;
        let r1 = random_upper(n, 31);
        let r2 = random_upper(n, 32);
        let r3 = random_upper(n, 33);
        let combine = |a: &Matrix, b: &Matrix| {
            let mut x = a.clone();
            let mut y = b.clone();
            tpqrt(&mut x, &mut y);
            x.upper_triangular_padded()
        };
        let left = combine(&combine(&r1, &r2), &r3);
        let right = combine(&r1, &combine(&r2, &r3));
        assert!(sign_normalize_r(&left).approx_eq(&sign_normalize_r(&right), 1e-11));
    }

    #[test]
    fn combine_is_commutative_up_to_signs() {
        let n = 5;
        let r1 = random_upper(n, 41);
        let r2 = random_upper(n, 42);
        let combine = |a: &Matrix, b: &Matrix| {
            let mut x = a.clone();
            let mut y = b.clone();
            tpqrt(&mut x, &mut y);
            x.upper_triangular_padded()
        };
        let ab = combine(&r1, &r2);
        let ba = combine(&r2, &r1);
        assert!(sign_normalize_r(&ab).approx_eq(&sign_normalize_r(&ba), 1e-11));
    }

    #[test]
    fn combining_with_zero_is_identity_up_to_signs() {
        let n = 4;
        let r = random_upper(n, 51);
        let z = Matrix::zeros(n, n);
        let mut a = r.clone();
        let mut b = z.clone();
        tpqrt(&mut a, &mut b);
        assert!(
            sign_normalize_r(&a.upper_triangular_padded())
                .approx_eq(&sign_normalize_r(&r), 1e-12)
        );
    }

    #[test]
    fn tpqrt_dense_matches_dense_stack_qr() {
        for (n, q) in [(1, 1), (3, 5), (6, 2), (4, 4), (8, 16)] {
            let r1 = random_upper(n as usize, 70 + n);
            let b = Matrix::random_uniform(q, n as usize, 80 + n);
            let mut a = r1.clone();
            let mut bb = b.clone();
            let _f = tpqrt_dense(&mut a, &mut bb);
            let stacked = r1.vstack(&b);
            let dense = crate::qr::QrFactors::compute_unblocked(&stacked);
            let got = sign_normalize_r(&a.upper_triangular_padded());
            let want = sign_normalize_r(&dense.r().sub_matrix(0, 0, n as usize, n as usize));
            assert!(got.approx_eq(&want, 1e-11), "n={n} q={q}");
        }
    }

    #[test]
    fn tpmqrt_dense_qt_annihilates_dense_block() {
        let (n, q) = (5, 7);
        let r1 = random_upper(n, 91);
        let b = Matrix::random_uniform(q, n, 92);
        let mut a = r1.clone();
        let mut bb = b.clone();
        let f = tpqrt_dense(&mut a, &mut bb);
        let mut c1 = r1.clone();
        let mut c2 = b.clone();
        tpmqrt_dense(Trans::Yes, &f, &mut c1, &mut c2);
        assert!(c1.approx_eq(&a.upper_triangular_padded(), 1e-11));
        assert!(c2.norm_max() < 1e-11);
    }

    #[test]
    fn tpmqrt_dense_round_trip() {
        let (n, q) = (4, 6);
        let mut r1 = random_upper(n, 93);
        let mut b = Matrix::random_uniform(q, n, 94);
        let f = tpqrt_dense(&mut r1, &mut b);
        let c1_0 = Matrix::random_uniform(n, 3, 95);
        let c2_0 = Matrix::random_uniform(q, 3, 96);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        tpmqrt_dense(Trans::Yes, &f, &mut c1, &mut c2);
        tpmqrt_dense(Trans::No, &f, &mut c1, &mut c2);
        assert!(c1.approx_eq(&c1_0, 1e-12));
        assert!(c2.approx_eq(&c2_0, 1e-12));
    }

    #[test]
    fn residual_of_full_reconstruction() {
        // Round-trip through relative_residual: [R1;R2] ≈ E·R.
        let n = 8;
        let r1 = random_upper(n, 61);
        let r2 = random_upper(n, 62);
        let mut a = r1.clone();
        let mut b = r2.clone();
        let f = tpqrt(&mut a, &mut b);
        let (e1, e2) = explicit_q_blocks(&f);
        let stack = r1.vstack(&r2);
        let e = e1.vstack(&e2);
        assert!(relative_residual(&stack, &e, &a.upper_triangular_padded()) < TOL);
    }
}
