//! Owned column-major dense matrices.

use std::fmt;
use std::ops::{Index, IndexMut};

use rand::distributions::Distribution;
use rand::Rng;

use crate::view::{View, ViewMut};

/// An owned, column-major, dense `f64` matrix.
///
/// The storage is a single `Vec<f64>` of length `rows*cols`; element `(i, j)`
/// lives at `data[i + j*rows]` (the leading dimension of an owned matrix is
/// always its row count). Borrow a [`View`]/[`ViewMut`] to work on windows.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// An `rows × cols` matrix whose entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a column-major buffer.
    ///
    /// Returns `None` when `data.len() != rows*cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Option<Self> {
        (data.len() == rows * cols).then_some(Matrix { rows, cols, data })
    }

    /// Builds a matrix from rows given in row-major order.
    ///
    /// Returns `None` when the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Option<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        if rows.iter().any(|row| row.len() != c) {
            return None;
        }
        Some(Self::from_fn(r, c, |i, j| rows[i][j]))
    }

    /// A matrix with entries drawn i.i.d. from `dist`.
    pub fn random<D: Distribution<f64>>(
        rows: usize,
        cols: usize,
        dist: &D,
        rng: &mut impl Rng,
    ) -> Self {
        Self::from_fn(rows, cols, |_, _| dist.sample(rng))
    }

    /// A matrix with entries uniform in `[-1, 1]`, seeded deterministically.
    ///
    /// This is the workload generator used throughout the test-suite and the
    /// examples: dense random tall-and-skinny matrices, matching the
    /// synthetic inputs of the paper's experiments.
    pub fn random_uniform(rows: usize, cols: usize, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new_inclusive(-1.0, 1.0);
        Self::random(rows, cols, &dist, &mut rng)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The raw column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw column-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its column-major buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.cols, "column {j} out of bounds ({} cols)", self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols, "column {j} out of bounds ({} cols)", self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// A borrowed view of the whole matrix.
    #[inline]
    pub fn view(&self) -> View<'_> {
        View::from_raw(&self.data, self.rows, self.cols, self.rows)
    }

    /// A mutable borrowed view of the whole matrix.
    #[inline]
    pub fn view_mut(&mut self) -> ViewMut<'_> {
        let (rows, cols) = (self.rows, self.cols);
        ViewMut::from_raw(&mut self.data, rows, cols, rows)
    }

    /// A borrowed view of the `nr × nc` window starting at `(r0, c0)`.
    pub fn sub(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> View<'_> {
        self.view().sub(r0, c0, nr, nc)
    }

    /// An owned copy of the `nr × nc` window starting at `(r0, c0)`.
    pub fn sub_matrix(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Matrix {
        self.sub(r0, c0, nr, nc).to_matrix()
    }

    /// Writes `src` into the window of `self` starting at `(r0, c0)`.
    pub fn set_sub(&mut self, r0: usize, c0: usize, src: &Matrix) {
        let (nr, nc) = src.shape();
        self.view_mut().sub_mut(r0, c0, nr, nc).copy_from(&src.view());
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Vertically stacks `self` on top of `other` (column counts must agree).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "vstack requires equal column counts ({} vs {})",
            self.cols, other.cols
        );
        Matrix::from_fn(self.rows + other.rows, self.cols, |i, j| {
            if i < self.rows {
                self[(i, j)]
            } else {
                other[(i - self.rows, j)]
            }
        })
    }

    /// Vertically stacks an ordered list of blocks with equal column counts.
    pub fn vstack_all(blocks: &[&Matrix]) -> Matrix {
        assert!(!blocks.is_empty(), "vstack_all needs at least one block");
        let cols = blocks[0].cols;
        assert!(
            blocks.iter().all(|b| b.cols == cols),
            "vstack_all requires equal column counts"
        );
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut r0 = 0;
        for b in blocks {
            out.set_sub(r0, 0, b);
            r0 += b.rows;
        }
        out
    }

    /// Splits the matrix into `parts` consecutive row-blocks whose heights
    /// are given by `heights` (must sum to `rows`).
    pub fn split_rows(&self, heights: &[usize]) -> Vec<Matrix> {
        assert_eq!(
            heights.iter().sum::<usize>(),
            self.rows,
            "row-block heights must sum to the row count"
        );
        let mut out = Vec::with_capacity(heights.len());
        let mut r0 = 0;
        for &h in heights {
            out.push(self.sub_matrix(r0, 0, h, self.cols));
            r0 += h;
        }
        out
    }

    /// The upper-triangular part of the leading `n × n` block (`n = min(rows,
    /// cols)` unless the matrix is wider than tall, in which case the full
    /// `min(rows,cols) × cols` trapezoid is kept).
    pub fn upper_triangular(&self) -> Matrix {
        let n = self.rows.min(self.cols);
        Matrix::from_fn(n, self.cols, |i, j| if i <= j { self[(i, j)] } else { 0.0 })
    }

    /// The matrix with its strict lower triangle zeroed, keeping the shape.
    ///
    /// Unlike [`Matrix::upper_triangular`], which truncates to the leading
    /// square block, this preserves the full `rows × cols` shape — handy for
    /// the stacked-triangles kernels that carry `n × n` R factors around.
    pub fn upper_triangular_padded(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| if i <= j { self[(i, j)] } else { 0.0 })
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Max-absolute-entry norm.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// `self - other` as a new matrix.
    pub fn sub_elem(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in sub_elem");
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)] - other[(i, j)])
    }

    /// `self * other` using the blocked gemm kernel.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.rows(),
            "matmul inner dimensions mismatch ({}x{} * {}x{})",
            self.rows,
            self.cols,
            other.rows(),
            other.cols()
        );
        let mut c = Matrix::zeros(self.rows, other.cols());
        crate::blas::gemm(
            crate::qr::Trans::No,
            crate::qr::Trans::No,
            1.0,
            &self.view(),
            &other.view(),
            0.0,
            &mut c.view_mut(),
        );
        c
    }

    /// `selfᵀ * other` using the blocked gemm kernel.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows(), "t_matmul inner dimensions mismatch");
        let mut c = Matrix::zeros(self.cols, other.cols());
        crate::blas::gemm(
            crate::qr::Trans::Yes,
            crate::qr::Trans::No,
            1.0,
            &self.view(),
            &other.view(),
            0.0,
            &mut c.view_mut(),
        );
        c
    }

    /// True when all entries of `self` and `other` differ by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape() && self.sub_elem(other).norm_max() <= tol
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i + j * self.rows]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > show_cols { "…" } else { "" })?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(3, 2);
        assert_eq!(z.shape(), (3, 2));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_is_column_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        assert_eq!(m[(1, 2)], 12.0);
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m[(2, 1)], 6.0);
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_none());
    }

    #[test]
    fn from_col_major_checks_len() {
        assert!(Matrix::from_col_major(2, 2, vec![1.0; 3]).is_none());
        assert!(Matrix::from_col_major(2, 2, vec![1.0; 4]).is_some());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::random_uniform(5, 3, 42);
        assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn vstack_and_split_rows_round_trip() {
        let a = Matrix::random_uniform(4, 3, 1);
        let b = Matrix::random_uniform(2, 3, 2);
        let s = a.vstack(&b);
        assert_eq!(s.shape(), (6, 3));
        let parts = s.split_rows(&[4, 2]);
        assert!(parts[0].approx_eq(&a, 0.0));
        assert!(parts[1].approx_eq(&b, 0.0));
    }

    #[test]
    fn vstack_all_matches_pairwise() {
        let a = Matrix::random_uniform(2, 2, 1);
        let b = Matrix::random_uniform(3, 2, 2);
        let c = Matrix::random_uniform(1, 2, 3);
        let all = Matrix::vstack_all(&[&a, &b, &c]);
        assert!(all.approx_eq(&a.vstack(&b).vstack(&c), 0.0));
    }

    #[test]
    fn sub_matrix_window() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.sub_matrix(1, 2, 2, 2);
        assert_eq!(s[(0, 0)], m[(1, 2)]);
        assert_eq!(s[(1, 1)], m[(2, 3)]);
    }

    #[test]
    fn set_sub_writes_window() {
        let mut m = Matrix::zeros(4, 4);
        let s = Matrix::from_fn(2, 2, |i, j| (i + j + 1) as f64);
        m.set_sub(1, 1, &s);
        assert_eq!(m[(1, 1)], 1.0);
        assert_eq!(m[(2, 2)], 3.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]).unwrap();
        assert!((m.norm_fro() - 5.0).abs() < 1e-15);
        assert_eq!(m.norm_max(), 4.0);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b);
        let want = Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap();
        assert!(c.approx_eq(&want, 1e-14));
    }

    #[test]
    fn t_matmul_matches_transpose_matmul() {
        let a = Matrix::random_uniform(6, 3, 7);
        let b = Matrix::random_uniform(6, 4, 8);
        let c1 = a.t_matmul(&b);
        let c2 = a.transpose().matmul(&b);
        assert!(c1.approx_eq(&c2, 1e-13));
    }

    #[test]
    fn upper_triangular_zeroes_strict_lower() {
        let m = Matrix::random_uniform(5, 3, 9);
        let u = m.upper_triangular();
        assert_eq!(u.shape(), (3, 3));
        for i in 0..3 {
            for j in 0..3 {
                if i > j {
                    assert_eq!(u[(i, j)], 0.0);
                } else {
                    assert_eq!(u[(i, j)], m[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn random_uniform_is_deterministic() {
        let a = Matrix::random_uniform(10, 4, 123);
        let b = Matrix::random_uniform(10, 4, 123);
        assert!(a.approx_eq(&b, 0.0));
        let c = Matrix::random_uniform(10, 4, 124);
        assert!(!a.approx_eq(&c, 0.0));
    }

    #[test]
    #[should_panic(expected = "vstack requires equal column counts")]
    fn vstack_mismatch_panics() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        let _ = a.vstack(&b);
    }
}
