//! Borrowed column-major matrix windows with an explicit leading dimension.
//!
//! Blocked factorizations operate in place on sub-matrices of a larger
//! allocation. A [`ViewMut`] carries `(rows, cols, ld)` over a mutable slice;
//! splitting at a column boundary yields two disjoint views (columns are
//! contiguous in column-major storage), which is exactly the panel /
//! trailing-matrix split `geqrf` needs.

use crate::matrix::Matrix;

/// An immutable window into column-major storage.
#[derive(Clone, Copy)]
pub struct View<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    ld: usize,
}

/// A mutable window into column-major storage.
pub struct ViewMut<'a> {
    data: &'a mut [f64],
    rows: usize,
    cols: usize,
    ld: usize,
}

fn check_dims(len: usize, rows: usize, cols: usize, ld: usize) {
    // A zero-row matrix legitimately has ld = 0 (all its columns are empty).
    assert!(ld >= rows, "leading dimension {ld} < rows {rows}");
    let needed = if cols == 0 { 0 } else { (cols - 1) * ld + rows };
    assert!(len >= needed, "buffer too small: len {len} < required {needed}");
}

impl<'a> View<'a> {
    /// Wraps raw column-major storage (`data[i + j*ld]`).
    pub fn from_raw(data: &'a [f64], rows: usize, cols: usize, ld: usize) -> Self {
        check_dims(data.len(), rows, cols, ld);
        View { data, rows, cols, ld }
    }

    /// Row count of the viewed block.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count of the viewed block.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (column stride) of the underlying storage.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.ld]
    }

    /// Column `j` as a slice of length `rows`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// The `nr × nc` sub-window starting at `(r0, c0)`.
    pub fn sub(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> View<'a> {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "sub-view out of bounds");
        // An empty window at the right edge may start past the buffer end
        // (the buffer stops `ld − rows` short of `cols·ld`); clamp it.
        let off = (r0 + c0 * self.ld).min(self.data.len());
        View::from_raw(&self.data[off..], nr, nc, self.ld)
    }

    /// Copies the window into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j))
    }

    /// Frobenius norm of the window.
    pub fn norm_fro(&self) -> f64 {
        let mut s = 0.0;
        for j in 0..self.cols {
            for &x in self.col(j) {
                s += x * x;
            }
        }
        s.sqrt()
    }
}

impl<'a> ViewMut<'a> {
    /// Wraps raw column-major storage (`data[i + j*ld]`).
    pub fn from_raw(data: &'a mut [f64], rows: usize, cols: usize, ld: usize) -> Self {
        check_dims(data.len(), rows, cols, ld);
        ViewMut { data, rows, cols, ld }
    }

    /// Row count of the viewed block.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count of the viewed block.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (column stride) of the underlying storage.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.ld]
    }

    /// Overwrites element `(i, j)` with `v`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.ld] = v;
    }

    /// Column `j` as a slice of length `rows`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Column `j` as a mutable slice of length `rows`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// An immutable view of the same window (reborrow).
    pub fn as_view(&self) -> View<'_> {
        View::from_raw(self.data, self.rows, self.cols, self.ld)
    }

    /// The underlying storage slice (exclusively borrowed by this view).
    ///
    /// Used by the parallel gemm to hand disjoint column strips to rayon
    /// tasks; callers must respect the `(rows, cols, ld)` window.
    pub(crate) fn raw_mut(&mut self) -> &mut [f64] {
        self.data
    }

    /// Reborrows the `nr × nc` sub-window starting at `(r0, c0)` mutably.
    pub fn sub_mut(&mut self, r0: usize, c0: usize, nr: usize, nc: usize) -> ViewMut<'_> {
        assert!(r0 + nr <= self.rows && c0 + nc <= self.cols, "sub-view out of bounds");
        // See `View::sub`: clamp empty right-edge windows.
        let off = (r0 + c0 * self.ld).min(self.data.len());
        ViewMut::from_raw(&mut self.data[off..], nr, nc, self.ld)
    }

    /// An immutable sub-window.
    pub fn sub(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> View<'_> {
        self.as_view().sub(r0, c0, nr, nc)
    }

    /// Splits into disjoint column ranges `[0, j)` and `[j, cols)`.
    ///
    /// Both halves keep the same leading dimension; this is sound because
    /// column `j` starts at offset `j*ld`, so the two halves occupy disjoint
    /// parts of the underlying slice.
    pub fn split_cols_at_mut(&mut self, j: usize) -> (ViewMut<'_>, ViewMut<'_>) {
        assert!(j <= self.cols, "column split {j} out of bounds ({} cols)", self.cols);
        // The buffer may end `ld - rows` short of `cols*ld` (a window into a
        // larger matrix); clamp so an empty right half is representable.
        let mid = (j * self.ld).min(self.data.len());
        let (left, right) = self.data.split_at_mut(mid);
        (
            ViewMut::from_raw(left, self.rows, j, self.ld),
            ViewMut::from_raw(right, self.rows, self.cols - j, self.ld),
        )
    }

    /// Copies `src` into this window (shapes must agree).
    pub fn copy_from(&mut self, src: &View<'_>) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows(), src.cols()),
            "copy_from shape mismatch"
        );
        for j in 0..self.cols {
            let rows = self.rows;
            self.col_mut(j)[..rows].copy_from_slice(&src.col(j)[..rows]);
        }
    }

    /// Copies the window into an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        self.as_view().to_matrix()
    }

    /// Fills the window with a constant.
    pub fn fill(&mut self, v: f64) {
        for j in 0..self.cols {
            self.col_mut(j).fill(v);
        }
    }

    /// Scales every entry of the window by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        for j in 0..self.cols {
            for x in self.col_mut(j) {
                *x *= alpha;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_fn(4, 5, |i, j| (i * 10 + j) as f64)
    }

    #[test]
    fn view_indexing_matches_matrix() {
        let m = sample();
        let v = m.view();
        for i in 0..4 {
            for j in 0..5 {
                assert_eq!(v.get(i, j), m[(i, j)]);
            }
        }
    }

    #[test]
    fn sub_view_offsets() {
        let m = sample();
        let v = m.sub(1, 2, 2, 3);
        assert_eq!(v.get(0, 0), m[(1, 2)]);
        assert_eq!(v.get(1, 2), m[(2, 4)]);
        assert_eq!(v.ld(), 4);
    }

    #[test]
    fn nested_sub_views_compose() {
        let m = sample();
        let v = m.sub(1, 1, 3, 4).sub(1, 2, 2, 2);
        assert_eq!(v.get(0, 0), m[(2, 3)]);
        assert_eq!(v.get(1, 1), m[(3, 4)]);
    }

    #[test]
    fn split_cols_gives_disjoint_windows() {
        let mut m = sample();
        let mut v = m.view_mut();
        let (mut l, mut r) = v.split_cols_at_mut(2);
        assert_eq!((l.rows(), l.cols()), (4, 2));
        assert_eq!((r.rows(), r.cols()), (4, 3));
        l.set(0, 0, -1.0);
        r.set(0, 0, -2.0);
        assert_eq!(m[(0, 0)], -1.0);
        assert_eq!(m[(0, 2)], -2.0);
    }

    #[test]
    fn split_cols_respects_row_window() {
        // Split a sub-window that does not span the whole leading dimension.
        let mut m = sample();
        let mut v = m.view_mut();
        let mut w = v.sub_mut(1, 1, 2, 3);
        let (mut l, mut r) = w.split_cols_at_mut(1);
        l.set(1, 0, 99.0);
        r.set(0, 1, 98.0);
        assert_eq!(m[(2, 1)], 99.0);
        assert_eq!(m[(1, 3)], 98.0);
    }

    #[test]
    fn copy_from_and_to_matrix_round_trip() {
        let m = sample();
        let mut dst = Matrix::zeros(2, 3);
        dst.view_mut().copy_from(&m.sub(1, 1, 2, 3));
        assert!(dst.approx_eq(&m.sub_matrix(1, 1, 2, 3), 0.0));
        assert!(dst.view().to_matrix().approx_eq(&dst, 0.0));
    }

    #[test]
    fn fill_and_scale() {
        let mut m = sample();
        m.view_mut().sub_mut(0, 0, 2, 2).fill(1.0);
        assert_eq!(m[(1, 1)], 1.0);
        assert_eq!(m[(2, 0)], 20.0);
        m.view_mut().scale(2.0);
        assert_eq!(m[(2, 0)], 40.0);
    }

    #[test]
    fn view_norm_fro_ignores_outside() {
        let m = sample();
        let v = m.sub(0, 0, 2, 1);
        assert!((v.norm_fro() - (0.0f64 + 100.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_right_edge_windows_are_representable() {
        // A window into a larger matrix whose buffer stops `ld - rows`
        // short of `cols*ld`: empty sub-views at the right edge must not
        // slice past the end.
        let mut m = sample(); // 4 x 5, ld = 4
        let v = m.sub(1, 0, 2, 5); // rows < ld
        let empty = v.sub(0, 5, 2, 0);
        assert_eq!(empty.cols(), 0);
        let mut w = m.view_mut();
        let mut win = w.sub_mut(1, 0, 2, 5);
        let empty_mut = win.sub_mut(0, 5, 2, 0);
        assert_eq!(empty_mut.cols(), 0);
        let (left, right) = win.split_cols_at_mut(5);
        assert_eq!(left.cols(), 5);
        assert_eq!(right.cols(), 0);
    }

    #[test]
    fn zero_row_views_are_fine() {
        let m = Matrix::zeros(0, 3);
        let v = m.view();
        assert_eq!(v.rows(), 0);
        assert_eq!(v.norm_fro(), 0.0);
    }

    #[test]
    #[should_panic(expected = "sub-view out of bounds")]
    fn sub_out_of_bounds_panics() {
        let m = sample();
        let _ = m.sub(3, 0, 2, 1);
    }
}
