//! Elementary Householder reflectors (LAPACK `larfg`/`larf` analogues).
//!
//! A reflector is `H = I − τ·v·vᵀ` with `v[0] = 1` held implicitly; applied
//! to its generating vector it produces `(β, 0, …, 0)ᵀ`. Following LAPACK we
//! choose `β = −sign(α)·‖x‖` so the subtraction `α − β` never cancels.

use crate::blas::{axpy, dot, nrm2, scal};
use crate::view::ViewMut;

/// Result of generating a reflector for a vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reflector {
    /// The value the vector's first entry is mapped to (`±‖x‖`).
    pub beta: f64,
    /// The scaling factor τ of `H = I − τ·v·vᵀ` (0 when `x` is already
    /// collapsed, in which case `H = I`).
    pub tau: f64,
}

/// Generates a Householder reflector for the vector `x` in place.
///
/// On entry `x = (α, x₁, …)ᵀ`; on exit `x[0]` is unspecified and `x[1..]`
/// holds the tail of `v` (the leading `1` of `v` is implicit). Returns
/// `(β, τ)` such that `H·x = β·e₁`.
pub fn larfg(x: &mut [f64]) -> Reflector {
    assert!(!x.is_empty(), "larfg needs a non-empty vector");
    let alpha = x[0];
    let xnorm = nrm2(&x[1..]);
    if xnorm == 0.0 {
        // Already collapsed; H = I. (We do not flip signs for negative α —
        // same convention as LAPACK dlarfg, which returns tau = 0.)
        return Reflector { beta: alpha, tau: 0.0 };
    }
    let norm = alpha.hypot(xnorm);
    let beta = if alpha >= 0.0 { -norm } else { norm };
    let tau = (beta - alpha) / beta;
    // v = (x - beta e1) / (alpha - beta); v[0] = 1 implicit.
    scal(1.0 / (alpha - beta), &mut x[1..]);
    Reflector { beta, tau }
}

/// Applies `H = I − τ·v·vᵀ` from the left to the matrix window `c`.
///
/// `v_tail` is `v[1..]` (length `c.rows() − 1`); the leading 1 is implicit.
/// `work` must have length at least `c.cols()`.
pub fn larf_left(tau: f64, v_tail: &[f64], c: &mut ViewMut<'_>, work: &mut [f64]) {
    if tau == 0.0 {
        return;
    }
    let m = c.rows();
    let n = c.cols();
    assert_eq!(v_tail.len(), m - 1, "larf_left: v length mismatch");
    assert!(work.len() >= n, "larf_left: workspace too small");
    // w = Cᵀ v  (with v = [1; v_tail])
    for j in 0..n {
        let cj = c.col(j);
        work[j] = cj[0] + dot(&cj[1..m], v_tail);
    }
    // C -= τ v wᵀ
    for j in 0..n {
        let twj = tau * work[j];
        let cj = c.col_mut(j);
        cj[0] -= twj;
        axpy(-twj, v_tail, &mut cj[1..m]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// Reconstruct the dense H from (tau, v_tail).
    fn dense_h(n: usize, tau: f64, v_tail: &[f64]) -> Matrix {
        let mut v = vec![1.0];
        v.extend_from_slice(v_tail);
        Matrix::from_fn(n, n, |i, j| {
            let e = if i == j { 1.0 } else { 0.0 };
            e - tau * v[i] * v[j]
        })
    }

    #[test]
    fn reflector_collapses_vector() {
        let x0 = vec![3.0, 4.0, 12.0];
        let mut x = x0.clone();
        let r = larfg(&mut x);
        assert!((r.beta.abs() - 13.0).abs() < 1e-12);
        let h = dense_h(3, r.tau, &x[1..]);
        let hx = h.matmul(&Matrix::from_col_major(3, 1, x0).unwrap());
        assert!((hx[(0, 0)] - r.beta).abs() < 1e-12);
        assert!(hx[(1, 0)].abs() < 1e-12);
        assert!(hx[(2, 0)].abs() < 1e-12);
    }

    #[test]
    fn reflector_is_orthogonal_and_symmetric() {
        let mut x = vec![-1.0, 2.0, -0.5, 0.25];
        let r = larfg(&mut x);
        let h = dense_h(4, r.tau, &x[1..]);
        let hth = h.t_matmul(&h);
        assert!(hth.approx_eq(&Matrix::identity(4), 1e-12));
        assert!(h.approx_eq(&h.transpose(), 1e-12));
    }

    #[test]
    fn already_collapsed_vector_gives_identity() {
        let mut x = vec![5.0, 0.0, 0.0];
        let r = larfg(&mut x);
        assert_eq!(r.tau, 0.0);
        assert_eq!(r.beta, 5.0);
    }

    #[test]
    fn beta_sign_is_opposite_alpha() {
        let mut x = vec![2.0, 1.0];
        assert!(larfg(&mut x).beta < 0.0);
        let mut y = vec![-2.0, 1.0];
        assert!(larfg(&mut y).beta > 0.0);
    }

    #[test]
    fn larf_left_matches_dense_multiply() {
        let a0 = Matrix::random_uniform(4, 3, 5);
        let mut v = vec![0.7, -0.3, 0.9, 0.1];
        let r = larfg(&mut v);
        let h = dense_h(4, r.tau, &v[1..]);
        let want = h.matmul(&a0);
        let mut a = a0.clone();
        let mut work = vec![0.0; 3];
        larf_left(r.tau, &v[1..], &mut a.view_mut(), &mut work);
        assert!(a.approx_eq(&want, 1e-12));
    }

    #[test]
    fn larf_with_zero_tau_is_noop() {
        let a0 = Matrix::random_uniform(3, 2, 6);
        let mut a = a0.clone();
        let mut work = vec![0.0; 2];
        larf_left(0.0, &[0.0, 0.0], &mut a.view_mut(), &mut work);
        assert!(a.approx_eq(&a0, 0.0));
    }

    #[test]
    fn tiny_and_huge_vectors_stay_finite() {
        let mut x = vec![1e-160, 3e-161, 4e-161];
        let r = larfg(&mut x);
        assert!(r.beta.is_finite() && r.tau.is_finite());
        assert!(x[1..].iter().all(|v| v.is_finite()));
        let mut y = vec![1e155, 3e154, 4e154];
        let r = larfg(&mut y);
        assert!(r.beta.is_finite() && r.tau.is_finite());
    }
}
