//! Property-based tests of the dense-kernel invariants.

use proptest::prelude::*;

use tsqr_linalg::blas;
use tsqr_linalg::prelude::*;
use tsqr_linalg::qr::Trans;
use tsqr_linalg::stacked::{tpmqrt_dense, tpqrt_dense};
use tsqr_linalg::verify::{is_upper_triangular, orthogonality, r_distance, relative_residual};
use tsqr_linalg::Matrix;

const TOL: f64 = 1e-10;

/// A deterministic pseudo-random matrix from proptest-provided knobs.
fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::random_uniform(rows, cols, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Q·R reproduces A and Q has orthonormal columns for arbitrary tall
    /// shapes and panel widths.
    #[test]
    fn qr_invariants(
        m in 1usize..60,
        extra in 0usize..80,
        nb in 1usize..20,
        seed in 0u64..1_000_000,
    ) {
        let rows = m + extra.max(1); // ensure m >= 1 row
        let cols = m.min(rows).max(1);
        let a = mat(rows, cols, seed);
        let f = QrFactors::compute(&a, nb);
        let q = f.q_thin();
        let r = f.r();
        prop_assert!(relative_residual(&a, &q, &r) < TOL);
        prop_assert!(orthogonality(&q) < TOL);
        prop_assert!(is_upper_triangular(&r.upper_triangular_padded()));
    }

    /// Blocked and unblocked factorizations agree bit-for-bit in exact
    /// arithmetic terms (same reflectors), so R matches to roundoff.
    #[test]
    fn blocked_matches_unblocked(
        m in 4usize..50,
        n in 1usize..12,
        nb in 1usize..12,
        seed in 0u64..1_000_000,
    ) {
        let rows = m.max(n);
        let a = mat(rows, n, seed);
        let blocked = QrFactors::compute(&a, nb);
        let unblocked = QrFactors::compute_unblocked(&a);
        prop_assert!(r_distance(&blocked.r(), &unblocked.r()) < 1e-11);
    }

    /// The Gram identity RᵀR = AᵀA holds for every factorization.
    #[test]
    fn gram_identity(m in 2usize..60, n in 1usize..10, seed in 0u64..1_000_000) {
        let rows = m.max(n);
        let a = mat(rows, n, seed);
        let r = QrFactors::compute(&a, 8).r();
        let gram_a = a.t_matmul(&a);
        let gram_r = r.t_matmul(&r);
        let err = gram_r.sub_elem(&gram_a).norm_fro() / gram_a.norm_fro().max(1e-300);
        prop_assert!(err < 1e-11);
    }

    /// The stacked-triangles combine is associative up to row signs.
    #[test]
    fn combine_associative(n in 1usize..12, s1 in 0u64..1000, s2 in 0u64..1000, s3 in 0u64..1000) {
        let r = |s| mat(n, n, s).upper_triangular_padded();
        let combine = |a: &Matrix, b: &Matrix| {
            let mut x = a.clone();
            let mut y = b.clone();
            tpqrt(&mut x, &mut y);
            x.upper_triangular_padded()
        };
        let (r1, r2, r3) = (r(s1), r(s2), r(s3));
        let left = combine(&combine(&r1, &r2), &r3);
        let right = combine(&r1, &combine(&r2, &r3));
        prop_assert!(r_distance(&left, &right) < 1e-10);
    }

    /// Combining preserves the Gram matrix: RᵀR = R1ᵀR1 + R2ᵀR2 — the
    /// algebraic reason the reduction computes the right factorization.
    #[test]
    fn combine_preserves_gram(n in 1usize..12, s1 in 0u64..1000, s2 in 0u64..1000) {
        let r1 = mat(n, n, s1).upper_triangular_padded();
        let r2 = mat(n, n, s2).upper_triangular_padded();
        let mut a = r1.clone();
        let mut b = r2.clone();
        tpqrt(&mut a, &mut b);
        let r = a.upper_triangular_padded();
        let want = Matrix::from_fn(n, n, |i, j| {
            r1.t_matmul(&r1)[(i, j)] + r2.t_matmul(&r2)[(i, j)]
        });
        let err = r.t_matmul(&r).sub_elem(&want).norm_max();
        prop_assert!(err < 1e-10 * (n as f64) * want.norm_max().max(1.0));
    }

    /// tpqrt_dense: stacking a triangle on a dense block and factoring is
    /// the same (up to signs) as a dense QR of the stack.
    #[test]
    fn dense_stack_kernel(n in 1usize..10, q in 1usize..14, s in 0u64..1000) {
        let r1 = mat(n, n, s).upper_triangular_padded();
        let b = mat(q, n, s + 1);
        let mut a = r1.clone();
        let mut bb = b.clone();
        tpqrt_dense(&mut a, &mut bb);
        let reference = QrFactors::compute_unblocked(&r1.vstack(&b));
        let got = tsqr_linalg::verify::sign_normalize_r(&a.upper_triangular_padded());
        let want = tsqr_linalg::verify::sign_normalize_r(
            &reference.r().sub_matrix(0, 0, n, n),
        );
        prop_assert!(got.approx_eq(&want, 1e-10));
    }

    /// Applying the dense-stack Q then its transpose is the identity.
    #[test]
    fn dense_stack_q_round_trip(n in 1usize..8, q in 1usize..10, k in 1usize..6, s in 0u64..1000) {
        let mut r1 = mat(n, n, s).upper_triangular_padded();
        let mut b = mat(q, n, s + 1);
        let f = tpqrt_dense(&mut r1, &mut b);
        let c1_0 = mat(n, k, s + 2);
        let c2_0 = mat(q, k, s + 3);
        let mut c1 = c1_0.clone();
        let mut c2 = c2_0.clone();
        tpmqrt_dense(Trans::Yes, &f, &mut c1, &mut c2);
        tpmqrt_dense(Trans::No, &f, &mut c1, &mut c2);
        prop_assert!(c1.approx_eq(&c1_0, 1e-11));
        prop_assert!(c2.approx_eq(&c2_0, 1e-11));
    }

    /// gemm agrees with the naive triple loop for random shapes, scalars
    /// and transposes.
    #[test]
    fn gemm_vs_naive(
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..20,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        ta in proptest::bool::ANY,
        tb in proptest::bool::ANY,
        seed in 0u64..1_000_000,
    ) {
        let ta = if ta { Trans::Yes } else { Trans::No };
        let tb = if tb { Trans::Yes } else { Trans::No };
        let a = match ta { Trans::No => mat(m, k, seed), Trans::Yes => mat(k, m, seed) };
        let b = match tb { Trans::No => mat(k, n, seed + 1), Trans::Yes => mat(n, k, seed + 1) };
        let c0 = mat(m, n, seed + 2);
        let mut c = c0.clone();
        blas::gemm(ta, tb, alpha, &a.view(), &b.view(), beta, &mut c.view_mut());
        let ao = match ta { Trans::No => a.clone(), Trans::Yes => a.transpose() };
        let bo = match tb { Trans::No => b.clone(), Trans::Yes => b.transpose() };
        let want = Matrix::from_fn(m, n, |i, j| {
            beta * c0[(i, j)]
                + alpha * (0..k).map(|l| ao[(i, l)] * bo[(l, j)]).sum::<f64>()
        });
        prop_assert!(c.approx_eq(&want, 1e-11));
    }

    /// nrm2 is scale-invariant: ||c·x|| = |c|·||x||.
    #[test]
    fn nrm2_homogeneous(len in 1usize..64, c in -1e3f64..1e3, seed in 0u64..1_000_000) {
        let x = mat(len, 1, seed);
        let scaled: Vec<f64> = x.as_slice().iter().map(|v| c * v).collect();
        let lhs = blas::nrm2(&scaled);
        let rhs = c.abs() * blas::nrm2(x.as_slice());
        prop_assert!((lhs - rhs).abs() <= 1e-12 * rhs.max(1.0));
    }

    /// Sign normalization is idempotent and sign-invariant.
    #[test]
    fn sign_normalize_properties(n in 1usize..10, seed in 0u64..1_000_000, flips in 0u32..256) {
        let r = mat(n, n, seed).upper_triangular_padded();
        let norm = tsqr_linalg::verify::sign_normalize_r(&r);
        prop_assert!(tsqr_linalg::verify::sign_normalize_r(&norm).approx_eq(&norm, 0.0));
        // Flip arbitrary rows: normalization must erase the flips.
        let mut flipped = r.clone();
        for i in 0..n {
            if flips >> (i % 32) & 1 == 1 {
                for j in 0..n {
                    flipped[(i, j)] = -flipped[(i, j)];
                }
            }
        }
        prop_assert!(r_distance(&r, &flipped) < 1e-15);
    }
}
