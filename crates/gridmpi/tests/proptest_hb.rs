//! Property-based tests of the vector-clock algebra underlying the
//! happens-before analyzer (`tsqr_gridmpi::hb`): merge is an idempotent,
//! commutative, associative join with the zero clock as identity; the
//! component-wise comparison is a genuine partial order (reflexive-equal,
//! antisymmetric, transitive) consistent with `merge`; and `tick`
//! strictly advances a clock past everything it has merged — the law
//! that makes "receive after send" an HB edge.

use proptest::prelude::*;

use tsqr_gridmpi::VectorClock;

const W: usize = 6;

/// An arbitrary clock over at most `W` ranks, with deliberately *ragged*
/// widths (the algebra must be width-insensitive: missing components
/// read as zero).
fn clock() -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u64..50, 0..W).prop_map(VectorClock::from)
}

fn merged(a: &VectorClock, b: &VectorClock) -> VectorClock {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// merge is commutative: a ⊔ b = b ⊔ a.
    #[test]
    fn merge_is_commutative(a in clock(), b in clock()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// merge is associative: (a ⊔ b) ⊔ c = a ⊔ (b ⊔ c).
    #[test]
    fn merge_is_associative(a in clock(), b in clock(), c in clock()) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    /// merge is idempotent with the zero clock as identity.
    #[test]
    fn merge_is_idempotent_with_zero_identity(a in clock(), width in 0usize..W) {
        prop_assert_eq!(merged(&a, &a), a.clone());
        prop_assert_eq!(merged(&a, &VectorClock::new(width)), a.clone());
        prop_assert_eq!(merged(&VectorClock::new(width), &a), a);
    }

    /// merge computes the least upper bound: both arguments precede (or
    /// equal) the join, and the join is below any other upper bound.
    #[test]
    fn merge_is_the_least_upper_bound(a in clock(), b in clock(), c in clock()) {
        let j = merged(&a, &b);
        prop_assert!(a == j || a.happens_before(&j));
        prop_assert!(b == j || b.happens_before(&j));
        // Any common upper bound dominates the join.
        let (ub_a, ub_b) = (a == c || a.happens_before(&c), b == c || b.happens_before(&c));
        if ub_a && ub_b {
            prop_assert!(j == c || j.happens_before(&c));
        }
    }

    /// The comparison is a partial order: equality is width-insensitive
    /// and agrees with `partial_cmp == Equal`; antisymmetry holds; and
    /// happens-before is irreflexive.
    #[test]
    fn comparison_is_a_partial_order(a in clock(), b in clock()) {
        use std::cmp::Ordering;
        // Reflexivity / consistency of eq with partial_cmp.
        prop_assert_eq!(a.partial_cmp(&a), Some(Ordering::Equal));
        prop_assert_eq!(a == b, a.partial_cmp(&b) == Some(Ordering::Equal));
        // Antisymmetry: a < b and b < a cannot both hold.
        prop_assert!(!(a.happens_before(&b) && b.happens_before(&a)));
        // Irreflexivity of the strict order.
        prop_assert!(!a.happens_before(&a));
        // Exactly one of: equal, <, >, concurrent.
        let classes = [
            a == b,
            a.happens_before(&b),
            b.happens_before(&a),
            a.concurrent_with(&b),
        ];
        prop_assert_eq!(classes.iter().filter(|&&x| x).count(), 1);
    }

    /// Transitivity: a < b and b < c imply a < c.
    #[test]
    fn happens_before_is_transitive(a in clock(), b in clock(), c in clock()) {
        let ab = merged(&a, &b);
        let mut bc = merged(&ab, &c);
        bc.tick(0);
        // By construction a ≤ ab < bc; check the strict chain when it exists.
        if a.happens_before(&ab) && ab.happens_before(&bc) {
            prop_assert!(a.happens_before(&bc));
        }
        prop_assert!(ab.happens_before(&bc));
    }

    /// `tick` after `merge` strictly advances past both inputs — the
    /// send/receive law: a receive that merges the sender's stamp and
    /// ticks is causally after both the send and its own past.
    #[test]
    fn tick_after_merge_is_strictly_later(a in clock(), b in clock(), rank in 0usize..W) {
        let mut r = merged(&a, &b);
        r.tick(rank);
        prop_assert!(a.happens_before(&r));
        prop_assert!(b.happens_before(&r));
        prop_assert!(r.get(rank) >= 1);
    }
}
