//! Property-based tests of the wait-state diagnostics: on random
//! topologies and random compute/communication mixes the classification
//! must reconcile exactly with the metrics registry, agree with the
//! aggregate traffic counters, and stay deterministic.

use proptest::prelude::*;

use tsqr_gridmpi::Runtime;
use tsqr_netsim::{ClusterSpec, CostModel, GridTopology, LinkParams};

fn runtime(clusters: usize, procs: usize, latency_ms: f64, mbps: f64) -> Runtime {
    let specs = (0..clusters)
        .map(|i| ClusterSpec {
            name: format!("c{i}"),
            nodes: procs,
            procs_per_node: 1,
            peak_gflops_per_proc: 8.0,
        })
        .collect();
    let topo = GridTopology::block_placement(specs, procs, 1);
    let mut model =
        CostModel::homogeneous(LinkParams::from_ms_mbps(latency_ms, mbps), 1e9, clusters);
    for a in 0..clusters {
        for b in 0..clusters {
            if a != b {
                model.inter_cluster[a][b] = LinkParams::from_ms_mbps(latency_ms * 100.0, mbps / 8.0);
            }
        }
    }
    Runtime::new(topo, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The five wait-state classes always partition `recv_wait_s`, per
    /// rank and per phase, and the diagnosis agrees with the runtime's
    /// own traffic counters — whatever the topology, payload size,
    /// compute imbalance or timeline resolution.
    #[test]
    fn diagnosis_reconciles_on_random_runs(
        clusters in 1usize..4,
        procs in 1usize..5,
        len in 1usize..128,
        heavy_sel in 0usize..8,
        megaflops in 1u64..500,
        bins in 1usize..48,
    ) {
        let mut rt = runtime(clusters, procs, 0.3, 400.0);
        rt.enable_tracing();
        let n = clusters * procs;
        let heavy = heavy_sel % n;
        let report = rt.run(move |p, world| {
            if p.rank() == heavy {
                p.compute(megaflops * 1_000_000, None);
            }
            let me = world.my_index(p) as f64;
            world.allreduce(p, vec![me; len], |a, b| {
                a.iter().zip(&b).map(|(x, y)| x + y).collect()
            })?;
            world.barrier(p)?;
            Ok(())
        });
        let trace = report.trace.as_ref().expect("tracing enabled");
        let diag = trace.diagnose(n, bins);

        // (1) The classification reconciles with the metrics registry.
        let drift = diag.reconcile(&report.metrics);
        let scale = diag.total().total_wait_s().max(1.0);
        prop_assert!(drift <= 1e-9 * scale, "drift {} s", drift);

        // (2) Every class is non-negative and nothing is unmatched in a
        // completed run.
        for b in &diag.per_rank {
            prop_assert!(b.late_sender_s >= 0.0);
            prop_assert!(b.imbalance_s >= 0.0);
            prop_assert!(b.propagated_s >= 0.0);
            prop_assert!(b.delivery_s >= 0.0);
            prop_assert!(b.unmatched_s <= 0.0);
            prop_assert!(b.late_receiver_s >= 0.0);
        }

        // (3) The comm matrix and link usage agree with the counters.
        prop_assert_eq!(diag.comm.total_msgs(), report.totals.total_msgs());
        prop_assert_eq!(diag.comm.total_bytes(), report.totals.total_bytes());
        prop_assert_eq!(diag.wan_msgs(), report.totals.inter_cluster_msgs());
        for bucket in 0..3 {
            prop_assert_eq!(diag.link_usage.msgs(bucket), report.totals.msgs[bucket]);
            prop_assert_eq!(diag.link_usage.bytes(bucket), report.totals.bytes[bucket]);
        }

        // (4) The makespan carries through, and a sufficiently heavy
        // rank makes everyone else wait.
        let makespan = report.makespan.secs();
        prop_assert!((diag.makespan_s - makespan).abs() <= 1e-12 * makespan.max(1.0));
        if n > 1 && megaflops >= 100 {
            prop_assert!(
                diag.total().total_wait_s() > 0.0,
                "someone must wait on the heavy rank"
            );
        }
    }

    /// Diagnosing the same run twice renders byte-identical reports.
    #[test]
    fn diagnosis_is_deterministic(
        clusters in 1usize..3,
        procs in 2usize..5,
        len in 1usize..64,
    ) {
        let run = || {
            let mut rt = runtime(clusters, procs, 0.2, 500.0);
            rt.enable_tracing();
            let report = rt.run(move |p, world| {
                let me = world.my_index(p) as f64;
                world.allreduce(p, vec![me; len], |a, b| {
                    a.iter().zip(&b).map(|(x, y)| x + y).collect()
                })?;
                Ok(())
            });
            let n = clusters * procs;
            report.trace.as_ref().expect("tracing enabled").diagnose(n, 16).render()
        };
        prop_assert_eq!(run(), run());
    }
}
