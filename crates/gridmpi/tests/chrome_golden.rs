//! Golden-file test of the Chrome-trace exporter: a fixed 4-rank program
//! on a fixed 2-cluster grid must serialize byte-identically to the
//! committed golden JSON (`tests/golden/chrome_small.json`).
//!
//! The golden file pins the whole schema documented in
//! `docs/observability.md` — track ids, event names, categories, phase
//! stamping, flow arrows and the virtual-time → microsecond mapping. To
//! regenerate after an intentional schema change, run with `BLESS=1`:
//!
//! ```text
//! BLESS=1 cargo test -p tsqr-gridmpi --test chrome_golden
//! ```

use tsqr_gridmpi::message::Phantom;
use tsqr_gridmpi::{Runtime, Trace};
use tsqr_netsim::{ClusterSpec, CostModel, GridTopology, LinkParams};

/// Two clusters of two single-process nodes, with a slow WAN between
/// them — the smallest grid that exercises all three link classes' costs.
fn tiny_grid() -> Runtime {
    let specs = (0..2)
        .map(|i| ClusterSpec {
            name: format!("c{i}"),
            nodes: 2,
            procs_per_node: 1,
            peak_gflops_per_proc: 8.0,
        })
        .collect();
    let topo = GridTopology::block_placement(specs, 2, 1);
    let mut model = CostModel::homogeneous(LinkParams::from_ms_mbps(0.1, 800.0), 1e9, 2);
    model.inter_cluster[0][1] = LinkParams::from_ms_mbps(8.0, 80.0);
    model.inter_cluster[1][0] = LinkParams::from_ms_mbps(8.0, 80.0);
    Runtime::new(topo, model)
}

/// A deterministic little program touching phases, compute, intra- and
/// inter-cluster messages.
fn traced_run() -> Trace {
    let mut rt = tiny_grid();
    rt.enable_tracing();
    let report = rt.run(|p, _| {
        match p.rank() {
            0 => p.with_phase("demo", |p| {
                p.compute(5_000, None);
                p.send(1, 7, Phantom { bytes: 64 })?;
                p.send(2, 7, Phantom { bytes: 256 })?;
                Ok(())
            }),
            1 => {
                let _: Phantom = p.recv(0, 7)?;
                Ok(())
            }
            2 => p.with_phase("demo", |p| {
                let _: Phantom = p.recv(0, 7)?;
                p.compute(2_000, None);
                Ok(())
            }),
            _ => Ok(()),
        }
    });
    report.trace.expect("tracing was enabled")
}

#[test]
fn chrome_export_matches_golden_file() {
    let json = traced_run().chrome_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chrome_small.json");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &json).expect("writing golden file");
    }
    let golden = std::fs::read_to_string(path).expect("golden file exists (BLESS=1 to create)");
    assert_eq!(
        json, golden,
        "Chrome-trace output drifted from tests/golden/chrome_small.json; \
         if the schema change is intentional, regenerate with BLESS=1 and \
         update docs/observability.md"
    );
}

#[test]
fn golden_trace_critical_path_tiles_makespan() {
    let trace = traced_run();
    let cp = trace.critical_path();
    assert!((cp.total().secs() - trace.makespan().secs()).abs() < 1e-12);
}
