//! Property-based tests of the runtime: determinism, collective
//! correctness and cost-model monotonicity under random configurations.

use proptest::prelude::*;

use tsqr_gridmpi::Runtime;
use tsqr_netsim::{ClusterSpec, CostModel, GridTopology, LinkParams, VirtualTime};

fn runtime(clusters: usize, procs: usize, latency_ms: f64, mbps: f64) -> Runtime {
    let specs = (0..clusters)
        .map(|i| ClusterSpec {
            name: format!("c{i}"),
            nodes: procs,
            procs_per_node: 1,
            peak_gflops_per_proc: 8.0,
        })
        .collect();
    let topo = GridTopology::block_placement(specs, procs, 1);
    let mut model =
        CostModel::homogeneous(LinkParams::from_ms_mbps(latency_ms, mbps), 1e9, clusters);
    for a in 0..clusters {
        for b in 0..clusters {
            if a != b {
                model.inter_cluster[a][b] = LinkParams::from_ms_mbps(latency_ms * 100.0, mbps / 8.0);
            }
        }
    }
    Runtime::new(topo, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Collectives compute the right value for arbitrary group sizes and
    /// member values.
    #[test]
    fn allreduce_and_reduce_sum_correctly(
        clusters in 1usize..3,
        procs in 1usize..6,
        values in proptest::collection::vec(-100.0f64..100.0, 1..18),
    ) {
        let rt = runtime(clusters, procs, 0.1, 890.0);
        let n = clusters * procs;
        let vals: Vec<f64> = (0..n).map(|i| values[i % values.len()]).collect();
        let want: f64 = vals.iter().sum();
        let vals2 = vals.clone();
        let report = rt.run(move |p, world| {
            let mine = vals2[p.rank()];
            let all = world.allreduce(p, mine, |a, b| a + b)?;
            let rooted = world.reduce(p, 0, mine, |a, b| a + b)?;
            Ok((all, rooted))
        });
        for (rank, r) in report.ranks.iter().enumerate() {
            let (all, rooted) = r.result.clone().unwrap();
            prop_assert!((all - want).abs() < 1e-9 * want.abs().max(1.0), "rank {rank}");
            if rank == 0 {
                prop_assert!((rooted.unwrap() - want).abs() < 1e-9 * want.abs().max(1.0));
            } else {
                prop_assert!(rooted.is_none());
            }
        }
    }

    /// Virtual time is deterministic and monotone in the payload size.
    #[test]
    fn makespan_deterministic_and_monotone_in_bytes(
        procs in 2usize..6,
        len1 in 1usize..200,
        extra in 1usize..200,
    ) {
        let rt = runtime(1, procs, 0.5, 100.0);
        let run = |len: usize| {
            rt.run(move |p, world| {
                let me = world.my_index(p) as f64;
                world.allreduce(p, vec![me; len], |a, b| {
                    a.iter().zip(&b).map(|(x, y)| x + y).collect()
                })?;
                Ok(p.clock())
            })
            .makespan
        };
        let small = run(len1);
        let small_again = run(len1);
        prop_assert_eq!(small, small_again, "determinism");
        let big = run(len1 + extra);
        prop_assert!(big > small, "more bytes must take longer");
    }

    /// Makespan is monotone in latency and inverse-monotone in bandwidth.
    #[test]
    fn makespan_monotone_in_link_quality(
        procs in 2usize..5,
        lat_ms in 0.01f64..2.0,
        mbps in 50.0f64..1000.0,
    ) {
        let run = |lat: f64, bw: f64| {
            runtime(1, procs, lat, bw)
                .run(|p, world| {
                    let me = world.my_index(p) as f64;
                    world.allreduce(p, vec![me; 64], |a, b| {
                        a.iter().zip(&b).map(|(x, y)| x + y).collect()
                    })?;
                    Ok(())
                })
                .makespan
        };
        let base = run(lat_ms, mbps);
        prop_assert!(run(lat_ms * 2.0, mbps) > base, "higher latency must cost more");
        prop_assert!(run(lat_ms, mbps * 2.0) < base, "higher bandwidth must cost less");
    }

    /// Traffic counters are conserved: everything sent is classified into
    /// exactly one bucket, and WAN counts appear only with > 1 cluster.
    #[test]
    fn counters_conserved(
        clusters in 1usize..4,
        procs in 1usize..4,
    ) {
        let rt = runtime(clusters, procs, 0.1, 890.0);
        let n = clusters * procs;
        let report = rt.run(|p, world| {
            world.allgather(p, p.rank() as u64)?;
            Ok(())
        });
        let t = report.totals;
        prop_assert_eq!(t.total_msgs(), t.msgs[0] + t.msgs[1] + t.msgs[2]);
        if clusters == 1 {
            prop_assert_eq!(t.inter_cluster_msgs(), 0);
        }
        if n > 1 {
            prop_assert!(t.total_msgs() > 0);
        }
        prop_assert!(report.makespan > VirtualTime::ZERO || n == 1);
    }

    /// A barrier dominates every member's pre-barrier clock.
    #[test]
    fn barrier_is_a_clock_supremum(
        procs in 2usize..6,
        heavy_rank_sel in 0usize..6,
        megaflops in 1u64..2_000,
    ) {
        let rt = runtime(1, procs, 0.1, 890.0);
        let heavy = heavy_rank_sel % procs;
        let report = rt.run(move |p, world| {
            let before = if p.rank() == heavy {
                p.compute(megaflops * 1_000_000, None);
                p.clock()
            } else {
                p.clock()
            };
            world.barrier(p)?;
            Ok((before, p.clock()))
        });
        let heavy_before = report.ranks[heavy].result.clone().unwrap().0;
        for r in &report.ranks {
            let (_, after) = r.result.clone().unwrap();
            prop_assert!(after >= heavy_before, "barrier must wait for the slowest");
        }
    }
}
