//! An MPI-like message-passing runtime over OS threads, with deterministic
//! virtual time and per-link-class traffic accounting.
//!
//! This crate plays the role Open MPI / QCG-OMPI plays in the paper: rank
//! programs written against [`Process`] (point-to-point `send`/`recv`) and
//! [`Communicator`] (tree collectives, `split`) execute with *real data
//! movement* between threads, while every message and every kernel call
//! advances a per-rank **virtual clock** priced by the
//! [`tsqr_netsim::CostModel`]:
//!
//! * a blocking send from `a` to `b` of `v` bytes completes at
//!   `clock_a + β(a,b) + α(a,b)·v` and the message carries that timestamp;
//! * a receive sets `clock_b := max(clock_b, arrival)`;
//! * `compute(flops)` adds `flops·γ`.
//!
//! Because every rank program is deterministic and receives name their
//! source, the resulting clocks are reproducible regardless of the real
//! thread schedule — the simulation is a conservative parallel
//! discrete-event simulation in disguise. The **makespan** (max final
//! clock) is the quantity the paper's Eq. (1) models, and the per-rank
//! message/byte counters (classified intra-node / intra-cluster /
//! inter-cluster) are what Tables I–II and Figs. 1–2 count.
//!
//! The runtime also supports deterministic link-failure injection
//! ([`Runtime::fail_link`]) so error-propagation paths can be tested.
//!
//! ## Observability
//!
//! Three layers, documented end-to-end in `docs/observability.md`:
//!
//! * **Metrics** ([`metrics`]) — always-on per-rank, per-phase counters
//!   (messages/bytes per link class, flops, time split) returned in
//!   [`RunReport::metrics`]. Rank programs declare phases with
//!   [`Process::phase_begin`] / [`Process::phase_end`].
//! * **Tracing** ([`trace`]) — opt-in ([`Runtime::enable_tracing`])
//!   per-event records with virtual-time spans, exportable as
//!   Chrome-trace/Perfetto JSON ([`chrome`]).
//! * **Profiler** ([`profile`]) — folded-stack (flamegraph) export of a
//!   trace, with an exact per-rank tiling invariant: leaf self-times sum
//!   to the rank's makespan.
//! * **Critical path** ([`critical`]) — the longest chain through the
//!   traced happens-before DAG; its total equals the makespan by
//!   construction, which every traced bench run asserts.
//! * **Diagnostics** ([`diagnose`]) — Scalasca-style wait-state
//!   classification of every blocked second (reconciled against the
//!   metrics registry), per-link-class utilization timelines and a
//!   rank×rank communication matrix; surfaced as `grid-tsqr analyze`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod comm;
pub mod critical;
pub mod diagnose;
pub mod error;
pub mod explore;
pub mod hb;
pub mod message;
pub mod metrics;
pub mod process;
pub mod profile;
pub mod runtime;
pub mod trace;

pub use chrome::chrome_trace_json;
pub use comm::Communicator;
pub use critical::{CriticalPath, PathSummary, Segment, SegmentKind};
pub use diagnose::{Diagnosis, WaitBreakdown, WaitState};
pub use error::CommError;
pub use explore::{explore, fnv1a, schedules_for, ExploreReport, ScheduleRun};
pub use hb::{HbReport, ReceiveRace, VectorClock, Violation};
pub use message::WirePayload;
pub use metrics::{Histogram, MetricsRegistry, PhaseCounters};
pub use process::{
    DeliveryOrder, Process, RankStats, TrafficCounters, DEFAULT_RECV_TIMEOUT,
    DETECTION_LATENCY_FACTOR, MAX_SEND_ATTEMPTS,
};
pub use profile::FoldedProfile;
pub use runtime::{RankResult, RunOutcome, RunReport, Runtime};
pub use trace::{Event, EventKind, FaultKind, MessageMatch, Trace};
