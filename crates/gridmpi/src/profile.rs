//! Virtual-time profiler: collapsed folded stacks from phase-span traces.
//!
//! Converts a [`Trace`] into the *folded stack* format understood by
//! flamegraph tooling (inferno's `flamegraph.pl` input, speedscope's
//! "collapsed" importer): one line per unique stack,
//!
//! ```text
//! rank3;tree-reduce;send 123456789
//! ```
//!
//! where the trailing integer is **self time in virtual nanoseconds**.
//! Frames are the rank (per-rank view only), the open algorithm phases
//! outer-first, and a leaf naming what the rank was doing: `compute`,
//! `send`, `recv-wait`, `fault-<kind>`, or `(idle)` for spans covered by
//! no traced event.
//!
//! # The tiling invariant
//!
//! The profile is an exact *tiling* of every rank's timeline: leaf
//! self-times are clipped against each other (overlap is never counted
//! twice) and the uncovered remainder is attributed to `(idle)`, so for
//! every rank
//!
//! ```text
//! Σ leaf self-times == that rank's makespan   (within 1e-9 relative)
//! ```
//!
//! [`FoldedProfile::max_tiling_error_rel`] measures the worst-case
//! violation; the bench harness asserts it on every Fig. 4–8 scenario,
//! and a proptest asserts it on random reduction trees. This is the
//! property that makes the flamegraph trustworthy — the widths *are*
//! the timeline, nothing is dropped or double-counted.

use std::collections::BTreeMap;

use crate::trace::{Event, EventKind, Trace};

/// Divisions finer than this are noise for virtual-time spans.
const TINY: f64 = f64::MIN_POSITIVE;

/// A folded-stack profile of one traced run.
#[derive(Debug, Clone, Default)]
pub struct FoldedProfile {
    /// Per-rank map from `phase;phase;leaf` stack to self seconds.
    /// `BTreeMap` so every render is deterministic.
    stacks: Vec<BTreeMap<String, f64>>,
    /// Per-rank makespan: the end of the rank's last traced event.
    makespans: Vec<f64>,
}

/// The leaf frame of a non-phase event.
fn leaf_label(kind: &EventKind) -> String {
    match kind {
        EventKind::Send { .. } => "send".to_string(),
        EventKind::Recv { .. } => "recv-wait".to_string(),
        EventKind::Compute { .. } => "compute".to_string(),
        EventKind::Fault { kind, .. } => format!("fault-{}", kind.label()),
        EventKind::Phase { .. } => unreachable!("phase events are frames, not leaves"),
    }
}

/// The phase stack open at instant `t`, outer-first: all phase spans of
/// the rank containing `t`, sorted by (start asc, end desc) so an
/// enclosing phase precedes the phases it encloses.
fn phase_stack_at(phases: &[&Event], t: f64) -> Vec<&'static str> {
    let mut open: Vec<&Event> = phases
        .iter()
        .copied()
        .filter(|p| p.start.secs() <= t && t < p.end.secs())
        .collect();
    open.sort_by(|a, b| {
        a.start.cmp(&b.start).then(b.end.cmp(&a.end)).then_with(|| {
            match (&a.kind, &b.kind) {
                (EventKind::Phase { name: an }, EventKind::Phase { name: bn }) => an.cmp(bn),
                _ => std::cmp::Ordering::Equal,
            }
        })
    });
    open.iter()
        .map(|p| match p.kind {
            EventKind::Phase { name } => name,
            _ => unreachable!("filtered to phase events"),
        })
        .collect()
}

fn stack_key(frames: &[&str], leaf: &str) -> String {
    let mut key = String::new();
    for f in frames {
        key.push_str(f);
        key.push(';');
    }
    key.push_str(leaf);
    key
}

impl FoldedProfile {
    /// Profiles a trace. `num_ranks` sets the minimum number of rank
    /// rows (ranks with no events profile as empty with zero makespan);
    /// ranks appearing in the trace beyond it are included as well.
    pub fn from_trace(trace: &Trace, num_ranks: usize) -> FoldedProfile {
        let ranks = trace
            .events
            .iter()
            .map(|e| e.rank + 1)
            .max()
            .unwrap_or(0)
            .max(num_ranks);
        let mut stacks = vec![BTreeMap::new(); ranks];
        let mut makespans = vec![0.0; ranks];
        for rank in 0..ranks {
            let events = trace.rank_events(rank);
            let phases: Vec<&Event> =
                events.iter().copied().filter(|e| e.kind.is_phase()).collect();
            let leaves: Vec<&Event> =
                events.iter().copied().filter(|e| !e.kind.is_phase()).collect();
            let makespan =
                events.iter().map(|e| e.end.secs()).fold(0.0, f64::max);
            makespans[rank] = makespan;

            // Sweep the rank's timeline left to right. `cursor` is the
            // instant everything before which has been tiled already;
            // clipping each leaf event to [cursor, ∞) makes
            // double-counting impossible even if spans overlap.
            let mut cursor = 0.0f64;
            let mut add = |map: &mut BTreeMap<String, f64>, key: String, width: f64| {
                if width > 0.0 {
                    *map.entry(key).or_insert(0.0) += width;
                }
            };
            // Leaves are already time-ordered (trace order); process
            // them and fill the gaps between them with `(idle)`.
            for leaf in &leaves {
                let (s, e) = (leaf.start.secs(), leaf.end.secs());
                if s > cursor {
                    Self::tile_idle(&mut stacks[rank], &phases, cursor, s, &mut add);
                }
                let clipped = s.max(cursor);
                if e > clipped {
                    let mid = 0.5 * (clipped + e);
                    let mut frames = phase_stack_at(&phases, mid);
                    if frames.is_empty() {
                        // Defensive: a leaf recorded under a phase whose
                        // span was never closed (errored rank program).
                        if let Some(p) = leaf.phase {
                            frames.push(p);
                        }
                    }
                    add(
                        &mut stacks[rank],
                        stack_key(&frames, &leaf_label(&leaf.kind)),
                        e - clipped,
                    );
                }
                cursor = cursor.max(e);
            }
            if makespan > cursor {
                Self::tile_idle(&mut stacks[rank], &phases, cursor, makespan, &mut add);
            }
        }
        FoldedProfile { stacks, makespans }
    }

    /// Tiles `[from, to)` with `(idle)` leaves, splitting at every phase
    /// boundary inside the span so each piece lands under the phase
    /// stack actually open there.
    fn tile_idle(
        map: &mut BTreeMap<String, f64>,
        phases: &[&Event],
        from: f64,
        to: f64,
        add: &mut impl FnMut(&mut BTreeMap<String, f64>, String, f64),
    ) {
        let mut cuts: Vec<f64> = vec![from];
        for p in phases {
            for t in [p.start.secs(), p.end.secs()] {
                if from < t && t < to {
                    cuts.push(t);
                }
            }
        }
        cuts.push(to);
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("virtual times are finite"));
        for w in cuts.windows(2) {
            let (s, e) = (w[0], w[1]);
            let frames = phase_stack_at(phases, 0.5 * (s + e));
            add(map, stack_key(&frames, "(idle)"), e - s);
        }
    }

    /// Number of rank rows.
    pub fn num_ranks(&self) -> usize {
        self.stacks.len()
    }

    /// One rank's makespan (end of its last traced event) in seconds.
    pub fn rank_makespan(&self, rank: usize) -> f64 {
        self.makespans[rank]
    }

    /// Sum of one rank's leaf self-times in seconds. Equal to
    /// [`Self::rank_makespan`] within 1e-9 relative — the tiling
    /// invariant.
    pub fn rank_total(&self, rank: usize) -> f64 {
        self.stacks[rank].values().sum()
    }

    /// Worst per-rank relative tiling error:
    /// `max over ranks of |Σ self − makespan| / makespan`.
    pub fn max_tiling_error_rel(&self) -> f64 {
        (0..self.num_ranks())
            .map(|r| {
                let m = self.rank_makespan(r);
                (self.rank_total(r) - m).abs() / m.max(TINY)
            })
            .fold(0.0, f64::max)
    }

    /// Renders the per-rank folded stacks, one `rank<i>;stack count`
    /// line each, counts in integer virtual nanoseconds. Deterministic:
    /// ranks ascending, stacks in lexicographic order.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for (rank, stacks) in self.stacks.iter().enumerate() {
            for (key, secs) in stacks {
                out.push_str(&format!("rank{rank};{key} {}\n", nanos(*secs)));
            }
        }
        out
    }

    /// Renders the rank-aggregated folded stacks (no `rank<i>` frame;
    /// self-times summed across ranks).
    pub fn render_aggregate(&self) -> String {
        let mut merged: BTreeMap<&str, f64> = BTreeMap::new();
        for stacks in &self.stacks {
            for (key, secs) in stacks {
                *merged.entry(key.as_str()).or_insert(0.0) += *secs;
            }
        }
        let mut out = String::new();
        for (key, secs) in merged {
            out.push_str(&format!("{key} {}\n", nanos(secs)));
        }
        out
    }

    /// The `k` hottest stacks across all ranks by aggregated self time,
    /// as `(stack, self seconds, share of Σ makespans)`. Ties broken by
    /// stack name, so the order is deterministic.
    pub fn hot_phases(&self, k: usize) -> Vec<(String, f64, f64)> {
        let mut merged: BTreeMap<&str, f64> = BTreeMap::new();
        for stacks in &self.stacks {
            for (key, secs) in stacks {
                *merged.entry(key.as_str()).or_insert(0.0) += *secs;
            }
        }
        let total: f64 = self.makespans.iter().sum();
        let mut rows: Vec<(String, f64, f64)> = merged
            .into_iter()
            .map(|(key, secs)| (key.to_string(), secs, secs / total.max(TINY)))
            .collect();
        rows.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("self times are finite").then_with(|| a.0.cmp(&b.0))
        });
        rows.truncate(k);
        rows
    }

    /// Renders [`Self::hot_phases`] as an aligned text table.
    pub fn render_hot_table(&self, k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<48} {:>14} {:>8}", "stack", "self (s)", "share");
        for (stack, secs, share) in self.hot_phases(k) {
            let _ = writeln!(out, "{stack:<48} {secs:>14.6} {:>7.2}%", share * 100.0);
        }
        out
    }
}

/// Seconds → integer virtual nanoseconds (rounded).
fn nanos(secs: f64) -> u64 {
    (secs * 1e9).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsqr_netsim::{LinkClass, VirtualTime};

    fn ev(rank: usize, s: f64, e: f64, phase: Option<&'static str>, kind: EventKind) -> Event {
        Event {
            rank,
            start: VirtualTime::from_secs(s),
            end: VirtualTime::from_secs(e),
            phase,
            kind,
        }
    }

    fn compute(flops: u64) -> EventKind {
        EventKind::Compute { flops }
    }

    fn send(to: usize) -> EventKind {
        EventKind::Send { to, bytes: 8, class: LinkClass::IntraCluster, tag: 0 }
    }

    fn phase(name: &'static str) -> EventKind {
        EventKind::Phase { name }
    }

    #[test]
    fn tiles_phased_leaves_gaps_and_idle_tail() {
        // rank 0: [0,1) compute in leaf-qr, [1,1.5) idle inside
        // tree-reduce, [1.5,2) send in tree-reduce, [2,2.5) idle outside
        // any phase (trailing, bounded by rank 0's own phase span end).
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, Some("leaf-qr"), compute(10)),
            ev(0, 0.0, 1.0, None, phase("leaf-qr")),
            ev(0, 1.5, 2.0, Some("tree-reduce"), send(1)),
            ev(0, 1.0, 2.0, None, phase("tree-reduce")),
            ev(0, 2.0, 2.5, None, compute(1)),
        ]);
        let p = FoldedProfile::from_trace(&t, 1);
        let folded = p.render_folded();
        assert!(folded.contains("rank0;leaf-qr;compute 1000000000\n"), "{folded}");
        assert!(folded.contains("rank0;tree-reduce;(idle) 500000000\n"), "{folded}");
        assert!(folded.contains("rank0;tree-reduce;send 500000000\n"), "{folded}");
        assert!(folded.contains("rank0;compute 500000000\n"), "{folded}");
        assert!(p.max_tiling_error_rel() < 1e-9, "{}", p.max_tiling_error_rel());
        assert_eq!(p.rank_makespan(0), 2.5);
    }

    #[test]
    fn nested_phases_stack_outer_first() {
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 4.0, None, phase("panel")),
            ev(0, 1.0, 3.0, None, phase("panel-leaf")),
            ev(0, 1.0, 3.0, Some("panel-leaf"), compute(5)),
        ]);
        let p = FoldedProfile::from_trace(&t, 1);
        let folded = p.render_folded();
        assert!(folded.contains("rank0;panel;panel-leaf;compute 2000000000\n"), "{folded}");
        // The [0,1) and [3,4) remainders are idle under `panel` only.
        assert!(folded.contains("rank0;panel;(idle) 2000000000\n"), "{folded}");
        assert!(p.max_tiling_error_rel() < 1e-9);
    }

    #[test]
    fn overlapping_leaves_never_double_count() {
        // Two overlapping compute spans: the second is clipped.
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 2.0, None, compute(1)),
            ev(0, 1.0, 3.0, None, compute(1)),
        ]);
        let p = FoldedProfile::from_trace(&t, 1);
        assert!((p.rank_total(0) - 3.0).abs() < 1e-12);
        assert!(p.max_tiling_error_rel() < 1e-9);
    }

    #[test]
    fn idle_splits_at_phase_boundaries() {
        // A completely idle rank whose only events are two adjacent
        // phase spans: idle time must split per phase.
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, None, phase("a")),
            ev(0, 1.0, 3.0, None, phase("b")),
        ]);
        let p = FoldedProfile::from_trace(&t, 1);
        let folded = p.render_folded();
        assert!(folded.contains("rank0;a;(idle) 1000000000\n"), "{folded}");
        assert!(folded.contains("rank0;b;(idle) 2000000000\n"), "{folded}");
        assert!(p.max_tiling_error_rel() < 1e-9);
    }

    #[test]
    fn aggregate_merges_ranks_and_hot_phases_rank() {
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 2.0, Some("leaf-qr"), compute(1)),
            ev(0, 0.0, 2.0, None, phase("leaf-qr")),
            ev(1, 0.0, 1.0, Some("leaf-qr"), compute(1)),
            ev(1, 0.0, 1.0, None, phase("leaf-qr")),
            ev(1, 1.0, 2.0, Some("tree-reduce"), send(0)),
            ev(1, 1.0, 2.0, None, phase("tree-reduce")),
        ]);
        let p = FoldedProfile::from_trace(&t, 2);
        assert_eq!(p.render_aggregate(), "leaf-qr;compute 3000000000\ntree-reduce;send 1000000000\n");
        let hot = p.hot_phases(2);
        assert_eq!(hot[0].0, "leaf-qr;compute");
        assert!((hot[0].1 - 3.0).abs() < 1e-12);
        assert!((hot[0].2 - 0.75).abs() < 1e-12);
        assert!(p.render_hot_table(2).contains("leaf-qr;compute"));
    }

    #[test]
    fn empty_and_padded_ranks_are_benign() {
        let t = Trace::from_parts(vec![ev(2, 0.0, 1.0, None, compute(1))]);
        let p = FoldedProfile::from_trace(&t, 5);
        assert_eq!(p.num_ranks(), 5);
        assert_eq!(p.rank_makespan(0), 0.0);
        assert_eq!(p.rank_total(0), 0.0);
        assert!(p.max_tiling_error_rel() < 1e-9);
        let empty = FoldedProfile::from_trace(&Trace::default(), 0);
        assert_eq!(empty.num_ranks(), 0);
        assert_eq!(empty.max_tiling_error_rel(), 0.0);
        assert_eq!(empty.render_folded(), "");
    }

    #[test]
    fn unclosed_phase_falls_back_to_event_phase_field() {
        // No Phase span exists (errored program), but the leaf knows its
        // innermost phase.
        let t = Trace::from_parts(vec![ev(0, 0.0, 1.0, Some("leaf-qr"), compute(1))]);
        let p = FoldedProfile::from_trace(&t, 1);
        assert!(p.render_folded().contains("rank0;leaf-qr;compute 1000000000\n"));
    }
}
