//! Communication errors.

use std::fmt;

use tsqr_netsim::VirtualTime;

/// Errors surfaced by the message-passing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The (injected) link between two ranks is down.
    LinkDown {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
    },
    /// A rank crashed per the failure schedule. Surfaced both *by* the
    /// crashed rank (every operation it attempts at or after its crash
    /// time fails with its own rank) and *about* it (a peer's failure
    /// detector declares it dead — see `docs/fault-injection.md`).
    RankFailed {
        /// The rank that crashed.
        rank: usize,
        /// Virtual time of the crash.
        at: VirtualTime,
    },
    /// A message was lost in transit (transient drop from the failure
    /// schedule) and the bounded retransmission budget was exhausted.
    MessageDropped {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
        /// Transmission attempts made before giving up.
        attempts: u32,
    },
    /// A receive waited past the wall-clock safety timeout — almost always
    /// a deadlocked or crashed peer in a test program.
    Timeout {
        /// The rank that was waiting.
        rank: usize,
        /// The rank it was waiting for.
        from: usize,
    },
    /// A wall-clock receive timeout that the happens-before analyzer
    /// resolved into a **wait-for cycle**: a true communication deadlock,
    /// not merely a slow peer. Produced by [`crate::Runtime`] when
    /// tracing is enabled — the runtime upgrades [`CommError::Timeout`]
    /// whenever the timed-out rank sits on a cycle in the trace's
    /// wait-for graph (see `crate::hb` and `docs/static-analysis.md`).
    Deadlock {
        /// The rank that was waiting.
        rank: usize,
        /// The rank it was waiting for.
        from: usize,
        /// The wait-for cycle: `cycle[0]` waited on `cycle[1]` waited on
        /// … waited on `cycle[0]`.
        cycle: Vec<usize>,
    },
    /// The peer thread terminated (channel disconnected) before sending.
    PeerGone {
        /// The rank that was waiting.
        rank: usize,
        /// The rank whose channel closed.
        from: usize,
    },
    /// A message arrived with an unexpected tag — a protocol bug in the
    /// rank program.
    TagMismatch {
        /// Tag the receiver expected.
        expected: u32,
        /// Tag that actually arrived.
        got: u32,
    },
    /// A message payload had a different type than the receiver requested.
    TypeMismatch {
        /// Static type name the receiver asked for.
        expected: &'static str,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::LinkDown { src, dst } => {
                write!(f, "link {src} -> {dst} is down")
            }
            CommError::RankFailed { rank, at } => {
                write!(f, "rank {rank} crashed at t={:.6}s", at.secs())
            }
            CommError::MessageDropped { src, dst, attempts } => {
                write!(
                    f,
                    "message {src} -> {dst} lost in transit ({attempts} attempts)"
                )
            }
            CommError::Timeout { rank, from } => {
                write!(f, "rank {rank} timed out waiting for a message from {from}")
            }
            CommError::Deadlock { rank, from, cycle } => {
                write!(
                    f,
                    "rank {rank} deadlocked waiting for {from} (wait-for cycle: "
                )?;
                for r in cycle {
                    write!(f, "{r} -> ")?;
                }
                write!(f, "{})", cycle.first().copied().unwrap_or(*rank))
            }
            CommError::PeerGone { rank, from } => {
                write!(f, "rank {rank}: peer {from} terminated before sending")
            }
            CommError::TagMismatch { expected, got } => {
                write!(f, "tag mismatch: expected {expected}, got {got}")
            }
            CommError::TypeMismatch { expected } => {
                write!(f, "payload type mismatch: expected {expected}")
            }
        }
    }
}

impl std::error::Error for CommError {}
