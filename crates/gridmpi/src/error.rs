//! Communication errors.

use std::fmt;

/// Errors surfaced by the message-passing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The (injected) link between two ranks is down.
    LinkDown {
        /// Sending rank.
        src: usize,
        /// Receiving rank.
        dst: usize,
    },
    /// A receive waited past the wall-clock safety timeout — almost always
    /// a deadlocked or crashed peer in a test program.
    Timeout {
        /// The rank that was waiting.
        rank: usize,
        /// The rank it was waiting for.
        from: usize,
    },
    /// The peer thread terminated (channel disconnected) before sending.
    PeerGone {
        /// The rank that was waiting.
        rank: usize,
        /// The rank whose channel closed.
        from: usize,
    },
    /// A message arrived with an unexpected tag — a protocol bug in the
    /// rank program.
    TagMismatch {
        /// Tag the receiver expected.
        expected: u32,
        /// Tag that actually arrived.
        got: u32,
    },
    /// A message payload had a different type than the receiver requested.
    TypeMismatch {
        /// Static type name the receiver asked for.
        expected: &'static str,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::LinkDown { src, dst } => {
                write!(f, "link {src} -> {dst} is down")
            }
            CommError::Timeout { rank, from } => {
                write!(f, "rank {rank} timed out waiting for a message from {from}")
            }
            CommError::PeerGone { rank, from } => {
                write!(f, "rank {rank}: peer {from} terminated before sending")
            }
            CommError::TagMismatch { expected, got } => {
                write!(f, "tag mismatch: expected {expected}, got {got}")
            }
            CommError::TypeMismatch { expected } => {
                write!(f, "payload type mismatch: expected {expected}")
            }
        }
    }
}

impl std::error::Error for CommError {}
