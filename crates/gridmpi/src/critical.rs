//! Critical-path extraction from a [`Trace`].
//!
//! The traced events of a run form a happens-before DAG: events on one
//! rank are ordered by program order, and each matched message adds an
//! edge from its send's completion to its receive's completion. The
//! *critical path* is the longest chain through that DAG — the sequence
//! of spans that actually determined the makespan. The paper's Eq. (1)
//! is exactly a model of this chain: `β·#msg + α·vol` prices its
//! message segments and `γ·#flops` its compute segments.
//!
//! [`Trace::critical_path`] walks the DAG backward from the event that
//! finishes last. The resulting [`Segment`]s tile `[0, makespan]`
//! contiguously by construction, so
//! [`CriticalPath::total`]` == `[`Trace::makespan`] is a free invariant —
//! the runtime's unit tests (and the bench binaries, on every traced
//! figure run) assert it.
//!
//! One approximation, documented for honesty: when a receive finishes
//! later than its message's arrival because the receiver's NIC was
//! still clocking in an *earlier* message, the extra wait is attributed
//! to this message's [`SegmentKind::Deliver`] segment rather than to
//! the earlier message. Contiguity (and the makespan invariant) is
//! unaffected.

use std::collections::BTreeMap;

use tsqr_netsim::{LinkClass, VirtualTime};

use crate::trace::{EventKind, Trace};

/// What a critical-path segment was doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Local computation.
    Compute,
    /// A blocking send (the `β + α·v` wire time, paid on the sender).
    Send {
        /// Destination rank.
        to: usize,
        /// Link class of the message.
        class: LinkClass,
    },
    /// Waiting for a message to be delivered (NIC serialization and any
    /// surplus between the sender's completion and the receive's end).
    Deliver {
        /// Source rank.
        from: usize,
    },
    /// A blocked receive that could not be matched to a send (should
    /// not happen in healthy runs; kept for robustness).
    Recv {
        /// Source rank.
        from: usize,
    },
    /// Untraced time (e.g. before a rank's first event). A healthy
    /// fully-traced run has no gaps.
    Gap,
}

/// One span of the critical path, on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// The rank whose timeline this span sits on.
    pub rank: usize,
    /// Span start (virtual time).
    pub start: VirtualTime,
    /// Span end (virtual time).
    pub end: VirtualTime,
    /// What the span was.
    pub kind: SegmentKind,
}

impl Segment {
    /// The span's length.
    pub fn span(&self) -> VirtualTime {
        self.end - self.start
    }
}

/// Time totals of a critical path, grouped by segment kind — the
/// empirical counterpart of Eq. (1)'s terms.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PathSummary {
    /// Seconds in [`SegmentKind::Compute`] — the `γ·#flops` term.
    pub compute_s: f64,
    /// Seconds in [`SegmentKind::Send`] — the `β·#msg + α·vol` term.
    pub send_s: f64,
    /// Seconds in [`SegmentKind::Deliver`] (NIC/overlap surplus).
    pub deliver_s: f64,
    /// Seconds in unmatched [`SegmentKind::Recv`] waits.
    pub recv_s: f64,
    /// Seconds of [`SegmentKind::Gap`].
    pub gap_s: f64,
    /// Messages whose wire time sits on the path (send segments).
    pub messages: usize,
    /// How many of those crossed a wide-area link.
    pub wan_messages: usize,
}

/// The critical path: contiguous segments covering `[0, makespan]`,
/// earliest first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CriticalPath {
    /// Segments in increasing time order; each starts where the
    /// previous one ends.
    pub segments: Vec<Segment>,
}

impl CriticalPath {
    /// Sum of all segment spans. Because segments tile `[0, makespan]`,
    /// this equals the trace's makespan.
    pub fn total(&self) -> VirtualTime {
        self.segments.iter().map(|s| s.span()).sum()
    }

    /// Per-kind time totals (see [`PathSummary`]).
    pub fn summary(&self) -> PathSummary {
        let mut out = PathSummary::default();
        for s in &self.segments {
            let dt = s.span().secs();
            match s.kind {
                SegmentKind::Compute => out.compute_s += dt,
                SegmentKind::Send { class, .. } => {
                    out.send_s += dt;
                    out.messages += 1;
                    if class.is_inter_cluster() {
                        out.wan_messages += 1;
                    }
                }
                SegmentKind::Deliver { .. } => out.deliver_s += dt,
                SegmentKind::Recv { .. } => out.recv_s += dt,
                SegmentKind::Gap => out.gap_s += dt,
            }
        }
        out
    }

    /// Renders the path, one line per segment, earliest first.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.segments {
            let what = match s.kind {
                SegmentKind::Compute => "compute".to_string(),
                SegmentKind::Send { to, class } => {
                    format!("send -> {to} [{}]", class.label())
                }
                SegmentKind::Deliver { from } => format!("deliver <- {from}"),
                SegmentKind::Recv { from } => format!("recv <- {from}"),
                SegmentKind::Gap => "gap".to_string(),
            };
            let _ = writeln!(
                out,
                "[{:>12.6}s ..{:>12.6}s] rank {:<4} {what}",
                s.start.secs(),
                s.end.secs(),
                s.rank
            );
        }
        let su = self.summary();
        let _ = writeln!(
            out,
            "total {:.6}s = compute {:.6}s + send {:.6}s + deliver {:.6}s + other {:.6}s  ({} msgs, {} WAN)",
            self.total().secs(),
            su.compute_s,
            su.send_s,
            su.deliver_s,
            su.recv_s + su.gap_s,
            su.messages,
            su.wan_messages,
        );
        out
    }
}

impl Trace {
    /// Extracts the critical path (see the module docs for the
    /// algorithm and its one approximation). Returns an empty path for
    /// an empty trace.
    pub fn critical_path(&self) -> CriticalPath {
        // Per-rank DAG events (phase markers overlap real work and are
        // excluded), as indices into self.events, in program order.
        let mut by_rank: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            if !e.kind.is_phase() {
                by_rank.entry(e.rank).or_default().push(i);
            }
        }
        // recv index -> matched send index.
        let recv_to_send: BTreeMap<usize, usize> =
            self.match_messages().iter().map(|m| (m.recv, m.send)).collect();

        // Start at the event that finishes last.
        let Some(last) = self
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.kind.is_phase())
            .max_by(|a, b| a.1.end.cmp(&b.1.end))
            .map(|(i, _)| i)
        else {
            return CriticalPath::default();
        };

        let mut segments = Vec::new();
        let mut rank = self.events[last].rank;
        let mut t = self.events[last].end;
        // Each iteration either lowers `t` or follows a message edge
        // backward; budget generously and fall back to a gap if the
        // walk ever fails to make progress (defensive: cannot happen
        // for traces produced by this runtime).
        let mut budget = 4 * self.events.len() + 16;
        while t > VirtualTime::ZERO {
            if budget == 0 {
                segments.push(Segment {
                    rank,
                    start: VirtualTime::ZERO,
                    end: t,
                    kind: SegmentKind::Gap,
                });
                break;
            }
            budget -= 1;

            // Candidates on this rank that begin before `t`; among the
            // ones covering `t` (end >= t), the latest-ending is the
            // binding constraint (ties from exchange() overlap resolve
            // toward the local send).
            let evs = by_rank.get(&rank).map(Vec::as_slice).unwrap_or(&[]);
            let covering = evs
                .iter()
                .copied()
                .filter(|&i| self.events[i].start < t && self.events[i].end >= t)
                .max_by(|&a, &b| {
                    let (ea, eb) = (&self.events[a], &self.events[b]);
                    ea.end
                        .cmp(&eb.end)
                        // Prefer sends/computes over receives on ties.
                        .then_with(|| {
                            let local =
                                |e: &crate::trace::Event| !matches!(e.kind, EventKind::Recv { .. });
                            local(ea).cmp(&local(eb))
                        })
                });
            let Some(i) = covering else {
                // Nothing covers `t`: either untraced time before the
                // rank's first event, or (impossible here) a hole
                // between events. Close the path with a gap back to the
                // nearest earlier event end, or to zero.
                let prev_end = evs
                    .iter()
                    .copied()
                    .map(|i| self.events[i].end)
                    .filter(|&end| end <= t)
                    .max()
                    .unwrap_or(VirtualTime::ZERO);
                segments.push(Segment { rank, start: prev_end, end: t, kind: SegmentKind::Gap });
                if prev_end == VirtualTime::ZERO {
                    break;
                }
                t = prev_end;
                continue;
            };

            let e = &self.events[i];
            match e.kind {
                EventKind::Recv { from, .. } => {
                    if let Some(&si) = recv_to_send.get(&i) {
                        let s = &self.events[si];
                        if s.end < t {
                            // The sender finished before this wait
                            // ended: the surplus is delivery time on
                            // the receiver, then follow the message
                            // edge backward.
                            segments.push(Segment {
                                rank,
                                start: s.end,
                                end: t,
                                kind: SegmentKind::Deliver { from },
                            });
                            t = s.end;
                        }
                        // Continue on the sender's timeline (at the
                        // same instant when s.end >= t).
                        rank = s.rank;
                    } else {
                        // Unmatched receive: attribute the wait locally.
                        segments.push(Segment {
                            rank,
                            start: e.start,
                            end: t,
                            kind: SegmentKind::Recv { from },
                        });
                        t = e.start;
                    }
                }
                EventKind::Send { to, class, .. } => {
                    segments.push(Segment {
                        rank,
                        start: e.start,
                        end: t,
                        kind: SegmentKind::Send { to, class },
                    });
                    t = e.start;
                }
                EventKind::Compute { .. } => {
                    segments.push(Segment {
                        rank,
                        start: e.start,
                        end: t,
                        kind: SegmentKind::Compute,
                    });
                    t = e.start;
                }
                EventKind::Fault { peer, class, kind } => {
                    if kind.is_wait() {
                        // A failure-induced wait (peer death / ghost
                        // arrival): a receive wait with no matching send
                        // to follow backward.
                        segments.push(Segment {
                            rank,
                            start: e.start,
                            end: t,
                            kind: SegmentKind::Recv { from: peer },
                        });
                    } else {
                        // A dropped transmission (incl. backoff): wire
                        // time paid on the sender, like a send.
                        segments.push(Segment {
                            rank,
                            start: e.start,
                            end: t,
                            kind: SegmentKind::Send { to: peer, class },
                        });
                    }
                    t = e.start;
                }
                EventKind::Phase { .. } => unreachable!("phase events were filtered out"),
            }
        }
        segments.reverse();
        CriticalPath { segments }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Event;

    fn ev(rank: usize, s: f64, e: f64, kind: EventKind) -> Event {
        Event {
            rank,
            start: VirtualTime::from_secs(s),
            end: VirtualTime::from_secs(e),
            phase: None,
            kind,
        }
    }

    fn send(to: usize, class: LinkClass) -> EventKind {
        EventKind::Send { to, bytes: 8, class, tag: 0 }
    }

    fn recv(from: usize, class: LinkClass) -> EventKind {
        EventKind::Recv { from, bytes: 8, class, tag: 0, wildcard: false }
    }

    const C: LinkClass = LinkClass::IntraCluster;

    #[test]
    fn empty_trace_has_empty_path() {
        let p = Trace::default().critical_path();
        assert!(p.segments.is_empty());
        assert_eq!(p.total(), VirtualTime::ZERO);
    }

    #[test]
    fn single_rank_compute_chain() {
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, EventKind::Compute { flops: 1 }),
            ev(0, 1.0, 3.0, EventKind::Compute { flops: 2 }),
        ]);
        let p = t.critical_path();
        assert_eq!(p.segments.len(), 2);
        assert_eq!(p.total(), t.makespan());
        assert!(p.segments.iter().all(|s| s.kind == SegmentKind::Compute));
    }

    #[test]
    fn path_follows_message_edge() {
        // Rank 0 computes then sends; rank 1's recv waits, then computes.
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, EventKind::Compute { flops: 1 }),
            ev(0, 1.0, 2.0, send(1, C)),
            ev(1, 0.0, 2.0, recv(0, C)),
            ev(1, 2.0, 3.0, EventKind::Compute { flops: 1 }),
        ]);
        let p = t.critical_path();
        assert_eq!(p.total(), t.makespan());
        // Chain: rank0 compute [0,1] → rank0 send [1,2] → rank1 compute [2,3].
        let kinds: Vec<_> = p.segments.iter().map(|s| (s.rank, s.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (0, SegmentKind::Compute),
                (0, SegmentKind::Send { to: 1, class: C }),
                (1, SegmentKind::Compute),
            ]
        );
        let su = p.summary();
        assert_eq!(su.messages, 1);
        assert_eq!(su.wan_messages, 0);
        assert!((su.compute_s - 2.0).abs() < 1e-12);
        assert!((su.send_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nic_surplus_becomes_deliver_segment() {
        // Send completes at 2.0 but the recv only finishes at 2.5 (NIC
        // was busy): 0.5 s of Deliver on the receiver.
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 2.0, send(1, C)),
            ev(1, 0.0, 2.5, recv(0, C)),
        ]);
        let p = t.critical_path();
        assert_eq!(p.total(), t.makespan());
        assert_eq!(
            p.segments.iter().map(|s| s.kind).collect::<Vec<_>>(),
            vec![
                SegmentKind::Send { to: 1, class: C },
                SegmentKind::Deliver { from: 0 },
            ]
        );
        assert!((p.summary().deliver_s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unmatched_recv_and_gap_are_covered() {
        // Rank 0's recv has no matching send in the trace; its timeline
        // also starts at 1.0, leaving a gap back to zero.
        let t = Trace::from_parts(vec![ev(0, 1.0, 3.0, recv(9, C))]);
        let p = t.critical_path();
        assert_eq!(p.total(), t.makespan());
        assert_eq!(
            p.segments.iter().map(|s| s.kind).collect::<Vec<_>>(),
            vec![SegmentKind::Gap, SegmentKind::Recv { from: 9 }]
        );
    }

    #[test]
    fn exchange_overlap_prefers_binding_constraint() {
        // An exchange-style overlap on rank 0: send [1,3] and recv
        // [1,2] overlap; the next compute starts at 3 (the send bound).
        let t = Trace::from_parts(vec![
            ev(1, 0.0, 2.0, send(0, C)),
            ev(0, 1.0, 3.0, send(1, C)),
            ev(0, 1.0, 2.0, recv(1, C)),
            ev(0, 3.0, 4.0, EventKind::Compute { flops: 1 }),
            ev(1, 2.0, 3.0, recv(0, C)),
        ]);
        let p = t.critical_path();
        assert_eq!(p.total(), t.makespan());
        // Backward from compute [3,4]: the send [1,3] covers t=3 (the
        // recv ended at 2 and does not), then back to t=1... the recv
        // at [1,2] no longer matters; rank 1's send covers via... at
        // t=1 on rank 0 nothing covers → gap [0,1].
        let kinds: Vec<_> = p.segments.iter().map(|s| (s.rank, s.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (0, SegmentKind::Gap),
                (0, SegmentKind::Send { to: 1, class: C }),
                (0, SegmentKind::Compute),
            ]
        );
    }

    #[test]
    fn render_mentions_totals() {
        let t = Trace::from_parts(vec![ev(0, 0.0, 1.0, EventKind::Compute { flops: 1 })]);
        let r = t.critical_path().render();
        assert!(r.contains("compute"));
        assert!(r.contains("total"));
    }
}
