//! DPOR-lite schedule exploration: re-run a rank program under permuted
//! message delivery orders and *prove* its results are
//! schedule-independent.
//!
//! Full dynamic partial-order reduction enumerates every inequivalent
//! interleaving; for this runtime the only schedule freedom a rank
//! program can observe is the inter-source order of its pending buffer
//! (named receives pin their source; per-source FIFO is guaranteed by
//! the channels). So it suffices to permute exactly that freedom:
//! [`explore`] runs the program once per [`DeliveryOrder`] — arrival
//! order, source-ascending, source-descending, and a battery of seeded
//! pseudo-random legal permutations — and compares
//!
//! * every rank's **result digest** (caller-supplied, e.g. the bit
//!   pattern of the R factor),
//! * the **makespan** bit pattern,
//! * the per-rank **metrics registries**, and
//! * the **failure history** (fault events in trace order),
//!
//! across all runs, while the happens-before analyzer ([`crate::hb`])
//! checks each run's trace for receive races. A program that passes
//! ([`ExploreReport::proves_determinism`]) is bit-identical under every
//! explored delivery order *and* shows no race that could distinguish
//! unexplored ones — which upgrades the single-seed replay test of the
//! fault-tolerance work into an exhaustive argument for small trees
//! (the P ≤ 8 configurations `commcheck` gates in CI).

use std::fmt::Write as _;

use crate::comm::Communicator;
use crate::error::CommError;
use crate::hb::HbReport;
use crate::process::{DeliveryOrder, Process};
use crate::runtime::Runtime;

/// FNV-1a over a byte slice — the digest helper used by callers to
/// fingerprint results (stable, dependency-free).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The delivery orders explored for a `p`-rank configuration: the three
/// canonical orders plus seeded permutations — 24 seeds when `p ≤ 8`
/// (the "exhaustive proof for small trees" regime), 8 above.
pub fn schedules_for(p: usize) -> Vec<DeliveryOrder> {
    let mut v = vec![
        DeliveryOrder::Arrival,
        DeliveryOrder::SourceAscending,
        DeliveryOrder::SourceDescending,
    ];
    let seeds = if p <= 8 { 24 } else { 8 };
    v.extend((0..seeds).map(DeliveryOrder::Seeded));
    v
}

/// One explored schedule: the order used, the run's fingerprints and its
/// happens-before report.
#[derive(Debug, Clone)]
pub struct ScheduleRun {
    /// The delivery order this run used.
    pub order: DeliveryOrder,
    /// Per-rank result digests (`Ok(digest)`) or error strings.
    pub rank_digests: Vec<Result<u64, String>>,
    /// Bit pattern of the makespan.
    pub makespan_bits: u64,
    /// Fault events rendered in trace order (the failure history).
    pub fault_history: Vec<String>,
    /// The happens-before analysis of this run's trace.
    pub hb: HbReport,
}

/// The verdict of [`explore`].
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// One entry per explored delivery order.
    pub runs: Vec<ScheduleRun>,
    /// Human-readable differences against the first run (empty when all
    /// runs were bit-identical).
    pub divergences: Vec<String>,
    /// True when every run's per-rank metrics equalled the first run's.
    pub metrics_identical: bool,
}

impl ExploreReport {
    /// Number of schedules explored.
    pub fn schedules(&self) -> usize {
        self.runs.len()
    }

    /// True when every explored schedule produced bit-identical rank
    /// digests, makespan, metrics and failure history.
    pub fn all_identical(&self) -> bool {
        self.divergences.is_empty() && self.metrics_identical
    }

    /// True when every run's happens-before analysis was clean.
    pub fn hb_ok(&self) -> bool {
        self.runs.iter().all(|r| r.hb.ok())
    }

    /// The exhaustiveness claim: at least two schedules explored, all
    /// bit-identical, and no receive race in any trace (so unexplored
    /// interleavings cannot differ either — the HB order pins every
    /// match).
    pub fn proves_determinism(&self) -> bool {
        self.runs.len() >= 2 && self.all_identical() && self.hb_ok()
    }

    /// Multi-line human rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.runs {
            let _ = writeln!(
                out,
                "  {:<18} makespan={:016x} {}",
                format!("{:?}", r.order),
                r.makespan_bits,
                r.hb.summary_line()
            );
        }
        for d in &self.divergences {
            let _ = writeln!(out, "  DIVERGENCE: {d}");
        }
        let verdict = if self.proves_determinism() {
            format!(
                "  PROVED: {} schedules, bit-identical results, 0 races",
                self.runs.len()
            )
        } else {
            "  NOT PROVED: schedule-dependence detected".to_string()
        };
        let _ = writeln!(out, "{verdict}");
        out
    }
}

/// Runs `program` once per delivery order in `orders` on a fresh runtime
/// from `make_runtime` (tracing is forced on), digesting each rank's
/// `Ok` result with `digest`, and cross-checks every observable — see
/// the [module docs](mod@crate::explore).
///
/// `make_runtime` must return an identically-configured runtime each
/// call (same topology, cost model, failure schedule, recv timeout);
/// `explore` installs the delivery order and tracing itself.
pub fn explore<T, Rt, P, D>(
    make_runtime: Rt,
    program: P,
    digest: D,
    orders: &[DeliveryOrder],
) -> ExploreReport
where
    T: Send,
    Rt: Fn() -> Runtime,
    P: Fn(&mut Process, &Communicator) -> Result<T, CommError> + Sync,
    D: Fn(&T) -> u64,
{
    let mut runs: Vec<ScheduleRun> = Vec::with_capacity(orders.len());
    let mut divergences = Vec::new();
    let mut first_metrics: Option<Vec<crate::metrics::MetricsRegistry>> = None;
    let mut metrics_identical = true;

    for &order in orders {
        let mut rt = make_runtime();
        rt.enable_tracing();
        rt.set_delivery_order(order);
        let report = rt.run(|p, c| program(p, c));
        let rank_digests: Vec<Result<u64, String>> = report
            .ranks
            .iter()
            .map(|r| match &r.result {
                Ok(v) => Ok(digest(v)),
                Err(e) => Err(e.to_string()),
            })
            .collect();
        let makespan_bits = report.makespan.secs().to_bits();
        let trace = report.trace.as_ref().expect("tracing forced on");
        let fault_history: Vec<String> = trace
            .fault_events()
            .iter()
            .map(|e| format!("{}@{:.9}:{:?}", e.rank, e.start.secs(), e.kind))
            .collect();
        let hb = trace.hb_analysis();

        match &first_metrics {
            None => first_metrics = Some(report.metrics.clone()),
            Some(m0) => {
                if *m0 != report.metrics {
                    metrics_identical = false;
                    divergences.push(format!("{order:?}: per-rank metrics differ"));
                }
            }
        }
        if let Some(r0) = runs.first() {
            if r0.rank_digests != rank_digests {
                for (rank, (a, b)) in
                    r0.rank_digests.iter().zip(&rank_digests).enumerate()
                {
                    if a != b {
                        divergences.push(format!(
                            "{order:?}: rank {rank} result differs ({a:?} vs {b:?})"
                        ));
                    }
                }
            }
            if r0.makespan_bits != makespan_bits {
                divergences.push(format!(
                    "{order:?}: makespan differs ({:016x} vs {makespan_bits:016x})",
                    r0.makespan_bits
                ));
            }
            if r0.fault_history != fault_history {
                divergences.push(format!("{order:?}: failure history differs"));
            }
        }
        runs.push(ScheduleRun { order, rank_digests, makespan_bits, fault_history, hb });
    }

    ExploreReport { runs, divergences, metrics_identical }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsqr_netsim::{ClusterSpec, CostModel, GridTopology, LinkParams};

    fn tiny_runtime(procs: usize) -> Runtime {
        let topo = GridTopology::block_placement(
            vec![ClusterSpec {
                name: "c0".into(),
                nodes: procs,
                procs_per_node: 1,
                peak_gflops_per_proc: 8.0,
            }],
            procs,
            1,
        );
        let model = CostModel::homogeneous(LinkParams::from_ms_mbps(0.5, 800.0), 1e9, 1);
        Runtime::new(topo, model)
    }

    #[test]
    fn deterministic_reduction_is_proved() {
        // All ranks send to rank 0, which receives *by name* in rank
        // order — deterministic by construction.
        let rep = explore(
            || tiny_runtime(4),
            |p, _| {
                if p.rank() == 0 {
                    let mut acc = 0.0f64;
                    for src in 1..p.size() {
                        acc += p.recv::<f64>(src, 1)?;
                    }
                    Ok(acc)
                } else {
                    p.send(0, 1, p.rank() as f64 * 1.5)?;
                    Ok(0.0)
                }
            },
            |x| x.to_bits(),
            &schedules_for(4),
        );
        assert!(rep.proves_determinism(), "{}", rep.render());
        assert_eq!(rep.schedules(), 27);
        assert!(rep.render().contains("PROVED"));
    }

    #[test]
    fn wildcard_reduction_is_caught() {
        // Rank 0 folds with a non-commutative operation over wildcard
        // receives: the result depends on delivery order. The explorer
        // must either observe divergent digests or (if every explored
        // order happens to coincide) the analyzer's receive races —
        // either way determinism is NOT proved.
        let rep = explore(
            || tiny_runtime(4),
            |p, _| {
                if p.rank() == 0 {
                    let mut acc = 1.0f64;
                    for _ in 1..p.size() {
                        let (_, x) = p.recv_any::<f64>(1)?;
                        acc = acc * 2.0 + x; // order-sensitive fold
                    }
                    Ok(acc)
                } else {
                    p.send(0, 1, p.rank() as f64)?;
                    Ok(0.0)
                }
            },
            |x| x.to_bits(),
            &schedules_for(4),
        );
        assert!(!rep.proves_determinism(), "{}", rep.render());
        // The analyzer sees the wildcard receives regardless of whether
        // the digests happened to collide.
        assert!(rep.runs.iter().any(|r| r.hb.wildcard_recvs > 0));
        assert!(!rep.hb_ok(), "wildcard recv with rivals must race");
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
