//! Launching rank programs and collecting run reports.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;

use tsqr_netsim::{CostModel, FailureSchedule, GridTopology, VirtualTime};

use crate::comm::Communicator;
use crate::error::CommError;
use crate::hb::{HbReport, VectorClock};
use crate::message::Envelope;
use crate::metrics::MetricsRegistry;
use crate::process::{DeliveryOrder, Process, RankStats, TrafficCounters};
use crate::trace::{Recorder, Trace};

/// Outcome of one rank: its program result (or communication error) plus
/// its final statistics.
#[derive(Debug, Clone)]
pub struct RankResult<T> {
    /// What the rank program returned.
    pub result: Result<T, CommError>,
    /// Final clock and traffic counters.
    pub stats: RankStats,
}

/// Aggregated outcome of a run.
#[derive(Debug, Clone)]
pub struct RunReport<T> {
    /// Per-rank results, indexed by rank.
    pub ranks: Vec<RankResult<T>>,
    /// The simulated wall-clock time of the whole program — the largest
    /// final virtual clock across ranks. This is the `time` of Eq. (1).
    pub makespan: VirtualTime,
    /// Sum of all per-rank traffic counters.
    pub totals: TrafficCounters,
    /// The merged event trace, when tracing was enabled.
    pub trace: Option<Trace>,
    /// Per-rank phase metrics (always collected), indexed by rank.
    pub metrics: Vec<MetricsRegistry>,
    /// Each rank's final vector clock (see [`crate::hb`]), indexed by
    /// rank. Always collected — the clocks are a few words per rank.
    pub vector_clocks: Vec<Vec<u64>>,
}

/// Structured join of a run: who finished, who failed, and the partial
/// observability data of both (satellite of the fault-injection work —
/// failure is an *outcome*, not a panic; see `docs/fault-injection.md`).
#[derive(Debug, Clone)]
pub struct RunOutcome<T> {
    /// `(rank, value)` for every rank whose program returned `Ok`,
    /// ascending by rank.
    pub survivors: Vec<(usize, T)>,
    /// `(rank, error)` for every rank whose program returned `Err`,
    /// ascending by rank.
    pub failures: Vec<(usize, CommError)>,
    /// The simulated makespan — failed ranks still advanced their clocks
    /// up to the failure instant.
    pub makespan: VirtualTime,
    /// Traffic totals, including the partial work of failed ranks.
    pub totals: TrafficCounters,
    /// Per-rank phase metrics (indexed by rank); failed ranks keep the
    /// metrics they accumulated before dying.
    pub metrics: Vec<MetricsRegistry>,
    /// The merged event trace, when tracing was enabled.
    pub trace: Option<Trace>,
}

impl<T> RunOutcome<T> {
    /// True when every rank program returned `Ok`.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// The ranks that failed, ascending.
    pub fn failed_ranks(&self) -> Vec<usize> {
        self.failures.iter().map(|&(r, _)| r).collect()
    }

    /// The surviving value of `rank`, if it survived.
    pub fn survivor(&self, rank: usize) -> Option<&T> {
        self.survivors.iter().find(|&&(r, _)| r == rank).map(|(_, v)| v)
    }

    /// One-line human summary (`"64 ok, 1 failed: rank 37 crashed …"`).
    ///
    /// When tracing was enabled and some rank timed out on the
    /// wall-clock safety net, the summary also *names the deadlock
    /// cycle* the happens-before analyzer found (e.g. `deadlock cycle
    /// 0 → 1 → 0`), so the operator sees who was waiting on whom instead
    /// of a bare timeout.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return format!("{} ranks ok", self.survivors.len());
        }
        let what: Vec<String> =
            self.failures.iter().map(|(r, e)| format!("rank {r}: {e}")).collect();
        let mut out = format!(
            "{} ok, {} failed — {}",
            self.survivors.len(),
            self.failures.len(),
            what.join("; ")
        );
        let timed_out =
            self.failures.iter().any(|(_, e)| matches!(e, CommError::Timeout { .. }));
        if timed_out {
            if let Some(trace) = &self.trace {
                for cycle in trace.deadlock_cycles() {
                    out.push_str(&format!(
                        "; deadlock cycle {}",
                        HbReport::cycle_string(&cycle)
                    ));
                }
            }
        }
        out
    }
}

impl<T> RunReport<T> {
    /// Converts the report into a structured [`RunOutcome`], partitioning
    /// ranks into survivors and failures while keeping everyone's partial
    /// metrics, counters and trace. This is the non-panicking join —
    /// prefer it over [`RunReport::unwrap_results`] whenever a failure
    /// schedule is in force.
    pub fn outcome(self) -> RunOutcome<T> {
        let mut survivors = Vec::new();
        let mut failures = Vec::new();
        for (rank, rr) in self.ranks.into_iter().enumerate() {
            match rr.result {
                Ok(v) => survivors.push((rank, v)),
                Err(e) => failures.push((rank, e)),
            }
        }
        RunOutcome {
            survivors,
            failures,
            makespan: self.makespan,
            totals: self.totals,
            metrics: self.metrics,
            trace: self.trace,
        }
    }

    /// Unwraps every rank's result.
    ///
    /// # Panics
    /// Panics when any rank failed, listing **all** failed ranks with
    /// their typed errors (not just the first). Code that expects
    /// failures should use [`RunReport::outcome`] instead.
    pub fn unwrap_results(self) -> Vec<T> {
        let failed: Vec<String> = self
            .ranks
            .iter()
            .enumerate()
            .filter_map(|(r, rr)| rr.result.as_ref().err().map(|e| format!("rank {r}: {e}")))
            .collect();
        assert!(
            failed.is_empty(),
            "{} rank(s) failed (use RunReport::outcome() for a structured join):\n  {}",
            failed.len(),
            failed.join("\n  ")
        );
        self.ranks
            .into_iter()
            .map(|rr| rr.result.expect("checked above"))
            .collect()
    }

    /// The result of rank 0 (where reductions root by convention).
    pub fn root_result(&self) -> &Result<T, CommError> {
        &self.ranks[0].result
    }

    /// Critical-path message count: the maximum number of messages sent by
    /// any single rank (a per-rank proxy used by tree-shape tests).
    pub fn max_msgs_per_rank(&self) -> u64 {
        self.ranks.iter().map(|r| r.stats.traffic.total_msgs()).max().unwrap_or(0)
    }

    /// Folds every rank's [`MetricsRegistry`] into one run-wide registry
    /// (phases in the order rank 0 first entered them, then any phases
    /// only other ranks saw).
    pub fn aggregate_metrics(&self) -> MetricsRegistry {
        let mut out = MetricsRegistry::default();
        for m in &self.metrics {
            out.merge(m);
        }
        out
    }
}

/// A simulated machine: topology + cost model + optional failure injection.
///
/// `run` launches one OS thread per rank and blocks until all rank programs
/// return. Rank counts used in this workspace (≤ 256) are comfortably
/// within OS thread limits.
pub struct Runtime {
    topo: Arc<GridTopology>,
    model: Arc<CostModel>,
    schedule: FailureSchedule,
    recv_timeout: Duration,
    tracing: bool,
    delivery: DeliveryOrder,
}

impl Runtime {
    /// Builds a runtime for the given grid.
    pub fn new(topo: GridTopology, model: CostModel) -> Self {
        let model = model.validated_for(&topo);
        Runtime {
            topo: Arc::new(topo),
            model: Arc::new(model),
            schedule: FailureSchedule::default(),
            recv_timeout: crate::process::DEFAULT_RECV_TIMEOUT,
            tracing: false,
            delivery: DeliveryOrder::default(),
        }
    }

    /// Installs a pending-buffer [`DeliveryOrder`] — the DPOR-lite
    /// explorer's lever. Deterministic programs (no wildcard receives)
    /// produce bit-identical results under every order; the explorer
    /// asserts exactly that.
    pub fn set_delivery_order(&mut self, order: DeliveryOrder) -> &mut Self {
        self.delivery = order;
        self
    }

    /// The delivery order in force.
    pub fn delivery_order(&self) -> DeliveryOrder {
        self.delivery
    }

    /// Records every send/receive/compute with its virtual-time span; the
    /// merged [`Trace`] is returned in the run report.
    pub fn enable_tracing(&mut self) -> &mut Self {
        self.tracing = true;
        self
    }

    /// Overrides the wall-clock deadlock timeout on receives (useful for
    /// failure-injection tests, where some rank is expected to starve).
    pub fn set_recv_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.recv_timeout = timeout;
        self
    }

    /// Injects a deterministic failure on the directed link `src → dst`:
    /// subsequent sends return [`CommError::LinkDown`]. (Shorthand for a
    /// one-rule [`FailureSchedule`]; composes with any schedule already
    /// installed.)
    pub fn fail_link(&mut self, src: usize, dst: usize) -> &mut Self {
        self.schedule = std::mem::take(&mut self.schedule).fail_link(src, dst);
        self
    }

    /// Installs a full [`FailureSchedule`] — rank crashes, transient
    /// drops, degradation windows (replacing any schedule previously
    /// installed, including `fail_link` rules).
    pub fn set_failure_schedule(&mut self, schedule: FailureSchedule) -> &mut Self {
        self.schedule = schedule;
        self
    }

    /// The failure schedule currently in force (empty by default).
    pub fn failure_schedule(&self) -> &FailureSchedule {
        &self.schedule
    }

    /// The topology this runtime simulates.
    pub fn topology(&self) -> &GridTopology {
        &self.topo
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Runs `program` on every rank and gathers the report.
    ///
    /// The program receives the rank's [`Process`] handle and the *world*
    /// communicator spanning all ranks.
    // archlint: allow(taint) — this is the one sanctioned thread spawn:
    // ranks run as OS threads, but every result is a function of the
    // virtual-time cost model alone. That schedule-independence is
    // *proved*, not assumed: the happens-before gate, the DPOR-lite
    // explorer and the TSan CI job all police this boundary.
    pub fn run<T, F>(&self, program: F) -> RunReport<T>
    where
        T: Send,
        F: Fn(&mut Process, &Communicator) -> Result<T, CommError> + Sync,
    {
        let n = self.topo.num_procs();
        assert!(n > 0, "cannot run on an empty topology");
        let (senders, inboxes): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded::<Envelope>()).unzip();
        let schedule = Arc::new(self.schedule.clone());

        let mut rank_results: Vec<Option<RankResult<T>>> = (0..n).map(|_| None).collect();
        let mut rank_traces: Vec<Vec<crate::trace::Event>> = (0..n).map(|_| Vec::new()).collect();
        let mut rank_metrics: Vec<MetricsRegistry> = (0..n).map(|_| Default::default()).collect();
        let mut rank_vcs: Vec<Vec<u64>> = (0..n).map(|_| Vec::new()).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, inbox) in inboxes.into_iter().enumerate() {
                let senders = senders.clone();
                let topo = Arc::clone(&self.topo);
                let model = Arc::clone(&self.model);
                let schedule = Arc::clone(&schedule);
                let program = &program;
                handles.push(scope.spawn(move || {
                    let crash_at = schedule.crash_time(rank);
                    let mut proc = Process {
                        rank,
                        size: n,
                        topo,
                        model,
                        schedule,
                        crash_at,
                        death_announced: false,
                        dead: BTreeMap::new(),
                        sent_seq: vec![0; n],
                        senders,
                        inbox,
                        pending: VecDeque::new(),
                        clock: VirtualTime::ZERO,
                        nic_free: VirtualTime::ZERO,
                        counters: TrafficCounters::default(),
                        recv_timeout: self.recv_timeout,
                        recorder: self.tracing.then(Recorder::default),
                        phase_stack: Vec::new(),
                        metrics: MetricsRegistry::default(),
                        vc: VectorClock::new(n),
                        delivery: self.delivery,
                        buffered: 0,
                    };
                    let world = Communicator::world(n);
                    let result = program(&mut proc, &world);
                    // A program that failed will never send again: announce
                    // the abort so peers fail fast in virtual time instead
                    // of hitting the wall-clock safety net. (Crashed ranks
                    // already announced inside check_alive; the broadcast
                    // is idempotent.)
                    if result.is_err() {
                        proc.announce_abort();
                    }
                    // Close any phases the program left open so phase
                    // spans are recorded even on early error returns.
                    while proc.current_phase().is_some() {
                        proc.phase_end();
                    }
                    let events = proc.recorder.take().map(|r| r.events).unwrap_or_default();
                    let vc = proc.vc.as_slice().to_vec();
                    (
                        RankResult {
                            result,
                            stats: RankStats { clock: proc.clock, traffic: proc.counters },
                        },
                        events,
                        proc.metrics,
                        vc,
                        // Hand the inbox back instead of dropping it: a
                        // rank that exits early (crash/abort) must not
                        // disconnect its channel while peers are still
                        // sending, or those sends would race the thread's
                        // real-time exit and spuriously fail with
                        // PeerGone (a rare schedule-dependent flake the
                        // commcheck explorer caught). Keeping every
                        // receiver alive until all ranks joined makes
                        // send-to-a-finished-rank deterministic: the
                        // message is priced, delivered nowhere, and the
                        // failure surfaces in *virtual* time through the
                        // tombstone machinery instead.
                        proc.inbox,
                    )
                }));
            }
            let mut parked_inboxes = Vec::with_capacity(n);
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((rr, events, metrics, vc, inbox)) => {
                        rank_results[rank] = Some(rr);
                        rank_traces[rank] = events;
                        rank_metrics[rank] = metrics;
                        rank_vcs[rank] = vc;
                        parked_inboxes.push(inbox);
                    }
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
            drop(parked_inboxes);
        });

        let mut ranks: Vec<RankResult<T>> =
            rank_results.into_iter().map(|r| r.expect("all ranks joined")).collect();
        let makespan =
            ranks.iter().map(|r| r.stats.clock).max().unwrap_or(VirtualTime::ZERO);
        let totals = ranks
            .iter()
            .fold(TrafficCounters::default(), |acc, r| acc.merge(&r.stats.traffic));
        let trace = self
            .tracing
            .then(|| Trace::from_parts(rank_traces.into_iter().flatten().collect()));
        if let Some(trace) = &trace {
            // With the analyzer's evidence in hand, upgrade bare wall-clock
            // timeouts to *named* deadlocks: a rank whose receive timed out
            // and who sits on a cycle of the trace's wait-for graph was not
            // merely slow — it was deadlocked, and its error should say on
            // whom (see `docs/static-analysis.md`).
            let cycles = trace.deadlock_cycles();
            if !cycles.is_empty() {
                for (rank, rr) in ranks.iter_mut().enumerate() {
                    // Both shapes of an orphaned wait: the timer fired, or
                    // the peers' threads exited first (the disconnect
                    // merely raced the timer — see `Process::recv`).
                    let (r, from) = match &rr.result {
                        Err(CommError::Timeout { rank: r, from })
                        | Err(CommError::PeerGone { rank: r, from }) => (*r, *from),
                        _ => continue,
                    };
                    if let Some(cycle) =
                        cycles.iter().find(|c| c.contains(&rank)).cloned()
                    {
                        rr.result = Err(CommError::Deadlock { rank: r, from, cycle });
                    }
                }
            }
        }
        RunReport { ranks, makespan, totals, trace, metrics: rank_metrics, vector_clocks: rank_vcs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsqr_netsim::{ClusterSpec, LinkParams};

    fn tiny_grid(clusters: usize, nodes: usize, ppn: usize) -> Runtime {
        let specs = (0..clusters)
            .map(|i| ClusterSpec {
                name: format!("c{i}"),
                nodes,
                procs_per_node: ppn,
                peak_gflops_per_proc: 8.0,
            })
            .collect();
        let topo = GridTopology::block_placement(specs, nodes, ppn);
        let mut model =
            CostModel::homogeneous(LinkParams::from_ms_mbps(1.0, 800.0), 1e9, clusters);
        // Make the hierarchy visible: cheap intra-node, expensive WAN.
        model.intra_node = LinkParams::from_ms_mbps(0.01, 5000.0);
        for a in 0..clusters {
            for b in 0..clusters {
                if a != b {
                    model.inter_cluster[a][b] = LinkParams::from_ms_mbps(10.0, 80.0);
                }
            }
        }
        Runtime::new(topo, model)
    }

    #[test]
    fn ping_pong_advances_both_clocks() {
        let rt = tiny_grid(1, 2, 1);
        let report = rt.run(|p, _| {
            if p.rank() == 0 {
                p.send(1, 7, 42.0f64)?;
                let x: f64 = p.recv(1, 8)?;
                Ok(x)
            } else {
                let x: f64 = p.recv(0, 7)?;
                p.send(0, 8, x * 2.0)?;
                Ok(x)
            }
        });
        let results = report.clone_results();
        assert_eq!(results, vec![84.0, 42.0]);
        // Two 8-byte messages at 1 ms latency each: makespan ≥ 2 ms.
        assert!(report.makespan.secs() >= 2e-3);
        assert_eq!(report.totals.total_msgs(), 2);
        assert_eq!(report.totals.total_bytes(), 16);
    }

    impl<T: Clone> RunReport<T> {
        fn clone_results(&self) -> Vec<T> {
            self.ranks.iter().map(|r| r.result.clone().unwrap()).collect()
        }
    }

    #[test]
    fn virtual_time_is_deterministic_across_runs() {
        let rt = tiny_grid(2, 2, 2);
        let run = || {
            rt.run(|p, _| {
                // Ring: send to the next rank, receive from the previous.
                let next = (p.rank() + 1) % p.size();
                let prev = (p.rank() + p.size() - 1) % p.size();
                p.compute(1_000_000 * (p.rank() as u64 + 1), None);
                p.send(next, 0, p.rank() as f64)?;
                let _x: f64 = p.recv(prev, 0)?;
                Ok(p.clock().secs())
            })
            .clone_results()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "virtual clocks must be schedule-independent");
    }

    #[test]
    fn counters_classify_link_classes() {
        let rt = tiny_grid(2, 2, 2); // ranks 0..4 on cluster 0, 4..8 on cluster 1
        let report = rt.run(|p, _| {
            match p.rank() {
                0 => {
                    p.send(1, 0, ())?; // same node (slots 0,1 of node 0)
                    p.send(2, 0, ())?; // same cluster, different node
                    p.send(4, 0, ())?; // other cluster
                }
                1 => {
                    let _: () = p.recv(0, 0)?;
                }
                2 => {
                    let _: () = p.recv(0, 0)?;
                }
                4 => {
                    let _: () = p.recv(0, 0)?;
                }
                _ => {}
            }
            Ok(())
        });
        let c0 = report.ranks[0].stats.traffic;
        assert_eq!(c0.msgs, [1, 1, 1]);
        assert_eq!(report.totals.inter_cluster_msgs(), 1);
    }

    #[test]
    fn compute_charges_gamma() {
        let rt = tiny_grid(1, 1, 2);
        let report = rt.run(|p, _| {
            p.compute(2_000_000_000, None); // 2 Gflop at 1 Gflop/s
            Ok(())
        });
        assert!((report.makespan.secs() - 2.0).abs() < 1e-9);
        assert_eq!(report.totals.flops, 4_000_000_000);
    }

    #[test]
    fn exchange_overlaps_transfers() {
        let rt = tiny_grid(1, 2, 1);
        let report = rt.run(|p, _| {
            let partner = 1 - p.rank();
            let got: f64 = p.exchange(partner, 3, p.rank() as f64)?;
            Ok(got)
        });
        assert_eq!(report.clone_results(), vec![1.0, 0.0]);
        // Full duplex: one exchange should cost ~one message time (1 ms),
        // not two.
        assert!(report.makespan.secs() < 1.5e-3, "makespan {}", report.makespan.secs());
    }

    #[test]
    fn failed_link_surfaces_error() {
        let mut rt = tiny_grid(1, 2, 1);
        rt.fail_link(0, 1);
        let report = rt.run(|p, _| {
            if p.rank() == 0 {
                p.send(1, 0, 1.0f64)?;
            } else if p.link_ok(0) {
                // Peer 0 will fail before sending; don't wait for it.
            }
            Ok(())
        });
        assert_eq!(
            report.ranks[0].result,
            Err(CommError::LinkDown { src: 0, dst: 1 })
        );
        assert!(report.ranks[1].result.is_ok());
    }

    #[test]
    fn out_of_order_sources_are_buffered() {
        let rt = tiny_grid(1, 3, 1);
        let report = rt.run(|p, _| match p.rank() {
            0 => {
                // Receive from 2 first even though 1's message may arrive
                // earlier on the real channel.
                let a: f64 = p.recv(2, 0)?;
                let b: f64 = p.recv(1, 0)?;
                Ok(a * 10.0 + b)
            }
            r => {
                p.send(0, 0, r as f64)?;
                Ok(0.0)
            }
        });
        assert_eq!(report.ranks[0].result, Ok(21.0));
    }

    #[test]
    fn tracing_records_every_action_with_spans() {
        use crate::trace::EventKind;
        let mut rt = tiny_grid(1, 2, 1);
        rt.enable_tracing();
        let report = rt.run(|p, _| {
            if p.rank() == 0 {
                p.compute(1_000_000, None);
                p.send(1, 0, vec![1.0f64; 8])?;
            } else {
                let _: Vec<f64> = p.recv(0, 0)?;
            }
            Ok(())
        });
        let trace = report.trace.expect("tracing enabled");
        let kinds: Vec<_> = trace.events.iter().map(|e| &e.kind).collect();
        assert_eq!(trace.len(), 3, "compute + send + recv");
        assert!(matches!(kinds[0], EventKind::Compute { flops: 1_000_000 }));
        assert!(trace.events.iter().all(|e| e.end >= e.start));
        // The send's span covers latency + 64 bytes of bandwidth.
        let send = trace
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Send { .. }))
            .unwrap();
        assert!((send.end - send.start).secs() >= 1e-3);
        // Disabled by default.
        let rt2 = tiny_grid(1, 2, 1);
        let report2 = rt2.run(|p, _| {
            let _ = p.rank();
            Ok(())
        });
        assert!(report2.trace.is_none());
    }

    #[test]
    fn metrics_are_always_on_and_phase_bucketed() {
        let rt = tiny_grid(1, 2, 1);
        let report = rt.run(|p, _| {
            p.with_phase("work", |p| {
                p.compute(1_000_000, None);
                if p.rank() == 0 {
                    p.send(1, 0, 1.0f64)?;
                } else {
                    let _: f64 = p.recv(0, 0)?;
                }
                Ok(())
            })?;
            // Unphased tail work.
            p.compute(2_000_000, None);
            Ok(())
        });
        assert_eq!(report.metrics.len(), 2);
        let work = report.metrics[0].phase("work").expect("phase recorded");
        assert_eq!(work.flops, 1_000_000);
        assert_eq!(work.total_msgs(), 1);
        assert!(work.send_s.iter().sum::<f64>() > 0.0);
        let wait = report.metrics[1].phase("work").unwrap().recv_wait_s;
        assert!(wait > 0.0, "rank 1 blocked on the message");
        let agg = report.aggregate_metrics();
        assert_eq!(agg.phase("work").unwrap().flops, 2_000_000);
        assert_eq!(
            agg.phase(crate::metrics::UNPHASED).unwrap().flops,
            4_000_000
        );
        // Ranks 0 and 1 sit on different nodes of one cluster: bucket 1.
        assert_eq!(agg.msg_bytes(1).count(), 1);
    }

    #[test]
    fn phases_are_traced_and_auto_closed() {
        use crate::trace::EventKind;
        let mut rt = tiny_grid(1, 2, 1);
        rt.enable_tracing();
        let report = rt.run(|p, _| {
            p.phase_begin("outer");
            p.compute(1_000_000, None);
            p.phase_begin("inner");
            p.compute(1_000_000, None);
            // Both phases deliberately left open: the runtime closes them.
            Ok(())
        });
        let trace = report.trace.unwrap();
        let phases: Vec<_> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Phase { name } => Some((e.rank, name, e.phase)),
                _ => None,
            })
            .collect();
        // Each of the two ranks records inner (stamped with outer) + outer.
        assert_eq!(phases.len(), 4);
        assert!(phases.contains(&(0, "inner", Some("outer"))));
        assert!(phases.contains(&(0, "outer", None)));
        // The compute inside "inner" is stamped with the innermost phase.
        let inner_compute = trace
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Compute { .. }) && e.phase == Some("inner"))
            .expect("inner compute stamped");
        assert!(inner_compute.end > inner_compute.start);
    }

    #[test]
    fn critical_path_total_equals_makespan() {
        let mut rt = tiny_grid(2, 2, 2);
        rt.enable_tracing();
        let report = rt.run(|p, _| {
            // A little pipeline with cross-cluster traffic: 0 → 4 → 7.
            match p.rank() {
                0 => {
                    p.compute(5_000_000, None);
                    p.send(4, 0, vec![1.0f64; 64])?;
                }
                4 => {
                    let v: Vec<f64> = p.recv(0, 0)?;
                    p.compute(2_000_000, None);
                    p.send(7, 1, v)?;
                }
                7 => {
                    let _: Vec<f64> = p.recv(4, 1)?;
                    p.compute(1_000_000, None);
                }
                _ => p.compute(500_000, None),
            }
            Ok(())
        });
        let trace = report.trace.unwrap();
        let path = trace.critical_path();
        assert!(
            (path.total().secs() - report.makespan.secs()).abs() < 1e-9,
            "critical path {} != makespan {}",
            path.total().secs(),
            report.makespan.secs()
        );
        let su = path.summary();
        assert!(su.messages >= 2, "both pipeline hops sit on the path");
        assert!(su.wan_messages >= 1, "the 0→4 hop crosses clusters");
        assert!(su.compute_s > 0.0);
        // Chrome export of the same trace is well-formed and includes
        // flow arrows for the matched messages.
        let json = trace.chrome_json();
        assert!(json.matches("\"ph\":\"s\"").count() >= 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn exchange_trace_critical_path_still_tiles_makespan() {
        let mut rt = tiny_grid(1, 2, 1);
        rt.enable_tracing();
        let report = rt.run(|p, _| {
            let partner = 1 - p.rank();
            let _: f64 = p.exchange(partner, 3, p.rank() as f64)?;
            p.compute(1_000_000, None);
            Ok(())
        });
        let trace = report.trace.unwrap();
        let path = trace.critical_path();
        assert!((path.total().secs() - report.makespan.secs()).abs() < 1e-9);
    }

    #[test]
    fn scheduled_crash_fails_self_and_is_detected_by_peer() {
        use crate::process::DETECTION_LATENCY_FACTOR;
        use crate::trace::{EventKind, FaultKind};
        let mut rt = tiny_grid(1, 2, 1);
        let crash_at = VirtualTime::from_millis(5.0);
        rt.set_failure_schedule(FailureSchedule::new(0).crash_rank(0, crash_at));
        rt.enable_tracing();
        let report = rt.run(|p, _| {
            if p.rank() == 0 {
                // Compute past the crash instant, then try to send.
                p.compute(10_000_000, None); // 10 ms at 1 Gflop/s
                p.send(1, 0, 1.0f64)?;
                Ok(0.0)
            } else {
                let x: f64 = p.recv(0, 0)?;
                Ok(x)
            }
        });
        assert_eq!(
            report.ranks[0].result,
            Err(CommError::RankFailed { rank: 0, at: crash_at })
        );
        assert_eq!(
            report.ranks[1].result,
            Err(CommError::RankFailed { rank: 0, at: crash_at })
        );
        // Virtual-time detection: rank 1's clock = crash + deadline, not
        // a wall-clock guess. Link 0↔1 is intra-cluster: 1 ms latency.
        let deadline = DETECTION_LATENCY_FACTOR * 1e-3;
        let detected = report.ranks[1].stats.clock.secs();
        assert!(
            (detected - (crash_at.secs() + deadline)).abs() < 1e-9,
            "detected at {detected}"
        );
        // The failure wait is traced as a Fault span.
        let trace = report.trace.clone().unwrap();
        assert!(trace.fault_events().iter().any(|e| matches!(
            e.kind,
            EventKind::Fault { peer: 0, kind: FaultKind::RankFailed, .. }
        )));
        // And the structured outcome lists the failed ranks.
        let outcome = report.outcome();
        assert!(!outcome.is_clean());
        assert_eq!(outcome.failed_ranks(), vec![0, 1]);
        assert!(outcome.summary().contains("crashed"));
    }

    #[test]
    fn dropped_message_errors_both_sides_after_retries() {
        use crate::process::MAX_SEND_ATTEMPTS;
        let mut rt = tiny_grid(1, 2, 1);
        // Lose the first four transmissions 0 → 1: all retries exhausted.
        let mut s = FailureSchedule::new(0);
        for n in 0..u64::from(MAX_SEND_ATTEMPTS) {
            s = s.drop_nth_message(0, 1, n);
        }
        rt.set_failure_schedule(s);
        let report = rt.run(|p, _| {
            if p.rank() == 0 {
                p.send(1, 0, 1.0f64)?;
            } else {
                let _: f64 = p.recv(0, 0)?;
            }
            Ok(())
        });
        assert_eq!(
            report.ranks[0].result,
            Err(CommError::MessageDropped { src: 0, dst: 1, attempts: MAX_SEND_ATTEMPTS })
        );
        assert_eq!(
            report.ranks[1].result,
            Err(CommError::MessageDropped { src: 0, dst: 1, attempts: MAX_SEND_ATTEMPTS })
        );
        // Each attempt was priced: 4 messages on the wire.
        assert_eq!(report.ranks[0].stats.traffic.total_msgs(), 4);
    }

    #[test]
    fn transient_drop_recovers_on_retransmit() {
        let mut rt = tiny_grid(1, 2, 1);
        rt.set_failure_schedule(FailureSchedule::new(0).drop_nth_message(0, 1, 0));
        let report = rt.run(|p, _| {
            if p.rank() == 0 {
                p.send(1, 0, 7.0f64)?;
                Ok(0.0)
            } else {
                p.recv(0, 0)
            }
        });
        assert!(report.ranks[0].result.is_ok());
        assert_eq!(report.ranks[1].result, Ok(7.0));
        // The retransmission cost real virtual time: ≥ 2 message times
        // plus backoff.
        assert!(report.makespan.secs() > 2e-3);
        assert_eq!(report.ranks[0].stats.traffic.total_msgs(), 2);
    }

    #[test]
    fn abort_tombstone_reaches_waiting_peer() {
        let rt = tiny_grid(1, 2, 1);
        let report = rt.run(|p, _| {
            if p.rank() == 0 {
                // Fail without sending anything.
                Err(CommError::TagMismatch { expected: 1, got: 2 })
            } else {
                let _: f64 = p.recv(0, 0)?;
                Ok(())
            }
        });
        // Rank 1 learns of the abort through the tombstone — PeerGone,
        // not a wall-clock Timeout.
        assert_eq!(
            report.ranks[1].result,
            Err(CommError::PeerGone { rank: 1, from: 0 })
        );
    }

    #[test]
    fn replay_with_same_schedule_is_bit_identical() {
        let run = || {
            let mut rt = tiny_grid(2, 2, 1);
            rt.set_failure_schedule(
                FailureSchedule::new(9)
                    .crash_rank(3, VirtualTime::from_millis(2.0))
                    .drop_nth_message(0, 1, 0)
                    .drop_probability(1, 2, 0.5),
            );
            rt.enable_tracing();
            let report = rt.run(|p, _| {
                let next = (p.rank() + 1) % p.size();
                let prev = (p.rank() + p.size() - 1) % p.size();
                p.compute(1_000_000, None);
                // Ignore drop errors; propagate the rest.
                match p.send(next, 0, p.rank() as f64) {
                    Ok(()) | Err(CommError::MessageDropped { .. }) => {}
                    Err(e) => return Err(e),
                }
                match p.recv::<f64>(prev, 0) {
                    Ok(_) | Err(CommError::MessageDropped { .. }) => {}
                    Err(e) => return Err(e),
                }
                Ok(p.clock().secs())
            });
            let clocks: Vec<u64> =
                report.ranks.iter().map(|r| r.stats.clock.secs().to_bits()).collect();
            let faults: Vec<String> = report
                .trace
                .as_ref()
                .unwrap()
                .fault_events()
                .iter()
                .map(|e| format!("{:?}@{}:{:?}", e.rank, e.start.secs(), e.kind))
                .collect();
            (clocks, faults)
        };
        let (c1, f1) = run();
        let (c2, f2) = run();
        assert_eq!(c1, c2, "virtual clocks must replay bit-identically");
        assert_eq!(f1, f2, "failure events must replay identically");
        assert!(!f1.is_empty(), "the schedule injected observable faults");
    }

    #[test]
    fn tag_mismatch_is_detected() {
        let rt = tiny_grid(1, 2, 1);
        let report = rt.run(|p, _| {
            if p.rank() == 0 {
                p.send(1, 5, ())?;
                Ok(())
            } else {
                let r: Result<(), CommError> = p.recv(0, 6);
                match r {
                    Err(CommError::TagMismatch { expected: 6, got: 5 }) => Ok(()),
                    other => panic!("expected tag mismatch, got {other:?}"),
                }
            }
        });
        assert!(report.ranks.iter().all(|r| r.result.is_ok()));
    }

    #[test]
    fn outcome_splits_the_mixed_case() {
        // Four ranks, three fates: rank 0 and rank 3 succeed, rank 1
        // crashes per the failure schedule, rank 2 deadlocks waiting on a
        // message rank 3 never sends (wall-clock safety net, no tracing —
        // so the error stays a bare Timeout).
        let mut rt = tiny_grid(1, 4, 1);
        rt.set_failure_schedule(
            FailureSchedule::new(0).crash_rank(1, VirtualTime::from_millis(0.0)),
        );
        rt.set_recv_timeout(Duration::from_millis(200));
        let report = rt.run(|p, _| match p.rank() {
            1 => {
                p.compute(1_000_000, None); // trips over its own crash
                p.send(0, 1, 1.0f64)?;
                Ok(1.0)
            }
            2 => {
                let x: f64 = p.recv(3, 9)?; // never sent
                Ok(x)
            }
            _ => Ok(f64::from(u32::try_from(p.rank()).unwrap())),
        });
        let outcome = report.outcome();
        assert!(!outcome.is_clean());
        let survivor_ranks: Vec<usize> =
            outcome.survivors.iter().map(|(r, _)| *r).collect();
        assert_eq!(survivor_ranks, vec![0, 3]);
        assert_eq!(outcome.failed_ranks(), vec![1, 2]);
        assert!(matches!(
            outcome.failures[0],
            (1, CommError::RankFailed { rank: 1, .. })
        ));
        assert!(matches!(
            outcome.failures[1],
            (2, CommError::Timeout { rank: 2, from: 3 })
        ));
        // Everyone's metrics survive the split, survivors and failures alike.
        assert_eq!(outcome.metrics.len(), 4);
    }

    #[test]
    fn deadlock_error_names_the_wait_for_cycle() {
        // The classic two-rank deadlock: each receives before it sends.
        // With tracing on, the wall-clock timeouts are upgraded to
        // `CommError::Deadlock` naming the wait-for cycle the analyzer
        // extracted from the trace.
        let mut rt = tiny_grid(1, 2, 1);
        rt.set_recv_timeout(Duration::from_millis(200));
        rt.enable_tracing();
        let report = rt.run(|p, _| {
            let peer = 1 - p.rank();
            let x: f64 = p.recv(peer, 1)?; // both block here forever
            p.send(peer, 1, x)?;
            Ok(x)
        });
        for rank in 0..2 {
            let err = report.ranks[rank].result.as_ref().unwrap_err();
            match err {
                CommError::Deadlock { rank: r, from, cycle } => {
                    assert_eq!(*r, rank);
                    assert_eq!(*from, 1 - rank);
                    assert_eq!(cycle, &vec![0, 1]);
                }
                other => panic!("rank {rank}: expected Deadlock, got {other:?}"),
            }
            // The rendered message names the cycle explicitly.
            assert!(
                err.to_string().contains("wait-for cycle: 0 -> 1 -> 0"),
                "unexpected message: {err}"
            );
        }
        // The analyzer agrees with the upgraded errors.
        let hb = report.trace.as_ref().unwrap().hb_analysis();
        assert_eq!(hb.deadlock_cycles, vec![vec![0, 1]]);
        assert!(!hb.ok());
    }
}
