//! Launching rank programs and collecting run reports.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::unbounded;

use tsqr_netsim::{CostModel, GridTopology, VirtualTime};

use crate::comm::Communicator;
use crate::error::CommError;
use crate::message::Envelope;
use crate::metrics::MetricsRegistry;
use crate::process::{Process, RankStats, TrafficCounters};
use crate::trace::{Recorder, Trace};

/// Outcome of one rank: its program result (or communication error) plus
/// its final statistics.
#[derive(Debug, Clone)]
pub struct RankResult<T> {
    /// What the rank program returned.
    pub result: Result<T, CommError>,
    /// Final clock and traffic counters.
    pub stats: RankStats,
}

/// Aggregated outcome of a run.
#[derive(Debug, Clone)]
pub struct RunReport<T> {
    /// Per-rank results, indexed by rank.
    pub ranks: Vec<RankResult<T>>,
    /// The simulated wall-clock time of the whole program — the largest
    /// final virtual clock across ranks. This is the `time` of Eq. (1).
    pub makespan: VirtualTime,
    /// Sum of all per-rank traffic counters.
    pub totals: TrafficCounters,
    /// The merged event trace, when tracing was enabled.
    pub trace: Option<Trace>,
    /// Per-rank phase metrics (always collected), indexed by rank.
    pub metrics: Vec<MetricsRegistry>,
}

impl<T> RunReport<T> {
    /// Unwraps every rank's result, panicking on the first `CommError`.
    pub fn unwrap_results(self) -> Vec<T> {
        self.ranks
            .into_iter()
            .enumerate()
            .map(|(r, rr)| match rr.result {
                Ok(v) => v,
                Err(e) => panic!("rank {r} failed: {e}"),
            })
            .collect()
    }

    /// The result of rank 0 (where reductions root by convention).
    pub fn root_result(&self) -> &Result<T, CommError> {
        &self.ranks[0].result
    }

    /// Critical-path message count: the maximum number of messages sent by
    /// any single rank (a per-rank proxy used by tree-shape tests).
    pub fn max_msgs_per_rank(&self) -> u64 {
        self.ranks.iter().map(|r| r.stats.traffic.total_msgs()).max().unwrap_or(0)
    }

    /// Folds every rank's [`MetricsRegistry`] into one run-wide registry
    /// (phases in the order rank 0 first entered them, then any phases
    /// only other ranks saw).
    pub fn aggregate_metrics(&self) -> MetricsRegistry {
        let mut out = MetricsRegistry::default();
        for m in &self.metrics {
            out.merge(m);
        }
        out
    }
}

/// A simulated machine: topology + cost model + optional failure injection.
///
/// `run` launches one OS thread per rank and blocks until all rank programs
/// return. Rank counts used in this workspace (≤ 256) are comfortably
/// within OS thread limits.
pub struct Runtime {
    topo: Arc<GridTopology>,
    model: Arc<CostModel>,
    failed_links: HashSet<(usize, usize)>,
    recv_timeout: Duration,
    tracing: bool,
}

impl Runtime {
    /// Builds a runtime for the given grid.
    pub fn new(topo: GridTopology, model: CostModel) -> Self {
        let model = model.validated_for(&topo);
        Runtime {
            topo: Arc::new(topo),
            model: Arc::new(model),
            failed_links: HashSet::new(),
            recv_timeout: crate::process::DEFAULT_RECV_TIMEOUT,
            tracing: false,
        }
    }

    /// Records every send/receive/compute with its virtual-time span; the
    /// merged [`Trace`] is returned in the run report.
    pub fn enable_tracing(&mut self) -> &mut Self {
        self.tracing = true;
        self
    }

    /// Overrides the wall-clock deadlock timeout on receives (useful for
    /// failure-injection tests, where some rank is expected to starve).
    pub fn set_recv_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.recv_timeout = timeout;
        self
    }

    /// Injects a deterministic failure on the directed link `src → dst`:
    /// subsequent sends return [`CommError::LinkDown`].
    pub fn fail_link(&mut self, src: usize, dst: usize) -> &mut Self {
        self.failed_links.insert((src, dst));
        self
    }

    /// The topology this runtime simulates.
    pub fn topology(&self) -> &GridTopology {
        &self.topo
    }

    /// The cost model in force.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Runs `program` on every rank and gathers the report.
    ///
    /// The program receives the rank's [`Process`] handle and the *world*
    /// communicator spanning all ranks.
    pub fn run<T, F>(&self, program: F) -> RunReport<T>
    where
        T: Send,
        F: Fn(&mut Process, &Communicator) -> Result<T, CommError> + Sync,
    {
        let n = self.topo.num_procs();
        assert!(n > 0, "cannot run on an empty topology");
        let (senders, inboxes): (Vec<_>, Vec<_>) = (0..n).map(|_| unbounded::<Envelope>()).unzip();
        let failed = Arc::new(self.failed_links.clone());

        let mut rank_results: Vec<Option<RankResult<T>>> = (0..n).map(|_| None).collect();
        let mut rank_traces: Vec<Vec<crate::trace::Event>> = (0..n).map(|_| Vec::new()).collect();
        let mut rank_metrics: Vec<MetricsRegistry> = (0..n).map(|_| Default::default()).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, inbox) in inboxes.into_iter().enumerate() {
                let senders = senders.clone();
                let topo = Arc::clone(&self.topo);
                let model = Arc::clone(&self.model);
                let failed = Arc::clone(&failed);
                let program = &program;
                handles.push(scope.spawn(move || {
                    let mut proc = Process {
                        rank,
                        size: n,
                        topo,
                        model,
                        failed_links: failed,
                        senders,
                        inbox,
                        pending: VecDeque::new(),
                        clock: VirtualTime::ZERO,
                        nic_free: VirtualTime::ZERO,
                        counters: TrafficCounters::default(),
                        recv_timeout: self.recv_timeout,
                        recorder: self.tracing.then(Recorder::default),
                        phase_stack: Vec::new(),
                        metrics: MetricsRegistry::default(),
                    };
                    let world = Communicator::world(n);
                    let result = program(&mut proc, &world);
                    // Close any phases the program left open so phase
                    // spans are recorded even on early error returns.
                    while proc.current_phase().is_some() {
                        proc.phase_end();
                    }
                    let events = proc.recorder.take().map(|r| r.events).unwrap_or_default();
                    (
                        RankResult {
                            result,
                            stats: RankStats { clock: proc.clock, traffic: proc.counters },
                        },
                        events,
                        proc.metrics,
                    )
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((rr, events, metrics)) => {
                        rank_results[rank] = Some(rr);
                        rank_traces[rank] = events;
                        rank_metrics[rank] = metrics;
                    }
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });

        let ranks: Vec<RankResult<T>> =
            rank_results.into_iter().map(|r| r.expect("all ranks joined")).collect();
        let makespan =
            ranks.iter().map(|r| r.stats.clock).max().unwrap_or(VirtualTime::ZERO);
        let totals = ranks
            .iter()
            .fold(TrafficCounters::default(), |acc, r| acc.merge(&r.stats.traffic));
        let trace = self
            .tracing
            .then(|| Trace::from_parts(rank_traces.into_iter().flatten().collect()));
        RunReport { ranks, makespan, totals, trace, metrics: rank_metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsqr_netsim::{ClusterSpec, LinkParams};

    fn tiny_grid(clusters: usize, nodes: usize, ppn: usize) -> Runtime {
        let specs = (0..clusters)
            .map(|i| ClusterSpec {
                name: format!("c{i}"),
                nodes,
                procs_per_node: ppn,
                peak_gflops_per_proc: 8.0,
            })
            .collect();
        let topo = GridTopology::block_placement(specs, nodes, ppn);
        let mut model =
            CostModel::homogeneous(LinkParams::from_ms_mbps(1.0, 800.0), 1e9, clusters);
        // Make the hierarchy visible: cheap intra-node, expensive WAN.
        model.intra_node = LinkParams::from_ms_mbps(0.01, 5000.0);
        for a in 0..clusters {
            for b in 0..clusters {
                if a != b {
                    model.inter_cluster[a][b] = LinkParams::from_ms_mbps(10.0, 80.0);
                }
            }
        }
        Runtime::new(topo, model)
    }

    #[test]
    fn ping_pong_advances_both_clocks() {
        let rt = tiny_grid(1, 2, 1);
        let report = rt.run(|p, _| {
            if p.rank() == 0 {
                p.send(1, 7, 42.0f64)?;
                let x: f64 = p.recv(1, 8)?;
                Ok(x)
            } else {
                let x: f64 = p.recv(0, 7)?;
                p.send(0, 8, x * 2.0)?;
                Ok(x)
            }
        });
        let results = report.clone_results();
        assert_eq!(results, vec![84.0, 42.0]);
        // Two 8-byte messages at 1 ms latency each: makespan ≥ 2 ms.
        assert!(report.makespan.secs() >= 2e-3);
        assert_eq!(report.totals.total_msgs(), 2);
        assert_eq!(report.totals.total_bytes(), 16);
    }

    impl<T: Clone> RunReport<T> {
        fn clone_results(&self) -> Vec<T> {
            self.ranks.iter().map(|r| r.result.clone().unwrap()).collect()
        }
    }

    #[test]
    fn virtual_time_is_deterministic_across_runs() {
        let rt = tiny_grid(2, 2, 2);
        let run = || {
            rt.run(|p, _| {
                // Ring: send to the next rank, receive from the previous.
                let next = (p.rank() + 1) % p.size();
                let prev = (p.rank() + p.size() - 1) % p.size();
                p.compute(1_000_000 * (p.rank() as u64 + 1), None);
                p.send(next, 0, p.rank() as f64)?;
                let _x: f64 = p.recv(prev, 0)?;
                Ok(p.clock().secs())
            })
            .clone_results()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "virtual clocks must be schedule-independent");
    }

    #[test]
    fn counters_classify_link_classes() {
        let rt = tiny_grid(2, 2, 2); // ranks 0..4 on cluster 0, 4..8 on cluster 1
        let report = rt.run(|p, _| {
            match p.rank() {
                0 => {
                    p.send(1, 0, ())?; // same node (slots 0,1 of node 0)
                    p.send(2, 0, ())?; // same cluster, different node
                    p.send(4, 0, ())?; // other cluster
                }
                1 => {
                    let _: () = p.recv(0, 0)?;
                }
                2 => {
                    let _: () = p.recv(0, 0)?;
                }
                4 => {
                    let _: () = p.recv(0, 0)?;
                }
                _ => {}
            }
            Ok(())
        });
        let c0 = report.ranks[0].stats.traffic;
        assert_eq!(c0.msgs, [1, 1, 1]);
        assert_eq!(report.totals.inter_cluster_msgs(), 1);
    }

    #[test]
    fn compute_charges_gamma() {
        let rt = tiny_grid(1, 1, 2);
        let report = rt.run(|p, _| {
            p.compute(2_000_000_000, None); // 2 Gflop at 1 Gflop/s
            Ok(())
        });
        assert!((report.makespan.secs() - 2.0).abs() < 1e-9);
        assert_eq!(report.totals.flops, 4_000_000_000);
    }

    #[test]
    fn exchange_overlaps_transfers() {
        let rt = tiny_grid(1, 2, 1);
        let report = rt.run(|p, _| {
            let partner = 1 - p.rank();
            let got: f64 = p.exchange(partner, 3, p.rank() as f64)?;
            Ok(got)
        });
        assert_eq!(report.clone_results(), vec![1.0, 0.0]);
        // Full duplex: one exchange should cost ~one message time (1 ms),
        // not two.
        assert!(report.makespan.secs() < 1.5e-3, "makespan {}", report.makespan.secs());
    }

    #[test]
    fn failed_link_surfaces_error() {
        let mut rt = tiny_grid(1, 2, 1);
        rt.fail_link(0, 1);
        let report = rt.run(|p, _| {
            if p.rank() == 0 {
                p.send(1, 0, 1.0f64)?;
            } else if p.link_ok(0) {
                // Peer 0 will fail before sending; don't wait for it.
            }
            Ok(())
        });
        assert_eq!(
            report.ranks[0].result,
            Err(CommError::LinkDown { src: 0, dst: 1 })
        );
        assert!(report.ranks[1].result.is_ok());
    }

    #[test]
    fn out_of_order_sources_are_buffered() {
        let rt = tiny_grid(1, 3, 1);
        let report = rt.run(|p, _| match p.rank() {
            0 => {
                // Receive from 2 first even though 1's message may arrive
                // earlier on the real channel.
                let a: f64 = p.recv(2, 0)?;
                let b: f64 = p.recv(1, 0)?;
                Ok(a * 10.0 + b)
            }
            r => {
                p.send(0, 0, r as f64)?;
                Ok(0.0)
            }
        });
        assert_eq!(report.ranks[0].result, Ok(21.0));
    }

    #[test]
    fn tracing_records_every_action_with_spans() {
        use crate::trace::EventKind;
        let mut rt = tiny_grid(1, 2, 1);
        rt.enable_tracing();
        let report = rt.run(|p, _| {
            if p.rank() == 0 {
                p.compute(1_000_000, None);
                p.send(1, 0, vec![1.0f64; 8])?;
            } else {
                let _: Vec<f64> = p.recv(0, 0)?;
            }
            Ok(())
        });
        let trace = report.trace.expect("tracing enabled");
        let kinds: Vec<_> = trace.events.iter().map(|e| &e.kind).collect();
        assert_eq!(trace.len(), 3, "compute + send + recv");
        assert!(matches!(kinds[0], EventKind::Compute { flops: 1_000_000 }));
        assert!(trace.events.iter().all(|e| e.end >= e.start));
        // The send's span covers latency + 64 bytes of bandwidth.
        let send = trace
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Send { .. }))
            .unwrap();
        assert!((send.end - send.start).secs() >= 1e-3);
        // Disabled by default.
        let rt2 = tiny_grid(1, 2, 1);
        let report2 = rt2.run(|p, _| {
            let _ = p.rank();
            Ok(())
        });
        assert!(report2.trace.is_none());
    }

    #[test]
    fn metrics_are_always_on_and_phase_bucketed() {
        let rt = tiny_grid(1, 2, 1);
        let report = rt.run(|p, _| {
            p.with_phase("work", |p| {
                p.compute(1_000_000, None);
                if p.rank() == 0 {
                    p.send(1, 0, 1.0f64)?;
                } else {
                    let _: f64 = p.recv(0, 0)?;
                }
                Ok(())
            })?;
            // Unphased tail work.
            p.compute(2_000_000, None);
            Ok(())
        });
        assert_eq!(report.metrics.len(), 2);
        let work = report.metrics[0].phase("work").expect("phase recorded");
        assert_eq!(work.flops, 1_000_000);
        assert_eq!(work.total_msgs(), 1);
        assert!(work.send_s.iter().sum::<f64>() > 0.0);
        let wait = report.metrics[1].phase("work").unwrap().recv_wait_s;
        assert!(wait > 0.0, "rank 1 blocked on the message");
        let agg = report.aggregate_metrics();
        assert_eq!(agg.phase("work").unwrap().flops, 2_000_000);
        assert_eq!(
            agg.phase(crate::metrics::UNPHASED).unwrap().flops,
            4_000_000
        );
        // Ranks 0 and 1 sit on different nodes of one cluster: bucket 1.
        assert_eq!(agg.msg_bytes(1).count(), 1);
    }

    #[test]
    fn phases_are_traced_and_auto_closed() {
        use crate::trace::EventKind;
        let mut rt = tiny_grid(1, 2, 1);
        rt.enable_tracing();
        let report = rt.run(|p, _| {
            p.phase_begin("outer");
            p.compute(1_000_000, None);
            p.phase_begin("inner");
            p.compute(1_000_000, None);
            // Both phases deliberately left open: the runtime closes them.
            Ok(())
        });
        let trace = report.trace.unwrap();
        let phases: Vec<_> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Phase { name } => Some((e.rank, name, e.phase)),
                _ => None,
            })
            .collect();
        // Each of the two ranks records inner (stamped with outer) + outer.
        assert_eq!(phases.len(), 4);
        assert!(phases.contains(&(0, "inner", Some("outer"))));
        assert!(phases.contains(&(0, "outer", None)));
        // The compute inside "inner" is stamped with the innermost phase.
        let inner_compute = trace
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Compute { .. }) && e.phase == Some("inner"))
            .expect("inner compute stamped");
        assert!(inner_compute.end > inner_compute.start);
    }

    #[test]
    fn critical_path_total_equals_makespan() {
        let mut rt = tiny_grid(2, 2, 2);
        rt.enable_tracing();
        let report = rt.run(|p, _| {
            // A little pipeline with cross-cluster traffic: 0 → 4 → 7.
            match p.rank() {
                0 => {
                    p.compute(5_000_000, None);
                    p.send(4, 0, vec![1.0f64; 64])?;
                }
                4 => {
                    let v: Vec<f64> = p.recv(0, 0)?;
                    p.compute(2_000_000, None);
                    p.send(7, 1, v)?;
                }
                7 => {
                    let _: Vec<f64> = p.recv(4, 1)?;
                    p.compute(1_000_000, None);
                }
                _ => p.compute(500_000, None),
            }
            Ok(())
        });
        let trace = report.trace.unwrap();
        let path = trace.critical_path();
        assert!(
            (path.total().secs() - report.makespan.secs()).abs() < 1e-9,
            "critical path {} != makespan {}",
            path.total().secs(),
            report.makespan.secs()
        );
        let su = path.summary();
        assert!(su.messages >= 2, "both pipeline hops sit on the path");
        assert!(su.wan_messages >= 1, "the 0→4 hop crosses clusters");
        assert!(su.compute_s > 0.0);
        // Chrome export of the same trace is well-formed and includes
        // flow arrows for the matched messages.
        let json = trace.chrome_json();
        assert!(json.matches("\"ph\":\"s\"").count() >= 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn exchange_trace_critical_path_still_tiles_makespan() {
        let mut rt = tiny_grid(1, 2, 1);
        rt.enable_tracing();
        let report = rt.run(|p, _| {
            let partner = 1 - p.rank();
            let _: f64 = p.exchange(partner, 3, p.rank() as f64)?;
            p.compute(1_000_000, None);
            Ok(())
        });
        let trace = report.trace.unwrap();
        let path = trace.critical_path();
        assert!((path.total().secs() - report.makespan.secs()).abs() < 1e-9);
    }

    #[test]
    fn tag_mismatch_is_detected() {
        let rt = tiny_grid(1, 2, 1);
        let report = rt.run(|p, _| {
            if p.rank() == 0 {
                p.send(1, 5, ())?;
                Ok(())
            } else {
                let r: Result<(), CommError> = p.recv(0, 6);
                match r {
                    Err(CommError::TagMismatch { expected: 6, got: 5 }) => Ok(()),
                    other => panic!("expected tag mismatch, got {other:?}"),
                }
            }
        });
        assert!(report.ranks.iter().all(|r| r.result.is_ok()));
    }
}
