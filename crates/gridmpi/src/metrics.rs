//! A typed metrics registry: per-rank, per-phase counters and histograms.
//!
//! Every [`crate::Process`] carries a [`MetricsRegistry`] that is updated
//! on each `send`/`recv`/`compute`, bucketed by the algorithm phase the
//! rank program declared via [`crate::Process::phase_begin`] /
//! [`crate::Process::phase_end`] (work outside any phase lands in
//! [`UNPHASED`]). Unlike tracing — which records every event and is
//! opt-in — metrics are cheap aggregates and always on. The runtime
//! returns one registry per rank in [`crate::RunReport::metrics`];
//! [`crate::RunReport::aggregate_metrics`] folds them into one.
//!
//! The schema is documented in `docs/observability.md`. In short, a
//! [`PhaseCounters`] is the paper's Eq. (1) ledger for one phase —
//! messages and bytes per link class (the `β` and `α` terms), flops (the
//! `γ` term) — plus the virtual seconds actually spent sending,
//! computing, and blocked in receives.

use std::fmt::Write as _;

use tsqr_netsim::LinkClass;

/// Phase label used for work recorded outside any open phase.
pub const UNPHASED: &str = "(unphased)";

/// Number of link-class buckets (mirrors [`LinkClass::N_BUCKETS`]).
const B: usize = LinkClass::N_BUCKETS;

/// A log2-bucketed histogram of `u64` samples (message sizes, flop
/// counts). Bucket `i` holds values whose bit length is `i`, i.e.
/// `v == 0 → 0`, `v ∈ [2^(i-1), 2^i) → i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0.0 ≤ q ≤ 1.0`): the top of
    /// the first bucket at which the cumulative count reaches
    /// `q · count`, capped at the largest recorded sample so the bound
    /// never exceeds a value that was actually seen. Exact to within the
    /// log2 bucket width; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Top of bucket i (0 for bucket 0, else 2^i - 1), but
                // never above the recorded max.
                let top = if i == 0 { 0 } else { ((1u128 << i) - 1) as u64 };
                return top.min(self.max);
            }
        }
        self.max
    }

    /// Element-wise sum of two histograms.
    pub fn merge(&mut self, other: &Histogram) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Eq. (1) ledger for one phase: message/byte/flop counts plus the
/// virtual seconds they took.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseCounters {
    /// Messages sent, per link-class bucket (see [`LinkClass::bucket`]).
    pub msgs: [u64; B],
    /// Payload bytes sent, per link-class bucket.
    pub bytes: [u64; B],
    /// Flops charged.
    pub flops: u64,
    /// Virtual seconds spent in blocking sends, per link-class bucket.
    pub send_s: [f64; B],
    /// Virtual seconds spent in [`crate::Process::compute`] (and
    /// [`crate::Process::advance`]).
    pub compute_s: f64,
    /// Virtual seconds the rank's clock was blocked waiting in receives
    /// — idle time, in the sense of the paper's timeline figures.
    pub recv_wait_s: f64,
}

impl PhaseCounters {
    /// Total messages across link classes.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total bytes across link classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Messages that crossed a wide-area link.
    pub fn wan_msgs(&self) -> u64 {
        self.msgs[B - 1]
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &PhaseCounters) {
        for i in 0..B {
            self.msgs[i] += other.msgs[i];
            self.bytes[i] += other.bytes[i];
            self.send_s[i] += other.send_s[i];
        }
        self.flops += other.flops;
        self.compute_s += other.compute_s;
        self.recv_wait_s += other.recv_wait_s;
    }
}

/// Per-phase counters plus per-link-class message-size histograms for
/// one rank (or, after merging, a whole run).
///
/// Phases keep insertion order, so a merged registry lists phases in the
/// order rank programs first entered them.
///
/// ```
/// use tsqr_gridmpi::metrics::MetricsRegistry;
/// use tsqr_netsim::LinkClass;
///
/// let mut m = MetricsRegistry::default();
/// m.record_compute(Some("leaf-qr"), 1_000, 0.5);
/// m.record_send(Some("tree-reduce"), LinkClass::InterCluster(0, 1), 120, 0.02);
/// m.record_recv(None, LinkClass::IntraNode, 120, 0.01);
///
/// assert_eq!(m.phase("leaf-qr").unwrap().flops, 1_000);
/// assert_eq!(m.phase("tree-reduce").unwrap().wan_msgs(), 1);
/// let total = m.total();
/// assert_eq!(total.total_bytes(), 120);       // only sends count bytes
/// assert!((total.recv_wait_s - 0.01).abs() < 1e-12);
/// assert_eq!(m.msg_bytes(LinkClass::InterCluster(0, 1).bucket()).count(), 1);
/// assert!(m.render().contains("tree-reduce"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// `(phase, counters)` in first-entered order. Small (a handful of
    /// phases), so lookups are linear scans.
    phases: Vec<(&'static str, PhaseCounters)>,
    /// Sent-message payload sizes, one histogram per link-class bucket.
    msg_bytes: [Histogram; B],
}

impl MetricsRegistry {
    /// The counters of `phase`, if any work was recorded under it.
    pub fn phase(&self, phase: &str) -> Option<&PhaseCounters> {
        self.phases.iter().find(|(p, _)| *p == phase).map(|(_, c)| c)
    }

    /// Mutable counters of `phase`, created on first touch.
    pub fn phase_mut(&mut self, phase: &'static str) -> &mut PhaseCounters {
        if let Some(i) = self.phases.iter().position(|(p, _)| *p == phase) {
            &mut self.phases[i].1
        } else {
            self.phases.push((phase, PhaseCounters::default()));
            &mut self.phases.last_mut().expect("just pushed").1
        }
    }

    /// Phases in first-entered order.
    pub fn phase_names(&self) -> Vec<&'static str> {
        self.phases.iter().map(|(p, _)| *p).collect()
    }

    /// The sent-message size histogram of one link-class bucket.
    pub fn msg_bytes(&self, bucket: usize) -> &Histogram {
        &self.msg_bytes[bucket]
    }

    /// Sum of all phase counters.
    pub fn total(&self) -> PhaseCounters {
        let mut out = PhaseCounters::default();
        for (_, c) in &self.phases {
            out.merge(c);
        }
        out
    }

    /// Records a send of `bytes` over `class` that took `secs`.
    pub fn record_send(
        &mut self,
        phase: Option<&'static str>,
        class: LinkClass,
        bytes: u64,
        secs: f64,
    ) {
        let b = class.bucket();
        let c = self.phase_mut(phase.unwrap_or(UNPHASED));
        c.msgs[b] += 1;
        c.bytes[b] += bytes;
        c.send_s[b] += secs;
        self.msg_bytes[b].record(bytes);
    }

    /// Records a receive over `class` that blocked the clock for `secs`.
    /// (`bytes` is accepted for symmetry; received volume equals sent
    /// volume, so only sends count toward byte totals.)
    pub fn record_recv(
        &mut self,
        phase: Option<&'static str>,
        class: LinkClass,
        bytes: u64,
        secs: f64,
    ) {
        let _ = (class, bytes);
        self.phase_mut(phase.unwrap_or(UNPHASED)).recv_wait_s += secs;
    }

    /// Records a computation of `flops` that took `secs`.
    pub fn record_compute(&mut self, phase: Option<&'static str>, flops: u64, secs: f64) {
        let c = self.phase_mut(phase.unwrap_or(UNPHASED));
        c.flops += flops;
        c.compute_s += secs;
    }

    /// Element-wise sum of two registries. Phases absent from `self`
    /// are appended in `other`'s order.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (p, c) in &other.phases {
            self.phase_mut(p).merge(c);
        }
        for i in 0..B {
            self.msg_bytes[i].merge(&other.msg_bytes[i]);
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Renders a per-phase table: one row per phase, message/byte/flop
    /// counts per link class, and the time split.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>18} {:>20} {:>14} {:>10} {:>10} {:>10}",
            "phase", "msgs n/c/w", "bytes n/c/w", "flops", "send s", "comp s", "wait s"
        );
        let mut rows: Vec<(&str, PhaseCounters)> =
            self.phases.iter().map(|(p, c)| (*p, *c)).collect();
        rows.push(("TOTAL", self.total()));
        for (p, c) in rows {
            let _ = writeln!(
                out,
                "{:<16} {:>18} {:>20} {:>14} {:>10.4} {:>10.4} {:>10.4}",
                p,
                format!("{}/{}/{}", c.msgs[0], c.msgs[1], c.msgs[2]),
                format!("{}/{}/{}", c.bytes[0], c.bytes[1], c.bytes[2]),
                c.flops,
                c.send_s.iter().sum::<f64>(),
                c.compute_s,
                c.recv_wait_s,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1041);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        assert!((h.mean() - 1041.0 / 6.0).abs() < 1e-12);
        // Median of [0,1,1,7,8,1024] lands in the bucket of 1 (bit len 1).
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(1.0), 1024); // bucket top 2047, capped at max
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn quantile_never_exceeds_recorded_max() {
        let mut h = Histogram::default();
        h.record(1000); // bucket top is 1023
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert!(h.quantile(q) <= 1000, "q={q} gave {}", h.quantile(q));
        }
        assert_eq!(h.quantile(1.0), 1000);
        // Empty histogram: every quantile is 0, no panic.
        let e = Histogram::default();
        assert_eq!(e.quantile(0.5), 0);
        assert_eq!(e.quantile(1.0), 0);
    }

    #[test]
    fn merge_preserves_min_max_across_empty_operands() {
        // empty.merge(non-empty) adopts the operand's min/max.
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        b.record(5);
        b.record(90);
        a.merge(&b);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 90);
        // non-empty.merge(empty) keeps its own min/max (the empty
        // sentinel min must not leak through, nor clobber max).
        let mut c = Histogram::default();
        c.record(7);
        c.merge(&Histogram::default());
        assert_eq!(c.min(), 7);
        assert_eq!(c.max(), 7);
        assert_eq!(c.count(), 1);
        // empty.merge(empty) stays empty-benign.
        let mut d = Histogram::default();
        d.merge(&Histogram::default());
        assert_eq!(d.min(), 0);
        assert_eq!(d.max(), 0);
        assert_eq!(d.count(), 0);
        assert_eq!(d.quantile(0.9), 0);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.9), 0);
    }

    #[test]
    fn histogram_merge_matches_combined_stream() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for v in [3u64, 300, 70_000] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 9] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn registry_buckets_by_phase_and_class() {
        let mut m = MetricsRegistry::default();
        m.record_send(Some("panel"), LinkClass::IntraNode, 100, 0.001);
        m.record_send(Some("panel"), LinkClass::InterCluster(0, 2), 200, 0.010);
        m.record_compute(Some("update"), 5_000, 0.5);
        m.record_recv(None, LinkClass::IntraCluster, 100, 0.002);

        assert_eq!(m.phase_names(), vec!["panel", "update", UNPHASED]);
        let panel = m.phase("panel").unwrap();
        assert_eq!(panel.msgs, [1, 0, 1]);
        assert_eq!(panel.bytes, [100, 0, 200]);
        assert_eq!(panel.wan_msgs(), 1);
        assert_eq!(m.phase("update").unwrap().flops, 5_000);
        assert!((m.phase(UNPHASED).unwrap().recv_wait_s - 0.002).abs() < 1e-12);
        assert_eq!(m.msg_bytes(0).count(), 1);
        assert_eq!(m.msg_bytes(2).sum(), 200);

        let t = m.total();
        assert_eq!(t.total_msgs(), 2);
        assert_eq!(t.total_bytes(), 300);
        assert_eq!(t.flops, 5_000);
    }

    #[test]
    fn registry_merge_is_elementwise() {
        let mut a = MetricsRegistry::default();
        a.record_send(Some("panel"), LinkClass::IntraNode, 10, 0.1);
        let mut b = MetricsRegistry::default();
        b.record_send(Some("panel"), LinkClass::IntraNode, 30, 0.2);
        b.record_compute(Some("update"), 7, 0.3);
        a.merge(&b);
        let p = a.phase("panel").unwrap();
        assert_eq!(p.msgs[0], 2);
        assert_eq!(p.bytes[0], 40);
        assert!((p.send_s[0] - 0.3).abs() < 1e-12);
        assert_eq!(a.phase("update").unwrap().flops, 7);
        assert_eq!(a.msg_bytes(0).count(), 2);
    }

    #[test]
    fn render_lists_every_phase_and_total() {
        let mut m = MetricsRegistry::default();
        m.record_compute(Some("leaf-qr"), 42, 0.1);
        m.record_send(Some("tree-reduce"), LinkClass::IntraCluster, 8, 0.01);
        let s = m.render();
        assert!(s.contains("leaf-qr"));
        assert!(s.contains("tree-reduce"));
        assert!(s.contains("TOTAL"));
        assert_eq!(s.lines().count(), 1 + 2 + 1); // header + phases + total
    }
}
