//! Event tracing: a per-rank record of every send, receive, compute and
//! phase with its virtual-time span, plus a text timeline renderer.
//!
//! Tracing is how the paper's communication diagrams (Figs. 1–2) become
//! inspectable for *any* run: enable it with
//! [`crate::Runtime::enable_tracing`], run the program, and render the
//! merged timeline (or feed the raw events to your own tooling). Events
//! carry virtual timestamps, so traces are exactly reproducible.
//!
//! The full schema (field semantics, matching rules, Chrome-trace
//! mapping) is documented in `docs/observability.md` at the repository
//! root. Two derived views live in sibling modules:
//!
//! * [`crate::chrome`] exports a trace as Chrome-trace / Perfetto JSON;
//! * [`crate::critical`] extracts the critical path through the
//!   happens-before DAG.

use std::fmt::Write as _;

use tsqr_netsim::{LinkClass, VirtualTime};

/// One traced action on a rank.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A message was sent.
    Send {
        /// Destination rank.
        to: usize,
        /// Payload size.
        bytes: u64,
        /// Link class it travelled on.
        class: LinkClass,
        /// Program-level protocol tag.
        tag: u32,
    },
    /// A message was received (opened). The span covers the receiver's
    /// blocked wait: zero-length when the message was already there.
    Recv {
        /// Source rank.
        from: usize,
        /// Payload size.
        bytes: u64,
        /// Link class it travelled on.
        class: LinkClass,
        /// Program-level protocol tag.
        tag: u32,
        /// True when the receive was a wildcard ([`crate::Process::recv_any`]):
        /// the source was *not* named by the program, so which sender
        /// matched depended on delivery order. The happens-before
        /// analyzer ([`crate::hb`]) treats only these as race candidates.
        wildcard: bool,
    },
    /// Local computation was charged.
    Compute {
        /// Flops charged.
        flops: u64,
    },
    /// A completed algorithm phase (recorded when the phase is closed;
    /// the span covers everything between [`crate::Process::phase_begin`]
    /// and [`crate::Process::phase_end`]). Phase spans *overlap* the
    /// ordinary events they enclose — analyses that walk the
    /// happens-before DAG must skip them.
    Phase {
        /// The phase label.
        name: &'static str,
    },
    /// A failure-schedule observation (see `docs/fault-injection.md`):
    /// a failure-detector wait, a dropped transmission, or a degraded
    /// send. Receiver-side kinds span the failure-induced wait;
    /// [`FaultKind::LinkDegraded`] is a zero-width marker.
    Fault {
        /// The peer rank involved (the dead rank, the other end of the
        /// dropped transmission, or the destination of the degraded
        /// send).
        peer: usize,
        /// Link class between this rank and `peer`.
        class: LinkClass,
        /// What was observed.
        kind: FaultKind,
    },
}

/// What a [`EventKind::Fault`] event observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The failure detector declared `peer` crashed; the span covers the
    /// receiver's failure-induced wait (from wait start to the
    /// virtual-time detection deadline).
    RankFailed,
    /// `peer`'s rank program aborted with an error; span as above.
    PeerAborted,
    /// A transmission to `peer` was dropped in transit (sender side);
    /// the span covers the wasted transmission plus retransmission
    /// backoff.
    DropSent,
    /// A dropped transmission from `peer` was observed (receiver side);
    /// the span covers the wait up to the would-be arrival.
    DropObserved,
    /// A send to `peer` was priced through an active degradation window
    /// (zero-width marker at send start).
    LinkDegraded,
    /// The **wall-clock** receive safety net fired while waiting for
    /// `peer` — the simulator suspects a deadlock (zero-width marker at
    /// the wait's start; virtual time never advances for wall-clock
    /// events). The happens-before analyzer ([`crate::hb`]) builds its
    /// wait-for graph from these markers: a cycle among them is a
    /// deadlock cycle.
    DeadlockSuspect,
}

impl FaultKind {
    /// True for the receiver-side kinds whose span is a *wait* (these
    /// feed the `failure-induced` wait-state class of
    /// [`crate::diagnose`] and are mirrored into the metrics registry's
    /// `recv_wait_s`).
    pub fn is_wait(self) -> bool {
        matches!(
            self,
            FaultKind::RankFailed | FaultKind::PeerAborted | FaultKind::DropObserved
        )
    }

    /// Short stable label for renders and trace exports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::RankFailed => "rank-failed",
            FaultKind::PeerAborted => "peer-aborted",
            FaultKind::DropSent => "drop-sent",
            FaultKind::DropObserved => "drop-observed",
            FaultKind::LinkDegraded => "link-degraded",
            FaultKind::DeadlockSuspect => "deadlock-suspect",
        }
    }
}

impl EventKind {
    /// True for [`EventKind::Phase`] markers (which overlap other events
    /// and are skipped by DAG analyses).
    pub fn is_phase(&self) -> bool {
        matches!(self, EventKind::Phase { .. })
    }
}

/// A traced event: what happened, where, over which virtual span, and
/// under which algorithm phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The rank the event happened on.
    pub rank: usize,
    /// Virtual time when the action started.
    pub start: VirtualTime,
    /// Virtual time when the action completed.
    pub end: VirtualTime,
    /// The innermost open phase at record time, if any.
    pub phase: Option<&'static str>,
    /// The action.
    pub kind: EventKind,
}

/// A matched send/receive pair: indices into [`Trace::events`].
///
/// Matching is by per-`(src, dst)` FIFO order, which is exact for this
/// runtime: channels preserve per-source order and the receive buffer
/// replays pending messages in arrival order, so the `k`-th send from
/// `src` to `dst` is opened by the `k`-th receive at `dst` from `src`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageMatch {
    /// Index of the [`EventKind::Send`] event.
    pub send: usize,
    /// Index of the [`EventKind::Recv`] event.
    pub recv: usize,
}

/// A complete trace: every rank's events, merged and time-ordered.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All events, sorted by `(start, rank)`; ties keep per-rank program
    /// order (the sort is stable and each rank's events are appended in
    /// program order).
    pub events: Vec<Event>,
}

impl Trace {
    pub(crate) fn from_parts(mut events: Vec<Event>) -> Self {
        events.sort_by(|a, b| a.start.cmp(&b.start).then(a.rank.cmp(&b.rank)));
        Trace { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one rank, in time order.
    pub fn rank_events(&self, rank: usize) -> Vec<&Event> {
        self.events.iter().filter(|e| e.rank == rank).collect()
    }

    /// The largest event end time — equals the run's makespan when every
    /// rank's last action was traced.
    pub fn makespan(&self) -> VirtualTime {
        self.events.iter().map(|e| e.end).max().unwrap_or(VirtualTime::ZERO)
    }

    /// Fault events only (failure-detector waits, drops, degradations),
    /// in trace order — the run's failure history. Two replays of the
    /// same (program, schedule, seed) produce identical failure
    /// histories; the replay-determinism proptest diffs exactly this.
    pub fn fault_events(&self) -> Vec<&Event> {
        self.events.iter().filter(|e| matches!(e.kind, EventKind::Fault { .. })).collect()
    }

    /// Inter-cluster send events only — the WAN bill, itemized.
    pub fn wan_sends(&self) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| {
                matches!(e.kind, EventKind::Send { class, .. } if class.is_inter_cluster())
            })
            .collect()
    }

    /// Pairs every send with the receive that opened it (per-`(src, dst)`
    /// FIFO matching — see [`MessageMatch`]). Unmatched events (e.g. a
    /// send whose receiver errored out before opening it) are simply
    /// absent from the result.
    pub fn match_messages(&self) -> Vec<MessageMatch> {
        use std::collections::BTreeMap;
        // Two passes (a receive's *wait* can begin before its message's
        // send even starts, so a single time-ordered scan would miss
        // pairs): collect per-(src, dst) send and recv indices — scan
        // order preserves each rank's program order — then zip k-th
        // with k-th. BTreeMap (not HashMap) so the iteration below is
        // deterministic — the `commlint` hashmap-iter rule enforces this
        // for every function on a result path.
        let mut sends: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        let mut recvs: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            match e.kind {
                EventKind::Send { to, .. } => sends.entry((e.rank, to)).or_default().push(i),
                EventKind::Recv { from, .. } => recvs.entry((from, e.rank)).or_default().push(i),
                _ => {}
            }
        }
        let mut out: Vec<MessageMatch> = sends
            .iter()
            .flat_map(|(key, ss)| {
                let rs = recvs.get(key).map(Vec::as_slice).unwrap_or(&[]);
                ss.iter().zip(rs).map(|(&send, &recv)| MessageMatch { send, recv })
            })
            .collect();
        out.sort_by_key(|m| m.send);
        out
    }

    /// Renders a compact text timeline: one line per event,
    /// `[start..end] rank action`, microsecond precision.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let span = format!("[{:>12.6}s ..{:>12.6}s]", e.start.secs(), e.end.secs());
            let what = match &e.kind {
                EventKind::Send { to, bytes, class, .. } => {
                    format!("send -> {to:<4} {bytes:>10} B  [{}]", class.label())
                }
                EventKind::Recv { from, bytes, class, .. } => {
                    format!("recv <- {from:<4} {bytes:>10} B  [{}]", class.label())
                }
                EventKind::Compute { flops } => format!("compute {flops:>14} flops"),
                EventKind::Phase { name } => format!("phase   {name}"),
                EventKind::Fault { peer, class, kind } => {
                    format!("fault   {:<13} peer {peer:<4} [{}]", kind.label(), class.label())
                }
            };
            let phase = e.phase.map(|p| format!("  @{p}")).unwrap_or_default();
            let _ = writeln!(out, "{span} rank {:<4} {what}{phase}", e.rank);
        }
        out
    }

    /// A per-rank utilization summary: fraction of the makespan spent in
    /// traced compute.
    pub fn compute_utilization(&self, num_ranks: usize) -> Vec<f64> {
        let makespan = self.makespan().secs().max(f64::MIN_POSITIVE);
        let mut busy = vec![0.0; num_ranks];
        for e in &self.events {
            if matches!(e.kind, EventKind::Compute { .. }) && e.rank < num_ranks {
                busy[e.rank] += (e.end - e.start).secs();
            }
        }
        busy.iter().map(|b| b / makespan).collect()
    }
}

/// Per-rank event collector (crate-internal; installed by the runtime).
#[derive(Debug, Default)]
pub(crate) struct Recorder {
    pub events: Vec<Event>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: usize, s: f64, e: f64, kind: EventKind) -> Event {
        Event {
            rank,
            start: VirtualTime::from_secs(s),
            end: VirtualTime::from_secs(e),
            phase: None,
            kind,
        }
    }

    fn send(to: usize, bytes: u64) -> EventKind {
        EventKind::Send { to, bytes, class: LinkClass::IntraCluster, tag: 0 }
    }

    fn recv(from: usize, bytes: u64) -> EventKind {
        EventKind::Recv { from, bytes, class: LinkClass::IntraCluster, tag: 0, wildcard: false }
    }

    #[test]
    fn merge_sorts_by_time_then_rank() {
        let t = Trace::from_parts(vec![
            ev(1, 2.0, 3.0, EventKind::Compute { flops: 5 }),
            ev(0, 1.0, 2.0, EventKind::Compute { flops: 1 }),
            ev(2, 1.0, 1.5, EventKind::Compute { flops: 2 }),
        ]);
        let starts: Vec<(f64, usize)> =
            t.events.iter().map(|e| (e.start.secs(), e.rank)).collect();
        assert_eq!(starts, vec![(1.0, 0), (1.0, 2), (2.0, 1)]);
        assert_eq!(t.makespan().secs(), 3.0);
    }

    #[test]
    fn wan_filter() {
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, EventKind::Send { to: 1, bytes: 8, class: LinkClass::IntraNode, tag: 0 }),
            ev(
                0,
                1.0,
                2.0,
                EventKind::Send { to: 5, bytes: 8, class: LinkClass::InterCluster(0, 1), tag: 0 },
            ),
        ]);
        assert_eq!(t.wan_sends().len(), 1);
    }

    #[test]
    fn render_contains_all_lines() {
        let mut phased = ev(1, 0.5, 0.6, recv(0, 64));
        phased.phase = Some("tree-reduce");
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 0.5, EventKind::Compute { flops: 42 }),
            phased,
            ev(1, 0.0, 0.6, EventKind::Phase { name: "tree-reduce" }),
        ]);
        let text = t.render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("compute"));
        assert!(text.contains("recv <- 0"));
        assert!(text.contains("@tree-reduce"));
        assert!(text.contains("phase   tree-reduce"));
    }

    #[test]
    fn utilization_fractions() {
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, EventKind::Compute { flops: 1 }),
            ev(1, 0.0, 2.0, EventKind::Compute { flops: 1 }),
        ]);
        let u = t.compute_utilization(2);
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn message_matching_is_fifo_per_pair() {
        // Rank 0 sends twice to rank 1; rank 2 also sends to rank 1.
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, send(1, 8)),
            ev(2, 0.0, 1.0, send(1, 16)),
            ev(0, 1.0, 2.0, send(1, 24)),
            ev(1, 0.0, 1.0, recv(0, 8)),
            ev(1, 1.0, 1.5, recv(2, 16)),
            ev(1, 1.5, 2.0, recv(0, 24)),
        ]);
        let m = t.match_messages();
        assert_eq!(m.len(), 3);
        for pair in &m {
            let (s, r) = (&t.events[pair.send], &t.events[pair.recv]);
            match (&s.kind, &r.kind) {
                (EventKind::Send { to, bytes: sb, .. }, EventKind::Recv { from, bytes: rb, .. }) => {
                    assert_eq!(*to, r.rank);
                    assert_eq!(*from, s.rank);
                    assert_eq!(sb, rb, "FIFO matching pairs equal payloads here");
                }
                _ => panic!("matched pair must be send/recv"),
            }
        }
    }

    #[test]
    fn unmatched_sends_are_skipped() {
        let t = Trace::from_parts(vec![ev(0, 0.0, 1.0, send(1, 8))]);
        assert!(t.match_messages().is_empty());
    }
}
