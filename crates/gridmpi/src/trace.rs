//! Event tracing: a per-rank record of every send, receive and compute
//! with its virtual-time span, plus a text timeline renderer.
//!
//! Tracing is how the paper's communication diagrams (Figs. 1–2) become
//! inspectable for *any* run: enable it with
//! [`crate::Runtime::enable_tracing`], run the program, and render the
//! merged timeline (or feed the raw events to your own tooling).
//! Events carry virtual timestamps, so traces are exactly reproducible.

use std::fmt::Write as _;

use tsqr_netsim::{LinkClass, VirtualTime};

/// One traced action on a rank.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A message was sent.
    Send {
        /// Destination rank.
        to: usize,
        /// Payload size.
        bytes: u64,
        /// Link class it travelled on.
        class: LinkClass,
    },
    /// A message was received (opened).
    Recv {
        /// Source rank.
        from: usize,
        /// Payload size.
        bytes: u64,
    },
    /// Local computation was charged.
    Compute {
        /// Flops charged.
        flops: u64,
    },
}

/// A traced event: what happened, where, and over which virtual span.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The rank the event happened on.
    pub rank: usize,
    /// Virtual time when the action started.
    pub start: VirtualTime,
    /// Virtual time when the action completed.
    pub end: VirtualTime,
    /// The action.
    pub kind: EventKind,
}

/// A complete trace: every rank's events, merged and time-ordered.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All events, sorted by `(start, rank)`.
    pub events: Vec<Event>,
}

impl Trace {
    pub(crate) fn from_parts(mut events: Vec<Event>) -> Self {
        events.sort_by(|a, b| a.start.cmp(&b.start).then(a.rank.cmp(&b.rank)));
        Trace { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one rank, in time order.
    pub fn rank_events(&self, rank: usize) -> Vec<&Event> {
        self.events.iter().filter(|e| e.rank == rank).collect()
    }

    /// Inter-cluster send events only — the WAN bill, itemized.
    pub fn wan_sends(&self) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| {
                matches!(e.kind, EventKind::Send { class, .. } if class.is_inter_cluster())
            })
            .collect()
    }

    /// Renders a compact text timeline: one line per event,
    /// `[start..end] rank action`, microsecond precision.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let span = format!("[{:>12.6}s ..{:>12.6}s]", e.start.secs(), e.end.secs());
            let what = match &e.kind {
                EventKind::Send { to, bytes, class } => {
                    let c = match class {
                        LinkClass::IntraNode => "node",
                        LinkClass::IntraCluster => "clus",
                        LinkClass::InterCluster(_, _) => "WAN ",
                    };
                    format!("send -> {to:<4} {bytes:>10} B  [{c}]")
                }
                EventKind::Recv { from, bytes } => {
                    format!("recv <- {from:<4} {bytes:>10} B")
                }
                EventKind::Compute { flops } => format!("compute {flops:>14} flops"),
            };
            let _ = writeln!(out, "{span} rank {:<4} {what}", e.rank);
        }
        out
    }

    /// A per-rank utilization summary: fraction of the makespan spent in
    /// traced compute.
    pub fn compute_utilization(&self, num_ranks: usize) -> Vec<f64> {
        let makespan = self
            .events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(VirtualTime::ZERO)
            .secs()
            .max(f64::MIN_POSITIVE);
        let mut busy = vec![0.0; num_ranks];
        for e in &self.events {
            if matches!(e.kind, EventKind::Compute { .. }) && e.rank < num_ranks {
                busy[e.rank] += (e.end - e.start).secs();
            }
        }
        busy.iter().map(|b| b / makespan).collect()
    }
}

/// Per-rank event collector (crate-internal; installed by the runtime).
#[derive(Debug, Default)]
pub(crate) struct Recorder {
    pub events: Vec<Event>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: usize, s: f64, e: f64, kind: EventKind) -> Event {
        Event {
            rank,
            start: VirtualTime::from_secs(s),
            end: VirtualTime::from_secs(e),
            kind,
        }
    }

    #[test]
    fn merge_sorts_by_time_then_rank() {
        let t = Trace::from_parts(vec![
            ev(1, 2.0, 3.0, EventKind::Compute { flops: 5 }),
            ev(0, 1.0, 2.0, EventKind::Compute { flops: 1 }),
            ev(2, 1.0, 1.5, EventKind::Compute { flops: 2 }),
        ]);
        let starts: Vec<(f64, usize)> =
            t.events.iter().map(|e| (e.start.secs(), e.rank)).collect();
        assert_eq!(starts, vec![(1.0, 0), (1.0, 2), (2.0, 1)]);
    }

    #[test]
    fn wan_filter() {
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, EventKind::Send { to: 1, bytes: 8, class: LinkClass::IntraNode }),
            ev(
                0,
                1.0,
                2.0,
                EventKind::Send { to: 5, bytes: 8, class: LinkClass::InterCluster(0, 1) },
            ),
        ]);
        assert_eq!(t.wan_sends().len(), 1);
    }

    #[test]
    fn render_contains_all_lines() {
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 0.5, EventKind::Compute { flops: 42 }),
            ev(1, 0.5, 0.6, EventKind::Recv { from: 0, bytes: 64 }),
        ]);
        let text = t.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("compute"));
        assert!(text.contains("recv <- 0"));
    }

    #[test]
    fn utilization_fractions() {
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, EventKind::Compute { flops: 1 }),
            ev(1, 0.0, 2.0, EventKind::Compute { flops: 1 }),
        ]);
        let u = t.compute_utilization(2);
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[1] - 1.0).abs() < 1e-12);
    }
}
