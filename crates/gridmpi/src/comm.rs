//! Communicators and tree collectives.
//!
//! A [`Communicator`] is an ordered set of global ranks — MPI's process
//! group abstraction. `split_by` builds sub-communicators from a color
//! function of the global rank, which is how the QCG-OMPI group identifiers
//! of §III turn into per-cluster communicators (`MPI_Comm_split`).
//!
//! Collectives use the classical binomial/recursive-doubling algorithms, so
//! their critical-path message counts are the `log₂(P)` terms of the
//! paper's Tables I–II:
//!
//! * `bcast` / `reduce`: binomial tree, `log₂(P)` rounds;
//! * `allreduce`: recursive doubling (butterfly), `log₂(P)` full-duplex
//!   exchange rounds — the operation `PDGEQR2` performs twice per column;
//! * `gather` / `allgather`: binomial gather (+ broadcast);
//! * `barrier`: an allreduce of the empty payload.

use crate::error::CommError;
use crate::message::WirePayload;
use crate::process::Process;

/// Reserved tag space for collective operations.
const TAG_BCAST: u32 = 0xFFFF_0001;
const TAG_REDUCE: u32 = 0xFFFF_0002;
const TAG_ALLREDUCE: u32 = 0xFFFF_0003;
const TAG_GATHER: u32 = 0xFFFF_0004;
const TAG_SCATTER: u32 = 0xFFFF_0005;
const TAG_ALLTOALL: u32 = 0xFFFF_0006;

/// An ordered group of global ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Communicator {
    members: Vec<usize>,
}

impl Communicator {
    /// The world communicator over ranks `0..n`.
    pub fn world(n: usize) -> Self {
        Communicator { members: (0..n).collect() }
    }

    /// A communicator over an explicit, ordered member list.
    pub fn from_members(members: Vec<usize>) -> Self {
        assert!(!members.is_empty(), "empty communicator");
        Communicator { members }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Global rank of member `idx`.
    pub fn member(&self, idx: usize) -> usize {
        self.members[idx]
    }

    /// The ordered member list.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Index of a global rank within this communicator, if present.
    pub fn index_of(&self, global_rank: usize) -> Option<usize> {
        self.members.iter().position(|&r| r == global_rank)
    }

    /// True when the global rank belongs to this communicator.
    pub fn contains(&self, global_rank: usize) -> bool {
        self.index_of(global_rank).is_some()
    }

    /// The caller's index within this communicator.
    ///
    /// Panics if the calling process is not a member — calling a collective
    /// on a communicator one does not belong to is a protocol bug.
    pub fn my_index(&self, p: &Process) -> usize {
        self.index_of(p.rank())
            .unwrap_or_else(|| panic!("rank {} is not in this communicator", p.rank()))
    }

    /// Splits into the sub-communicator of members sharing the caller's
    /// color, ordered by `(key, global rank)` — `MPI_Comm_split` with a
    /// *pure* color function.
    ///
    /// Unlike real MPI no message exchange is needed: in the QCG model the
    /// group structure comes from the JobProfile, which every process
    /// already knows (§III), so colors are a function of the global rank.
    pub fn split_by<C, K>(&self, p: &Process, color: C, key: K) -> Communicator
    where
        C: Fn(usize) -> u64,
        K: Fn(usize) -> u64,
    {
        let my_color = color(p.rank());
        let mut members: Vec<usize> =
            self.members.iter().copied().filter(|&r| color(r) == my_color).collect();
        members.sort_by_key(|&r| (key(r), r));
        Communicator::from_members(members)
    }

    /// Broadcast from member `root_idx`: the root passes `Some(value)`,
    /// everyone receives the value.
    pub fn bcast<M>(&self, p: &mut Process, root_idx: usize, value: Option<M>) -> Result<M, CommError>
    where
        M: WirePayload + Clone,
    {
        let size = self.size();
        assert!(root_idx < size, "bcast root out of range");
        let me = self.my_index(p);
        let rel = (me + size - root_idx) % size;
        let mut val: Option<M> = if rel == 0 {
            Some(value.expect("bcast root must supply a value"))
        } else {
            None
        };
        // Receive phase: find the bit where the parent lives.
        let mut mask = 1usize;
        while mask < size {
            if rel & mask != 0 {
                let parent_rel = rel - mask;
                let parent = self.members[(parent_rel + root_idx) % size];
                val = Some(p.recv::<M>(parent, TAG_BCAST)?);
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children below the found bit.
        let mut send_mask = mask >> 1;
        let v = val.expect("bcast value must be set after receive phase");
        while send_mask > 0 {
            let child_rel = rel + send_mask;
            if rel & send_mask == 0 && child_rel < size {
                let child = self.members[(child_rel + root_idx) % size];
                p.send(child, TAG_BCAST, v.clone())?;
            }
            send_mask >>= 1;
        }
        Ok(v)
    }

    /// Binomial-tree reduction to member `root_idx`. Returns `Some(result)`
    /// at the root, `None` elsewhere.
    ///
    /// `op` must be associative; the reduction order is
    /// `op(lower-index, higher-index)`, so non-commutative operators still
    /// produce deterministic results.
    pub fn reduce<M, F>(
        &self,
        p: &mut Process,
        root_idx: usize,
        value: M,
        op: F,
    ) -> Result<Option<M>, CommError>
    where
        M: WirePayload,
        F: Fn(M, M) -> M,
    {
        let size = self.size();
        assert!(root_idx < size, "reduce root out of range");
        let me = self.my_index(p);
        let rel = (me + size - root_idx) % size;
        let mut val = value;
        let mut mask = 1usize;
        while mask < size {
            if rel & mask == 0 {
                let src_rel = rel | mask;
                if src_rel < size {
                    let src = self.members[(src_rel + root_idx) % size];
                    let other = p.recv::<M>(src, TAG_REDUCE)?;
                    val = op(val, other);
                }
            } else {
                let dst_rel = rel & !mask;
                let dst = self.members[(dst_rel + root_idx) % size];
                p.send(dst, TAG_REDUCE, val)?;
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(val))
    }

    /// Recursive-doubling all-reduce: every member gets the reduction.
    ///
    /// On `P = 2^k` members this is `log₂(P)` full-duplex exchange rounds —
    /// the message count the paper charges per `PDGEQR2` column reduction.
    /// Non-powers-of-two use the standard fold-in/fold-out fixup.
    pub fn allreduce<M, F>(&self, p: &mut Process, value: M, op: F) -> Result<M, CommError>
    where
        M: WirePayload + Clone,
        F: Fn(M, M) -> M,
    {
        let size = self.size();
        let me = self.my_index(p);
        let pof2 = size.next_power_of_two() / if size.is_power_of_two() { 1 } else { 2 };
        let rem = size - pof2;
        let mut val = value;

        // Fold the first 2·rem members down to rem participants.
        let newidx: Option<usize> = if me < 2 * rem {
            if me.is_multiple_of(2) {
                p.send(self.members[me + 1], TAG_ALLREDUCE, val.clone())?;
                None
            } else {
                let other = p.recv::<M>(self.members[me - 1], TAG_ALLREDUCE)?;
                val = op(other, val);
                Some(me / 2)
            }
        } else {
            Some(me - rem)
        };

        if let Some(newidx) = newidx {
            let mut mask = 1usize;
            while mask < pof2 {
                let partner_new = newidx ^ mask;
                let partner = if partner_new < rem {
                    self.members[partner_new * 2 + 1]
                } else {
                    self.members[partner_new + rem]
                };
                let got = p.exchange(partner, TAG_ALLREDUCE, val.clone())?;
                val = if partner_new < newidx { op(got, val) } else { op(val, got) };
                mask <<= 1;
            }
        }

        // Unfold: odd members of the folded prefix push the result back.
        if me < 2 * rem {
            if !me.is_multiple_of(2) {
                p.send(self.members[me - 1], TAG_ALLREDUCE, val.clone())?;
            } else {
                val = p.recv::<M>(self.members[me + 1], TAG_ALLREDUCE)?;
            }
        }
        Ok(val)
    }

    /// Binomial-tree gather to member `root_idx`: the root receives every
    /// member's value in member order, others get `None`.
    pub fn gather<M>(
        &self,
        p: &mut Process,
        root_idx: usize,
        value: M,
    ) -> Result<Option<Vec<M>>, CommError>
    where
        M: WirePayload,
    {
        let size = self.size();
        assert!(root_idx < size, "gather root out of range");
        let me = self.my_index(p);
        let rel = (me + size - root_idx) % size;
        let mut collected: Vec<(usize, M)> = vec![(me, value)];
        let mut mask = 1usize;
        while mask < size {
            if rel & mask == 0 {
                let src_rel = rel | mask;
                if src_rel < size {
                    let src = self.members[(src_rel + root_idx) % size];
                    let mut batch = p.recv::<Vec<(usize, M)>>(src, TAG_GATHER)?;
                    collected.append(&mut batch);
                }
            } else {
                let dst_rel = rel & !mask;
                let dst = self.members[(dst_rel + root_idx) % size];
                p.send(dst, TAG_GATHER, collected)?;
                return Ok(None);
            }
            mask <<= 1;
        }
        collected.sort_by_key(|(idx, _)| *idx);
        Ok(Some(collected.into_iter().map(|(_, v)| v).collect()))
    }

    /// Gather to member 0, then broadcast: every member gets all values in
    /// member order.
    pub fn allgather<M>(&self, p: &mut Process, value: M) -> Result<Vec<M>, CommError>
    where
        M: WirePayload + Clone,
    {
        let gathered = self.gather(p, 0, value)?;
        self.bcast(p, 0, gathered)
    }

    /// Binomial-tree scatter from member `root_idx`: the root supplies one
    /// value per member (in member order) and each member receives its own.
    ///
    /// Values travel in halving batches down the binomial tree, so the
    /// root sends `log₂(P)` messages (not `P − 1`).
    pub fn scatter<M>(
        &self,
        p: &mut Process,
        root_idx: usize,
        values: Option<Vec<M>>,
    ) -> Result<M, CommError>
    where
        M: WirePayload,
    {
        let size = self.size();
        assert!(root_idx < size, "scatter root out of range");
        let me = self.my_index(p);
        let rel = (me + size - root_idx) % size;
        // Each node holds the batch destined for relative ranks
        // [rel, rel + span): initially the root holds everything.
        let mut batch: Vec<(usize, M)> = if rel == 0 {
            let values = values.expect("scatter root must supply the values");
            assert_eq!(values.len(), size, "scatter needs one value per member");
            // Label each value with the *relative* rank of its recipient —
            // the tree routes in relative space.
            values
                .into_iter()
                .enumerate()
                .map(|(i, v)| ((i + size - root_idx) % size, v))
                .collect()
        } else {
            // Receive phase: the parent is below the lowest set bit.
            let mut mask = 1usize;
            loop {
                assert!(mask < size, "scatter protocol error");
                if rel & mask != 0 {
                    let parent_rel = rel - mask;
                    let parent = self.members[(parent_rel + root_idx) % size];
                    break p.recv::<Vec<(usize, M)>>(parent, TAG_SCATTER)?;
                }
                mask <<= 1;
            }
        };
        // Send phase: forward the upper halves to children.
        let mut mask = 1usize;
        while mask < size {
            if rel & mask != 0 {
                break;
            }
            mask <<= 1;
        }
        let mut send_mask = mask >> 1;
        while send_mask > 0 {
            let child_rel = rel + send_mask;
            if rel & send_mask == 0 && child_rel < size {
                let child = self.members[(child_rel + root_idx) % size];
                let to_child: Vec<(usize, M)> = {
                    let split: Vec<usize> = batch
                        .iter()
                        .enumerate()
                        .filter(|(_, (r, _))| *r >= child_rel)
                        .map(|(i, _)| i)
                        .collect();
                    let mut out = Vec::with_capacity(split.len());
                    for i in split.into_iter().rev() {
                        out.push(batch.remove(i));
                    }
                    out.reverse();
                    out
                };
                p.send(child, TAG_SCATTER, to_child)?;
            }
            send_mask >>= 1;
        }
        debug_assert_eq!(batch.len(), 1, "exactly our own value remains");
        let (r, v) = batch.pop().expect("own value present");
        debug_assert_eq!(r, rel);
        Ok(v)
    }

    /// Personalized all-to-all: member `i` supplies one value per member;
    /// every member receives the values addressed to it, in member order.
    ///
    /// Pairwise-exchange algorithm: `P − 1` rounds, partner `me ^ round`
    /// when P is a power of two, ring otherwise.
    pub fn alltoall<M>(&self, p: &mut Process, values: Vec<M>) -> Result<Vec<M>, CommError>
    where
        M: WirePayload,
    {
        let size = self.size();
        assert_eq!(values.len(), size, "alltoall needs one value per member");
        let me = self.my_index(p);
        let mut slots: Vec<Option<M>> = values.into_iter().map(Some).collect();
        let mut out: Vec<Option<M>> = (0..size).map(|_| None).collect();
        out[me] = slots[me].take();
        for round in 1..size {
            // XOR pairing when possible (symmetric exchange); otherwise a
            // ring: send ahead by `round`, receive from behind by `round`.
            let (to, from) = if size.is_power_of_two() {
                (me ^ round, me ^ round)
            } else {
                ((me + round) % size, (me + size - round) % size)
            };
            let mine = slots[to].take().expect("each slot sent once");
            p.send(self.members[to], TAG_ALLTOALL, mine)?;
            out[from] = Some(p.recv::<M>(self.members[from], TAG_ALLTOALL)?);
        }
        Ok(out.into_iter().map(|v| v.expect("all slots filled")).collect())
    }

    /// Reduce-scatter: element-wise reduction of per-member value lists,
    /// member `i` keeping the i-th result. Implemented as reduce + scatter
    /// (the latency-optimal butterfly is overkill for our payload sizes).
    pub fn reduce_scatter<M, F>(
        &self,
        p: &mut Process,
        values: Vec<M>,
        op: F,
    ) -> Result<M, CommError>
    where
        M: WirePayload + Clone,
        F: Fn(M, M) -> M,
    {
        let size = self.size();
        assert_eq!(values.len(), size, "reduce_scatter needs one value per member");
        let reduced = self.reduce(p, 0, values, |a, b| {
            a.into_iter().zip(b).map(|(x, y)| op(x, y)).collect()
        })?;
        self.scatter(p, 0, reduced)
    }

    /// Synchronizes all members (an allreduce of the empty payload): no
    /// member's clock can leave the barrier before every member entered it.
    pub fn barrier(&self, p: &mut Process) -> Result<(), CommError> {
        if self.size() == 1 {
            return Ok(());
        }
        self.allreduce(p, (), |_, _| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use tsqr_netsim::{ClusterSpec, CostModel, GridTopology, LinkParams};

    fn runtime(n: usize) -> Runtime {
        let topo = GridTopology::block_placement(
            vec![ClusterSpec {
                name: "c".into(),
                nodes: n,
                procs_per_node: 1,
                peak_gflops_per_proc: 8.0,
            }],
            n,
            1,
        );
        Runtime::new(topo, CostModel::homogeneous(LinkParams::from_ms_mbps(1.0, 800.0), 1e9, 1))
    }

    #[test]
    fn bcast_delivers_to_all_from_any_root() {
        for n in [1, 2, 3, 5, 8] {
            for root in [0, n - 1, n / 2] {
                let rt = runtime(n);
                let report = rt.run(|p, world| {
                    let v = if world.my_index(p) == root { Some(42.0f64) } else { None };
                    world.bcast(p, root, v)
                });
                for r in &report.ranks {
                    assert_eq!(*r.result.as_ref().unwrap(), 42.0);
                }
            }
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for n in [1, 2, 4, 6, 7, 16] {
            let rt = runtime(n);
            let report = rt.run(|p, world| {
                let me = world.my_index(p) as f64;
                world.reduce(p, 0, me, |a, b| a + b)
            });
            let want = (n * (n - 1) / 2) as f64;
            assert_eq!(report.ranks[0].result.clone().unwrap(), Some(want));
            for r in &report.ranks[1..] {
                assert_eq!(r.result.clone().unwrap(), None);
            }
        }
    }

    #[test]
    fn allreduce_sum_everywhere() {
        for n in [1, 2, 3, 4, 5, 8, 13, 16] {
            let rt = runtime(n);
            let report = rt.run(|p, world| {
                let me = world.my_index(p) as f64;
                world.allreduce(p, me, |a, b| a + b)
            });
            let want = (n * (n - 1) / 2) as f64;
            for (rank, r) in report.ranks.iter().enumerate() {
                assert_eq!(r.result.clone().unwrap(), want, "rank {rank} of {n}");
            }
        }
    }

    #[test]
    fn allreduce_vector_payload() {
        let rt = runtime(4);
        let report = rt.run(|p, world| {
            let me = world.my_index(p) as f64;
            world.allreduce(p, vec![me, 2.0 * me], |a, b| {
                a.iter().zip(&b).map(|(x, y)| x + y).collect()
            })
        });
        for r in &report.ranks {
            assert_eq!(r.result.clone().unwrap(), vec![6.0, 12.0]);
        }
    }

    #[test]
    fn allreduce_message_count_is_log2_for_power_of_two() {
        let n = 16;
        let rt = runtime(n);
        let report = rt.run(|p, world| {
            let me = world.my_index(p) as f64;
            world.allreduce(p, me, |a, b| a + b)?;
            Ok(p.counters().total_msgs())
        });
        for r in &report.ranks {
            assert_eq!(r.result.clone().unwrap(), 4, "each rank sends log2(16) msgs");
        }
    }

    #[test]
    fn gather_collects_in_member_order() {
        for n in [1, 2, 5, 8] {
            let rt = runtime(n);
            let report = rt.run(|p, world| {
                let me = world.my_index(p) as f64;
                world.gather(p, 0, me * 10.0)
            });
            let want: Vec<f64> = (0..n).map(|i| i as f64 * 10.0).collect();
            assert_eq!(report.ranks[0].result.clone().unwrap(), Some(want));
        }
    }

    #[test]
    fn allgather_everywhere() {
        let rt = runtime(6);
        let report = rt.run(|p, world| {
            let me = world.my_index(p);
            world.allgather(p, me as u64)
        });
        let want: Vec<u64> = (0..6).collect();
        for r in &report.ranks {
            assert_eq!(r.result.clone().unwrap(), want);
        }
    }

    #[test]
    fn split_by_groups_and_collectives_within_groups() {
        // 8 ranks, two colors (even/odd); sum within each group.
        let rt = runtime(8);
        let report = rt.run(|p, world| {
            let group = world.split_by(p, |r| (r % 2) as u64, |r| r as u64);
            assert_eq!(group.size(), 4);
            let me = p.rank() as f64;
            group.allreduce(p, me, |a, b| a + b)
        });
        for (rank, r) in report.ranks.iter().enumerate() {
            let want = if rank % 2 == 0 { 0.0 + 2.0 + 4.0 + 6.0 } else { 1.0 + 3.0 + 5.0 + 7.0 };
            assert_eq!(r.result.clone().unwrap(), want);
        }
    }

    #[test]
    fn barrier_aligns_clocks() {
        let rt = runtime(4);
        let report = rt.run(|p, world| {
            // Rank 3 does heavy work before the barrier.
            if p.rank() == 3 {
                p.compute(5_000_000_000, None); // 5 s at 1 Gflop/s
            }
            world.barrier(p)?;
            Ok(p.clock().secs())
        });
        for r in &report.ranks {
            let t = r.result.clone().unwrap();
            assert!(t >= 5.0, "no rank may leave the barrier before the slowest entered");
        }
    }

    #[test]
    fn reduce_is_deterministic_for_noncommutative_op() {
        // String-like concatenation encoded as f64 digit streams is
        // overkill; use (sum, first-index) pairs where order matters.
        let rt = runtime(8);
        let run = || {
            rt.run(|p, world| {
                let me = world.my_index(p) as f64;
                world.reduce(p, 0, vec![me], |mut a, b| {
                    a.extend(b);
                    a
                })
            })
            .ranks[0]
                .result
                .clone()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "reduction order must be schedule-independent");
    }

    #[test]
    fn scatter_delivers_each_members_value() {
        for n in [1usize, 2, 3, 5, 8, 13] {
            for root in [0, n - 1] {
                let rt = runtime(n);
                let report = rt.run(|p, world| {
                    let me = world.my_index(p);
                    let vals = (me == root)
                        .then(|| (0..n).map(|i| (i * 100) as f64).collect::<Vec<_>>());
                    world.scatter(p, root, vals)
                });
                for (rank, r) in report.ranks.iter().enumerate() {
                    assert_eq!(r.result.clone().unwrap(), (rank * 100) as f64, "n={n}");
                }
            }
        }
    }

    #[test]
    fn scatter_root_sends_log_p_messages() {
        let n = 16;
        let rt = runtime(n);
        let report = rt.run(|p, world| {
            let vals = (p.rank() == 0).then(|| vec![1.0f64; n]);
            world.scatter(p, 0, vals)?;
            Ok(p.counters().total_msgs())
        });
        assert_eq!(report.ranks[0].result.clone().unwrap(), 4, "root sends log2(16)");
    }

    #[test]
    fn alltoall_transposes_the_value_matrix() {
        for n in [1usize, 2, 4, 5, 8] {
            let rt = runtime(n);
            let report = rt.run(|p, world| {
                let me = world.my_index(p);
                // value[j] = me*10 + j
                let vals: Vec<f64> = (0..n).map(|j| (me * 10 + j) as f64).collect();
                world.alltoall(p, vals)
            });
            for (rank, r) in report.ranks.iter().enumerate() {
                let got = r.result.clone().unwrap();
                let want: Vec<f64> = (0..n).map(|src| (src * 10 + rank) as f64).collect();
                assert_eq!(got, want, "n={n}, rank={rank}");
            }
        }
    }

    #[test]
    fn reduce_scatter_gives_each_member_its_sum() {
        let n = 6;
        let rt = runtime(n);
        let report = rt.run(|p, world| {
            let me = world.my_index(p);
            let vals: Vec<f64> = (0..n).map(|j| (me + j) as f64).collect();
            world.reduce_scatter(p, vals, |a, b| a + b)
        });
        for (rank, r) in report.ranks.iter().enumerate() {
            // sum over members of (member + rank) = n*rank + n(n-1)/2
            let want = (n * rank + n * (n - 1) / 2) as f64;
            assert_eq!(r.result.clone().unwrap(), want);
        }
    }

    #[test]
    #[should_panic(expected = "not in this communicator")]
    fn collective_on_foreign_comm_panics() {
        let rt = runtime(2);
        rt.run(|p, _| {
            let other = Communicator::from_members(vec![1 - p.rank()]);
            let _ = other.my_index(p);
            Ok(())
        });
    }
}
