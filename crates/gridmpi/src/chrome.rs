//! Chrome-trace (Perfetto) JSON export of a [`Trace`].
//!
//! The output is the ["JSON Array Format" with metadata][spec] accepted by
//! `chrome://tracing` and <https://ui.perfetto.dev>: load the file and
//! every rank appears as a pair of tracks in one process, with arrows
//! (flow events) from each send to the receive that opened it.
//!
//! [spec]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Track layout (documented in `docs/observability.md`):
//!
//! * `tid = 2·rank` (named `rank R`) carries the rank's own work —
//!   `compute` and `send` slices. These never overlap.
//! * `tid = 2·rank + 1` (named `rank R waits`) carries `recv` slices
//!   (blocked waits) and the enclosing `phase` slices. A phase span
//!   always contains the receives recorded under it, so the track nests
//!   cleanly. Receives sit on their own track because
//!   [`crate::Process::exchange`] overlaps a receive with its own send.
//! * Virtual seconds map to Chrome's microsecond `ts`/`dur` fields, so
//!   the UI's time axis reads directly in simulated time.
//! * One flow arrow (`ph: "s"` → `ph: "f"`, `bp: "e"`) per matched
//!   message, anchored at the send's end and the receive's end.

use std::fmt::Write as _;

use crate::trace::{Event, EventKind, Trace};

/// Serializes `trace` as a Chrome-trace JSON object
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
///
/// Deterministic: events are emitted in trace order (sorted by
/// `(start, rank)`), so equal traces serialize byte-identically.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&s);
    };

    // Process + thread metadata first, so the UI labels tracks even for
    // ranks whose events start late.
    let num_ranks = trace.events.iter().map(|e| e.rank + 1).max().unwrap_or(0);
    push(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"grid-tsqr simulation\"}}".to_string(),
        &mut out,
        &mut first,
    );
    for r in 0..num_ranks {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"rank {r}\"}}}}",
                2 * r
            ),
            &mut out,
            &mut first,
        );
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"rank {r} waits\"}}}}",
                2 * r + 1
            ),
            &mut out,
            &mut first,
        );
    }

    // Duration slices.
    for e in &trace.events {
        push(slice_json(e), &mut out, &mut first);
    }

    // Flow arrows for matched messages.
    for (id, m) in trace.match_messages().iter().enumerate() {
        let s = &trace.events[m.send];
        let r = &trace.events[m.recv];
        push(
            format!(
                "{{\"ph\":\"s\",\"pid\":0,\"tid\":{},\"ts\":{},\"id\":{id},\"name\":\"msg\",\"cat\":\"flow\"}}",
                2 * s.rank,
                micros(s.end.secs())
            ),
            &mut out,
            &mut first,
        );
        push(
            format!(
                "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":{},\"ts\":{},\"id\":{id},\"name\":\"msg\",\"cat\":\"flow\"}}",
                2 * r.rank + 1,
                micros(r.end.secs())
            ),
            &mut out,
            &mut first,
        );
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

impl Trace {
    /// Chrome-trace JSON of this trace — see [`chrome_trace_json`].
    pub fn chrome_json(&self) -> String {
        chrome_trace_json(self)
    }
}

/// One `ph: "X"` duration slice.
fn slice_json(e: &Event) -> String {
    let ts = micros(e.start.secs());
    let dur = micros((e.end - e.start).secs());
    let (tid, name, cat, args) = match &e.kind {
        // `tag`/`wildcard` are deliberately *not* serialized: the Chrome
        // schema (docs/observability.md, pinned by tests/golden/)
        // predates them and the analyzer reads the trace directly.
        EventKind::Send { to, bytes, class, .. } => (
            2 * e.rank,
            format!("send\u{2192}{to}"),
            class.label().to_string(),
            format!("\"bytes\":{bytes},\"to\":{to}"),
        ),
        EventKind::Recv { from, bytes, class, .. } => (
            2 * e.rank + 1,
            format!("recv\u{2190}{from}"),
            class.label().to_string(),
            format!("\"bytes\":{bytes},\"from\":{from}"),
        ),
        EventKind::Compute { flops } => (
            2 * e.rank,
            "compute".to_string(),
            "compute".to_string(),
            format!("\"flops\":{flops}"),
        ),
        EventKind::Phase { name } => (
            2 * e.rank + 1,
            (*name).to_string(),
            "phase".to_string(),
            String::new(),
        ),
        // Failure events: waits (detector deadlines, ghost arrivals) go
        // on the wait track; sender-side drops and degradation markers
        // on the work track. All share the "fault" category so Perfetto
        // can color them.
        EventKind::Fault { peer, class, kind } => (
            if kind.is_wait() { 2 * e.rank + 1 } else { 2 * e.rank },
            format!("fault:{}\u{2194}{peer}", kind.label()),
            "fault".to_string(),
            format!("\"peer\":{peer},\"kind\":{},\"link\":{}",
                json_string(kind.label()),
                json_string(class.label())),
        ),
    };
    let mut args = args;
    if let Some(p) = e.phase {
        if !args.is_empty() {
            args.push(',');
        }
        let _ = write!(args, "\"phase\":{}", json_string(p));
    }
    format!(
        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"name\":{},\"cat\":{},\"args\":{{{args}}}}}",
        json_string(&name),
        json_string(&cat),
    )
}

/// Virtual seconds → Chrome microseconds, with nanosecond precision and
/// no scientific notation (Chrome's JSON parser dislikes exponents in
/// `ts`).
fn micros(secs: f64) -> String {
    let mut s = format!("{:.3}", secs * 1e6);
    // Trim trailing zeros (and a bare trailing dot) for compactness.
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Event;
    use tsqr_netsim::{LinkClass, VirtualTime};

    fn ev(rank: usize, s: f64, e: f64, kind: EventKind) -> Event {
        Event {
            rank,
            start: VirtualTime::from_secs(s),
            end: VirtualTime::from_secs(e),
            phase: None,
            kind,
        }
    }

    #[test]
    fn micros_formatting() {
        assert_eq!(micros(0.0), "0");
        assert_eq!(micros(1.0), "1000000");
        assert_eq!(micros(0.0000015), "1.5");
        assert_eq!(micros(12.3456789), "12345678.9");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn export_is_valid_shape_and_has_flows() {
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 0.5, EventKind::Compute { flops: 10 }),
            ev(0, 0.5, 1.0, EventKind::Send { to: 1, bytes: 8, class: LinkClass::IntraNode, tag: 0 }),
            ev(
                1,
                0.0,
                1.0,
                EventKind::Recv {
                    from: 0,
                    bytes: 8,
                    class: LinkClass::IntraNode,
                    tag: 0,
                    wildcard: false,
                },
            ),
        ]);
        let json = t.chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
        // One s/f flow pair for the single matched message.
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
        // Thread metadata for both tracks of both ranks.
        assert_eq!(json.matches("thread_name").count(), 4);
        // Balanced braces (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Recv sits on the odd track.
        assert!(json.contains("\"tid\":3,\"ts\":0,\"dur\":1000000"));
    }

    #[test]
    fn export_is_deterministic() {
        let t = Trace::from_parts(vec![ev(0, 0.0, 0.5, EventKind::Compute { flops: 1 })]);
        assert_eq!(t.chrome_json(), t.chrome_json());
    }
}
