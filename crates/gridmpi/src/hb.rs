//! Happens-before analysis: vector clocks, receive races, deadlock
//! cycles and virtual-clock monotonicity — `commcheck`'s dynamic half.
//!
//! The paper's claims (Properties 1–5, Figs. 4–8) assume every rank
//! program is a *deterministic* function of the Eq. (1) cost model: the
//! same (program, topology, schedule) must reproduce the same R factor,
//! makespan and metrics bit-for-bit. That only holds when no observable
//! value depends on message *delivery order* — i.e. when the trace's
//! happens-before (HB) partial order uniquely determines every match
//! between a send and the receive that opened it.
//!
//! This module checks that, post hoc, from a [`Trace`]:
//!
//! * **Receive races** — a wildcard receive ([`crate::Process::recv_any`])
//!   whose matched sender is not uniquely determined by the HB order:
//!   some *rival* send to the same rank with the same tag was concurrent
//!   with the receive, so a different delivery order could have matched
//!   it instead. Named receives cannot race by construction (they name
//!   their source and channels are FIFO per source), so only wildcard
//!   receives are candidates.
//! * **Deadlock cycles** — cycles in the wait-for graph built from
//!   [`FaultKind::DeadlockSuspect`] markers (the wall-clock receive
//!   safety net firing), plus structural cycles in the HB DAG itself
//!   (impossible in a trace of a completed run, but checkable for
//!   synthetic or corrupted traces).
//! * **Orphans** — sends never opened by a receive, and receives with no
//!   matching send.
//! * **Monotonicity violations** — virtual-clock regressions along HB
//!   edges: an event ending before it starts, a matched receive ending
//!   before its send, or a rank's later event ending before an earlier
//!   event started. All comparisons are exact (no epsilon): the runtime
//!   computes `max(clock, arrival)`, so equality is the boundary case
//!   and anything below it is a bug.
//!
//! The analysis is documented in `docs/static-analysis.md` and surfaced
//! by `grid-tsqr check`; the schedule explorer ([`mod@crate::explore`])
//! re-runs programs under permuted delivery orders and uses this report
//! to *prove* schedule independence for small configurations.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

use crate::trace::{EventKind, FaultKind, Trace};

/// A Mattern/Fidge vector clock: one logical counter per rank.
///
/// The component-wise partial order is exactly happens-before:
/// `a < b` iff the event stamped `a` causally precedes the event stamped
/// `b`; incomparable clocks mean concurrent events.
#[derive(Debug, Clone, Default)]
pub struct VectorClock(Vec<u64>);

impl PartialEq for VectorClock {
    /// Width-insensitive equality (missing components read as 0), so
    /// `eq` is exactly `partial_cmp == Some(Equal)`.
    fn eq(&self, other: &VectorClock) -> bool {
        let n = self.0.len().max(other.0.len());
        (0..n).all(|i| self.get(i) == other.get(i))
    }
}

impl Eq for VectorClock {}

impl VectorClock {
    /// The zero clock over `n` ranks.
    pub fn new(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    /// Number of ranks this clock covers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the clock covers zero ranks.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The counter of `rank` (0 beyond the clock's width).
    pub fn get(&self, rank: usize) -> u64 {
        self.0.get(rank).copied().unwrap_or(0)
    }

    /// Advances this rank's own counter by one (called once per local
    /// event).
    pub fn tick(&mut self, rank: usize) {
        if rank >= self.0.len() {
            self.0.resize(rank + 1, 0);
        }
        self.0[rank] += 1;
    }

    /// Component-wise maximum with `other` (called on message receipt,
    /// *before* the receive's own tick).
    pub fn merge(&mut self, other: &VectorClock) {
        if other.0.len() > self.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if v > self.0[i] {
                self.0[i] = v;
            }
        }
    }

    /// The raw counters.
    pub fn as_slice(&self) -> &[u64] {
        &self.0
    }

    /// True when the event stamped `self` happens-before the event
    /// stamped `other` (strictly: `self ≤ other` component-wise and
    /// `self ≠ other`).
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.partial_cmp(other) == Some(Ordering::Less)
    }

    /// True when neither clock happens-before the other: the two events
    /// are concurrent.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self != other && self.partial_cmp(other).is_none()
    }
}

impl From<Vec<u64>> for VectorClock {
    /// Wraps raw counters (e.g. the snapshot an envelope carried).
    fn from(v: Vec<u64>) -> Self {
        VectorClock(v)
    }
}

impl PartialOrd for VectorClock {
    /// Component-wise order: `Less`/`Greater` when one clock dominates,
    /// `Equal` when identical, `None` when concurrent.
    fn partial_cmp(&self, other: &VectorClock) -> Option<Ordering> {
        let n = self.0.len().max(other.0.len());
        let (mut le, mut ge) = (true, true);
        for i in 0..n {
            let (a, b) = (self.get(i), other.get(i));
            if a < b {
                ge = false;
            }
            if a > b {
                le = false;
            }
        }
        match (le, ge) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

/// A wildcard receive whose matched sender is not forced by the HB order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiveRace {
    /// Index (into [`Trace::events`]) of the racing wildcard receive.
    pub recv_event: usize,
    /// The receiving rank.
    pub rank: usize,
    /// The protocol tag both candidates carried.
    pub tag: u32,
    /// The sender the receive actually matched in this run.
    pub matched_src: usize,
    /// A rival sender whose message could equally have matched.
    pub rival_src: usize,
    /// Index of the rival send event.
    pub rival_event: usize,
}

/// A virtual-clock regression along a happens-before edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An event whose span ends before it starts.
    NegativeSpan {
        /// Index of the offending event.
        event: usize,
    },
    /// A matched receive that completed before its send did — the
    /// receiver observed the message before it finished existing.
    RecvBeforeSend {
        /// Index of the send event.
        send: usize,
        /// Index of the receive event.
        recv: usize,
    },
    /// A rank whose later event (program order) ended before an earlier
    /// event started — the per-rank clock ran backwards further than the
    /// documented `exchange` overlap permits.
    RankRegression {
        /// The rank whose clock regressed.
        rank: usize,
        /// Index of the earlier event.
        earlier: usize,
        /// Index of the later (regressing) event.
        later: usize,
    },
}

/// The result of [`Trace::hb_analysis`].
#[derive(Debug, Clone, Default)]
pub struct HbReport {
    /// Number of ranks the trace spans.
    pub num_ranks: usize,
    /// Non-phase events analyzed (HB DAG nodes).
    pub num_events: usize,
    /// HB edges (per-rank program order + matched messages).
    pub num_edges: usize,
    /// Matched send/receive pairs.
    pub matched: usize,
    /// Wildcard receives seen (race *candidates*; 0 for every shipped
    /// rank program — `recv_any` is a test-only construct).
    pub wildcard_recvs: usize,
    /// Receive races found (each names the rival sender).
    pub races: Vec<ReceiveRace>,
    /// Wait-for cycles among deadlock-suspect markers, each a rank list
    /// `[a, b, …]` meaning `a` waited on `b` waited on … waited on `a`.
    pub deadlock_cycles: Vec<Vec<usize>>,
    /// Structural cycles in the HB DAG itself (ranks involved). Always
    /// empty for traces of completed runs.
    pub hb_cycles: Vec<Vec<usize>>,
    /// Virtual-clock monotonicity violations.
    pub violations: Vec<Violation>,
    /// Sends never opened by a receive (informational: failure schedules
    /// legitimately orphan sends to crashed ranks).
    pub orphan_sends: usize,
    /// Receives with no matching send (impossible in a real trace).
    pub orphan_recvs: usize,
    /// `(waiter, awaited)` pairs of the wait-for graph: deadlock-suspect
    /// markers plus aborts observed mid-receive.
    pub suspects: Vec<(usize, usize)>,
}

impl HbReport {
    /// True when the trace shows no races, no cycles of either kind, no
    /// orphan receives and no monotonicity violations — the property all
    /// figure and fault scenarios must satisfy.
    pub fn ok(&self) -> bool {
        self.races.is_empty()
            && self.deadlock_cycles.is_empty()
            && self.hb_cycles.is_empty()
            && self.violations.is_empty()
            && self.orphan_recvs == 0
    }

    /// Total cycle count (wait-for + structural).
    pub fn num_cycles(&self) -> usize {
        self.deadlock_cycles.len() + self.hb_cycles.len()
    }

    /// One stable machine-checkable line, used for the
    /// `COMMCHECK_baseline.txt` golden file:
    /// `races=0 cycles=0 violations=0 wildcards=0 events=N edges=M matched=K orphan_sends=J`.
    ///
    /// Only *structural* quantities appear (counts, never virtual times),
    /// so the line is identical across machines and numeric backends.
    pub fn summary_line(&self) -> String {
        format!(
            "races={} cycles={} violations={} wildcards={} events={} edges={} matched={} orphan_sends={}",
            self.races.len(),
            self.num_cycles(),
            self.violations.len(),
            self.wildcard_recvs,
            self.num_events,
            self.num_edges,
            self.matched,
            self.orphan_sends,
        )
    }

    /// Renders a cycle as `a → b → … → a`.
    pub fn cycle_string(cycle: &[usize]) -> String {
        let mut s = String::new();
        for r in cycle {
            let _ = write!(s, "{r} → ");
        }
        let _ = write!(s, "{}", cycle.first().map_or(0, |r| *r));
        s
    }

    /// Human-readable multi-line report (what `grid-tsqr check` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "happens-before: {} ranks, {} events, {} edges, {} matched messages",
            self.num_ranks, self.num_events, self.num_edges, self.matched
        );
        let _ = writeln!(
            out,
            "  wildcard receives: {}   orphan sends: {}   orphan recvs: {}",
            self.wildcard_recvs, self.orphan_sends, self.orphan_recvs
        );
        for r in &self.races {
            let _ = writeln!(
                out,
                "  RACE: rank {} wildcard recv (tag {}) matched rank {} but rank {}'s send \
                 (event {}) was concurrent — delivery order visible",
                r.rank, r.tag, r.matched_src, r.rival_src, r.rival_event
            );
        }
        for c in &self.deadlock_cycles {
            let _ = writeln!(out, "  DEADLOCK CYCLE: {}", Self::cycle_string(c));
        }
        for c in &self.hb_cycles {
            let _ = writeln!(out, "  HB CYCLE (structural): {}", Self::cycle_string(c));
        }
        for v in &self.violations {
            let _ = match v {
                Violation::NegativeSpan { event } => {
                    writeln!(out, "  CLOCK VIOLATION: event {event} ends before it starts")
                }
                Violation::RecvBeforeSend { send, recv } => writeln!(
                    out,
                    "  CLOCK VIOLATION: recv (event {recv}) completed before its send (event {send})"
                ),
                Violation::RankRegression { rank, earlier, later } => writeln!(
                    out,
                    "  CLOCK VIOLATION: rank {rank} event {later} ended before event {earlier} started"
                ),
            };
        }
        for (w, a) in &self.suspects {
            if w == a {
                let _ = writeln!(out, "  suspect: rank {w} timed out on a wildcard receive");
            } else {
                let _ = writeln!(out, "  suspect: rank {w} timed out waiting for rank {a}");
            }
        }
        let verdict = if self.ok() {
            "OK: 0 receive races, 0 deadlock cycles, 0 clock violations"
        } else {
            "FAIL: schedule-dependence or deadlock detected"
        };
        let _ = writeln!(out, "  {verdict}");
        out
    }
}

impl Trace {
    /// Runs the full happens-before analysis over this trace — see the
    /// [module docs](crate::hb) for the checks performed.
    pub fn hb_analysis(&self) -> HbReport {
        let num_ranks = self.events.iter().map(|e| e.rank + 1).max().unwrap_or(0);

        // HB DAG nodes: every non-phase event. Per-rank program order is
        // the trace order restricted to one rank (the merge sort is
        // stable and each rank's events were appended in program order).
        let mut per_rank: Vec<Vec<usize>> = vec![Vec::new(); num_ranks];
        for (i, e) in self.events.iter().enumerate() {
            if !e.kind.is_phase() {
                per_rank[e.rank].push(i);
            }
        }
        let num_events = per_rank.iter().map(Vec::len).sum();

        // Message edges from FIFO matching.
        let matches = self.match_messages();
        let mut send_to_recv: BTreeMap<usize, usize> = BTreeMap::new();
        let mut recv_to_send: BTreeMap<usize, usize> = BTreeMap::new();
        for m in &matches {
            send_to_recv.insert(m.send, m.recv);
            recv_to_send.insert(m.recv, m.send);
        }

        // Successor lists + in-degrees over event indices.
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); self.events.len()];
        let mut indeg: Vec<usize> = vec![0; self.events.len()];
        let mut num_edges = 0usize;
        for order in &per_rank {
            for w in order.windows(2) {
                succs[w[0]].push(w[1]);
                indeg[w[1]] += 1;
                num_edges += 1;
            }
        }
        for m in &matches {
            succs[m.send].push(m.recv);
            indeg[m.recv] += 1;
            num_edges += 1;
        }

        // Monotonicity, exact comparisons (see module docs).
        let mut violations = Vec::new();
        for order in &per_rank {
            for &i in order {
                let e = &self.events[i];
                if e.end < e.start {
                    violations.push(Violation::NegativeSpan { event: i });
                }
            }
            for w in order.windows(2) {
                let (a, b) = (&self.events[w[0]], &self.events[w[1]]);
                if b.end < a.start {
                    violations.push(Violation::RankRegression {
                        rank: a.rank,
                        earlier: w[0],
                        later: w[1],
                    });
                }
            }
        }
        for m in &matches {
            if self.events[m.recv].end < self.events[m.send].end {
                violations.push(Violation::RecvBeforeSend { send: m.send, recv: m.recv });
            }
        }

        // Orphans.
        let mut orphan_sends = 0usize;
        let mut orphan_recvs = 0usize;
        let mut wildcard_recvs = 0usize;
        for (i, e) in self.events.iter().enumerate() {
            match e.kind {
                EventKind::Send { .. } if !send_to_recv.contains_key(&i) => orphan_sends += 1,
                EventKind::Recv { wildcard, .. } => {
                    if !recv_to_send.contains_key(&i) {
                        orphan_recvs += 1;
                    }
                    if wildcard {
                        wildcard_recvs += 1;
                    }
                }
                _ => {}
            }
        }

        // Kahn's algorithm: topological order, or a structural cycle.
        let mut queue: VecDeque<usize> = VecDeque::new();
        for order in &per_rank {
            for &i in order {
                if indeg[i] == 0 {
                    queue.push_back(i);
                }
            }
        }
        let mut topo: Vec<usize> = Vec::with_capacity(num_events);
        let mut remaining = indeg.clone();
        while let Some(i) = queue.pop_front() {
            topo.push(i);
            for &s in &succs[i] {
                remaining[s] -= 1;
                if remaining[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        let mut hb_cycles = Vec::new();
        if topo.len() < num_events {
            // Ranks stuck in the unresolvable remainder form the cycle.
            let done: BTreeSet<usize> = topo.iter().copied().collect();
            let stuck: BTreeSet<usize> = per_rank
                .iter()
                .flatten()
                .filter(|i| !done.contains(i))
                .map(|&i| self.events[i].rank)
                .collect();
            hb_cycles.push(stuck.into_iter().collect());
        }

        // Wait-for graph from orphaned-wait markers: the wall-clock
        // safety net firing (`DeadlockSuspect`) and aborts observed
        // *mid-receive* (`PeerAborted` — the blocked rank was waiting on
        // exactly that peer when its abort tombstone arrived; in a mutual
        // deadlock the first rank to time out aborts, which is how the
        // second rank's wait surfaces). A cycle still requires someone to
        // have genuinely timed out: abort cascades alone are acyclic,
        // because an aborted rank is no longer waiting on anyone.
        let suspects = collect_suspects(self);
        let deadlock_cycles = wait_for_cycles(&suspects);

        // Receive races: only wildcard receives can race; skip the
        // (per-event vector clock) pass entirely when there are none.
        let races = if wildcard_recvs > 0 && hb_cycles.is_empty() {
            find_races(self, &topo, &succs, &send_to_recv, num_ranks)
        } else {
            Vec::new()
        };

        HbReport {
            num_ranks,
            num_events,
            num_edges,
            matched: matches.len(),
            wildcard_recvs,
            races,
            deadlock_cycles,
            hb_cycles,
            violations,
            orphan_sends,
            orphan_recvs,
            suspects,
        }
    }

    /// Just the wait-for deadlock cycles (ranks), without the full
    /// analysis — used by [`crate::RunOutcome::summary`] to name the
    /// cycle behind a timeout.
    pub fn deadlock_cycles(&self) -> Vec<Vec<usize>> {
        wait_for_cycles(&collect_suspects(self))
    }
}

/// The deduplicated `(waiter, awaited)` edges of the wait-for graph:
/// wall-clock timeout markers plus aborts observed mid-receive (see
/// [`Trace::hb_analysis`] for why both count as waits).
fn collect_suspects(trace: &Trace) -> Vec<(usize, usize)> {
    let mut suspects: Vec<(usize, usize)> = Vec::new();
    for e in &trace.events {
        if let EventKind::Fault {
            peer,
            kind: FaultKind::DeadlockSuspect | FaultKind::PeerAborted,
            ..
        } = e.kind
        {
            suspects.push((e.rank, peer));
        }
    }
    suspects.sort_unstable();
    suspects.dedup();
    suspects
}

/// Cycles in the `(waiter → awaited)` graph, self-loops excluded
/// (a wildcard-receive timeout points at the waiter itself). Each cycle
/// is rotated so its smallest rank leads; duplicates are removed.
fn wait_for_cycles(suspects: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for &(w, a) in suspects {
        if w != a {
            adj.entry(w).or_default().insert(a);
        }
    }
    let mut cycles: BTreeSet<Vec<usize>> = BTreeSet::new();
    // DFS from every node; the graphs here are tiny (≤ P nodes).
    for &start in adj.keys() {
        let mut path = Vec::new();
        dfs_cycles(start, &adj, &mut path, &mut cycles);
    }
    cycles.into_iter().collect()
}

fn dfs_cycles(
    node: usize,
    adj: &BTreeMap<usize, BTreeSet<usize>>,
    path: &mut Vec<usize>,
    cycles: &mut BTreeSet<Vec<usize>>,
) {
    path.push(node);
    if let Some(nexts) = adj.get(&node) {
        for &n in nexts {
            if let Some(pos) = path.iter().position(|&p| p == n) {
                // Found a cycle: path[pos..]. Normalize rotation.
                let cyc = &path[pos..];
                let min_at =
                    cyc.iter().enumerate().min_by_key(|&(_, r)| r).map_or(0, |(i, _)| i);
                let mut rot: Vec<usize> = cyc[min_at..].to_vec();
                rot.extend_from_slice(&cyc[..min_at]);
                cycles.insert(rot);
            } else if path.len() <= adj.len() {
                dfs_cycles(n, adj, path, cycles);
            }
        }
    }
    path.pop();
}

/// Vector-clock pass for wildcard-receive races (see module docs). Only
/// called when the trace contains wildcard receives and the HB DAG is
/// acyclic; cost is `O(events · ranks)` words.
fn find_races(
    trace: &Trace,
    topo: &[usize],
    succs: &[Vec<usize>],
    send_to_recv: &BTreeMap<usize, usize>,
    num_ranks: usize,
) -> Vec<ReceiveRace> {
    // Per-event vector clocks by forward propagation in topological
    // order: each event merges its predecessors and ticks its own rank.
    let mut vcs: Vec<VectorClock> = vec![VectorClock::new(num_ranks); trace.events.len()];
    for &i in topo {
        let mut vc = std::mem::take(&mut vcs[i]);
        vc.tick(trace.events[i].rank);
        for &s in &succs[i] {
            vcs[s].merge(&vc);
        }
        vcs[i] = vc;
    }

    let mut races = Vec::new();
    for (ri, re) in trace.events.iter().enumerate() {
        let EventKind::Recv { from: matched_src, tag, wildcard: true, .. } = re.kind else {
            continue;
        };
        for (si, se) in trace.events.iter().enumerate() {
            let EventKind::Send { to, tag: stag, .. } = se.kind else { continue };
            if to != re.rank || stag != tag || se.rank == matched_src {
                continue;
            }
            // The rival must have been possible at receive time: the
            // receive must not causally precede the rival send.
            if vcs[ri].happens_before(&vcs[si]) {
                continue;
            }
            // And the rival must not have been provably consumed first:
            // a send whose own matched receive causally precedes this one
            // is out of the buffer in *every* schedule by the time this
            // receive matches. (If that earlier receive was itself a
            // wildcard with rivals, it is flagged on its own — race
            // responsibility is per-receive, as in ISP/MUST.)
            if let Some(&rr) = send_to_recv.get(&si) {
                if vcs[rr].happens_before(&vcs[ri]) {
                    continue;
                }
            }
            races.push(ReceiveRace {
                recv_event: ri,
                rank: re.rank,
                tag,
                matched_src,
                rival_src: se.rank,
                rival_event: si,
            });
        }
    }
    // The list is deterministic: scan order is event order.
    races
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Event;
    use tsqr_netsim::{LinkClass, VirtualTime};

    fn vc(xs: &[u64]) -> VectorClock {
        VectorClock(xs.to_vec())
    }

    // ---- vector-clock laws (mirrored as proptests in tests/) ----

    #[test]
    fn merge_is_commutative_and_associative_and_idempotent() {
        let (a, b, c) = (vc(&[1, 5, 0]), vc(&[2, 1, 7]), vc(&[0, 9, 3]));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "commutative");
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "associative");
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(aa, a, "idempotent");
    }

    #[test]
    fn partial_order_laws() {
        let small = vc(&[1, 2, 3]);
        let big = vc(&[2, 2, 4]);
        let other = vc(&[0, 5, 0]);
        assert!(small.happens_before(&big));
        assert!(!big.happens_before(&small), "antisymmetry");
        assert!(small.concurrent_with(&other));
        assert!(other.concurrent_with(&small));
        assert_eq!(small.partial_cmp(&small), Some(Ordering::Equal));
        // Merge is the least upper bound: both inputs ≤ merge.
        let mut lub = small.clone();
        lub.merge(&other);
        assert!(matches!(
            small.partial_cmp(&lub),
            Some(Ordering::Less) | Some(Ordering::Equal)
        ));
        assert!(matches!(
            other.partial_cmp(&lub),
            Some(Ordering::Less) | Some(Ordering::Equal)
        ));
    }

    #[test]
    fn tick_orders_successive_events() {
        let mut a = VectorClock::new(3);
        a.tick(1);
        let before = a.clone();
        a.tick(1);
        assert!(before.happens_before(&a));
    }

    #[test]
    fn widths_mismatch_is_handled() {
        let a = vc(&[1]);
        let b = vc(&[1, 1]);
        assert!(a.happens_before(&b));
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m, b);
    }

    // ---- analyzer on synthetic traces ----

    fn ev(rank: usize, s: f64, e: f64, kind: EventKind) -> Event {
        Event {
            rank,
            start: VirtualTime::from_secs(s),
            end: VirtualTime::from_secs(e),
            phase: None,
            kind,
        }
    }

    fn send(to: usize, tag: u32) -> EventKind {
        EventKind::Send { to, bytes: 8, class: LinkClass::IntraCluster, tag }
    }

    fn recv(from: usize, tag: u32, wildcard: bool) -> EventKind {
        EventKind::Recv { from, bytes: 8, class: LinkClass::IntraCluster, tag, wildcard }
    }

    #[test]
    fn clean_pipeline_is_ok() {
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, send(1, 5)),
            ev(1, 0.0, 1.0, recv(0, 5, false)),
            ev(1, 1.0, 2.0, send(2, 5)),
            ev(2, 0.0, 2.0, recv(1, 5, false)),
        ]);
        let r = t.hb_analysis();
        assert!(r.ok(), "{}", r.render());
        assert_eq!(r.matched, 2);
        // One program-order edge (rank 1's recv → send; ranks 0 and 2
        // have a single event each) + two message edges.
        assert_eq!(r.num_edges, 1 + 2);
        assert_eq!(r.wildcard_recvs, 0);
        assert!(r.summary_line().starts_with("races=0 cycles=0 violations=0"));
    }

    #[test]
    fn wildcard_recv_with_concurrent_senders_races() {
        // Ranks 1 and 2 both send tag 9 to rank 0; rank 0's wildcard
        // receive matched rank 1 — rank 2's send is a rival.
        let t = Trace::from_parts(vec![
            ev(1, 0.0, 1.0, send(0, 9)),
            ev(2, 0.0, 1.0, send(0, 9)),
            ev(0, 0.0, 1.0, recv(1, 9, true)),
            ev(0, 1.0, 1.5, recv(2, 9, true)),
        ]);
        let r = t.hb_analysis();
        assert!(!r.ok());
        assert_eq!(r.wildcard_recvs, 2);
        assert!(!r.races.is_empty());
        assert!(r.races.iter().any(|x| x.rank == 0 && x.rival_src == 2 && x.matched_src == 1));
        assert!(r.render().contains("RACE"));
    }

    #[test]
    fn named_recvs_never_race() {
        // Same shape, but the receives name their sources: no ambiguity.
        let t = Trace::from_parts(vec![
            ev(1, 0.0, 1.0, send(0, 9)),
            ev(2, 0.0, 1.0, send(0, 9)),
            ev(0, 0.0, 1.0, recv(1, 9, false)),
            ev(0, 1.0, 1.5, recv(2, 9, false)),
        ]);
        let r = t.hb_analysis();
        assert!(r.ok(), "{}", r.render());
        assert!(r.races.is_empty());
    }

    #[test]
    fn causally_ordered_wildcards_do_not_race() {
        // Rank 2 only sends after rank 0 already received rank 1's
        // message (0 → 2 ack edge): the second send is causally after
        // the first receive, so the first wildcard receive cannot race.
        let t = Trace::from_parts(vec![
            ev(1, 0.0, 1.0, send(0, 9)),
            ev(0, 0.0, 1.0, recv(1, 9, true)),
            ev(0, 1.0, 2.0, send(2, 1)),
            ev(2, 0.0, 2.0, recv(0, 1, false)),
            ev(2, 2.0, 3.0, send(0, 9)),
            ev(0, 2.0, 3.0, recv(2, 9, true)),
        ]);
        let r = t.hb_analysis();
        assert!(r.ok(), "{}", r.render());
    }

    #[test]
    fn deadlock_suspects_form_cycle() {
        let fault = |rank: usize, peer: usize| {
            ev(
                rank,
                1.0,
                1.0,
                EventKind::Fault {
                    peer,
                    class: LinkClass::IntraCluster,
                    kind: FaultKind::DeadlockSuspect,
                },
            )
        };
        let t = Trace::from_parts(vec![fault(0, 1), fault(1, 0), fault(2, 0)]);
        let r = t.hb_analysis();
        assert_eq!(r.deadlock_cycles, vec![vec![0, 1]]);
        assert_eq!(t.deadlock_cycles(), vec![vec![0, 1]]);
        assert!(!r.ok());
        assert!(r.render().contains("DEADLOCK CYCLE: 0 → 1 → 0"));
        assert_eq!(r.suspects, vec![(0, 1), (1, 0), (2, 0)]);
    }

    #[test]
    fn monotonicity_violations_are_caught() {
        // A recv that completes before its send completes.
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 2.0, send(1, 1)),
            ev(1, 0.0, 1.0, recv(0, 1, false)),
        ]);
        let r = t.hb_analysis();
        assert_eq!(r.violations, vec![Violation::RecvBeforeSend { send: 0, recv: 1 }]);
        assert!(!r.ok());

        // An event that ends before it starts.
        let t2 = Trace::from_parts(vec![ev(0, 2.0, 1.0, EventKind::Compute { flops: 1 })]);
        assert!(matches!(t2.hb_analysis().violations[..], [Violation::NegativeSpan { event: 0 }]));
    }

    #[test]
    fn orphan_accounting() {
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, send(1, 1)),
            ev(1, 0.0, 1.0, recv(0, 1, false)),
            ev(0, 1.0, 2.0, send(1, 1)), // never received
        ]);
        let r = t.hb_analysis();
        assert_eq!(r.orphan_sends, 1);
        assert_eq!(r.orphan_recvs, 0);
        assert!(r.ok(), "orphan sends alone do not fail the check");
    }

    #[test]
    fn structural_cycle_is_reported() {
        // Synthetic impossible trace: 0 receives from 1 *before* sending
        // to 1, and vice versa, with FIFO matching tying the knot.
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, recv(1, 1, false)),
            ev(0, 1.0, 2.0, send(1, 2)),
            ev(1, 0.0, 1.0, recv(0, 2, false)),
            ev(1, 1.0, 2.0, send(0, 1)),
        ]);
        let r = t.hb_analysis();
        assert_eq!(r.hb_cycles.len(), 1);
        assert_eq!(r.hb_cycles[0], vec![0, 1]);
        assert!(!r.ok());
    }
}
