//! Message payloads and wire-size accounting.

use std::any::Any;

use tsqr_linalg::Matrix;
use tsqr_netsim::VirtualTime;

/// Types that can travel between ranks.
///
/// `wire_bytes` is what the cost model charges for the payload — the size
/// the data would occupy on the wire (8 bytes per `f64`, etc.). Payloads
/// move between threads by ownership, so no serialization happens; the
/// byte count exists purely for pricing, mirroring how the paper's model
/// (Eq. (1)) charges `α · volume`.
pub trait WirePayload: Send + 'static {
    /// Number of bytes this value would occupy on the wire.
    fn wire_bytes(&self) -> u64;
}

impl WirePayload for f64 {
    fn wire_bytes(&self) -> u64 {
        8
    }
}

impl WirePayload for u64 {
    fn wire_bytes(&self) -> u64 {
        8
    }
}

impl WirePayload for usize {
    fn wire_bytes(&self) -> u64 {
        8
    }
}

impl WirePayload for () {
    fn wire_bytes(&self) -> u64 {
        // A zero-byte message still pays the link latency.
        0
    }
}

impl<T: WirePayload> WirePayload for Vec<T> {
    fn wire_bytes(&self) -> u64 {
        self.iter().map(WirePayload::wire_bytes).sum()
    }
}

impl WirePayload for Matrix {
    fn wire_bytes(&self) -> u64 {
        8 * (self.rows() * self.cols()) as u64
    }
}

impl<A: WirePayload, B: WirePayload> WirePayload for (A, B) {
    fn wire_bytes(&self) -> u64 {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<T: WirePayload> WirePayload for Option<T> {
    fn wire_bytes(&self) -> u64 {
        // One flag byte plus the payload when present.
        1 + self.as_ref().map_or(0, WirePayload::wire_bytes)
    }
}

/// A symbolic payload: carries only a logical byte size, no data.
///
/// The symbolic execution engine of `tsqr-core` sends these instead of real
/// matrices, so paper-scale runs are priced identically without allocating
/// 16 GB of numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phantom {
    /// Logical wire size in bytes.
    pub bytes: u64,
}

impl WirePayload for Phantom {
    fn wire_bytes(&self) -> u64 {
        self.bytes
    }
}

/// What an envelope carries: ordinary data or a failure notification.
///
/// Tombstones (`Crash` / `Abort`) are *control* envelopes: they are never
/// matched against a `recv`, carry no payload cost, and exist so that a
/// peer's death propagates in **virtual** time (through the channel, FIFO
/// after the dead rank's last real message) instead of being guessed from
/// the wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum EnvelopeKind {
    /// An ordinary payload-carrying message. `dropped` marks a message
    /// the failure schedule lost in transit: it still travels (so the
    /// receiver learns of the loss at the deterministic would-be arrival
    /// time) but the receiver gets an error instead of the payload.
    Data {
        /// True when the failure schedule dropped this transmission.
        dropped: bool,
    },
    /// The sender crashed (per the failure schedule) at the given
    /// virtual time.
    Crash {
        /// Virtual time of the crash.
        at: VirtualTime,
    },
    /// The sender's rank program returned an error at the given virtual
    /// time and will never send again.
    Abort {
        /// Virtual time at which the program gave up.
        at: VirtualTime,
    },
}

/// The envelope a message travels in.
pub(crate) struct Envelope {
    /// Sending rank (global).
    pub src: usize,
    /// Program-level tag for protocol checking.
    pub tag: u32,
    /// Virtual time at which the last byte reaches the receiver (assuming
    /// an idle receive NIC).
    pub arrival: VirtualTime,
    /// Payload size on the wire (for receiver-side NIC serialization).
    pub bytes: u64,
    /// Data or failure notification.
    pub kind: EnvelopeKind,
    /// The sender's vector clock *at send time* (the send's own tick
    /// included). The receiver merges this into its clock on open, which
    /// is what makes the happens-before partial order ([`crate::hb`])
    /// observable at runtime. Empty for tombstones (control traffic
    /// carries no causal payload).
    pub vc: Vec<u64>,
    /// The boxed payload (downcast on receive).
    pub payload: Box<dyn Any + Send>,
}

impl Envelope {
    /// A control envelope announcing the sender's death.
    pub(crate) fn tombstone(src: usize, kind: EnvelopeKind) -> Envelope {
        let arrival = match kind {
            EnvelopeKind::Crash { at } | EnvelopeKind::Abort { at } => at,
            EnvelopeKind::Data { .. } => unreachable!("tombstones carry no data"),
        };
        Envelope { src, tag: 0, arrival, bytes: 0, kind, vc: Vec::new(), payload: Box::new(()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        assert_eq!(3.5f64.wire_bytes(), 8);
        assert_eq!(().wire_bytes(), 0);
        assert_eq!(vec![1.0f64; 10].wire_bytes(), 80);
        assert_eq!(Matrix::zeros(4, 3).wire_bytes(), 96);
        assert_eq!((1.0f64, vec![0.0f64; 2]).wire_bytes(), 24);
        assert_eq!(vec![(0usize, 1.0f64); 3].wire_bytes(), 48);
        assert_eq!(Some(1.0f64).wire_bytes(), 9);
        assert_eq!(None::<f64>.wire_bytes(), 1);
        assert_eq!(Phantom { bytes: 1234 }.wire_bytes(), 1234);
    }
}
