//! The per-rank handle: point-to-point messaging, virtual clock, counters.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use tsqr_netsim::{
    CostModel, FailureSchedule, GridTopology, LinkClass, ProcLocation, VirtualTime,
};

use crate::error::CommError;
use crate::hb::VectorClock;
use crate::message::{Envelope, EnvelopeKind, WirePayload};
use crate::metrics::MetricsRegistry;
use crate::trace::{Event, EventKind, FaultKind, Recorder};

/// Default **wall-clock** safety net for receives.
///
/// Two clocks exist in this simulator and must not be confused (see
/// `docs/fault-injection.md`):
///
/// * the **virtual** clock prices everything (Eq. (1)) and drives the
///   failure detector — a peer's death is *detected* at
///   `crash time + `[`Process::failure_deadline`], a per-link-class
///   deadline derived from the cost model;
/// * the **wall** clock only guards the simulator itself: a rank blocked
///   longer than this real-time duration on an OS channel is assumed
///   deadlocked (protocol bug, or a peer that terminated without a
///   tombstone). It never influences virtual time or determinism.
///
/// Override per runtime with [`crate::Runtime::set_recv_timeout`] or the
/// `grid-tsqr --recv-timeout` CLI flag.
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Failure-detector slack: a silent peer is declared dead this many
/// zero-payload one-way message times (of the link class between the two
/// ranks) after its last sign of life. WAN partners therefore get
/// proportionally more virtual-time grace than intra-node ones, exactly
/// as a latency-scaled MPI heartbeat timeout would.
pub const DETECTION_LATENCY_FACTOR: f64 = 4.0;

/// Bounded retransmission budget for transient message drops: a send
/// whose transmissions are all lost gives up after this many attempts
/// and surfaces [`CommError::MessageDropped`]. Between attempts the
/// sender backs off `2^(attempt-1)` link latencies.
pub const MAX_SEND_ATTEMPTS: u32 = 4;

/// The order in which buffered messages from *different* sources queue in
/// a rank's pending buffer. Per-source FIFO is always preserved (it is
/// what makes named receives deterministic); only the interleaving
/// *between* sources changes — which is exactly the freedom a wildcard
/// receive ([`Process::recv_any`]) would observe.
///
/// The DPOR-lite explorer ([`mod@crate::explore`]) re-runs a program under
/// several of these orders and asserts bit-identical results: a program
/// whose output changes under a different `DeliveryOrder` is
/// schedule-dependent, and the happens-before analyzer ([`crate::hb`])
/// names the racing receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryOrder {
    /// OS-channel arrival order (the default; what a real network does).
    #[default]
    Arrival,
    /// Buffered messages sort by ascending source rank.
    SourceAscending,
    /// Buffered messages sort by descending source rank.
    SourceDescending,
    /// Each buffered message lands at a pseudo-random legal position
    /// derived from the seed, the receiving rank and a per-rank counter
    /// (deterministic for a fixed seed).
    Seeded(u64),
}

/// How a peer is known to have stopped (crate-internal bookkeeping fed
/// by tombstone envelopes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Death {
    /// Crashed per the failure schedule at the given virtual time.
    Crash(VirtualTime),
    /// Rank program returned an error at the given virtual time.
    Abort(VirtualTime),
}

impl Death {
    fn at(self) -> VirtualTime {
        match self {
            Death::Crash(t) | Death::Abort(t) => t,
        }
    }
}

/// Per-rank traffic counters, bucketed by [`LinkClass::bucket`]
/// (0 = intra-node, 1 = intra-cluster, 2 = inter-cluster).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounters {
    /// Messages sent, per bucket.
    pub msgs: [u64; 3],
    /// Payload bytes sent, per bucket.
    pub bytes: [u64; 3],
    /// Floating-point operations charged via [`Process::compute`].
    pub flops: u64,
}

impl TrafficCounters {
    /// Total messages across all link classes.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total bytes across all link classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Messages that crossed a wide-area (inter-cluster) link.
    pub fn inter_cluster_msgs(&self) -> u64 {
        self.msgs[2]
    }

    /// Element-wise sum.
    pub fn merge(&self, other: &TrafficCounters) -> TrafficCounters {
        let mut out = *self;
        for i in 0..3 {
            out.msgs[i] += other.msgs[i];
            out.bytes[i] += other.bytes[i];
        }
        out.flops += other.flops;
        out
    }
}

/// Final per-rank statistics reported by the runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankStats {
    /// The rank's final virtual clock.
    pub clock: VirtualTime,
    /// Its traffic counters.
    pub traffic: TrafficCounters,
}

/// A rank's handle to the simulated machine.
///
/// Created by [`crate::Runtime::run`] and passed to the rank program; all
/// communication, timing and accounting goes through it.
pub struct Process {
    pub(crate) rank: usize,
    pub(crate) size: usize,
    pub(crate) topo: Arc<GridTopology>,
    pub(crate) model: Arc<CostModel>,
    /// The failure script in force (empty by default).
    pub(crate) schedule: Arc<FailureSchedule>,
    /// This rank's scheduled crash time, if any (cached from `schedule`).
    pub(crate) crash_at: Option<VirtualTime>,
    /// True once this rank broadcast its own death (crash or abort).
    pub(crate) death_announced: bool,
    /// Peers known dead, with how and when (fed by tombstones).
    /// `BTreeMap` so every drain over it is deterministic.
    pub(crate) dead: BTreeMap<usize, Death>,
    /// Per-destination transmission sequence numbers (indexes the
    /// schedule's drop rules).
    pub(crate) sent_seq: Vec<u64>,
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) inbox: Receiver<Envelope>,
    /// Messages that arrived while waiting for a different source.
    pub(crate) pending: VecDeque<Envelope>,
    pub(crate) clock: VirtualTime,
    /// Time until which this rank's receive NIC is busy clocking bytes in.
    /// Concurrent senders to the same receiver serialize on it — without
    /// this, a flat reduction tree would absorb P−1 simultaneous messages
    /// for free.
    pub(crate) nic_free: VirtualTime,
    pub(crate) counters: TrafficCounters,
    /// Wall-clock deadlock safety net for receives.
    pub(crate) recv_timeout: Duration,
    /// Event recorder (present when the runtime enabled tracing).
    pub(crate) recorder: Option<Recorder>,
    /// Open phases, innermost last: `(name, virtual time at begin)`.
    pub(crate) phase_stack: Vec<(&'static str, VirtualTime)>,
    /// Always-on per-phase counters and histograms.
    pub(crate) metrics: MetricsRegistry,
    /// This rank's vector clock: ticked on every send/receive, merged on
    /// every receive (see [`crate::hb`]). Every data envelope carries the
    /// sender's clock at send time.
    pub(crate) vc: VectorClock,
    /// Inter-source ordering discipline for the pending buffer (see
    /// [`DeliveryOrder`]; installed by
    /// [`crate::Runtime::set_delivery_order`]).
    pub(crate) delivery: DeliveryOrder,
    /// Messages buffered so far (feeds the seeded delivery permutation).
    pub(crate) buffered: u64,
}

impl Process {
    /// This rank's global index.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks in the run.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// This rank's physical coordinate.
    pub fn location(&self) -> ProcLocation {
        self.topo.location(self.rank)
    }

    /// The cluster (site) this rank lives on.
    pub fn cluster(&self) -> usize {
        self.location().cluster
    }

    /// The shared topology.
    pub fn topology(&self) -> &GridTopology {
        &self.topo
    }

    /// The shared cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Current virtual time at this rank.
    #[inline]
    pub fn clock(&self) -> VirtualTime {
        self.clock
    }

    /// Traffic counters so far.
    #[inline]
    pub fn counters(&self) -> TrafficCounters {
        self.counters
    }

    /// Advances the clock by an explicit span (e.g. externally-modelled
    /// work). Metered as compute time of the current phase.
    pub fn advance(&mut self, dt: VirtualTime) {
        self.clock += dt;
        self.metrics.record_compute(self.current_phase(), 0, dt.secs());
    }

    /// Opens a named algorithm phase. Phases nest (innermost wins for
    /// event stamping and metrics attribution) and must be closed with
    /// [`Process::phase_end`]; the runtime closes any phase left open
    /// when the rank program returns.
    ///
    /// Labels should be short static identifiers (`"leaf-qr"`,
    /// `"tree-reduce"`, …) — they become metric rows and trace
    /// categories; see `docs/observability.md`.
    pub fn phase_begin(&mut self, name: &'static str) {
        self.phase_stack.push((name, self.clock));
    }

    /// Closes the innermost open phase, recording its span as an
    /// [`EventKind::Phase`] event when tracing is enabled.
    ///
    /// # Panics
    /// Panics when no phase is open (an unbalanced `phase_end` is a
    /// bug in the rank program).
    pub fn phase_end(&mut self) {
        let (name, began) = self.phase_stack.pop().expect("phase_end without phase_begin");
        // Stamp the marker with the *enclosing* phase, if any.
        let outer = self.current_phase();
        if let Some(rec) = &mut self.recorder {
            rec.events.push(Event {
                rank: self.rank,
                start: began,
                end: self.clock,
                phase: outer,
                kind: EventKind::Phase { name },
            });
        }
    }

    /// Drops a zero-width annotation marker into the trace at the
    /// current virtual time: an [`EventKind::Phase`] event with
    /// `start == end`, stamped with the innermost open phase. Costs
    /// nothing on the simulated clock and is skipped by the wait-state
    /// and DAG analyses (which ignore phase events), so rank programs
    /// can tag spans with configuration facts — e.g. the reduction-tree
    /// shape chosen by the autotuner — without perturbing any analysis
    /// or baseline *timing*. No-op unless tracing is enabled.
    pub fn annotate(&mut self, name: &'static str) {
        let phase = self.current_phase();
        if let Some(rec) = &mut self.recorder {
            rec.events.push(Event {
                rank: self.rank,
                start: self.clock,
                end: self.clock,
                phase,
                kind: EventKind::Phase { name },
            });
        }
    }

    /// Runs `f` inside a phase (begin/end are paired even on early
    /// `?` returns inside `f` — the result is propagated after the
    /// phase closes).
    pub fn with_phase<R>(
        &mut self,
        name: &'static str,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        self.phase_begin(name);
        let out = f(self);
        self.phase_end();
        out
    }

    /// The innermost open phase, if any.
    pub fn current_phase(&self) -> Option<&'static str> {
        self.phase_stack.last().map(|(n, _)| *n)
    }

    /// The per-phase metrics recorded so far (always on — see
    /// [`crate::metrics`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Charges `flops` floating-point operations at `rate` flop/s (the
    /// model's default rate when `None`) and advances the clock.
    pub fn compute(&mut self, flops: u64, rate: Option<f64>) {
        let start = self.clock;
        self.counters.flops += flops;
        self.clock += self.model.compute_time(flops, rate);
        self.metrics.record_compute(
            self.current_phase(),
            flops,
            (self.clock - start).secs(),
        );
        if let Some(rec) = &mut self.recorder {
            rec.events.push(Event {
                rank: self.rank,
                start,
                end: self.clock,
                phase: self.phase_stack.last().map(|(n, _)| *n),
                kind: EventKind::Compute { flops },
            });
        }
    }

    /// True unless a failure was injected on the `self → dst` link.
    pub fn link_ok(&self, dst: usize) -> bool {
        !self.schedule.link_down(self.rank, dst)
    }

    /// The failure schedule in force (empty by default).
    pub fn failure_schedule(&self) -> &FailureSchedule {
        &self.schedule
    }

    /// True when `peer` is known dead (its tombstone was observed).
    pub fn is_dead(&self, peer: usize) -> bool {
        self.dead.contains_key(&peer)
    }

    /// All peers currently known dead, ascending.
    pub fn known_dead(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.dead.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The virtual-time failure-detection deadline for `peer`: a silent
    /// peer is declared dead [`DETECTION_LATENCY_FACTOR`] zero-payload
    /// one-way message times (Eq. (1), per the link class between the
    /// two ranks) after its crash instant. Derived from the cost model —
    /// **not** a wall-clock guess; the wall-clock
    /// [`crate::Runtime::set_recv_timeout`] remains only a simulator
    /// deadlock net.
    pub fn failure_deadline(&self, peer: usize) -> VirtualTime {
        let from = self.topo.location(peer);
        let one_way = self.model.message_time(from, self.location(), 0);
        VirtualTime::from_secs(one_way.secs() * DETECTION_LATENCY_FACTOR)
    }

    /// Fails with [`CommError::RankFailed`] once this rank's own
    /// scheduled crash time has passed, broadcasting its tombstone to
    /// every peer the first time.
    fn check_alive(&mut self) -> Result<(), CommError> {
        let Some(at) = self.crash_at else { return Ok(()) };
        if self.clock < at {
            return Ok(());
        }
        self.announce_death(EnvelopeKind::Crash { at });
        Err(CommError::RankFailed { rank: self.rank, at })
    }

    /// Broadcasts a tombstone to every peer (idempotent).
    pub(crate) fn announce_death(&mut self, kind: EnvelopeKind) {
        if self.death_announced {
            return;
        }
        self.death_announced = true;
        for dst in 0..self.size {
            if dst != self.rank {
                // A peer that already returned has dropped its inbox;
                // nothing left to notify.
                let _ = self.senders[dst].send(Envelope::tombstone(self.rank, kind));
            }
        }
    }

    /// Tombstone broadcast for a rank program that returned an error
    /// (called by the runtime so peers fail fast in virtual time instead
    /// of hitting the wall-clock net).
    pub(crate) fn announce_abort(&mut self) {
        self.announce_death(EnvelopeKind::Abort { at: self.clock });
    }

    /// Consumes a tombstone while waiting on `peer`: advances the clock
    /// to the virtual-time detection instant, records the
    /// failure-induced wait into metrics (`recv_wait_s`) and the trace
    /// (an [`EventKind::Fault`] span), and returns the typed error.
    fn observe_death(&mut self, peer: usize, death: Death, wait_start: VirtualTime) -> CommError {
        let (fault, err) = match death {
            Death::Crash(at) => (
                FaultKind::RankFailed,
                CommError::RankFailed { rank: peer, at },
            ),
            Death::Abort(_) => (
                FaultKind::PeerAborted,
                CommError::PeerGone { rank: self.rank, from: peer },
            ),
        };
        let from = self.topo.location(peer);
        let class = LinkClass::between(from, self.location());
        self.clock = self.clock.max(death.at() + self.failure_deadline(peer));
        self.metrics.record_recv(
            self.current_phase(),
            class,
            0,
            (self.clock - wait_start).secs(),
        );
        if let Some(rec) = &mut self.recorder {
            rec.events.push(Event {
                rank: self.rank,
                start: wait_start,
                end: self.clock,
                phase: self.phase_stack.last().map(|(n, _)| *n),
                kind: EventKind::Fault { peer, class, kind: fault },
            });
        }
        // Detecting the death may itself have pushed this rank past its
        // own crash time.
        if let Err(own) = self.check_alive() {
            return own;
        }
        err
    }

    /// Blocking send of `msg` to `dst`.
    ///
    /// Completes (and advances this rank's clock) at
    /// `clock + β + α·wire_bytes`; the message arrives at the same instant,
    /// which models a rendezvous transfer whose cost lands on the critical
    /// path exactly once — the convention under which the paper counts
    /// `β·#msg + α·vol` (Eq. (1)).
    ///
    /// Under a failure schedule, three extra things can happen:
    /// the sender itself may be crashed ([`CommError::RankFailed`]);
    /// the link parameters may pass through an active degradation
    /// window (priced via
    /// [`tsqr_netsim::CostModel::message_time_under`], marked with a
    /// zero-width [`FaultKind::LinkDegraded`] trace event); and the
    /// transmission may be dropped — dropped attempts are retransmitted
    /// with exponential backoff up to [`MAX_SEND_ATTEMPTS`], after which
    /// the receiver is sent a *ghost* (so it learns of the loss at the
    /// deterministic would-be arrival time) and the sender gets
    /// [`CommError::MessageDropped`].
    pub fn send<M: WirePayload>(&mut self, dst: usize, tag: u32, msg: M) -> Result<(), CommError> {
        assert!(dst < self.size, "send to nonexistent rank {dst}");
        assert_ne!(dst, self.rank, "self-sends are a protocol bug");
        self.check_alive()?;
        if !self.link_ok(dst) {
            return Err(CommError::LinkDown { src: self.rank, dst });
        }
        let bytes = msg.wire_bytes();
        let from = self.location();
        let to = self.topo.location(dst);
        let class = LinkClass::between(from, to);
        // The send is one causal event: tick once (not per retransmission
        // attempt) and stamp the envelope with the post-tick clock.
        self.vc.tick(self.rank);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let nth = self.sent_seq[dst];
            self.sent_seq[dst] += 1;
            let send_start = self.clock;
            let degraded = self.schedule.is_degraded(class, send_start);
            self.counters.msgs[class.bucket()] += 1;
            self.counters.bytes[class.bucket()] += bytes;
            self.clock +=
                self.model.message_time_under(from, to, bytes, send_start, &self.schedule);
            let dropped = self.schedule.should_drop(self.rank, dst, nth);
            let arrival = self.clock;
            if dropped && attempts < MAX_SEND_ATTEMPTS {
                // Retransmission backoff: 2^(attempt−1) base link latencies.
                let backoff = self.model.link(from, to).latency_s
                    * f64::from(1u32 << (attempts - 1));
                self.clock += VirtualTime::from_secs(backoff);
            }
            self.metrics.record_send(
                self.current_phase(),
                class,
                bytes,
                (self.clock - send_start).secs(),
            );
            if let Some(rec) = &mut self.recorder {
                let phase = self.phase_stack.last().map(|(n, _)| *n);
                if degraded {
                    rec.events.push(Event {
                        rank: self.rank,
                        start: send_start,
                        end: send_start,
                        phase,
                        kind: EventKind::Fault {
                            peer: dst,
                            class,
                            kind: FaultKind::LinkDegraded,
                        },
                    });
                }
                let kind = if dropped {
                    EventKind::Fault { peer: dst, class, kind: FaultKind::DropSent }
                } else {
                    EventKind::Send { to: dst, bytes, class, tag }
                };
                rec.events.push(Event {
                    rank: self.rank,
                    start: send_start,
                    end: self.clock,
                    phase,
                    kind,
                });
            }
            if dropped && attempts < MAX_SEND_ATTEMPTS {
                continue;
            }
            let env = Envelope {
                src: self.rank,
                tag,
                arrival,
                bytes,
                kind: EnvelopeKind::Data { dropped },
                vc: self.vc.as_slice().to_vec(),
                payload: Box::new(msg),
            };
            // Unbounded channel: never blocks. A disconnected receiver means
            // the peer thread already returned — surface that as PeerGone.
            self.senders[dst]
                .send(env)
                .map_err(|_| CommError::PeerGone { rank: self.rank, from: dst })?;
            return if dropped {
                Err(CommError::MessageDropped { src: self.rank, dst, attempts })
            } else {
                Ok(())
            };
        }
    }

    /// Blocking receive of a message from `src` with tag `tag`.
    ///
    /// Advances the clock to the message's arrival time (if later). Messages
    /// from other sources that arrive in the meantime are buffered;
    /// tombstones (peer deaths) are recorded as they are encountered, and
    /// a tombstone from `src` itself ends the wait at the virtual-time
    /// detection deadline with a typed error (see
    /// [`Process::failure_deadline`]).
    // archlint: allow(taint) — the `.recv_timeout(` below is the
    // simulator's wall-clock deadlock safety net: virtual time never
    // observes the reading; on expiry the run *fails* with
    // CommError::Timeout instead of hanging CI. Same exception as the
    // commlint `wall-clock` allow entry for this file.
    pub fn recv<M: WirePayload>(&mut self, src: usize, tag: u32) -> Result<M, CommError> {
        assert!(src < self.size, "recv from nonexistent rank {src}");
        self.check_alive()?;
        // Check the pending buffer first (FIFO per source). Channel order
        // guarantees any data `src` sent before dying was buffered before
        // its tombstone was recorded, so data wins over the death check.
        if let Some(pos) = self.pending.iter().position(|e| e.src == src) {
            let env = self.pending.remove(pos).expect("position just found");
            return self.open::<M>(env, tag, false);
        }
        if let Some(&death) = self.dead.get(&src) {
            let now = self.clock;
            return Err(self.observe_death(src, death, now));
        }
        let wait_start = self.clock;
        loop {
            match self.inbox.recv_timeout(self.recv_timeout) {
                Ok(env) => match env.kind {
                    EnvelopeKind::Data { .. } if env.src == src => {
                        return self.open::<M>(env, tag, false)
                    }
                    EnvelopeKind::Data { .. } => self.buffer(env),
                    EnvelopeKind::Crash { at } => {
                        self.dead.insert(env.src, Death::Crash(at));
                        if env.src == src {
                            return Err(self.observe_death(
                                src,
                                Death::Crash(at),
                                wait_start,
                            ));
                        }
                    }
                    EnvelopeKind::Abort { at } => {
                        self.dead.insert(env.src, Death::Abort(at));
                        if env.src == src {
                            return Err(self.observe_death(
                                src,
                                Death::Abort(at),
                                wait_start,
                            ));
                        }
                    }
                },
                Err(RecvTimeoutError::Timeout) => {
                    self.record_deadlock_suspect(src, wait_start);
                    return Err(CommError::Timeout { rank: self.rank, from: src });
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Every peer's thread exited while we were still
                    // blocked on `src` — an orphaned wait, which is the
                    // same evidence a timeout gives (the disconnect just
                    // raced the timer). Record the suspect edge so the
                    // wait-for cycle survives the shutdown ordering and
                    // the analyzer can still name the deadlock.
                    self.record_deadlock_suspect(src, wait_start);
                    return Err(CommError::PeerGone { rank: self.rank, from: src });
                }
            }
        }
    }

    /// **Wildcard** blocking receive: the next data message from *any*
    /// source carrying `tag`. Returns `(source, payload)`.
    ///
    /// This is deliberately a nondeterminism hazard — which sender
    /// matches depends on delivery order — and exists so the
    /// happens-before analyzer and the schedule explorer have a real
    /// race to catch (see `docs/static-analysis.md`). No shipped rank
    /// program uses it; the `commlint` wildcard-recv rule denies it
    /// outside test code.
    // archlint: allow(taint) — same wall-clock safety-net exception as
    // `recv` above; the *wildcard* nondeterminism of this primitive is
    // policed separately (commlint wildcard-recv + the HB analyzer).
    pub fn recv_any<M: WirePayload>(&mut self, tag: u32) -> Result<(usize, M), CommError> {
        self.check_alive()?;
        // Drain the channel first so already-arrived messages compete in
        // the pending buffer under the installed delivery order.
        while let Ok(env) = self.inbox.try_recv() {
            self.intake(env);
        }
        let wait_start = self.clock;
        loop {
            if let Some(pos) =
                self.pending.iter().position(|e| matches!(e.kind, EnvelopeKind::Data { .. }))
            {
                let env = self.pending.remove(pos).expect("position just found");
                let src = env.src;
                return self.open::<M>(env, tag, true).map(|m| (src, m));
            }
            match self.inbox.recv_timeout(self.recv_timeout) {
                Ok(env) => self.intake(env),
                Err(RecvTimeoutError::Timeout) => {
                    // A wildcard wait names nobody: the suspect edge
                    // points at the waiter itself (self-loops are
                    // excluded from deadlock cycles).
                    self.record_deadlock_suspect(self.rank, wait_start);
                    return Err(CommError::Timeout { rank: self.rank, from: self.rank });
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Same orphaned-wait evidence as the timeout branch
                    // (self-loops are excluded from deadlock cycles).
                    self.record_deadlock_suspect(self.rank, wait_start);
                    return Err(CommError::PeerGone { rank: self.rank, from: self.rank });
                }
            }
        }
    }

    /// Routes one envelope off the channel: data is buffered under the
    /// delivery order, tombstones are recorded in the death map.
    fn intake(&mut self, env: Envelope) {
        match env.kind {
            EnvelopeKind::Data { .. } => self.buffer(env),
            EnvelopeKind::Crash { at } => {
                self.dead.insert(env.src, Death::Crash(at));
            }
            EnvelopeKind::Abort { at } => {
                self.dead.insert(env.src, Death::Abort(at));
            }
        }
    }

    /// Inserts `env` into the pending buffer at a position chosen by the
    /// [`DeliveryOrder`], never before an earlier message from the same
    /// source (per-source FIFO is inviolable — named receives rely on
    /// it).
    fn buffer(&mut self, env: Envelope) {
        let min_pos =
            self.pending.iter().rposition(|e| e.src == env.src).map_or(0, |p| p + 1);
        let max_pos = self.pending.len();
        let pos = match self.delivery {
            DeliveryOrder::Arrival => max_pos,
            DeliveryOrder::SourceAscending => (min_pos..max_pos)
                .find(|&i| self.pending[i].src > env.src)
                .unwrap_or(max_pos),
            DeliveryOrder::SourceDescending => (min_pos..max_pos)
                .find(|&i| self.pending[i].src < env.src)
                .unwrap_or(max_pos),
            DeliveryOrder::Seeded(seed) => {
                let h = tsqr_netsim::rng::hash64(
                    seed ^ (self.rank as u64).rotate_left(32) ^ self.buffered,
                );
                min_pos + (h as usize) % (max_pos - min_pos + 1)
            }
        };
        self.buffered += 1;
        self.pending.insert(pos, env);
    }

    /// Records the wall-clock safety net firing (zero-width
    /// [`FaultKind::DeadlockSuspect`] marker — virtual time never
    /// advances for wall-clock events) so the happens-before analyzer
    /// can assemble the wait-for graph.
    fn record_deadlock_suspect(&mut self, peer: usize, wait_start: VirtualTime) {
        let class = LinkClass::between(self.topo.location(peer), self.location());
        if let Some(rec) = &mut self.recorder {
            rec.events.push(Event {
                rank: self.rank,
                start: wait_start,
                end: wait_start,
                phase: self.phase_stack.last().map(|(n, _)| *n),
                kind: EventKind::Fault { peer, class, kind: FaultKind::DeadlockSuspect },
            });
        }
    }

    /// This rank's current vector clock (see [`crate::hb`]).
    pub fn vector_clock(&self) -> &VectorClock {
        &self.vc
    }

    /// Combined exchange with a partner: send ours, receive theirs.
    ///
    /// The two transfers overlap on the wire (full-duplex), so the clock
    /// advance is the max of the send completion and the partner's arrival —
    /// the behaviour of one butterfly round of an all-reduce.
    pub fn exchange<M: WirePayload>(
        &mut self,
        partner: usize,
        tag: u32,
        msg: M,
    ) -> Result<M, CommError> {
        let before = self.clock;
        self.send(partner, tag, msg)?;
        let after_send = self.clock;
        // The send and the receive overlap: rewind to the pre-send clock for
        // the receive wait, then take the max.
        self.clock = before;
        let got = self.recv::<M>(partner, tag)?;
        self.clock = self.clock.max(after_send);
        Ok(got)
    }

    fn open<M: WirePayload>(
        &mut self,
        env: Envelope,
        tag: u32,
        wildcard: bool,
    ) -> Result<M, CommError> {
        if env.tag != tag {
            return Err(CommError::TagMismatch { expected: tag, got: env.tag });
        }
        // Causality: adopt the sender's knowledge, then tick for the
        // receive event itself.
        self.vc.merge(&VectorClock::from(env.vc.clone()));
        self.vc.tick(self.rank);
        // Receiver-side NIC serialization: the bytes of this message must
        // be clocked in after whatever the NIC was already receiving. For
        // an idle NIC this is exactly `arrival`; for a hot one (e.g. the
        // root of a flat tree with P−1 concurrent senders) messages queue.
        let from = self.topo.location(env.src);
        let class = LinkClass::between(from, self.location());
        let link = self.model.link(from, self.location());
        let wire = VirtualTime::from_secs(env.bytes as f64 * 8.0 / link.bandwidth_bps);
        let done = env.arrival.max(self.nic_free + wire);
        self.nic_free = done;
        let wait_start = self.clock;
        self.clock = self.clock.max(done);
        self.metrics.record_recv(
            self.current_phase(),
            class,
            env.bytes,
            (self.clock - wait_start).secs(),
        );
        // A *ghost*: the schedule lost this message in transit and the
        // sender's retransmission budget ran out. The receiver still pays
        // the deterministic would-be arrival wait (clock already advanced
        // above) but gets an error instead of the payload.
        let ghost = matches!(env.kind, EnvelopeKind::Data { dropped: true });
        if let Some(rec) = &mut self.recorder {
            let kind = if ghost {
                EventKind::Fault { peer: env.src, class, kind: FaultKind::DropObserved }
            } else {
                EventKind::Recv { from: env.src, bytes: env.bytes, class, tag, wildcard }
            };
            rec.events.push(Event {
                rank: self.rank,
                start: wait_start,
                end: self.clock,
                phase: self.phase_stack.last().map(|(n, _)| *n),
                kind,
            });
        }
        // Clocking the message in may have carried this rank past its own
        // scheduled crash time: it dies *now* instead of consuming data.
        self.check_alive()?;
        if ghost {
            return Err(CommError::MessageDropped {
                src: env.src,
                dst: self.rank,
                attempts: MAX_SEND_ATTEMPTS,
            });
        }
        env.payload
            .downcast::<M>()
            .map(|b| *b)
            .map_err(|_| CommError::TypeMismatch { expected: std::any::type_name::<M>() })
    }
}
