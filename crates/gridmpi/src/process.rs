//! The per-rank handle: point-to-point messaging, virtual clock, counters.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use tsqr_netsim::{CostModel, GridTopology, LinkClass, ProcLocation, VirtualTime};

use crate::error::CommError;
use crate::message::{Envelope, WirePayload};
use crate::metrics::MetricsRegistry;
use crate::trace::{Event, EventKind, Recorder};

/// Default wall-clock safety net for receives: a rank waiting longer than
/// this on a real channel is considered deadlocked (peer crashed or
/// protocol bug). Override per runtime with
/// [`crate::Runtime::set_recv_timeout`].
pub const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Per-rank traffic counters, bucketed by [`LinkClass::bucket`]
/// (0 = intra-node, 1 = intra-cluster, 2 = inter-cluster).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficCounters {
    /// Messages sent, per bucket.
    pub msgs: [u64; 3],
    /// Payload bytes sent, per bucket.
    pub bytes: [u64; 3],
    /// Floating-point operations charged via [`Process::compute`].
    pub flops: u64,
}

impl TrafficCounters {
    /// Total messages across all link classes.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total bytes across all link classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Messages that crossed a wide-area (inter-cluster) link.
    pub fn inter_cluster_msgs(&self) -> u64 {
        self.msgs[2]
    }

    /// Element-wise sum.
    pub fn merge(&self, other: &TrafficCounters) -> TrafficCounters {
        let mut out = *self;
        for i in 0..3 {
            out.msgs[i] += other.msgs[i];
            out.bytes[i] += other.bytes[i];
        }
        out.flops += other.flops;
        out
    }
}

/// Final per-rank statistics reported by the runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankStats {
    /// The rank's final virtual clock.
    pub clock: VirtualTime,
    /// Its traffic counters.
    pub traffic: TrafficCounters,
}

/// A rank's handle to the simulated machine.
///
/// Created by [`crate::Runtime::run`] and passed to the rank program; all
/// communication, timing and accounting goes through it.
pub struct Process {
    pub(crate) rank: usize,
    pub(crate) size: usize,
    pub(crate) topo: Arc<GridTopology>,
    pub(crate) model: Arc<CostModel>,
    pub(crate) failed_links: Arc<HashSet<(usize, usize)>>,
    pub(crate) senders: Vec<Sender<Envelope>>,
    pub(crate) inbox: Receiver<Envelope>,
    /// Messages that arrived while waiting for a different source.
    pub(crate) pending: VecDeque<Envelope>,
    pub(crate) clock: VirtualTime,
    /// Time until which this rank's receive NIC is busy clocking bytes in.
    /// Concurrent senders to the same receiver serialize on it — without
    /// this, a flat reduction tree would absorb P−1 simultaneous messages
    /// for free.
    pub(crate) nic_free: VirtualTime,
    pub(crate) counters: TrafficCounters,
    /// Wall-clock deadlock safety net for receives.
    pub(crate) recv_timeout: Duration,
    /// Event recorder (present when the runtime enabled tracing).
    pub(crate) recorder: Option<Recorder>,
    /// Open phases, innermost last: `(name, virtual time at begin)`.
    pub(crate) phase_stack: Vec<(&'static str, VirtualTime)>,
    /// Always-on per-phase counters and histograms.
    pub(crate) metrics: MetricsRegistry,
}

impl Process {
    /// This rank's global index.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks in the run.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// This rank's physical coordinate.
    pub fn location(&self) -> ProcLocation {
        self.topo.location(self.rank)
    }

    /// The cluster (site) this rank lives on.
    pub fn cluster(&self) -> usize {
        self.location().cluster
    }

    /// The shared topology.
    pub fn topology(&self) -> &GridTopology {
        &self.topo
    }

    /// The shared cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Current virtual time at this rank.
    #[inline]
    pub fn clock(&self) -> VirtualTime {
        self.clock
    }

    /// Traffic counters so far.
    #[inline]
    pub fn counters(&self) -> TrafficCounters {
        self.counters
    }

    /// Advances the clock by an explicit span (e.g. externally-modelled
    /// work). Metered as compute time of the current phase.
    pub fn advance(&mut self, dt: VirtualTime) {
        self.clock += dt;
        self.metrics.record_compute(self.current_phase(), 0, dt.secs());
    }

    /// Opens a named algorithm phase. Phases nest (innermost wins for
    /// event stamping and metrics attribution) and must be closed with
    /// [`Process::phase_end`]; the runtime closes any phase left open
    /// when the rank program returns.
    ///
    /// Labels should be short static identifiers (`"leaf-qr"`,
    /// `"tree-reduce"`, …) — they become metric rows and trace
    /// categories; see `docs/observability.md`.
    pub fn phase_begin(&mut self, name: &'static str) {
        self.phase_stack.push((name, self.clock));
    }

    /// Closes the innermost open phase, recording its span as an
    /// [`EventKind::Phase`] event when tracing is enabled.
    ///
    /// # Panics
    /// Panics when no phase is open (an unbalanced `phase_end` is a
    /// bug in the rank program).
    pub fn phase_end(&mut self) {
        let (name, began) = self.phase_stack.pop().expect("phase_end without phase_begin");
        // Stamp the marker with the *enclosing* phase, if any.
        let outer = self.current_phase();
        if let Some(rec) = &mut self.recorder {
            rec.events.push(Event {
                rank: self.rank,
                start: began,
                end: self.clock,
                phase: outer,
                kind: EventKind::Phase { name },
            });
        }
    }

    /// Runs `f` inside a phase (begin/end are paired even on early
    /// `?` returns inside `f` — the result is propagated after the
    /// phase closes).
    pub fn with_phase<R>(
        &mut self,
        name: &'static str,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        self.phase_begin(name);
        let out = f(self);
        self.phase_end();
        out
    }

    /// The innermost open phase, if any.
    pub fn current_phase(&self) -> Option<&'static str> {
        self.phase_stack.last().map(|(n, _)| *n)
    }

    /// The per-phase metrics recorded so far (always on — see
    /// [`crate::metrics`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Charges `flops` floating-point operations at `rate` flop/s (the
    /// model's default rate when `None`) and advances the clock.
    pub fn compute(&mut self, flops: u64, rate: Option<f64>) {
        let start = self.clock;
        self.counters.flops += flops;
        self.clock += self.model.compute_time(flops, rate);
        self.metrics.record_compute(
            self.current_phase(),
            flops,
            (self.clock - start).secs(),
        );
        if let Some(rec) = &mut self.recorder {
            rec.events.push(Event {
                rank: self.rank,
                start,
                end: self.clock,
                phase: self.phase_stack.last().map(|(n, _)| *n),
                kind: EventKind::Compute { flops },
            });
        }
    }

    /// True unless a failure was injected on the `self → dst` link.
    pub fn link_ok(&self, dst: usize) -> bool {
        !self.failed_links.contains(&(self.rank, dst))
    }

    /// Blocking send of `msg` to `dst`.
    ///
    /// Completes (and advances this rank's clock) at
    /// `clock + β + α·wire_bytes`; the message arrives at the same instant,
    /// which models a rendezvous transfer whose cost lands on the critical
    /// path exactly once — the convention under which the paper counts
    /// `β·#msg + α·vol` (Eq. (1)).
    pub fn send<M: WirePayload>(&mut self, dst: usize, tag: u32, msg: M) -> Result<(), CommError> {
        assert!(dst < self.size, "send to nonexistent rank {dst}");
        assert_ne!(dst, self.rank, "self-sends are a protocol bug");
        if !self.link_ok(dst) {
            return Err(CommError::LinkDown { src: self.rank, dst });
        }
        let bytes = msg.wire_bytes();
        let from = self.location();
        let to = self.topo.location(dst);
        let class = LinkClass::between(from, to);
        self.counters.msgs[class.bucket()] += 1;
        self.counters.bytes[class.bucket()] += bytes;
        let send_start = self.clock;
        self.clock += self.model.message_time(from, to, bytes);
        self.metrics.record_send(
            self.current_phase(),
            class,
            bytes,
            (self.clock - send_start).secs(),
        );
        if let Some(rec) = &mut self.recorder {
            rec.events.push(Event {
                rank: self.rank,
                start: send_start,
                end: self.clock,
                phase: self.phase_stack.last().map(|(n, _)| *n),
                kind: EventKind::Send { to: dst, bytes, class },
            });
        }
        let env = Envelope {
            src: self.rank,
            tag,
            arrival: self.clock,
            bytes,
            payload: Box::new(msg),
        };
        // Unbounded channel: never blocks. A disconnected receiver means the
        // peer thread already returned — surface that as PeerGone.
        self.senders[dst]
            .send(env)
            .map_err(|_| CommError::PeerGone { rank: self.rank, from: dst })
    }

    /// Blocking receive of a message from `src` with tag `tag`.
    ///
    /// Advances the clock to the message's arrival time (if later). Messages
    /// from other sources that arrive in the meantime are buffered.
    pub fn recv<M: WirePayload>(&mut self, src: usize, tag: u32) -> Result<M, CommError> {
        assert!(src < self.size, "recv from nonexistent rank {src}");
        // Check the pending buffer first (FIFO per source).
        if let Some(pos) = self.pending.iter().position(|e| e.src == src) {
            let env = self.pending.remove(pos).expect("position just found");
            return self.open::<M>(env, tag);
        }
        loop {
            match self.inbox.recv_timeout(self.recv_timeout) {
                Ok(env) if env.src == src => return self.open::<M>(env, tag),
                Ok(env) => self.pending.push_back(env),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::Timeout { rank: self.rank, from: src })
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::PeerGone { rank: self.rank, from: src })
                }
            }
        }
    }

    /// Combined exchange with a partner: send ours, receive theirs.
    ///
    /// The two transfers overlap on the wire (full-duplex), so the clock
    /// advance is the max of the send completion and the partner's arrival —
    /// the behaviour of one butterfly round of an all-reduce.
    pub fn exchange<M: WirePayload>(
        &mut self,
        partner: usize,
        tag: u32,
        msg: M,
    ) -> Result<M, CommError> {
        let before = self.clock;
        self.send(partner, tag, msg)?;
        let after_send = self.clock;
        // The send and the receive overlap: rewind to the pre-send clock for
        // the receive wait, then take the max.
        self.clock = before;
        let got = self.recv::<M>(partner, tag)?;
        self.clock = self.clock.max(after_send);
        Ok(got)
    }

    fn open<M: WirePayload>(&mut self, env: Envelope, tag: u32) -> Result<M, CommError> {
        if env.tag != tag {
            return Err(CommError::TagMismatch { expected: tag, got: env.tag });
        }
        // Receiver-side NIC serialization: the bytes of this message must
        // be clocked in after whatever the NIC was already receiving. For
        // an idle NIC this is exactly `arrival`; for a hot one (e.g. the
        // root of a flat tree with P−1 concurrent senders) messages queue.
        let from = self.topo.location(env.src);
        let class = LinkClass::between(from, self.location());
        let link = self.model.link(from, self.location());
        let wire = VirtualTime::from_secs(env.bytes as f64 * 8.0 / link.bandwidth_bps);
        let done = env.arrival.max(self.nic_free + wire);
        self.nic_free = done;
        let wait_start = self.clock;
        self.clock = self.clock.max(done);
        self.metrics.record_recv(
            self.current_phase(),
            class,
            env.bytes,
            (self.clock - wait_start).secs(),
        );
        if let Some(rec) = &mut self.recorder {
            rec.events.push(Event {
                rank: self.rank,
                start: wait_start,
                end: self.clock,
                phase: self.phase_stack.last().map(|(n, _)| *n),
                kind: EventKind::Recv { from: env.src, bytes: env.bytes, class },
            });
        }
        env.payload
            .downcast::<M>()
            .map(|b| *b)
            .map_err(|_| CommError::TypeMismatch { expected: std::any::type_name::<M>() })
    }
}
