//! Wait-state diagnostics: *why* was a run slow?
//!
//! The metrics registry ([`crate::metrics`]) says how long each rank was
//! blocked in receives (`recv_wait_s`); the critical path
//! ([`crate::critical`]) says which chain of events bounded the makespan.
//! This module closes the loop with a Scalasca-style classification of
//! **every** blocked second, plus the link-occupancy views of
//! [`tsqr_netsim::occupancy`]:
//!
//! * [`WaitBreakdown`] — each receive's blocked span is split into
//!   *late-sender*, *imbalance*, *propagated*, *delivery*, *unmatched*
//!   and *failure-induced* seconds (see the variants of [`WaitState`]).
//!   The six classes **partition** the blocked time, so their sum
//!   reconciles with the registry's `recv_wait_s` per rank and per
//!   phase — [`Diagnosis::reconcile`] checks that and the test suite
//!   asserts it to 1e-9. Failure-induced waits (peer deaths detected by
//!   the virtual-time failure detector, ghost arrivals of dropped
//!   messages — see `docs/fault-injection.md`) come from
//!   [`EventKind::Fault`] spans whose kind is a wait
//!   ([`crate::trace::FaultKind::is_wait`]).
//! * [`Diagnosis`] — the full report for one traced run: per-rank and
//!   per-phase wait breakdowns, per-link-class usage and a binned
//!   utilization timeline, and the rank×rank communication matrix. This
//!   is what `grid-tsqr analyze` prints.
//!
//! The taxonomy follows the wait-state notions of the Scalasca line of
//! tools, adapted to this runtime's semantics (blocking sends, eager
//! buffered delivery, per-source FIFO channels). Interpretation guidance
//! lives in `docs/observability.md` §8.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use tsqr_netsim::occupancy::{CommMatrix, LinkUsage, UtilizationTimeline};

use crate::metrics::{MetricsRegistry, UNPHASED};
use crate::trace::{EventKind, Trace};

/// Why a receiver was blocked, for one slice of one receive's wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitState {
    /// The matching send had not completed yet and the sender was busy
    /// **communicating** (in a send, or in untraced time) when the wait
    /// began — the classic Late Sender.
    LateSender,
    /// The matching send had not completed yet and the sender was busy
    /// **computing** when the wait began: load imbalance, the
    /// reduction-tree skew of the paper's Figs. 1–2.
    Imbalance,
    /// The matching send had not completed yet and the sender was
    /// *itself blocked in a receive* when the wait began: the wait
    /// propagated from further up the tree.
    Propagated,
    /// The message had left the sender but the receiver was still
    /// clocking it in (NIC serialization / in-flight surplus).
    Delivery,
    /// The receive never matched a send in the trace (only possible in
    /// truncated or failing runs).
    Unmatched,
    /// The receiver was blocked by an injected failure: waiting out the
    /// failure detector's deadline on a dead peer, or clocking in the
    /// ghost of a message the failure schedule dropped. Fed by
    /// [`EventKind::Fault`] wait spans (see `docs/fault-injection.md`).
    FailureInduced,
}

/// Classified blocked-receive seconds. The six wait classes partition
/// the registry's `recv_wait_s`; `late_receiver_s` is informational
/// (time *messages* sat in the receiver's buffer, i.e. the mirror-image
/// Late Receiver pattern — it overlaps the receiver's useful work, so it
/// is **not** part of the wait total).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WaitBreakdown {
    /// Seconds blocked on a sender that was communicating ([`WaitState::LateSender`]).
    pub late_sender_s: f64,
    /// Seconds blocked on a sender that was computing ([`WaitState::Imbalance`]).
    pub imbalance_s: f64,
    /// Seconds blocked on a sender that was itself blocked ([`WaitState::Propagated`]).
    pub propagated_s: f64,
    /// Seconds clocking in an already-sent message ([`WaitState::Delivery`]).
    pub delivery_s: f64,
    /// Seconds in receives with no matching send ([`WaitState::Unmatched`]).
    pub unmatched_s: f64,
    /// Seconds blocked by injected failures — detector deadlines on dead
    /// peers and ghost arrivals of dropped messages
    /// ([`WaitState::FailureInduced`]).
    pub failure_s: f64,
    /// Seconds sent messages sat in this rank's buffer before it asked
    /// for them (Late Receiver; informational, overlaps other work).
    pub late_receiver_s: f64,
    /// Receives classified into this breakdown.
    pub recvs: u64,
}

impl WaitBreakdown {
    /// Sum of the six wait classes — reconciles with the metrics
    /// registry's `recv_wait_s` for the same rank/phase.
    pub fn total_wait_s(&self) -> f64 {
        self.late_sender_s
            + self.imbalance_s
            + self.propagated_s
            + self.delivery_s
            + self.unmatched_s
            + self.failure_s
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &WaitBreakdown) {
        self.late_sender_s += other.late_sender_s;
        self.imbalance_s += other.imbalance_s;
        self.propagated_s += other.propagated_s;
        self.delivery_s += other.delivery_s;
        self.unmatched_s += other.unmatched_s;
        self.failure_s += other.failure_s;
        self.late_receiver_s += other.late_receiver_s;
        self.recvs += other.recvs;
    }

    fn add(&mut self, state: WaitState, secs: f64) {
        match state {
            WaitState::LateSender => self.late_sender_s += secs,
            WaitState::Imbalance => self.imbalance_s += secs,
            WaitState::Propagated => self.propagated_s += secs,
            WaitState::Delivery => self.delivery_s += secs,
            WaitState::Unmatched => self.unmatched_s += secs,
            WaitState::FailureInduced => self.failure_s += secs,
        }
    }
}

/// The full diagnostic report of one traced run. Build with
/// [`Trace::diagnose`]; render with [`Diagnosis::render`].
#[derive(Debug, Clone)]
pub struct Diagnosis {
    /// The traced makespan, in seconds.
    pub makespan_s: f64,
    /// Wait breakdown per rank (index = rank).
    pub per_rank: Vec<WaitBreakdown>,
    /// Wait breakdown per phase, in first-seen order (receives recorded
    /// outside any phase land under [`UNPHASED`]).
    pub per_phase: Vec<(&'static str, WaitBreakdown)>,
    /// Per-link-class message/byte/busy totals (from send events).
    pub link_usage: LinkUsage,
    /// Per-link-class busy time, binned over `[0, makespan]`.
    pub timeline: UtilizationTimeline,
    /// Rank×rank messages/bytes.
    pub comm: CommMatrix,
}

/// What the sender was doing at one instant (used to classify the
/// receiver's pre-arrival wait).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Activity {
    Sending,
    Computing,
    Receiving,
    /// No traced event covers the instant (startup, or untraced local
    /// work) — grouped with [`WaitState::LateSender`]: whatever the
    /// sender did, it was not yet our data.
    Untraced,
}

/// Per-rank event index with O(log n) "what covered instant t" lookup.
struct RankIndex {
    /// `(start_s, end_s, activity)` in program order (starts are
    /// non-decreasing per rank).
    spans: Vec<(f64, f64, Activity)>,
    /// `prefix_max_end[i]` = max end over `spans[..=i]` — lets the
    /// backward walk from the binary-search point stop as soon as no
    /// earlier span can still cover `t`.
    prefix_max_end: Vec<f64>,
}

impl RankIndex {
    fn build(spans: Vec<(f64, f64, Activity)>) -> Self {
        let mut prefix_max_end = Vec::with_capacity(spans.len());
        let mut m = f64::NEG_INFINITY;
        for &(_, end, _) in &spans {
            m = m.max(end);
            prefix_max_end.push(m);
        }
        RankIndex { spans, prefix_max_end }
    }

    /// The sender's activity at instant `t`. Spans covering `t` satisfy
    /// `start <= t < end`; when several overlap (an `exchange`'s send and
    /// receive do), the priority is Sending > Computing > Receiving —
    /// a sender that is at least pushing bytes is "communicating", not
    /// "blocked".
    fn activity_at(&self, t: f64) -> Activity {
        fn priority(a: Activity) -> u8 {
            match a {
                Activity::Sending => 3,
                Activity::Computing => 2,
                Activity::Receiving => 1,
                Activity::Untraced => 0,
            }
        }
        // First span with start > t.
        let hi = self.spans.partition_point(|&(start, _, _)| start <= t);
        let mut best = Activity::Untraced;
        for i in (0..hi).rev() {
            if self.prefix_max_end[i] <= t {
                break; // nothing earlier can reach past t
            }
            let (start, end, act) = self.spans[i];
            if start <= t && t < end && priority(act) > priority(best) {
                best = act;
                if best == Activity::Sending {
                    break;
                }
            }
        }
        best
    }
}

impl Diagnosis {
    /// Number of ranks covered.
    pub fn num_ranks(&self) -> usize {
        self.per_rank.len()
    }

    /// All ranks' breakdowns merged.
    pub fn total(&self) -> WaitBreakdown {
        let mut out = WaitBreakdown::default();
        for b in &self.per_rank {
            out.merge(b);
        }
        out
    }

    /// Messages that crossed a wide-area link (the paper's headline
    /// count: `O(log #clusters)` for TSQR vs `O(n·log P)` for
    /// ScaLAPACK).
    pub fn wan_msgs(&self) -> u64 {
        self.link_usage.wan_msgs()
    }

    /// Cross-checks this trace-derived breakdown against the always-on
    /// metrics registries (one per rank, as in
    /// [`crate::RunReport::metrics`]): returns the largest absolute
    /// drift, in seconds, between a breakdown's wait total and the
    /// matching `recv_wait_s` — over every rank and every phase. Both
    /// sides are computed from the same virtual-time spans, so the drift
    /// is floating-point summation noise only (≪ 1e-9 s).
    pub fn reconcile(&self, metrics: &[MetricsRegistry]) -> f64 {
        let mut drift = 0.0f64;
        for (rank, b) in self.per_rank.iter().enumerate() {
            let recorded =
                metrics.get(rank).map(|m| m.total().recv_wait_s).unwrap_or(0.0);
            drift = drift.max((b.total_wait_s() - recorded).abs());
        }
        // Per-phase: compare against the merged registry.
        let mut merged = MetricsRegistry::default();
        for m in metrics {
            merged.merge(m);
        }
        for name in merged.phase_names() {
            let recorded = merged.phase(name).map(|c| c.recv_wait_s).unwrap_or(0.0);
            let derived = self
                .per_phase
                .iter()
                .find(|(p, _)| *p == name)
                .map(|(_, b)| b.total_wait_s())
                .unwrap_or(0.0);
            drift = drift.max((derived - recorded).abs());
        }
        for (name, b) in &self.per_phase {
            if merged.phase(name).is_none() {
                drift = drift.max(b.total_wait_s());
            }
        }
        drift
    }

    /// The `k` ranks with the largest wait totals, as
    /// `(rank, breakdown)`, ties broken by rank for determinism.
    pub fn worst_ranks(&self, k: usize) -> Vec<(usize, WaitBreakdown)> {
        let mut v: Vec<(usize, WaitBreakdown)> =
            self.per_rank.iter().copied().enumerate().collect();
        v.sort_by(|a, b| {
            b.1.total_wait_s()
                .partial_cmp(&a.1.total_wait_s())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        v.truncate(k);
        v
    }

    /// Renders the three report sections (wait states, link
    /// utilization, communication matrix) as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== wait states ==");
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
            "phase",
            "late-snd s",
            "imbal s",
            "propag s",
            "deliver s",
            "unmatch s",
            "failure s",
            "total-wait",
            "late-rcv s"
        );
        let mut rows: Vec<(&str, WaitBreakdown)> =
            self.per_phase.iter().map(|(p, b)| (*p, *b)).collect();
        rows.push(("TOTAL", self.total()));
        for (p, b) in rows {
            let _ = writeln!(
                out,
                "{:<16} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>11.4} {:>10.4}",
                p,
                b.late_sender_s,
                b.imbalance_s,
                b.propagated_s,
                b.delivery_s,
                b.unmatched_s,
                b.failure_s,
                b.total_wait_s(),
                b.late_receiver_s,
            );
        }
        let _ = writeln!(out, "worst waiting ranks:");
        for (rank, b) in self.worst_ranks(8) {
            let _ = writeln!(
                out,
                "  rank {rank:<4} waited {:>10.4} s  (late-sender {:.4}, imbalance {:.4}, propagated {:.4}, delivery {:.4}, failure {:.4})",
                b.total_wait_s(),
                b.late_sender_s,
                b.imbalance_s,
                b.propagated_s,
                b.delivery_s,
                b.failure_s,
            );
        }
        let _ = writeln!(out, "\n== link utilization ==");
        out.push_str(&self.link_usage.render(self.makespan_s));
        out.push_str(&self.timeline.render());
        let _ = writeln!(out, "\n== communication matrix ==");
        out.push_str(&self.comm.render());
        out
    }
}

impl Trace {
    /// Builds the full wait-state / utilization / communication
    /// diagnosis of this trace (see the module docs for the taxonomy).
    ///
    /// `num_ranks` sizes the per-rank tables and the communication
    /// matrix; events of ranks `>= num_ranks` are ignored (none exist in
    /// traces produced by this runtime when `num_ranks` matches the
    /// run). `timeline_bins` controls the utilization timeline
    /// resolution (e.g. 64).
    pub fn diagnose(&self, num_ranks: usize, timeline_bins: usize) -> Diagnosis {
        let makespan_s = self.makespan().secs();
        let mut per_rank = vec![WaitBreakdown::default(); num_ranks];
        let mut per_phase: Vec<(&'static str, WaitBreakdown)> = Vec::new();
        let mut link_usage = LinkUsage::default();
        let mut timeline =
            UtilizationTimeline::new(makespan_s, timeline_bins.max(1));
        let mut comm = CommMatrix::new(num_ranks);

        // Link-occupancy views come straight from send events.
        for e in &self.events {
            if let EventKind::Send { to, bytes, class, .. } = e.kind {
                let (s, t) = (e.start.secs(), e.end.secs());
                link_usage.record(class.bucket(), bytes, s, t);
                timeline.record(class.bucket(), s, t);
                if e.rank < num_ranks && to < num_ranks {
                    comm.record(e.rank, to, bytes);
                }
            }
        }

        // Per-rank activity indices for sender classification.
        let mut spans: BTreeMap<usize, Vec<(f64, f64, Activity)>> = BTreeMap::new();
        for e in &self.events {
            let act = match e.kind {
                EventKind::Send { .. } => Activity::Sending,
                EventKind::Recv { .. } => Activity::Receiving,
                EventKind::Compute { .. } => Activity::Computing,
                // A failure wait is "blocked"; a dropped transmission is
                // still pushing bytes. Zero-width degradation markers
                // never cover an instant either way.
                EventKind::Fault { kind, .. } if kind.is_wait() => Activity::Receiving,
                EventKind::Fault { .. } => Activity::Sending,
                EventKind::Phase { .. } => continue,
            };
            spans
                .entry(e.rank)
                .or_default()
                .push((e.start.secs(), e.end.secs(), act));
        }
        let index: BTreeMap<usize, RankIndex> =
            spans.into_iter().map(|(r, s)| (r, RankIndex::build(s))).collect();

        let recv_to_send: BTreeMap<usize, usize> =
            self.match_messages().iter().map(|m| (m.recv, m.send)).collect();

        let phase_mut = |name: &'static str,
                             per_phase: &mut Vec<(&'static str, WaitBreakdown)>|
         -> usize {
            if let Some(i) = per_phase.iter().position(|(p, _)| *p == name) {
                i
            } else {
                per_phase.push((name, WaitBreakdown::default()));
                per_phase.len() - 1
            }
        };

        for (i, e) in self.events.iter().enumerate() {
            // Failure-induced waits: receiver-side Fault spans (detector
            // deadlines, ghost arrivals). Their metrics-side counterpart
            // is the `record_recv` the runtime issued for the same span,
            // so they join the partition of `recv_wait_s`. Sender-side
            // Fault spans (dropped transmissions) are backed by
            // `record_send` and deliberately stay out.
            if let EventKind::Fault { kind, .. } = e.kind {
                if kind.is_wait() && e.rank < num_ranks {
                    let mut b = WaitBreakdown { recvs: 1, ..WaitBreakdown::default() };
                    b.add(WaitState::FailureInduced, (e.end - e.start).secs());
                    let pi = phase_mut(e.phase.unwrap_or(UNPHASED), &mut per_phase);
                    per_phase[pi].1.merge(&b);
                    per_rank[e.rank].merge(&b);
                }
                continue;
            }
            let EventKind::Recv { from, .. } = e.kind else { continue };
            if e.rank >= num_ranks {
                continue;
            }
            let wait_s = (e.end - e.start).secs();
            let mut b = WaitBreakdown { recvs: 1, ..WaitBreakdown::default() };
            match recv_to_send.get(&i) {
                None => b.add(WaitState::Unmatched, wait_s),
                Some(&si) => {
                    let send = &self.events[si];
                    let (rs, re) = (e.start.secs(), e.end.secs());
                    let se = send.end.secs();
                    // Pre-arrival wait: blocked while the send was still
                    // in flight on the sender.
                    let pre = (re.min(se) - rs).max(0.0);
                    if pre > 0.0 {
                        let state = match index
                            .get(&from)
                            .map(|ix| ix.activity_at(rs))
                            .unwrap_or(Activity::Untraced)
                        {
                            Activity::Computing => WaitState::Imbalance,
                            Activity::Receiving => WaitState::Propagated,
                            Activity::Sending | Activity::Untraced => {
                                WaitState::LateSender
                            }
                        };
                        b.add(state, pre);
                    }
                    // Post-arrival surplus: the receiver's NIC clocking
                    // the message in.
                    b.add(WaitState::Delivery, (re - rs.max(se)).max(0.0));
                    // Late Receiver (informational): the message sat
                    // ready before the receiver asked.
                    b.late_receiver_s = (rs - se).max(0.0);
                }
            }
            // Make the per-rank/per-phase sums reproduce the metrics
            // registry bit patterns as closely as possible: add the
            // whole wait in one piece.
            let pi = phase_mut(e.phase.unwrap_or(UNPHASED), &mut per_phase);
            per_phase[pi].1.merge(&b);
            per_rank[e.rank].merge(&b);
        }

        Diagnosis { makespan_s, per_rank, per_phase, link_usage, timeline, comm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Event;
    use tsqr_netsim::{LinkClass, VirtualTime};

    const C: LinkClass = LinkClass::IntraCluster;
    const W: LinkClass = LinkClass::InterCluster(0, 1);

    fn ev(rank: usize, s: f64, e: f64, kind: EventKind) -> Event {
        Event {
            rank,
            start: VirtualTime::from_secs(s),
            end: VirtualTime::from_secs(e),
            phase: None,
            kind,
        }
    }

    fn pev(rank: usize, s: f64, e: f64, phase: &'static str, kind: EventKind) -> Event {
        Event { phase: Some(phase), ..ev(rank, s, e, kind) }
    }

    fn send(to: usize, class: LinkClass) -> EventKind {
        EventKind::Send { to, bytes: 64, class, tag: 0 }
    }

    fn recv(from: usize, class: LinkClass) -> EventKind {
        EventKind::Recv { from, bytes: 64, class, tag: 0, wildcard: false }
    }

    #[test]
    fn imbalance_when_sender_computes() {
        // Rank 0 computes [0,2], sends [2,3]; rank 1 waits [0,3].
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 2.0, EventKind::Compute { flops: 1 }),
            ev(0, 2.0, 3.0, send(1, C)),
            ev(1, 0.0, 3.0, recv(0, C)),
        ]);
        let d = t.diagnose(2, 8);
        let b = d.per_rank[1];
        assert!((b.imbalance_s - 3.0).abs() < 1e-12, "{b:?}");
        assert_eq!(b.late_sender_s, 0.0);
        assert_eq!(b.delivery_s, 0.0);
        assert!((b.total_wait_s() - 3.0).abs() < 1e-12);
        assert_eq!(d.per_rank[0].total_wait_s(), 0.0);
        assert_eq!(d.comm.msgs(0, 1), 1);
        assert_eq!(d.link_usage.total_msgs(), 1);
    }

    #[test]
    fn late_sender_and_delivery_split() {
        // Sender busy sending elsewhere at wait start; its matched send
        // ends at 2.0, the recv drains until 2.5 → 2.0 late-sender +
        // 0.5 delivery.
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, send(2, C)),
            ev(0, 1.0, 2.0, send(1, C)),
            ev(1, 0.0, 2.5, recv(0, C)),
            ev(2, 0.0, 1.0, recv(0, C)),
        ]);
        let d = t.diagnose(3, 8);
        let b = d.per_rank[1];
        assert!((b.late_sender_s - 2.0).abs() < 1e-12, "{b:?}");
        assert!((b.delivery_s - 0.5).abs() < 1e-12, "{b:?}");
        assert!((b.total_wait_s() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn propagated_when_sender_is_blocked() {
        // Rank 2 waits on rank 1, which is itself blocked on rank 0.
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 2.0, EventKind::Compute { flops: 1 }),
            ev(0, 2.0, 2.5, send(1, C)),
            ev(1, 0.0, 2.5, recv(0, C)),
            ev(1, 2.5, 3.0, send(2, C)),
            ev(2, 0.0, 3.0, recv(1, C)),
        ]);
        let d = t.diagnose(3, 8);
        assert!((d.per_rank[2].propagated_s - 3.0).abs() < 1e-12);
        assert!((d.per_rank[1].imbalance_s - 2.5).abs() < 1e-12);
    }

    #[test]
    fn late_receiver_is_informational() {
        // Message arrives at 1.0; receiver only asks at 3.0 (zero-width
        // recv). Not a wait — but 2.0 s of Late Receiver.
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, send(1, C)),
            ev(1, 0.0, 3.0, EventKind::Compute { flops: 1 }),
            ev(1, 3.0, 3.0, recv(0, C)),
        ]);
        let d = t.diagnose(2, 8);
        let b = d.per_rank[1];
        assert_eq!(b.total_wait_s(), 0.0);
        assert!((b.late_receiver_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unmatched_recv_is_its_own_class() {
        let t = Trace::from_parts(vec![ev(0, 1.0, 3.0, recv(7, C))]);
        let d = t.diagnose(1, 4);
        assert!((d.per_rank[0].unmatched_s - 2.0).abs() < 1e-12);
        assert!((d.total().total_wait_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_phase_buckets_and_render() {
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, EventKind::Compute { flops: 1 }),
            pev(0, 1.0, 2.0, "tree-reduce", send(1, W)),
            pev(1, 0.0, 2.0, "tree-reduce", recv(0, W)),
            ev(1, 2.0, 2.5, recv(5, C)), // unmatched, unphased
        ]);
        let d = t.diagnose(2, 8);
        let tr = d
            .per_phase
            .iter()
            .find(|(p, _)| *p == "tree-reduce")
            .map(|(_, b)| *b)
            .unwrap();
        assert!((tr.total_wait_s() - 2.0).abs() < 1e-12);
        let un = d
            .per_phase
            .iter()
            .find(|(p, _)| *p == UNPHASED)
            .map(|(_, b)| *b)
            .unwrap();
        assert!((un.unmatched_s - 0.5).abs() < 1e-12);
        assert_eq!(d.wan_msgs(), 1);
        let r = d.render();
        assert!(r.contains("== wait states =="));
        assert!(r.contains("tree-reduce"));
        assert!(r.contains("== link utilization =="));
        assert!(r.contains("== communication matrix =="));
        assert!(r.contains("worst waiting ranks"));
    }

    #[test]
    fn reconcile_against_registry() {
        // Build the matching registries by hand: the recv waits recorded
        // by the runtime equal the traced recv spans.
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 2.0, EventKind::Compute { flops: 1 }),
            pev(0, 2.0, 3.0, "tree-reduce", send(1, C)),
            pev(1, 0.0, 3.0, "tree-reduce", recv(0, C)),
        ]);
        let d = t.diagnose(2, 8);
        let mut m0 = MetricsRegistry::default();
        m0.record_compute(None, 1, 2.0);
        m0.record_send(Some("tree-reduce"), C, 64, 1.0);
        let mut m1 = MetricsRegistry::default();
        m1.record_recv(Some("tree-reduce"), C, 64, 3.0);
        assert!(d.reconcile(&[m0, m1]) < 1e-12);
        // A registry that disagrees shows up as drift.
        let mut bad = MetricsRegistry::default();
        bad.record_recv(Some("tree-reduce"), C, 64, 1.0);
        let drift = d.reconcile(&[MetricsRegistry::default(), bad]);
        assert!(drift > 1.9, "drift {drift}");
    }

    #[test]
    fn failure_waits_are_their_own_class() {
        use crate::trace::FaultKind;
        // A detector wait on a dead peer is failure-induced; a dropped
        // transmission (sender side) and a zero-width degradation marker
        // are not part of the receiver wait partition.
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 2.0, EventKind::Fault { peer: 3, class: C, kind: FaultKind::RankFailed }),
            ev(0, 2.0, 2.0, EventKind::Fault { peer: 1, class: C, kind: FaultKind::LinkDegraded }),
            ev(0, 2.0, 3.0, EventKind::Fault { peer: 1, class: C, kind: FaultKind::DropSent }),
        ]);
        let d = t.diagnose(1, 4);
        assert!((d.per_rank[0].failure_s - 2.0).abs() < 1e-12, "{:?}", d.per_rank[0]);
        assert!((d.total().total_wait_s() - 2.0).abs() < 1e-12);
        assert!(d.render().contains("failure s"));
    }

    #[test]
    fn exchange_overlap_classifies_sender_as_sending() {
        // Ranks 0 and 1 exchange: both sends span [0,1]; rank 1's recv
        // waits [0,1] while rank 0 is simultaneously sending → late
        // sender (communicating), not propagated.
        let t = Trace::from_parts(vec![
            ev(0, 0.0, 1.0, send(1, C)),
            ev(0, 0.0, 1.0, recv(1, C)),
            ev(1, 0.0, 1.0, send(0, C)),
            ev(1, 0.0, 1.0, recv(0, C)),
        ]);
        let d = t.diagnose(2, 4);
        assert!((d.per_rank[1].late_sender_s - 1.0).abs() < 1e-12);
        assert_eq!(d.per_rank[1].propagated_s, 0.0);
    }
}
