//! Out-of-core TSQR: the flat-tree variant the paper cites from Gunter &
//! van de Geijn \[26\] ("CAQR with a flat tree has been implemented in the
//! context of out-of-core QR factorization", §II-C).
//!
//! A tall matrix that does not fit in memory is streamed through a
//! bounded-memory window one row-block at a time: the first block is
//! QR-factored, and every further block is folded into the running R with
//! one structured [`tsqr_linalg::stacked::tpqrt_dense`] elimination. Peak
//! resident memory is one block plus the `n × n` R — independent of M.
//!
//! The per-block implicit Q factors can optionally be retained (what a real
//! out-of-core solver would write back to disk), which makes `Qᵀ·b`
//! available in the same single pass — enough for streaming least squares.

use tsqr_linalg::flops;
use tsqr_linalg::prelude::*;
use tsqr_linalg::qr::{orm2r, Side, Trans};
use tsqr_linalg::stacked::{tpmqrt_dense, tpqrt_dense, DenseStackedFactors};
use tsqr_linalg::tri::{trsv, Triangle};
use tsqr_linalg::Matrix;

/// A bounded-memory streaming QR accumulator.
///
/// Feed row blocks top-to-bottom with [`StreamingQr::push_block`]; read the
/// R factor (and, if enabled, solve least-squares problems) when done.
pub struct StreamingQr {
    n: usize,
    r: Option<Matrix>,
    /// Rows ingested so far.
    rows_seen: u64,
    /// Flops spent (closed forms) — what an out-of-core cost model charges.
    pub flops: u64,
    /// Retained per-block factors (enabled by [`StreamingQr::with_q`]):
    /// the first block's dense QR, then one dense-stacked elimination per
    /// further block.
    keep_q: bool,
    first: Option<QrFactors>,
    eliminations: Vec<(usize, DenseStackedFactors)>,
    /// Running c = leading rows of Qᵀ·b, when a right-hand side streams
    /// along.
    c: Option<Vec<f64>>,
}

impl StreamingQr {
    /// A new accumulator for matrices with `n` columns (R-factor only).
    pub fn new(n: usize) -> Self {
        StreamingQr {
            n,
            r: None,
            rows_seen: 0,
            flops: 0,
            keep_q: false,
            first: None,
            eliminations: Vec::new(),
            c: None,
        }
    }

    /// Also retain the implicit Q factors (costs one factor set per block —
    /// the "write V to disk" of a real out-of-core solver).
    pub fn with_q(mut self) -> Self {
        self.keep_q = true;
        self
    }

    /// Ingests the next row block (top-to-bottom order). When `rhs` is
    /// given it must hold one value per block row; the accumulator then
    /// maintains `c = (Qᵀ·b)[..n]` for [`StreamingQr::solve`].
    pub fn push_block(&mut self, block: &Matrix, rhs: Option<&[f64]>) {
        assert_eq!(block.cols(), self.n, "block has wrong column count");
        let rows = block.rows();
        assert!(rows > 0, "empty block");
        if let Some(b) = rhs {
            assert_eq!(b.len(), rows, "rhs length mismatch");
            assert!(
                self.c.is_some() || self.rows_seen == 0,
                "rhs must stream along from the first block"
            );
        }
        self.rows_seen += rows as u64;
        match self.r.take() {
            None => {
                assert!(rows >= self.n, "first block must have at least n rows");
                let f = QrFactors::compute(block, 32);
                self.flops += flops::geqrf(rows as u64, self.n as u64);
                self.r = Some(f.r().upper_triangular_padded());
                if let Some(b) = rhs {
                    let mut c = Matrix::from_col_major(rows, 1, b.to_vec()).expect("rhs");
                    orm2r(Side::Left, Trans::Yes, &f.factors.view(), &f.tau, &mut c.view_mut());
                    self.flops += 4 * rows as u64 * self.n as u64;
                    self.c = Some((0..self.n).map(|i| c[(i, 0)]).collect());
                }
                if self.keep_q {
                    self.first = Some(f);
                }
            }
            Some(mut r) => {
                let mut b = block.clone();
                let f = tpqrt_dense(&mut r, &mut b);
                self.flops += flops::tpqrt_dense(self.n as u64, rows as u64);
                self.r = Some(r);
                if let Some(bvec) = rhs {
                    let c = self.c.as_mut().expect("rhs streamed from the start");
                    let mut c1 = Matrix::from_col_major(self.n, 1, c.clone()).expect("c");
                    let mut c2 =
                        Matrix::from_col_major(rows, 1, bvec.to_vec()).expect("rhs column");
                    tpmqrt_dense(Trans::Yes, &f, &mut c1, &mut c2);
                    self.flops += flops::tpmqrt_dense(self.n as u64, rows as u64, 1);
                    *c = (0..self.n).map(|i| c1[(i, 0)]).collect();
                }
                if self.keep_q {
                    self.eliminations.push((rows, f));
                }
            }
        }
    }

    /// Rows ingested so far.
    pub fn rows_seen(&self) -> u64 {
        self.rows_seen
    }

    /// The current `n × n` R factor (of everything pushed so far).
    pub fn r(&self) -> &Matrix {
        self.r.as_ref().expect("no blocks pushed yet")
    }

    /// Solves `min ‖A·x − b‖` for the streamed `A` and `b` (requires a
    /// right-hand side to have streamed along with every block).
    pub fn solve(&self) -> Vec<f64> {
        let r = self.r();
        let mut x = self.c.clone().expect("no right-hand side was streamed");
        trsv(Triangle::Upper, &r.view(), &mut x);
        x
    }

    /// Reconstructs this accumulator's explicit thin Q (`rows_seen × n`) —
    /// test-scale only; requires [`StreamingQr::with_q`].
    ///
    /// Walks the flat tree backwards, exactly like the distributed
    /// down-sweep: the coupling block E starts as the identity and each
    /// elimination peels off its block's rows.
    pub fn q_thin(&self) -> Matrix {
        assert!(self.keep_q, "enable with_q() to reconstruct Q");
        let n = self.n;
        let mut e = Matrix::identity(n);
        // Per-block coupling blocks, bottom-up.
        let mut block_qs: Vec<Matrix> = Vec::with_capacity(self.eliminations.len());
        for (rows, f) in self.eliminations.iter().rev() {
            let mut c2 = Matrix::zeros(*rows, n);
            // [E; 0] update: C1 = E (n×n), C2 = block rows.
            tpmqrt_dense(Trans::No, f, &mut e, &mut c2);
            block_qs.push(c2);
        }
        block_qs.reverse();
        // First block: apply its dense implicit Q to [E; 0].
        let first = self.first.as_ref().expect("first block retained");
        let rows0 = first.factors.rows();
        let mut c = Matrix::zeros(rows0, n);
        c.set_sub(0, 0, &e);
        orm2r(Side::Left, Trans::No, &first.factors.view(), &first.tau, &mut c.view_mut());
        let mut blocks = vec![c];
        blocks.extend(block_qs);
        let refs: Vec<&Matrix> = blocks.iter().collect();
        Matrix::vstack_all(&refs)
    }
}

/// One-call out-of-core QR of the seeded workload matrix, streaming in
/// blocks of `block_rows`: returns the R factor while never holding more
/// than one block in memory.
pub fn oocqr_workload(seed: u64, m: u64, n: usize, block_rows: usize) -> Matrix {
    let mut acc = StreamingQr::new(n);
    let mut row0 = 0u64;
    while row0 < m {
        let rows = (block_rows as u64).min(m - row0).max(if row0 == 0 { n as u64 } else { 1 });
        let block = crate::workload::block(seed, row0, rows as usize, n);
        acc.push_block(&block, None);
        row0 += rows;
    }
    acc.r().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use tsqr_linalg::verify::{orthogonality, r_distance, relative_residual};

    fn reference_r(seed: u64, m: usize, n: usize) -> Matrix {
        QrFactors::compute(&workload::full_matrix(seed, m, n), 16)
            .r()
            .upper_triangular_padded()
    }

    #[test]
    fn streaming_r_matches_reference_for_various_block_sizes() {
        let (m, n, seed) = (500u64, 7usize, 121u64);
        for block_rows in [7usize, 16, 100, 500, 333] {
            let r = oocqr_workload(seed, m, n, block_rows);
            assert!(
                r_distance(&r, &reference_r(seed, m as usize, n)) < 1e-10,
                "block_rows = {block_rows}"
            );
        }
    }

    #[test]
    fn q_reconstruction_round_trip() {
        let (m, n, seed) = (160usize, 5usize, 123u64);
        let a = workload::full_matrix(seed, m, n);
        let mut acc = StreamingQr::new(n).with_q();
        for chunk in [0usize..40, 40..100, 100..130, 130..160] {
            let block = a.sub_matrix(chunk.start, 0, chunk.end - chunk.start, n);
            acc.push_block(&block, None);
        }
        let q = acc.q_thin();
        assert!(orthogonality(&q) < 1e-12);
        assert!(relative_residual(&a, &q, acc.r()) < 1e-12);
    }

    #[test]
    fn streaming_least_squares() {
        let (m, n, seed) = (300usize, 6usize, 125u64);
        let a = workload::full_matrix(seed, m, n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.5).collect();
        let b: Vec<f64> = (0..m)
            .map(|i| (0..n).map(|j| a[(i, j)] * x_true[j]).sum())
            .collect();
        let mut acc = StreamingQr::new(n);
        let mut r0 = 0;
        for rows in [50usize, 120, 80, 50] {
            let block = a.sub_matrix(r0, 0, rows, n);
            acc.push_block(&block, Some(&b[r0..r0 + rows]));
            r0 += rows;
        }
        let x = acc.solve();
        for (g, w) in x.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-10, "{g} vs {w}");
        }
    }

    #[test]
    fn flop_count_tracks_closed_forms() {
        let (m, n) = (4000u64, 16usize);
        let mut acc = StreamingQr::new(n);
        let block_rows = 250usize;
        let mut row0 = 0u64;
        while row0 < m {
            let block = workload::block(1, row0, block_rows, n);
            acc.push_block(&block, None);
            row0 += block_rows as u64;
        }
        // Leading order: first block geqrf + (blocks−1) dense eliminations
        // at 2·rows·n² each ≈ 2·m·n² total.
        let expect = 2.0 * m as f64 * (n * n) as f64;
        let got = acc.flops as f64;
        assert!((got / expect - 1.0).abs() < 0.1, "flops {got} vs ~{expect}");
    }

    #[test]
    fn rows_seen_and_single_block_degenerates_to_qr() {
        let a = workload::full_matrix(9, 50, 4);
        let mut acc = StreamingQr::new(4);
        acc.push_block(&a, None);
        assert_eq!(acc.rows_seen(), 50);
        let want = QrFactors::compute(&a, 8).r().upper_triangular_padded();
        assert!(r_distance(acc.r(), &want) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "first block must have at least n rows")]
    fn short_first_block_panics() {
        let mut acc = StreamingQr::new(8);
        acc.push_block(&Matrix::zeros(4, 8), None);
    }
}
