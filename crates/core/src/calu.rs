//! CALU: Communication-Avoiding LU for general matrices — the second half
//! of the paper's §VI remark that the TSQR/CAQR results "can be (trivially)
//! extended to TSLU/CALU \[25\]" (Grigori, Demmel, Xiang).
//!
//! CALU is the (factor panel)/(update trailing) algorithm whose panel step
//! is [`crate::tslu`]'s tournament pivoting: each panel's pivot rows are
//! chosen by a reduction over row blocks (one message per tree edge instead
//! of one reduction per column), the winners are swapped to the top, and a
//! standard blocked update follows. This module provides the single-process
//! blocked variant — the same role `caqr` plays next to `caqr_dist` — with
//! every transformation retained so the factorization can be verified as a
//! genuine `P·A = L·U`.
//!
//! Stability: tournament pivoting does not reproduce partial pivoting's
//! permutation, but it bounds element growth in the same spirit (the bound
//! degrades with the tree depth; in practice the growth is comparable).
//! The tests pit it against unpivoted LU on adversarial panels.

use tsqr_linalg::lu::getrf;
use tsqr_linalg::tri::{trsm_left, Triangle};
use tsqr_linalg::Matrix;

/// A CALU factorization: `P·A = L·U` with `P` from per-panel tournaments.
#[derive(Debug, Clone)]
pub struct CaluFactors {
    /// Row permutation: `perm[i]` is the original row index now at
    /// position `i` (apply with [`CaluFactors::permute_rows`]).
    pub perm: Vec<usize>,
    /// Unit-lower-triangular factor (`m × k`, `k = min(m, n)`).
    pub l: Matrix,
    /// Upper-trapezoidal factor (`k × n`).
    pub u: Matrix,
}

impl CaluFactors {
    /// `P·B`: reorders the rows of `b` by the recorded permutation.
    pub fn permute_rows(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.perm.len(), "permute_rows: row mismatch");
        Matrix::from_fn(b.rows(), b.cols(), |i, j| b[(self.perm[i], j)])
    }

    /// The largest |entry| of `L` — the growth the tournament is supposed
    /// to keep modest.
    pub fn max_multiplier(&self) -> f64 {
        self.l.norm_max()
    }

    /// Solves `A·x = b` for square `A` via the factorization.
    pub fn solve(&self, b: &Matrix) -> Matrix {
        let n = self.u.rows();
        assert_eq!(self.u.cols(), n, "solve: square systems only");
        let mut x = self.permute_rows(b);
        // Forward substitution with unit-lower L.
        for col in 0..x.cols() {
            for i in 0..n {
                let mut s = x[(i, col)];
                for j in 0..i {
                    s -= self.l[(i, j)] * x[(j, col)];
                }
                x[(i, col)] = s;
            }
        }
        trsm_left(Triangle::Upper, &self.u.view(), &mut x.view_mut());
        x
    }
}

/// Tournament pivot selection for one panel: row blocks of height `rb`
/// play off pairwise (binary tree) until `w` winner rows remain.
/// Returns the winners' row indices *within the panel*, in pivot order.
fn tournament(panel: &Matrix, rb: usize) -> Vec<usize> {
    let (m, w) = (panel.rows(), panel.cols());
    debug_assert!(m >= w);
    // Leaves: each block nominates its local partial pivots.
    let mut contenders: Vec<(Matrix, Vec<usize>)> = Vec::new();
    let mut r0 = 0;
    while r0 < m {
        let rows = rb.max(w).min(m - r0);
        // A short remainder block merges into the previous contender.
        if rows < w {
            let (prev_m, mut prev_idx) = contenders.pop().expect("first block is >= w rows");
            let merged = prev_m.vstack(&panel.sub_matrix(r0, 0, rows, w));
            prev_idx.extend(r0..r0 + rows);
            contenders.push((merged, prev_idx));
            break;
        }
        contenders.push((panel.sub_matrix(r0, 0, rows, w), (r0..r0 + rows).collect()));
        r0 += rows;
    }
    let mut round: Vec<(Matrix, Vec<usize>)> = contenders
        .into_iter()
        .map(|(block, idx)| select(&block, &idx))
        .collect();
    // Binary tree of playoffs.
    while round.len() > 1 {
        let mut next = Vec::with_capacity(round.len().div_ceil(2));
        let mut it = round.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => {
                    let stacked = a.0.vstack(&b.0);
                    let idx: Vec<usize> =
                        a.1.iter().chain(b.1.iter()).copied().collect();
                    next.push(select(&stacked, &idx));
                }
                None => next.push(a),
            }
        }
        round = next;
    }
    round.pop().expect("at least one contender").1
}

/// Partial-pivoting selection of `cols` rows from a block, with index
/// tracking.
fn select(block: &Matrix, idx: &[usize]) -> (Matrix, Vec<usize>) {
    let w = block.cols();
    let f = getrf(block);
    let mut perm: Vec<usize> = (0..block.rows()).collect();
    for (j, &p) in f.ipiv.iter().enumerate() {
        perm.swap(j, p);
    }
    let rows = Matrix::from_fn(w, w, |i, j| block[(perm[i], j)]);
    let winners: Vec<usize> = perm[..w].iter().map(|&i| idx[i]).collect();
    (rows, winners)
}

/// Blocked CALU of `a` with panel width `nb` and tournament block height
/// `rb` (`rb ≥ nb`).
pub fn calu(a: &Matrix, nb: usize, rb: usize) -> CaluFactors {
    let (m, n) = a.shape();
    assert!(nb >= 1 && rb >= nb, "need rb >= nb >= 1");
    let kmax = m.min(n);
    let mut work = a.clone();
    let mut perm: Vec<usize> = (0..m).collect();
    let mut col0 = 0;
    while col0 < kmax {
        let w = nb.min(kmax - col0);
        let rows_below = m - col0;
        // --- Tournament on the panel (rows col0.., columns col0..col0+w). ---
        let panel = work.sub_matrix(col0, col0, rows_below, w);
        let winners = tournament(&panel, rb);
        // Swap the winners (in pivot order) to the top of the active
        // region. `winners` indexes the panel rows as they were *before*
        // any of this panel's swaps, so track where each original row
        // currently lives.
        let mut cur_of_orig: Vec<usize> = (0..rows_below).collect();
        let mut orig_of_cur: Vec<usize> = (0..rows_below).collect();
        for (t, &win) in winners.iter().enumerate() {
            let src_rel = cur_of_orig[win];
            let dst_rel = t;
            if src_rel != dst_rel {
                let (src, dst) = (col0 + src_rel, col0 + dst_rel);
                for c in 0..n {
                    let tmp = work[(dst, c)];
                    work[(dst, c)] = work[(src, c)];
                    work[(src, c)] = tmp;
                }
                perm.swap(dst, src);
                let a = orig_of_cur[src_rel];
                let b = orig_of_cur[dst_rel];
                orig_of_cur.swap(src_rel, dst_rel);
                cur_of_orig[a] = dst_rel;
                cur_of_orig[b] = src_rel;
            }
        }
        // --- Panel factorization without further pivoting (the winners
        //     are already on top in pivot order). ---
        for j in col0..col0 + w {
            let pivot = work[(j, j)];
            if pivot == 0.0 {
                continue;
            }
            for i in j + 1..m {
                let l = work[(i, j)] / pivot;
                work[(i, j)] = l;
                for c in j + 1..col0 + w {
                    let wjc = work[(j, c)];
                    work[(i, c)] -= l * wjc;
                }
            }
        }
        // --- Blocked trailing update: U rows then Schur complement. ---
        let trail = n - col0 - w;
        if trail > 0 {
            // U_top := L11⁻¹ · A_top  (unit lower triangular forward solve).
            for c in col0 + w..n {
                for i in col0..col0 + w {
                    let mut s = work[(i, c)];
                    for j in col0..i {
                        s -= work[(i, j)] * work[(j, c)];
                    }
                    work[(i, c)] = s;
                }
            }
            // A_rest -= L21 · U_top.
            for i in col0 + w..m {
                for c in col0 + w..n {
                    let mut s = work[(i, c)];
                    for j in col0..col0 + w {
                        s -= work[(i, j)] * work[(j, c)];
                    }
                    work[(i, c)] = s;
                }
            }
        }
        col0 += w;
    }
    let l = Matrix::from_fn(m, kmax, |i, j| {
        if i == j {
            1.0
        } else if i > j {
            work[(i, j)]
        } else {
            0.0
        }
    });
    let u = Matrix::from_fn(kmax, n, |i, j| if i <= j { work[(i, j)] } else { 0.0 });
    CaluFactors { perm, l, u }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    fn check(a: &Matrix, nb: usize, rb: usize, growth_bound: f64) {
        let f = calu(a, nb, rb);
        let pa = f.permute_rows(a);
        let rec = f.l.matmul(&f.u);
        assert!(
            rec.sub_elem(&pa).norm_max() < 1e-10 * a.norm_max().max(1.0),
            "P·A != L·U for {}x{} nb={nb} rb={rb}",
            a.rows(),
            a.cols()
        );
        assert!(f.max_multiplier() <= growth_bound, "growth {}", f.max_multiplier());
        // perm is a permutation.
        let mut sorted = f.perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..a.rows()).collect::<Vec<_>>());
    }

    #[test]
    fn square_matrices_various_tilings() {
        let a = workload::full_matrix(101, 24, 24);
        for (nb, rb) in [(4, 4), (4, 8), (6, 12), (8, 8), (24, 24), (3, 7)] {
            check(&a, nb, rb, 60.0);
        }
    }

    #[test]
    fn tall_and_wide_matrices() {
        check(&workload::full_matrix(103, 48, 12), 4, 8, 60.0);
        check(&workload::full_matrix(105, 12, 30), 4, 6, 60.0);
    }

    #[test]
    fn solve_round_trip() {
        let a = workload::full_matrix(107, 16, 16);
        let x = workload::full_matrix(108, 16, 2);
        let b = a.matmul(&x);
        let got = calu(&a, 4, 8).solve(&b);
        assert!(got.approx_eq(&x, 1e-8), "max err {}", got.sub_elem(&x).norm_max());
    }

    #[test]
    fn tournament_avoids_poisonous_rows() {
        // Tiny leading rows would give unpivoted LU multipliers ~1e8; the
        // tournament keeps growth modest.
        let n = 16;
        let a = Matrix::from_fn(32, n, |i, j| {
            let v = workload::entry(109, i as u64, j as u64);
            if i < 4 {
                v * 1e-8
            } else {
                v
            }
        });
        check(&a, 4, 8, 60.0);
    }

    #[test]
    fn single_block_equals_partial_pivoting() {
        // rb >= m: the tournament is one getrf — CALU must reproduce
        // partial-pivoting LU exactly.
        let a = workload::full_matrix(111, 20, 8);
        let f = calu(&a, 8, 32);
        let reference = getrf(&a);
        let mut ref_perm: Vec<usize> = (0..20).collect();
        for (j, &p) in reference.ipiv.iter().enumerate() {
            ref_perm.swap(j, p);
        }
        assert_eq!(&f.perm[..8], &ref_perm[..8], "pivot rows must match");
        let pa = f.permute_rows(&a);
        assert!(f.l.matmul(&f.u).approx_eq(&pa, 1e-11));
    }

    #[test]
    fn matches_reference_solution_quality() {
        // Both CALU and partial-pivoting LU should solve to similar
        // accuracy on a well-conditioned system.
        let a = workload::full_matrix(113, 24, 24);
        let x = workload::full_matrix(114, 24, 1);
        let b = a.matmul(&x);
        let e_calu = calu(&a, 6, 12).solve(&b).sub_elem(&x).norm_max();
        let e_ref = getrf(&a).solve(&b).sub_elem(&x).norm_max();
        assert!(e_calu < 100.0 * e_ref.max(1e-14), "calu {e_calu} vs ref {e_ref}");
    }
}
