//! TSLU: tall-and-skinny LU with tournament pivoting over the same
//! reduction trees as TSQR — the paper's §VI: "the work and conclusion we
//! have reached here for TSQR/CAQR can be (trivially) extended to
//! TSLU/CALU \[25\]".
//!
//! Partial pivoting needs one reduction **per column** to find each pivot
//! (the same communication bill as ScaLAPACK's QR2). Tournament pivoting
//! replaces it with a single reduction: every leaf nominates its `n` local
//! pivot rows (via a local partially-pivoted LU), and each tree node plays
//! off two candidate sets by LU-factoring their `2n × n` stack and keeping
//! the `n` winning rows. The root's winners become the panel's pivot rows;
//! their `U` factor is broadcast back down and every rank computes its
//! local `L` rows with one triangular solve.
//!
//! The output is a genuine `P·A = L·U` factorization of the panel: the
//! winner rows carry a unit-lower-triangular `L` block, every other row's
//! multipliers are bounded by a modest growth factor (against the
//! exponential blow-up of unpivoted LU).

use tsqr_gridmpi::{CommError, Communicator, Process};
use tsqr_linalg::flops;
use tsqr_linalg::lu::getrf;
use tsqr_linalg::tri::trsm_right_upper;
use tsqr_linalg::Matrix;

use crate::domains::DomainLayout;
use crate::tree::{ReductionTree, Step};

/// Tag for candidate sets travelling up the tournament tree.
const TAG_CAND: u32 = 1101;

/// What one rank gets back from a TSLU run.
#[derive(Debug, Clone)]
pub struct TsluRankOutput {
    /// The `n × n` upper-triangular factor (identical on every rank after
    /// the broadcast).
    pub u: Matrix,
    /// Global row indices of the tournament winners, in pivot order
    /// (meaningful on every rank; chosen at the root).
    pub winners: Vec<u64>,
    /// This rank's rows of `L` (`m_loc × n`): `L_loc = A_loc · U⁻¹`.
    pub l_local: Matrix,
    /// First global row this rank held.
    pub row0: u64,
}

/// A candidate set in the tournament: `n` rows plus their global indices.
type Candidates = (Matrix, Vec<u64>);

/// Plays off two candidate sets: LU-factor the stacked `2n × n` block with
/// partial pivoting and keep the `n` winning rows (and their indices).
fn playoff(mine: Candidates, theirs: Candidates) -> Candidates {
    let (a, ai) = mine;
    let (b, bi) = theirs;
    let n = a.cols();
    let stacked = a.vstack(&b);
    let idx: Vec<u64> = ai.iter().chain(bi.iter()).copied().collect();
    let f = getrf(&stacked);
    let winners = f.pivot_rows_of(&stacked);
    // Track which original rows won: replay the swaps on the index list.
    let mut perm: Vec<usize> = (0..stacked.rows()).collect();
    for (j, &p) in f.ipiv.iter().enumerate() {
        perm.swap(j, p);
    }
    let win_idx: Vec<u64> = perm[..n].iter().map(|&i| idx[i]).collect();
    (winners, win_idx)
}

/// The rank program of a numerically real TSLU run over caller-supplied
/// data. Requires single-process domains (the tournament leaves).
pub fn tslu_rank_program_with(
    p: &mut Process,
    world: &Communicator,
    layout: &DomainLayout,
    tree: &ReductionTree,
    rate_flops: Option<f64>,
    local_block: impl FnOnce(u64, usize) -> Matrix,
) -> Result<TsluRankOutput, CommError> {
    let n = layout.n;
    let d = layout
        .domain_of_rank(p.rank())
        .unwrap_or_else(|| panic!("rank {} is in no domain", p.rank()));
    let dom = &layout.domains[d];
    assert_eq!(dom.ranks.len(), 1, "TSLU requires single-process domains");
    let (row0, rows) = (dom.row0, dom.rows);
    let local = local_block(row0, rows as usize);
    assert_eq!(local.shape(), (rows as usize, n), "local_block returned the wrong shape");
    let roots = layout.roots();

    // --- Leaf: local partially-pivoted LU nominates n candidate rows. ---
    let f = getrf(&local);
    p.compute(flops::geqrf(rows, n as u64) / 2, rate_flops); // LU ≈ half of QR
    let cand_rows = f.pivot_rows_of(&local);
    let mut perm: Vec<usize> = (0..local.rows()).collect();
    for (j, &piv) in f.ipiv.iter().enumerate() {
        perm.swap(j, piv);
    }
    let cand_idx: Vec<u64> = perm[..n].iter().map(|&i| row0 + i as u64).collect();
    let mut cand: Candidates = (cand_rows, cand_idx);

    // --- Tournament up the reduction tree. ---
    for step in &tree.steps[d] {
        match *step {
            Step::Recv(from_d) => {
                let theirs: Candidates = p.recv(roots[from_d], TAG_CAND)?;
                cand = playoff(cand, theirs);
                // A 2n × n LU: ≈ 2·(2n)·n²/2 − … ≈ n³ flops; charge the
                // same structured-combine convention as TSQR.
                p.compute(flops::tpqrt(n as u64), rate_flops);
            }
            Step::Send(to_d) => {
                p.send(roots[to_d], TAG_CAND, cand.clone())?;
            }
        }
    }

    // --- Root factors the winners; broadcast U and the pivot list. ---
    let payload: Option<(Matrix, Vec<u64>)> = (p.rank() == 0).then(|| {
        let (w, idx) = &cand;
        let fw = getrf(w);
        // Fold the winners' own partial pivoting into the pivot order.
        let mut wperm: Vec<usize> = (0..n).collect();
        for (j, &piv) in fw.ipiv.iter().enumerate() {
            wperm.swap(j, piv);
        }
        let ordered_idx: Vec<u64> = wperm.iter().map(|&i| idx[i]).collect();
        (fw.u(), ordered_idx)
    });
    let (u, winners) = world.bcast(p, 0, payload)?;

    // --- Every rank computes its L rows: L_loc = A_loc · U⁻¹. ---
    let mut l_local = local;
    trsm_right_upper(&u.view(), &mut l_local.view_mut());
    p.compute(rows * (n as u64) * (n as u64), rate_flops);

    Ok(TsluRankOutput { u, winners, l_local, row0 })
}

/// Convenience wrapper over the seeded random workload.
pub fn tslu_rank_program(
    p: &mut Process,
    world: &Communicator,
    layout: &DomainLayout,
    tree: &ReductionTree,
    seed: u64,
    rate_flops: Option<f64>,
) -> Result<TsluRankOutput, CommError> {
    let n = layout.n;
    tslu_rank_program_with(p, world, layout, tree, rate_flops, |row0, rows| {
        crate::workload::block(seed, row0, rows, n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeShape;
    use crate::workload;
    use tsqr_netsim::{ClusterSpec, CostModel, GridTopology, LinkParams};
    use tsqr_gridmpi::Runtime;

    fn mini_grid(clusters: usize, procs: usize) -> Runtime {
        let specs = (0..clusters)
            .map(|i| ClusterSpec {
                name: format!("c{i}"),
                nodes: procs,
                procs_per_node: 1,
                peak_gflops_per_proc: 8.0,
            })
            .collect();
        let topo = GridTopology::block_placement(specs, procs, 1);
        let mut model =
            CostModel::homogeneous(LinkParams::from_ms_mbps(0.07, 890.0), 1e9, clusters);
        for a in 0..clusters {
            for b in 0..clusters {
                if a != b {
                    model.inter_cluster[a][b] = LinkParams::from_ms_mbps(8.0, 80.0);
                }
            }
        }
        Runtime::new(topo, model)
    }

    fn run_tslu(
        rt: &Runtime,
        a: &Matrix,
        shape: TreeShape,
        dpc: usize,
    ) -> (Vec<TsluRankOutput>, u64) {
        let (m, n) = a.shape();
        let layout = DomainLayout::build(rt.topology(), m as u64, n, dpc);
        let tree = ReductionTree::build(&shape, layout.num_domains(), &layout.clusters());
        let report = rt.run(|p, world| {
            tslu_rank_program_with(p, world, &layout, &tree, None, |row0, rows| {
                a.sub_matrix(row0 as usize, 0, rows, n)
            })
        });
        let wan = report.totals.inter_cluster_msgs();
        (report.ranks.into_iter().map(|r| r.result.unwrap()).collect(), wan)
    }

    /// Checks the global `P·A = L·U` identity: every local row must equal
    /// its L row times U, the winner rows must carry unit-lower L, and the
    /// growth must be bounded.
    fn verify(a: &Matrix, outs: &[TsluRankOutput], growth_bound: f64) {
        let n = a.cols();
        let u = &outs[0].u;
        let winners = &outs[0].winners;
        assert_eq!(winners.len(), n);
        // Consistent broadcast.
        for o in outs {
            assert!(o.u.approx_eq(u, 0.0));
            assert_eq!(&o.winners, winners);
        }
        // Assemble L by global row.
        let mut l = Matrix::zeros(a.rows(), n);
        for o in outs {
            l.set_sub(o.row0 as usize, 0, &o.l_local);
        }
        // Reconstruction: A = L·U row by row.
        let rec = l.matmul(u);
        assert!(
            rec.sub_elem(a).norm_max() < 1e-10 * a.norm_max().max(1.0),
            "A != L·U"
        );
        // Winner rows form a unit lower triangle in pivot order.
        for (i, &w) in winners.iter().enumerate() {
            for (j, &_w2) in winners.iter().enumerate().skip(i + 1) {
                assert!(
                    l[(w as usize, j)].abs() < 1e-10,
                    "winner L must be lower triangular (row {i}, col {j})"
                );
            }
            assert!(
                (l[(w as usize, i)] - 1.0).abs() < 1e-10,
                "winner diagonal must be 1"
            );
        }
        // Bounded growth.
        assert!(
            l.norm_max() <= growth_bound,
            "growth {} exceeds bound {growth_bound}",
            l.norm_max()
        );
    }

    #[test]
    fn tournament_lu_factors_random_panels() {
        let a = workload::full_matrix(71, 256, 6);
        for (clusters, procs, dpc) in [(1, 4, 4), (2, 4, 4), (2, 2, 2), (1, 8, 8)] {
            let rt = mini_grid(clusters, procs);
            for shape in [TreeShape::Binary, TreeShape::GridHierarchical, TreeShape::Flat] {
                let (outs, _) = run_tslu(&rt, &a, shape, dpc);
                verify(&a, &outs, 50.0);
            }
        }
    }

    #[test]
    fn hierarchical_tournament_is_wan_frugal() {
        let a = workload::full_matrix(73, 240, 5);
        let rt = mini_grid(3, 4);
        let (outs, wan) = run_tslu(&rt, &a, TreeShape::GridHierarchical, 4);
        verify(&a, &outs, 50.0);
        // Tournament up: clusters−1 = 2; broadcast down crosses each site
        // boundary once more: ≤ 2 more.
        assert!(wan <= 4, "got {wan} WAN messages");
    }

    #[test]
    fn tournament_bounds_growth_where_unpivoted_lu_explodes() {
        // A panel whose natural row order has tiny leading entries: no
        // pivoting would produce multipliers ~1e8; the tournament must
        // keep them modest.
        let n = 4;
        let m = 64;
        let a = Matrix::from_fn(m, n, |i, j| {
            let v = workload::entry(77, i as u64, j as u64);
            if i < n {
                v * 1e-8 // poisonous top rows
            } else {
                v
            }
        });
        let rt = mini_grid(1, 4);
        let (outs, _) = run_tslu(&rt, &a, TreeShape::Binary, 4);
        verify(&a, &outs, 50.0);
        // And no winner comes from the poisoned rows.
        for &w in &outs[0].winners {
            assert!(w >= n as u64, "tournament picked a tiny row {w}");
        }
    }

    #[test]
    fn single_process_degenerates_to_partial_pivoting() {
        let a = workload::full_matrix(79, 40, 5);
        let rt = mini_grid(1, 1);
        let (outs, _) = run_tslu(&rt, &a, TreeShape::Binary, 1);
        verify(&a, &outs, 50.0);
        // With one leaf the winners are exactly the partial-pivoting
        // pivots of the whole panel.
        let f = getrf(&a);
        let mut perm: Vec<usize> = (0..40).collect();
        for (j, &p) in f.ipiv.iter().enumerate() {
            perm.swap(j, p);
        }
        let want: Vec<u64> = perm[..5].iter().map(|&i| i as u64).collect();
        assert_eq!(outs[0].winners, want);
    }
}
