//! CholeskyQR: the communication-matched but numerically *unstable*
//! alternative to TSQR.
//!
//! §II-E motivates TSQR by noting that block eigensolver packages
//! "currently rely on unstable orthogonalization schemes to avoid too many
//! communications. TSQR is a stable algorithm that enables the same total
//! number of messages." CholeskyQR is that scheme: form the Gram matrix
//! `G = AᵀA` with a single all-reduce (the same `log₂(P)` message bill as
//! TSQR's reduction), Cholesky-factor `G = RᵀR`, and recover
//! `Q = A·R⁻¹`.
//!
//! The catch is stability: the Gram matrix squares the condition number,
//! so orthogonality degrades like `ε·κ(A)²` and the factorization fails
//! outright (non-positive-definite Gram) once `κ(A) ≳ 1/√ε` — while
//! Householder-based TSQR stays at `ε` for any κ. The comparison bench
//! (`ablation_cholqr`) and the tests below measure exactly that cliff.

use tsqr_gridmpi::{CommError, Communicator, Process};
use tsqr_linalg::cholesky::potrf_upper;
use tsqr_linalg::flops;
use tsqr_linalg::tri::trsm_right_upper;
use tsqr_linalg::Matrix;

/// Result of a distributed CholeskyQR.
#[derive(Debug, Clone)]
pub struct CholQrOutput {
    /// The upper-triangular factor (every rank has a copy — the Gram
    /// all-reduce leaves it everywhere).
    pub r: Matrix,
    /// This rank's rows of the explicit `Q` (`= A_loc·R⁻¹`), when the
    /// factorization succeeded.
    pub q_local: Matrix,
}

/// Why a distributed CholeskyQR failed.
#[derive(Debug)]
pub enum CholQrError {
    /// Communication failure.
    Comm(CommError),
    /// The Gram matrix was not numerically positive definite —
    /// `κ(A)² overflowed the working precision` (the stability cliff).
    GramNotPd {
        /// The failing pivot index.
        pivot: usize,
    },
}

impl From<CommError> for CholQrError {
    fn from(e: CommError) -> Self {
        CholQrError::Comm(e)
    }
}

impl std::fmt::Display for CholQrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholQrError::Comm(e) => write!(f, "communication failure: {e}"),
            CholQrError::GramNotPd { pivot } => {
                write!(f, "Gram matrix not positive definite at pivot {pivot} (κ(A)² too large)")
            }
        }
    }
}

impl std::error::Error for CholQrError {}

/// Distributed CholeskyQR of a TS matrix row-distributed over `group`.
///
/// One all-reduce of the `n×n` Gram matrix (`log₂(P)` messages — same
/// count as a TSQR reduce, about double the volume since the full square
/// travels), then local Cholesky + triangular solve.
pub fn cholqr(
    p: &mut Process,
    group: &Communicator,
    local: Matrix,
    rate_flops: Option<f64>,
) -> Result<CholQrOutput, CholQrError> {
    let n = local.cols();
    let m_loc = local.rows() as u64;
    // Local Gram contribution: G_loc = A_locᵀ·A_loc  (n² m_loc flops —
    // symmetric, but we charge the dense gemm cost like the BLAS call
    // ScaLAPACK would make).
    let g_loc = local.t_matmul(&local);
    p.compute(flops::gemm(n as u64, n as u64, m_loc), rate_flops);
    // One all-reduce of n² values.
    let g = group.allreduce(p, g_loc.into_vec(), |a, b| {
        a.iter().zip(&b).map(|(x, y)| x + y).collect()
    })?;
    let g = Matrix::from_col_major(n, n, g).expect("gram matrix shape");
    // Cholesky (n³/3) and the solve Q = A·R⁻¹ (m_loc·n²).
    let r = potrf_upper(&g).map_err(|e| CholQrError::GramNotPd { pivot: e.pivot })?;
    let mut q_local = local;
    trsm_right_upper(&r.view(), &mut q_local.view_mut());
    p.compute(n as u64 * n as u64 * n as u64 / 3 + m_loc * (n as u64) * (n as u64), rate_flops);
    Ok(CholQrOutput { r, q_local })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::even_chunks;
    use crate::workload;
    use tsqr_linalg::prelude::QrFactors;
    use tsqr_linalg::verify::{orthogonality, r_distance, relative_residual};
    use tsqr_netsim::{ClusterSpec, CostModel, GridTopology, LinkParams};
    use tsqr_gridmpi::Runtime;

    fn runtime(procs: usize) -> Runtime {
        let topo = GridTopology::block_placement(
            vec![ClusterSpec {
                name: "c".into(),
                nodes: procs,
                procs_per_node: 1,
                peak_gflops_per_proc: 8.0,
            }],
            procs,
            1,
        );
        Runtime::new(topo, CostModel::homogeneous(LinkParams::from_ms_mbps(0.1, 890.0), 1e9, 1))
    }

    /// Runs distributed CholeskyQR on the seeded workload; returns
    /// (R, assembled Q, per-rank msgs).
    fn run(procs: usize, a: &Matrix) -> Result<(Matrix, Matrix, u64), String> {
        let rt = runtime(procs);
        let (m, n) = a.shape();
        let chunks = even_chunks(m as u64, procs);
        let report = rt.run(|p, world| {
            let me = world.my_index(p);
            let row0: u64 = chunks[..me].iter().sum();
            let local = a.sub_matrix(row0 as usize, 0, chunks[me] as usize, n);
            match cholqr(p, world, local, None) {
                Ok(out) => Ok(Some((out, p.counters().total_msgs()))),
                Err(CholQrError::GramNotPd { .. }) => Ok(None),
                Err(CholQrError::Comm(e)) => Err(e),
            }
        });
        let mut qs = Vec::new();
        let mut r = None;
        let mut msgs = 0;
        for rr in report.ranks {
            match rr.result.unwrap() {
                Some((out, m)) => {
                    qs.push(out.q_local);
                    r = Some(out.r);
                    msgs = msgs.max(m);
                }
                None => return Err("gram not pd".into()),
            }
        }
        let refs: Vec<&Matrix> = qs.iter().collect();
        Ok((r.unwrap(), Matrix::vstack_all(&refs), msgs))
    }

    #[test]
    fn well_conditioned_matrix_works_everywhere() {
        let a = workload::full_matrix(3, 240, 6);
        for procs in [1, 2, 4, 8] {
            let (r, q, _) = run(procs, &a).unwrap();
            assert!(relative_residual(&a, &q, &r) < 1e-12);
            assert!(orthogonality(&q) < 1e-10);
            // Same R (up to signs — Cholesky's diagonal is positive, so
            // actually identical to the sign-normalized QR factor).
            let want = QrFactors::compute(&a, 16).r().upper_triangular_padded();
            assert!(r_distance(&r, &want) < 1e-10);
        }
    }

    #[test]
    fn message_count_matches_tsqr_reduction() {
        // One all-reduce = log₂(P) per-rank messages — ScaLAPACK QR2 needs
        // 2N× that.
        let a = workload::full_matrix(5, 128, 4);
        let (_, _, msgs) = run(8, &a).unwrap();
        assert_eq!(msgs, 3); // log2(8)
    }

    /// A matrix with condition number ≈ 10^k and *mixed* singular
    /// directions: `A = U·diag(σ)·Vᵀ` with random orthogonal `U` (m×n) and
    /// `V` (n×n). (A merely column-scaled matrix would have a diagonal
    /// Gram matrix, which CholeskyQR handles exactly — the instability
    /// needs genuine mixing.)
    fn graded(m: usize, n: usize, k: i32) -> Matrix {
        let u = QrFactors::compute(&workload::full_matrix(31, m, n), 16).q_thin();
        let v = QrFactors::compute(&workload::full_matrix(33, n, n), 16).q_thin();
        let scaled = Matrix::from_fn(m, n, |i, j| {
            let sigma = 10f64.powf(-k as f64 * j as f64 / (n as f64 - 1.0));
            u[(i, j)] * sigma
        });
        scaled.matmul(&v.transpose())
    }

    #[test]
    fn orthogonality_degrades_with_condition_number() {
        // ε·κ² growth: at κ = 10⁶ CholeskyQR's Q is visibly non-orthogonal
        // while TSQR (Householder) stays at machine precision.
        let a = graded(200, 6, 6);
        let (_, q_chol, _) = run(4, &a).unwrap();
        let chol_orth = orthogonality(&q_chol);
        let q_tsqr = QrFactors::compute(&a, 8).q_thin();
        let tsqr_orth = orthogonality(&q_tsqr);
        assert!(
            chol_orth > 100.0 * tsqr_orth,
            "CholeskyQR {chol_orth:.2e} should be far worse than Householder {tsqr_orth:.2e}"
        );
    }

    #[test]
    fn breaks_down_past_the_kappa_cliff() {
        // κ ≈ 10¹⁰ → κ² ≈ 10²⁰ ≫ 1/ε: the Gram matrix is numerically
        // singular. Depending on how the roundoff lands, Cholesky either
        // fails outright (non-positive pivot) or returns a Q that has
        // entirely lost orthogonality. Both are the cliff; Householder
        // TSQR on the same matrix stays at machine precision.
        let a = graded(200, 6, 10);
        match run(4, &a) {
            Err(_) => {} // non-positive pivot: clean failure
            Ok((_, q, _)) => {
                assert!(
                    orthogonality(&q) > 1e-3,
                    "κ²≈1e20 must destroy orthogonality, got {:.2e}",
                    orthogonality(&q)
                );
            }
        }
        let q_tsqr = QrFactors::compute(&a, 8).q_thin();
        assert!(orthogonality(&q_tsqr) < 1e-12, "Householder must survive");
    }
}
