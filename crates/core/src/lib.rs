//! `tsqr-core` — the paper's contribution: **QCG-TSQR**, a
//! communication-avoiding QR factorization of tall-and-skinny matrices
//! whose reduction tree is tuned to the hierarchical topology of a
//! computational grid, plus the ScaLAPACK-style baseline it is evaluated
//! against and the performance model that explains the results.
//!
//! Reproduction of Agullo, Coti, Dongarra, Herault, Langou,
//! *"QR Factorization of Tall and Skinny Matrices in a Grid Computing
//! Environment"*, IPDPS 2010 (arXiv:0912.2572).
//!
//! # Map of the crate
//!
//! * [`tree`] — generalized reduction-tree schedules: flat, binary, the
//!   paper's grid-hierarchical shape (binary inside each cluster, binary
//!   across cluster roots — Fig. 2, with the `#clusters − 1`
//!   inter-cluster message guarantee), plus k-ary, binomial, greedy
//!   latency-aware, and arbitrary `Custom` parent vectors.
//! * [`tune`] — the model-driven autotuner: predicts every candidate
//!   tree's makespan analytically from the calibrated cost model,
//!   cross-checks against a `netsim` replay to 1e-9, and returns the
//!   argmin tree for a topology (`grid-tsqr tune`, `docs/tuning.md`).
//! * [`domains`] — the domain decomposition knob (§III): one domain per
//!   process (classic TSQR), per node, or per cluster (per-site
//!   ScaLAPACK), and the load-balanced row attribution extension.
//! * [`scalapack`] — the baseline `PDGEQR2`: a numerically real
//!   distributed Householder panel factorization paying two all-reduces
//!   per column, plus its symbolic twin.
//! * [`tsqr`] — QCG-TSQR itself: local/grouped leaf factorizations, packed
//!   R factors reduced over the tree, optional explicit-Q down-sweep.
//! * [`ft_tsqr`] — the **self-healing** variant: under an injected
//!   [`tsqr_netsim::FailureSchedule`] it survives rank crashes and lost
//!   messages (subtree rebuild, cached-R salvage, agent re-election) and
//!   still produces the failure-free R bit for bit
//!   (`docs/fault-injection.md`).
//! * [`caqr`] — the general-matrix extension (tiled flat-tree CAQR,
//!   single process) and [`caqr_dist`] — distributed CAQR over the grid,
//!   the experiment §VI says "we will need to perform".
//! * [`cholqr`] — the communication-matched but unstable CholeskyQR
//!   baseline (§II-E's "unstable orthogonalization schemes").
//! * [`tslu`] / [`calu`] — TSLU with tournament pivoting and the blocked
//!   CALU built on it (§VI's "trivially extended to TSLU/CALU").
//! * [`lstsq`] — distributed least squares: `(R, c)` pairs up the tuned
//!   tree, one triangular solve at the root.
//! * [`model`] — Tables I and II, Eq. (1), Properties 1–5.
//! * [`modelfit`] — least-squares fit of Eq. (1) back onto a finished
//!   run's metrics; the residual flags drift between simulation and
//!   closed form (`grid-tsqr analyze`).
//! * [`experiment`] — one-call driver returning the Gflop/s metric the
//!   paper plots.
//! * [`workload`] — deterministic distributed generation of the random TS
//!   test matrices.
//!
//! # Quick example
//!
//! ```
//! use tsqr_core::experiment::{run_experiment, Algorithm, Experiment, Mode};
//! use tsqr_core::tree::TreeShape;
//! use tsqr_gridmpi::Runtime;
//! use tsqr_netsim::grid5000;
//!
//! // Two Grid'5000 sites, 2 procs/node × 32 nodes each.
//! let rt = Runtime::new(grid5000::topology(2), grid5000::cost_model());
//! let exp = Experiment {
//!     m: 1 << 20,
//!     n: 64,
//!     algorithm: Algorithm::Tsqr {
//!         shape: TreeShape::GridHierarchical,
//!         domains_per_cluster: 64,
//!     },
//!     compute_q: false,
//!     mode: Mode::Symbolic,
//!     rate_flops: None,
//!     combine_rate_flops: None,
//! };
//! let res = run_experiment(&rt, &exp);
//! assert!(res.gflops > 0.0);
//! assert_eq!(res.totals.inter_cluster_msgs(), 1); // 2 sites → 1 WAN message
//! ```

// Numerical kernels index with explicit loop counters on purpose: the
// triangular/banded access patterns (row `j`, columns `j+1..`) read more
// clearly as index arithmetic than as iterator chains.
#![allow(clippy::needless_range_loop)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calu;
pub mod caqr;
pub mod caqr_dist;
pub mod cholqr;
pub mod domains;
pub mod eigsolve;
pub mod experiment;
pub mod ft_tsqr;
pub mod lstsq;
pub mod model;
pub mod modelfit;
pub mod oocqr;
pub mod scalapack;
pub mod tree;
pub mod tslu;
pub mod tsqr;
pub mod tune;
pub mod workload;

pub use domains::DomainLayout;
pub use ft_tsqr::{ft_tsqr_rank_program, FtMsg, FtTsqrOutput};
pub use modelfit::{fit as fit_model, samples_from_metrics, ModelFit, Sample};
pub use experiment::{run_experiment, Algorithm, Experiment, ExperimentResult, Mode};
pub use tree::{ReductionTree, TreeShape};
pub use tsqr::{TsqrConfig, TsqrRankOutput};
pub use tune::{autotune, TuneCandidate, TuneOutcome};
