//! Self-healing TSQR: fault-tolerant execution of the QCG-TSQR reduction
//! under an injected [`tsqr_netsim::FailureSchedule`].
//!
//! The paper targets grids precisely because they are shared, loosely
//! coupled and failure-prone (§II-A: QCG-OMPI exists to survive them).
//! This module closes that loop: the same reduction tree as
//! [`crate::tsqr`], but every receive is prepared for its peer to be dead
//! or its message to be lost, and the run still produces the **bitwise
//! identical** R factor of the failure-free run.
//!
//! # Why bitwise recovery is possible
//!
//! Two properties conspire:
//!
//! 1. The test workload is a *pure function* of `(seed, row, col)`
//!    ([`crate::workload::entry`]), so any rank can rematerialize any dead
//!    rank's rows without communication.
//! 2. The reduction is a fixed schedule of deterministic kernels
//!    (`geqrf` at the leaves, `tpqrt` at the combines), so re-executing a
//!    lost subtree locally reproduces, bit for bit, the packed R factor
//!    the dead subtree would have delivered.
//!
//! # The protocol
//!
//! Participants are the domain roots (single-process domains required).
//! Each follows its [`crate::tree::Step`] schedule as usual; recovery
//! paths trigger on typed [`CommError`]s:
//!
//! * **Dead child** (`RankFailed` / `PeerGone` while expecting a child's
//!   R): the parent *rebuilds* the child's entire subtree locally —
//!   leaf factorizations plus combines, charged at the usual rates —
//!   and carries on. Counted in [`FtTsqrOutput::rebuilt_subtrees`].
//! * **Lost message** (`MessageDropped`, i.e. the sender's bounded
//!   retransmission budget ran out and a *ghost* arrived): the child is
//!   alive and caches the R it sent, so the parent *salvages* it with a
//!   [`FtMsg::SalvageReq`] round trip instead of recomputing. Counted in
//!   [`FtTsqrOutput::salvaged_children`]; if the salvage round trip is
//!   itself lost, the parent falls back to rebuilding.
//! * **Dead parent**: after its upward send, every non-root stands by,
//!   watching its parent. A parent tombstone re-homes the orphan: it
//!   walks candidates `0, 1, 2, …` (skipping ranks it knows dead) and
//!   blocks on the first live one. Because every participant's parent
//!   has a *lower* index, the lowest-indexed live participant always
//!   ends up walking to **itself** and becomes the *agent*: it rebuilds
//!   the full reduction locally, holds the recovered R, and broadcasts
//!   [`FtMsg::Done`] to everyone.
//!
//! Termination: whoever ends up holding R (the root, or the agent)
//! broadcasts `Done` to all participants, and every participant relays
//! `Done` to its children as it leaves, so orphans deep in live subtrees
//! wake up too. The broadcast runs in **descending** participant order;
//! this is load-bearing: a broadcaster may itself crash mid-broadcast,
//! and descending order guarantees the participants it managed to
//! release form a high-index suffix. Since a re-homing orphan only ever
//! blocks on candidates *below* itself, it can never end up waiting on a
//! peer that already returned (returned peers neither answer nor leave
//! tombstones); the next agent election always proceeds. Control
//! messages ride the same failure-prone links as data: a dropped `Done`
//! ghost is *treated as* `Done` (the ghost arrives at the deterministic
//! would-be arrival time), which keeps the shutdown live under transient
//! loss.
//!
//! All recovery decisions key off virtual-time-deterministic signals
//! (tombstones, ghosts, the schedule itself) — never the wall clock — so
//! a replay with the same `(matrix, schedule, seed)` reproduces the same
//! clocks, the same fault events, and the same R, which
//! `proptest_ft_replay` checks byte for byte.

use tsqr_gridmpi::message::WirePayload;
use tsqr_gridmpi::{CommError, Process};
use tsqr_linalg::flops;
use tsqr_linalg::prelude::*;
use tsqr_linalg::Matrix;

use crate::domains::DomainLayout;
use crate::tree::{ReductionTree, Step};
use crate::tsqr::{pack_upper, unpack_upper, TsqrConfig, PHASE_LEAF, PHASE_REDUCE};
use crate::workload;

/// Tag for R factors travelling up the tree (same wire protocol as the
/// non-fault-tolerant program).
const TAG_R: u32 = 1001;
/// Tag for fault-tolerance control traffic ([`FtMsg`]).
const TAG_FT: u32 = 1003;

/// Metrics/trace phase: recovery work — rebuilding lost subtrees and
/// salvaging cached R factors.
pub const PHASE_RECOVER: &str = "ft-recover";
/// Metrics/trace phase: standing by after the upward send — serving
/// salvage requests, watching the parent, waiting for `Done`.
pub const PHASE_STANDBY: &str = "ft-standby";

/// Program-level retry budget for control messages (each attempt is
/// itself retransmitted up to `MAX_SEND_ATTEMPTS` times by the runtime).
const CTRL_ATTEMPTS: u32 = 3;

/// Fault-tolerance control messages (tag `TAG_FT`).
#[derive(Debug, Clone, PartialEq)]
pub enum FtMsg {
    /// Parent → child: "your R factor never arrived; resend your cached
    /// copy".
    SalvageReq,
    /// Child → parent: the cached packed R factor, verbatim.
    R(Vec<f64>),
    /// Completion: the final R is held somewhere; stop standing by.
    Done,
}

impl WirePayload for FtMsg {
    fn wire_bytes(&self) -> u64 {
        match self {
            // One discriminant byte; R adds its payload.
            FtMsg::SalvageReq | FtMsg::Done => 1,
            FtMsg::R(v) => 1 + 8 * v.len() as u64,
        }
    }
}

/// What one rank gets back from a fault-tolerant TSQR run.
#[derive(Debug, Clone)]
pub struct FtTsqrOutput {
    /// The global `n × n` R factor — `Some` on exactly one survivor: the
    /// root when it lives, else the recovery agent.
    pub r: Option<Matrix>,
    /// Participant indices whose subtrees this rank rebuilt locally
    /// (dead children; `0` means the agent rebuilt the whole reduction).
    pub rebuilt_subtrees: Vec<usize>,
    /// Children whose cached R was salvaged over the network after the
    /// original message was lost.
    pub salvaged_children: Vec<usize>,
    /// First global row this rank held.
    pub row0: u64,
    /// Number of rows this rank held.
    pub rows: u64,
}

/// Shared read-only context threaded through the recovery helpers.
struct Ctx<'a> {
    layout: &'a DomainLayout,
    tree: &'a ReductionTree,
    cfg: &'a TsqrConfig,
    seed: u64,
    rate_flops: Option<f64>,
    roots: Vec<usize>,
}

/// Rebuilds participant `x`'s subtree R locally: rematerialize each leaf
/// block from the seeded workload, factor it, and replay the combines in
/// schedule order. Flops are charged at the usual rates, so recovery
/// time shows up honestly in the virtual clock. The result is bitwise
/// identical to the packed R the live subtree would have delivered
/// (packing preserves the upper triangle exactly).
fn local_subtree_r(p: &mut Process, ctx: &Ctx<'_>, x: usize) -> Matrix {
    let n = ctx.layout.n;
    let dom = &ctx.layout.domains[x];
    let local = workload::block(ctx.seed, dom.row0, dom.rows as usize, n);
    let f = QrFactors::compute(&local, ctx.cfg.nb);
    p.compute(flops::geqrf(dom.rows, n as u64), ctx.rate_flops);
    let mut r1 = f.r().upper_triangular_padded();
    for step in &ctx.tree.steps[x] {
        if let Step::Recv(y) = *step {
            let mut r2 = local_subtree_r(p, ctx, y);
            let _ = tpqrt(&mut r1, &mut r2);
            p.compute(flops::tpqrt(n as u64), ctx.cfg.combine_rate_flops.or(ctx.rate_flops));
        }
    }
    r1.upper_triangular_padded()
}

/// True when `e` is this rank's *own* death (which must always
/// propagate, never be absorbed by a recovery path).
fn own_death(p: &Process, e: &CommError) -> bool {
    matches!(e, CommError::RankFailed { rank, .. } if *rank == p.rank())
}

/// Best-effort control send with a bounded program-level retry budget.
/// Peer death, downed links and exhausted retries are all absorbed — the
/// receiving side's protocol treats a ghost `Done` as `Done`, and a dead
/// peer needs no notification. Only this rank's own death propagates.
fn send_ctrl(p: &mut Process, dst: usize, msg: &FtMsg) -> Result<(), CommError> {
    for _ in 0..CTRL_ATTEMPTS {
        match p.send(dst, TAG_FT, msg.clone()) {
            Ok(()) => return Ok(()),
            Err(CommError::MessageDropped { .. }) => continue,
            Err(e) if own_death(p, &e) => return Err(e),
            Err(_) => return Ok(()),
        }
    }
    Ok(())
}

/// Broadcasts [`FtMsg::Done`] to every other participant, in
/// **descending** participant order. The order is load-bearing (module
/// docs): if the broadcaster crashes mid-broadcast, the participants it
/// already released form a high-index suffix, and a re-homing orphan —
/// which only ever blocks on candidates *below* itself — can never wait
/// on a peer that already returned. Dead peers and lost sends are
/// absorbed by [`send_ctrl`].
fn broadcast_done(p: &mut Process, ctx: &Ctx<'_>, me: usize) -> Result<(), CommError> {
    for q in (0..ctx.layout.num_domains()).rev() {
        if q != me {
            send_ctrl(p, ctx.roots[q], &FtMsg::Done)?;
        }
    }
    Ok(())
}

/// Recovers child `c`'s subtree R after its upward send arrived as a
/// ghost: the child is alive and caches what it sent, so ask it to
/// resend. Returns `(R, true)` on a successful salvage, `(R, false)`
/// when any leg of the round trip failed and the subtree was rebuilt
/// locally instead.
fn salvage_child(p: &mut Process, ctx: &Ctx<'_>, c: usize) -> Result<(Matrix, bool), CommError> {
    let peer = ctx.roots[c];
    let asked = match p.send(peer, TAG_FT, FtMsg::SalvageReq) {
        // `PeerGone` here is the wall-clock twin of `Ok` (the clock
        // advance is identical); the follow-up receive resolves the
        // child's true fate deterministically from its tombstone.
        Ok(()) | Err(CommError::PeerGone { .. }) => true,
        Err(e) if own_death(p, &e) => return Err(e),
        Err(_) => false, // request lost or link down: rebuild
    };
    if asked {
        match p.recv::<FtMsg>(peer, TAG_FT) {
            Ok(FtMsg::R(packed)) => return Ok((unpack_upper(ctx.layout.n, &packed), true)),
            Ok(_) => {} // protocol anomaly: rebuild rather than trust it
            Err(e) if own_death(p, &e) => return Err(e),
            Err(
                CommError::RankFailed { .. }
                | CommError::PeerGone { .. }
                | CommError::MessageDropped { .. },
            ) => {} // child died, or the reply was lost too: rebuild
            Err(e) => return Err(e),
        }
    }
    Ok((local_subtree_r(p, ctx, c), false))
}

/// The rank program of a **self-healing** QCG-TSQR run on the seeded
/// random workload.
///
/// Same schedule and wire protocol as [`crate::tsqr::tsqr_rank_program`]
/// while nothing fails; under a failure schedule it survives any number
/// of rank crashes and transient message losses, and some survivor
/// returns the R factor of the failure-free run, bit for bit (see the
/// module docs for the recovery protocol). Requires single-process
/// domains (`domains_per_cluster` = procs per cluster) so every
/// participant can be rebuilt from the pure workload function; the
/// explicit Q is not supported.
///
/// The completion broadcast costs `D − 1` extra control messages per run
/// whenever a failure schedule is active; with an empty schedule the
/// program is communication-identical to the plain one.
pub fn ft_tsqr_rank_program(
    p: &mut Process,
    layout: &DomainLayout,
    tree: &ReductionTree,
    cfg: &TsqrConfig,
    seed: u64,
    rate_flops: Option<f64>,
) -> Result<FtTsqrOutput, CommError> {
    let n = layout.n;
    let d = layout
        .domain_of_rank(p.rank())
        .unwrap_or_else(|| panic!("rank {} is in no domain", p.rank()));
    let dom = &layout.domains[d];
    assert_eq!(
        dom.ranks.len(),
        1,
        "self-healing TSQR needs single-process domains (domains_per_cluster = procs per cluster)"
    );
    assert!(!cfg.compute_q, "self-healing TSQR does not reconstruct the explicit Q");
    // The agent-election walk (find_agent) assumes every parent has a
    // lower index than its children, so the lowest-indexed live
    // participant is always an ancestor-or-self of the crash site. All
    // built-in and generated shapes satisfy this; a hand-written
    // Custom tree might not.
    assert!(
        tree.is_heap_ordered(),
        "self-healing TSQR requires a heap-ordered tree (every parent index < child index)"
    );
    let (row0, rows) = (dom.row0, dom.rows);
    let ctx = Ctx { layout, tree, cfg, seed, rate_flops, roots: layout.roots() };
    // Empty schedule ⇒ nothing can fail ⇒ skip the completion protocol
    // entirely (keeps the failure-free run communication-identical to
    // the plain program). The flag is schedule-derived, hence identical
    // on every rank.
    let ft_active = !p.failure_schedule().is_empty();
    let children: Vec<usize> = tree.steps[d]
        .iter()
        .filter_map(|s| match s {
            Step::Recv(c) => Some(*c),
            Step::Send(_) => None,
        })
        .collect();

    let mut out = FtTsqrOutput {
        r: None,
        rebuilt_subtrees: Vec::new(),
        salvaged_children: Vec::new(),
        row0,
        rows,
    };

    // --- Leaf factorization. ---
    p.phase_begin(PHASE_LEAF);
    let local = workload::block(seed, row0, rows as usize, n);
    let f = QrFactors::compute(&local, cfg.nb);
    p.compute(flops::geqrf(rows, n as u64), rate_flops);
    let mut r1 = f.r().upper_triangular_padded();
    p.phase_end();

    // --- Reduction, with per-child recovery. ---
    p.phase_begin(PHASE_REDUCE);
    let mut sent: Option<(usize, Vec<f64>, bool)> = None;
    for step in &tree.steps[d] {
        match *step {
            Step::Recv(c) => {
                let mut r2 = match p.recv::<Vec<f64>>(ctx.roots[c], TAG_R) {
                    Ok(packed) => unpack_upper(n, &packed),
                    Err(e) if own_death(p, &e) => return Err(e),
                    Err(CommError::RankFailed { .. } | CommError::PeerGone { .. }) => {
                        // Dead child: rebuild its whole subtree locally.
                        p.phase_begin(PHASE_RECOVER);
                        let r = local_subtree_r(p, &ctx, c);
                        p.phase_end();
                        out.rebuilt_subtrees.push(c);
                        r
                    }
                    Err(CommError::MessageDropped { .. }) => {
                        // Ghost: the child lives and caches its R.
                        p.phase_begin(PHASE_RECOVER);
                        let (r, salvaged) = salvage_child(p, &ctx, c)?;
                        p.phase_end();
                        if salvaged {
                            out.salvaged_children.push(c);
                        } else {
                            out.rebuilt_subtrees.push(c);
                        }
                        r
                    }
                    Err(e) => return Err(e),
                };
                let _ = tpqrt(&mut r1, &mut r2);
                p.compute(flops::tpqrt(n as u64), cfg.combine_rate_flops.or(rate_flops));
            }
            Step::Send(to_d) => {
                // Cache the exact bytes we send so a salvage request can
                // be answered verbatim later.
                let packed = pack_upper(&r1);
                let ghosted = match p.send(ctx.roots[to_d], TAG_R, packed.clone()) {
                    Err(e) if own_death(p, &e) => return Err(e),
                    Err(CommError::MessageDropped { .. }) => true,
                    // Delivered, or the parent is gone (standby re-homes
                    // us) — either way, proceed to standby.
                    _ => false,
                };
                sent = Some((to_d, packed, ghosted));
            }
        }
    }
    p.phase_end();

    // --- Root: hold R, announce completion. ---
    if d == 0 {
        let r = r1.upper_triangular_padded();
        if ft_active {
            p.phase_begin(PHASE_STANDBY);
            broadcast_done(p, &ctx, d)?;
            p.phase_end();
        }
        out.r = Some(r);
        return Ok(out);
    }

    if !ft_active {
        return Ok(out);
    }
    let (parent_d, sent_r, r_send_ghosted) =
        sent.expect("every non-root participant sends once");

    // --- Standby, phase A: watch the parent. ---
    p.phase_begin(PHASE_STANDBY);
    // Ghost disambiguation: the parent sends us a `SalvageReq` only if
    // our R send ghosted, and only one. So the *first* ghost after a
    // ghosted R send may be that lost request (the parent falls back to
    // rebuilding and stays alive, so we keep waiting); every other ghost
    // can only be a lost `Done`.
    let mut salvage_possible = r_send_ghosted;
    let orphaned = loop {
        match p.recv::<FtMsg>(ctx.roots[parent_d], TAG_FT) {
            Ok(FtMsg::SalvageReq) => {
                salvage_possible = false;
                // Resend the cached R verbatim. A lost reply is the
                // parent's problem (it rebuilds); only our own death
                // propagates.
                match p.send(ctx.roots[parent_d], TAG_FT, FtMsg::R(sent_r.clone())) {
                    Err(e) if own_death(p, &e) => return Err(e),
                    _ => {}
                }
            }
            Ok(FtMsg::Done) => break false,
            Ok(FtMsg::R(_)) => {} // stray; ignore
            Err(CommError::MessageDropped { .. }) => {
                if salvage_possible {
                    // The ghosted `SalvageReq`; the parent rebuilds.
                    salvage_possible = false;
                } else {
                    break false; // a lost `Done` still means done
                }
            }
            Err(e) if own_death(p, &e) => return Err(e),
            Err(CommError::RankFailed { .. } | CommError::PeerGone { .. }) => break true,
            Err(e) => return Err(e),
        }
    };

    // --- Standby, phase B: the parent died — re-home. ---
    //
    // Walk candidates 0, 1, 2, … skipping known-dead ranks. Parents
    // always have lower participant indices than their children, so the
    // lowest-indexed live participant can only walk to *itself*: it
    // becomes the agent, rebuilds the whole reduction locally, and
    // broadcasts `Done`. Everyone else blocks on the first live
    // candidate, which is exactly that agent (all lower candidates being
    // dead), or the still-live root.
    if orphaned {
        let mut cand = 0usize;
        loop {
            if cand == d {
                p.phase_begin(PHASE_RECOVER);
                let r = local_subtree_r(p, &ctx, 0);
                p.phase_end();
                out.rebuilt_subtrees.push(0);
                broadcast_done(p, &ctx, d)?;
                out.r = Some(r);
                break;
            }
            match p.recv::<FtMsg>(ctx.roots[cand], TAG_FT) {
                // A ghost from a live candidate can only be a lost
                // `Done` whose retries ran out: treat it as `Done`.
                Ok(FtMsg::Done) | Err(CommError::MessageDropped { .. }) => break,
                Ok(FtMsg::SalvageReq) => {
                    // Defensive: answer with our cached R.
                    match p.send(ctx.roots[cand], TAG_FT, FtMsg::R(sent_r.clone())) {
                        Err(e) if own_death(p, &e) => return Err(e),
                        _ => {}
                    }
                }
                Ok(FtMsg::R(_)) => {} // stray; ignore
                Err(e) if own_death(p, &e) => return Err(e),
                Err(CommError::RankFailed { .. } | CommError::PeerGone { .. }) => cand += 1,
                Err(e) => return Err(e),
            }
        }
    }

    // Relay `Done` to our children so orphans deep in live subtrees wake
    // up (the agent already broadcast to everyone).
    if out.r.is_none() {
        for &c in &children {
            send_ctrl(p, ctx.roots[c], &FtMsg::Done)?;
        }
    }
    p.phase_end();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeShape;
    use crate::tsqr::tsqr_rank_program;
    use tsqr_gridmpi::Runtime;
    use tsqr_linalg::verify::{r_distance, relative_residual};
    use tsqr_netsim::{
        ClusterSpec, CostModel, FailureSchedule, GridTopology, LinkParams, VirtualTime,
    };

    /// Shorthand: seconds → [`VirtualTime`].
    fn vt(secs: f64) -> VirtualTime {
        VirtualTime::from_secs(secs)
    }

    /// The 4-site grid of the fault experiments: 4 clusters × 4
    /// single-socket nodes, LAN links inside, WAN links between.
    fn grid4() -> Runtime {
        let specs = (0..4)
            .map(|i| ClusterSpec {
                name: format!("site{i}"),
                nodes: 4,
                procs_per_node: 1,
                peak_gflops_per_proc: 8.0,
            })
            .collect();
        let topo = GridTopology::block_placement(specs, 4, 1);
        let mut model = CostModel::homogeneous(LinkParams::from_ms_mbps(0.07, 890.0), 1e9, 4);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    model.inter_cluster[a][b] = LinkParams::from_ms_mbps(8.0, 80.0);
                }
            }
        }
        let mut rt = Runtime::new(topo, model);
        // Fail fast: a protocol bug that deadlocks a rank should trip
        // the wall-clock safety net in seconds, not minutes.
        rt.set_recv_timeout(std::time::Duration::from_secs(5));
        rt
    }

    const M: u64 = 256;
    const N: usize = 8;
    const SEED: u64 = 71;

    fn cfg() -> TsqrConfig {
        TsqrConfig {
            shape: TreeShape::GridHierarchical,
            domains_per_cluster: 4,
            ..Default::default()
        }
    }

    /// Runs the self-healing program under `schedule`; returns the
    /// unique surviving R plus all per-rank outputs.
    fn run_ft(schedule: FailureSchedule) -> (Matrix, Vec<Option<FtTsqrOutput>>) {
        let mut rt = grid4();
        rt.set_failure_schedule(schedule);
        let layout = DomainLayout::build(rt.topology(), M, N, 4);
        let tree = ReductionTree::build(&TreeShape::GridHierarchical, 16, &layout.clusters());
        let c = cfg();
        let report = rt.run(|p, _| ft_tsqr_rank_program(p, &layout, &tree, &c, SEED, None));
        let outcome = report.outcome();
        let mut holders: Vec<Matrix> = Vec::new();
        let mut outs: Vec<Option<FtTsqrOutput>> = vec![None; 16];
        for (rank, o) in &outcome.survivors {
            if let Some(r) = &o.r {
                holders.push(r.clone());
            }
            outs[*rank] = Some(o.clone());
        }
        assert_eq!(holders.len(), 1, "exactly one survivor must hold R");
        (holders.pop().unwrap(), outs)
    }

    /// The failure-free R of the *plain* program — the recovery target.
    fn failure_free_r() -> Matrix {
        let rt = grid4();
        let layout = DomainLayout::build(rt.topology(), M, N, 4);
        let tree = ReductionTree::build(&TreeShape::GridHierarchical, 16, &layout.clusters());
        let c = cfg();
        let report = rt.run(|p, _| tsqr_rank_program(p, &layout, &tree, &c, SEED, None));
        report.ranks[0].result.clone().unwrap().r.unwrap()
    }

    #[test]
    fn failure_free_ft_run_matches_plain_tsqr_exactly() {
        let (r, outs) = run_ft(FailureSchedule::default());
        assert!(r.approx_eq(&failure_free_r(), 0.0), "bitwise-equal R");
        for o in outs.iter().flatten() {
            assert!(o.rebuilt_subtrees.is_empty() && o.salvaged_children.is_empty());
        }
    }

    #[test]
    fn any_single_crash_at_any_tree_level_recovers_bitwise() {
        let reference = failure_free_r();
        // One representative of every tree level on the 4-site grid
        // (participant == rank): a leaf (15), an intra-cluster combiner
        // (2), a cluster root (4), the mid WAN combiner (8), and the
        // global root (0) — each at an early, a mid-reduce, and a
        // WAN-phase crash time.
        for rank in [15usize, 2, 4, 8, 0] {
            for at_ms in [0.02f64, 2.0, 12.0] {
                let schedule =
                    FailureSchedule::new(1).crash_rank(rank, vt(at_ms * 1e-3));
                let (r, outs) = run_ft(schedule);
                assert!(
                    r.approx_eq(&reference, 0.0),
                    "crash of rank {rank} at {at_ms}ms must not change R"
                );
                assert!(
                    outs[rank].is_none(),
                    "the crashed rank must not appear among survivors"
                );
                // Someone did recovery work (unless the victim had
                // already finished its part — possible for late leaves).
                let recoveries: usize = outs
                    .iter()
                    .flatten()
                    .map(|o| o.rebuilt_subtrees.len() + o.salvaged_children.len())
                    .sum();
                assert!(
                    recoveries > 0 || rank != 0,
                    "a root crash always forces an agent rebuild"
                );
            }
        }
    }

    #[test]
    fn root_crash_elects_the_lowest_live_agent() {
        let schedule = FailureSchedule::new(1).crash_rank(0, vt(1e-3));
        let (r, outs) = run_ft(schedule);
        assert!(r.approx_eq(&failure_free_r(), 0.0));
        let agent = outs
            .iter()
            .flatten()
            .find(|o| o.r.is_some())
            .expect("one survivor holds R");
        assert_eq!(agent.rebuilt_subtrees, vec![0], "the agent rebuilds the full tree");
        // Rank 1 is the lowest live participant, hence the agent.
        assert!(outs[1].as_ref().unwrap().r.is_some());
    }

    #[test]
    fn cascading_crashes_still_recover() {
        // Root and its successor both die: rank 2 must self-elect.
        let schedule = FailureSchedule::new(1)
            .crash_rank(0, vt(1e-3))
            .crash_rank(1, vt(2e-3));
        let (r, outs) = run_ft(schedule);
        assert!(r.approx_eq(&failure_free_r(), 0.0));
        assert!(outs[2].as_ref().unwrap().r.is_some(), "rank 2 becomes the agent");
    }

    #[test]
    fn ghosted_r_factor_is_salvaged_not_rebuilt() {
        // Drop every transmission attempt of rank 3's R to its parent 2:
        // the message ghosts, and 2 salvages 3's cached copy.
        let mut schedule = FailureSchedule::new(1);
        for nth in 0..4 {
            schedule = schedule.drop_nth_message(3, 2, nth);
        }
        let (r, outs) = run_ft(schedule);
        assert!(r.approx_eq(&failure_free_r(), 0.0));
        let parent = outs[2].as_ref().unwrap();
        assert_eq!(parent.salvaged_children, vec![3]);
        assert!(parent.rebuilt_subtrees.is_empty());
    }

    #[test]
    fn lost_salvage_reply_falls_back_to_rebuilding() {
        // Lose the R send *and* the salvage reply (8 straight drops on
        // 3 → 2): the parent rebuilds the subtree locally instead.
        let mut schedule = FailureSchedule::new(1);
        for nth in 0..8 {
            schedule = schedule.drop_nth_message(3, 2, nth);
        }
        let (r, outs) = run_ft(schedule);
        assert!(r.approx_eq(&failure_free_r(), 0.0));
        let parent = outs[2].as_ref().unwrap();
        assert_eq!(parent.rebuilt_subtrees, vec![3]);
        assert!(parent.salvaged_children.is_empty());
    }

    #[test]
    fn recovered_r_reconstructs_the_matrix_with_the_failure_free_q() {
        // Q from a failure-free explicit-Q run + R recovered under a
        // crash: A = Q·R still holds to machine precision, because the
        // recovered R *is* the failure-free R.
        let rt = grid4();
        let layout = DomainLayout::build(rt.topology(), M, N, 4);
        let tree = ReductionTree::build(&TreeShape::GridHierarchical, 16, &layout.clusters());
        let qcfg = TsqrConfig { compute_q: true, ..cfg() };
        let report = rt.run(|p, _| tsqr_rank_program(p, &layout, &tree, &qcfg, SEED, None));
        let mut blocks: Vec<(u64, Matrix)> = report
            .ranks
            .iter()
            .map(|r| {
                let o = r.result.clone().unwrap();
                (o.row0, o.q_block.unwrap())
            })
            .collect();
        blocks.sort_by_key(|(row0, _)| *row0);
        let refs: Vec<&Matrix> = blocks.iter().map(|(_, b)| b).collect();
        let q = Matrix::vstack_all(&refs);

        let schedule = FailureSchedule::new(1).crash_rank(8, vt(2e-3));
        let (r, _) = run_ft(schedule);
        let a = workload::full_matrix(SEED, M as usize, N);
        assert!(relative_residual(&a, &q, &r) < 1e-12);
        assert!(r_distance(&r, &q.transpose().matmul(&a)) < 1e-10);
    }

    #[test]
    fn baseline_tsqr_reports_typed_failure_instead_of_panicking() {
        // The same crash that ft_tsqr heals makes the plain program
        // fail — but with a structured outcome, not a panic.
        let mut rt = grid4();
        rt.set_failure_schedule(FailureSchedule::new(1).crash_rank(8, vt(2e-3)));
        let layout = DomainLayout::build(rt.topology(), M, N, 4);
        let tree = ReductionTree::build(&TreeShape::GridHierarchical, 16, &layout.clusters());
        let c = cfg();
        let report = rt.run(|p, _| tsqr_rank_program(p, &layout, &tree, &c, SEED, None));
        let outcome = report.outcome();
        assert!(!outcome.is_clean());
        assert!(outcome.failed_ranks().contains(&8));
        assert!(
            outcome.failures.iter().any(|(_, e)| matches!(
                e,
                CommError::RankFailed { rank: 8, .. }
            )),
            "peers must observe the typed crash, got {:?}",
            outcome.failures
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let schedule = || {
            FailureSchedule::new(9)
                .crash_rank(8, vt(2e-3))
                .drop_probability(3, 2, 0.5)
        };
        let (r1, _) = run_ft(schedule());
        let (r2, _) = run_ft(schedule());
        assert!(r1.approx_eq(&r2, 0.0), "replayed R must be bit-identical");
    }

    #[test]
    fn wan_degradation_slows_the_run_but_not_the_answer() {
        let run = |schedule: FailureSchedule| {
            let mut rt = grid4();
            rt.set_failure_schedule(schedule);
            let layout = DomainLayout::build(rt.topology(), M, N, 4);
            let tree =
                ReductionTree::build(&TreeShape::GridHierarchical, 16, &layout.clusters());
            let c = cfg();
            let report =
                rt.run(|p, _| tsqr_rank_program(p, &layout, &tree, &c, SEED, None));
            let r = report.ranks[0].result.clone().unwrap().r.unwrap();
            (r, report.makespan)
        };
        let (r_clean, t_clean) = run(FailureSchedule::default());
        // 10× latency, 10× less bandwidth across every WAN link for the
        // whole run.
        let (r_slow, t_slow) = run(FailureSchedule::new(0).degrade_all_wan(
            vt(0.0),
            vt(1.0),
            10.0,
            10.0,
        ));
        assert!(r_slow.approx_eq(&r_clean, 0.0), "degradation must not change R");
        assert!(
            t_slow.secs() > 1.5 * t_clean.secs(),
            "degraded WAN must slow the reduction: {} vs {}",
            t_slow.secs(),
            t_clean.secs()
        );
    }
}
