//! Distributed CAQR on the grid — the paper's announced next step (§VI:
//! "We plan to extend this work to the QR factorization of general
//! matrices … From models, there is no doubt that CAQR should scale.
//! However we will need to perform the experiment to confirm this
//! claim."). This module performs that experiment on the simulated grid.
//!
//! ## Algorithm
//!
//! The matrix is cut into `b × b` row-tiles distributed **block-cyclically**
//! over the ranks (tile `t` lives on rank `t mod P`), each rank storing its
//! tiles stacked contiguously. For every panel `k` (columns `k·b..(k+1)·b`):
//!
//! 1. **Local leaf**: each rank QR-factors the panel slice of its active
//!    tiles (`t ≥ k` — a suffix of its local rows, thanks to the cyclic
//!    layout) and applies the implicit Qᵀ to its local trailing columns —
//!    zero communication.
//! 2. **Tree reduce**: the per-rank `b × b` R factors are reduced over the
//!    TSQR tree (tuned to the grid topology), with each combine *also*
//!    applying its implicit Qᵀ to the two coupled `b × n_trail` trailing
//!    row-blocks — one extra round-trip per tree edge.
//! 3. The tree is rooted at the owner of the diagonal tile, so the final
//!    `R` row-block lands in place.
//!
//! Per panel the tuned tree crosses the WAN `O(#sites)` times regardless of
//! the matrix width — which is why CAQR inherits TSQR's grid scalability
//! (see `cargo run -p tsqr-bench --bin caqr_scaling`).

use tsqr_gridmpi::message::Phantom;
use tsqr_gridmpi::{CommError, Process};
use tsqr_linalg::flops;
use tsqr_linalg::prelude::*;
use tsqr_linalg::qr::{geqrf, larfb_left, larft};
use tsqr_linalg::Matrix;

use crate::tree::{ReductionTree, Step, TreeShape};
use crate::tsqr::{pack_upper, unpack_upper};
use crate::workload;

/// Tag for R factors travelling up the per-panel tree.
const TAG_R: u32 = 1301;
/// Tag for coupled trailing blocks travelling up.
const TAG_C: u32 = 1302;
/// Tag for updated trailing blocks travelling back down.
const TAG_C_BACK: u32 = 1303;
/// Tag for gathering the final R to rank 0.
const TAG_GATHER: u32 = 1304;

/// Phase label for the per-panel local leaf factorization plus local
/// trailing update (step 1 — zero communication).
pub const PHASE_PANEL_LEAF: &str = "panel-leaf";
/// Phase label for the per-panel tree reduction with coupled trailing
/// updates (step 2 — where all panel communication happens).
pub const PHASE_PANEL_TREE: &str = "panel-tree";
/// Phase label for the final gather of R tiles to rank 0 (bookkeeping,
/// not part of the factorization the paper times).
pub const PHASE_GATHER: &str = "gather";

/// Configuration of a distributed CAQR run.
#[derive(Debug, Clone, PartialEq)]
pub struct CaqrDistConfig {
    /// Tile size `b` (panel width = tile height).
    pub tile: usize,
    /// Tree shape for the per-panel reductions.
    pub shape: TreeShape,
    /// Leaf/kernel rate (flop/s); `None` = cost-model default.
    pub rate_flops: Option<f64>,
    /// Combine-kernel rate; `None` = leaf rate.
    pub combine_rate_flops: Option<f64>,
}

/// The block-cyclic tile layout of one rank.
struct TileMap {
    /// Global tile indices owned by this rank, ascending.
    tiles: Vec<usize>,
    /// Tile size.
    b: usize,
}

impl TileMap {
    fn new(rank: usize, procs: usize, n_tiles: usize, b: usize) -> Self {
        TileMap { tiles: (rank..n_tiles).step_by(procs).collect(), b }
    }

    /// Local row offset of the first owned tile with index ≥ `k`, plus the
    /// number of local rows from there on.
    fn active(&self, k: usize, total_local_rows: usize) -> (usize, usize) {
        let skipped = self.tiles.iter().take_while(|&&t| t < k).count();
        let offset = skipped * self.b;
        (offset, total_local_rows - offset)
    }

    /// True when this rank owns tile `k`.
    fn owns(&self, k: usize) -> bool {
        self.tiles.binary_search(&k).is_ok()
    }
}

/// Participants of panel `k`'s reduction: ranks that still own an active
/// tile, ordered with the diagonal-tile owner first (the tree root) and
/// the rest grouped by cluster, so the hierarchical tree shape sees
/// contiguous cluster runs.
fn panel_participants(
    k: usize,
    procs: usize,
    n_tiles: usize,
    cluster_of_rank: &[usize],
) -> Vec<usize> {
    let remaining = n_tiles - k;
    let root = k % procs;
    let mut rest: Vec<usize> =
        (1..procs.min(remaining)).map(|i| (k + i) % procs).collect();
    let root_cluster = cluster_of_rank[root];
    rest.sort_by_key(|&r| {
        (usize::from(cluster_of_rank[r] != root_cluster), cluster_of_rank[r], r)
    });
    std::iter::once(root).chain(rest).collect()
}

/// The rank program of a numerically real distributed CAQR (R only) on
/// the seeded random workload.
pub fn caqr_dist_rank_program(
    p: &mut Process,
    m: u64,
    n: usize,
    cfg: &CaqrDistConfig,
    seed: u64,
) -> Result<Option<Matrix>, CommError> {
    caqr_dist_rank_program_with(p, m, n, cfg, |row0, rows| {
        workload::block(seed, row0, rows, n)
    })
}

/// The rank program of a numerically real distributed CAQR (R only) over
/// caller-supplied data: `local_block(row0, rows)` returns that slice of
/// the global matrix (called once per owned tile).
///
/// Returns the full `N × N` upper-triangular factor on rank 0 (gathered
/// tile-by-tile), `None` elsewhere.
pub fn caqr_dist_rank_program_with(
    p: &mut Process,
    m: u64,
    n: usize,
    cfg: &CaqrDistConfig,
    mut local_block: impl FnMut(u64, usize) -> Matrix,
) -> Result<Option<Matrix>, CommError> {
    let b = cfg.tile;
    assert!(
        b >= 1 && n.is_multiple_of(b) && (m as usize).is_multiple_of(b),
        "m and n must be multiples of the tile"
    );
    let procs = p.size();
    let n_tiles = m as usize / b;
    let n_panels = n / b;
    assert!(n_tiles >= n_panels, "matrix must be at least as tall as wide");
    let map = TileMap::new(p.rank(), procs, n_tiles, b);

    // Materialize this rank's tiles, stacked.
    let mut local = Matrix::zeros(map.tiles.len() * b, n);
    for (i, &t) in map.tiles.iter().enumerate() {
        let block = local_block((t * b) as u64, b);
        assert_eq!(block.shape(), (b, n), "local_block returned the wrong shape");
        local.set_sub(i * b, 0, &block);
    }

    let cluster_of_rank: Vec<usize> =
        (0..procs).map(|r| p.topology().cluster_of(r)).collect();

    for k in 0..n_panels {
        let (off, rows) = map.active(k, local.rows());
        let participants = panel_participants(k, procs, n_tiles, &cluster_of_rank);
        let my_pos = participants.iter().position(|&r| r == p.rank());
        let col0 = k * b;
        let trail = n - col0 - b;

        // --- 1. Local leaf factorization + local trailing update. ---
        p.phase_begin(PHASE_PANEL_LEAF);
        let mut r1: Option<Matrix> = None;
        if rows > 0 {
            let mut work = local.sub_matrix(off, col0, rows, b);
            let mut tau = vec![0.0; b.min(rows)];
            geqrf(&mut work.view_mut(), &mut tau, 32);
            p.compute(flops::geqrf(rows as u64, b as u64), cfg.rate_flops);
            local.set_sub(off, col0, &work);
            if trail > 0 {
                let t = larft(&work.view(), &tau);
                let mut c = local.sub_matrix(off, col0 + b, rows, trail);
                larfb_left(Trans::Yes, &work.view(), &t.view(), &mut c.view_mut());
                local.set_sub(off, col0 + b, &c);
                p.compute(2 * flops::gemm(rows as u64, trail as u64, b as u64), cfg.rate_flops);
            }
            // Tile granularity guarantees every participant holds at
            // least one full b-row tile.
            let r = work.sub_matrix(0, 0, b, b);
            r1 = Some(r.upper_triangular_padded());
        }
        p.phase_end();

        // --- 2. Tree reduction with coupled trailing updates. ---
        if let (Some(pos), Some(mut r_acc)) = (my_pos, r1) {
            p.phase_begin(PHASE_PANEL_TREE);
            let tree = ReductionTree::build(
                &cfg.shape,
                participants.len(),
                &participants.iter().map(|&r| cluster_of_rank[r]).collect::<Vec<_>>(),
            );
            let combine_rate = cfg.combine_rate_flops.or(cfg.rate_flops);
            for step in &tree.steps[pos] {
                match *step {
                    Step::Recv(from_pos) => {
                        let from = participants[from_pos];
                        let packed: Vec<f64> = p.recv(from, TAG_R)?;
                        let mut r2 = unpack_upper(b, &packed);
                        let f = tpqrt(&mut r_acc, &mut r2);
                        p.compute(flops::tpqrt(b as u64), combine_rate);
                        if trail > 0 {
                            let mut c1 = local.sub_matrix(off, col0 + b, b, trail);
                            let mut c2: Matrix = p.recv(from, TAG_C)?;
                            tpmqrt(Trans::Yes, &f, &mut c1, &mut c2);
                            p.compute(
                                flops::tpmqrt(b as u64, trail as u64),
                                combine_rate,
                            );
                            local.set_sub(off, col0 + b, &c1);
                            p.send(from, TAG_C_BACK, c2)?;
                        }
                    }
                    Step::Send(to_pos) => {
                        let to = participants[to_pos];
                        p.send(to, TAG_R, pack_upper(&r_acc))?;
                        if trail > 0 {
                            let c_mine = local.sub_matrix(off, col0 + b, b, trail);
                            p.send(to, TAG_C, c_mine)?;
                            let updated: Matrix = p.recv(to, TAG_C_BACK)?;
                            local.set_sub(off, col0 + b, &updated);
                        }
                    }
                }
            }
            // The root (owner of tile k) stores the panel's final R.
            if pos == 0 {
                debug_assert!(map.owns(k));
                local.set_sub(off, col0, &r_acc.upper_triangular_padded());
            }
            p.phase_end();
        }
    }

    // --- Gather the R tiles (diagonal row-blocks) to rank 0. ---
    p.phase_begin(PHASE_GATHER);
    let mut mine: Vec<(usize, Matrix)> = Vec::new();
    for (i, &t) in map.tiles.iter().enumerate() {
        if t < n_panels {
            mine.push((t, local.sub_matrix(i * b, 0, b, n)));
        }
    }
    let out = if p.rank() == 0 {
        let mut r = Matrix::zeros(n, n);
        for (t, block) in mine {
            r.set_sub(t * b, 0, &block);
        }
        let mut needed: Vec<usize> =
            (0..n_panels).filter(|&t| t % procs != 0).map(|t| t % procs).collect();
        needed.sort_unstable();
        needed.dedup();
        for src in needed {
            let blocks: Vec<(u64, Matrix)> = p.recv(src, TAG_GATHER)?;
            for (t, block) in blocks {
                r.set_sub(t as usize * b, 0, &block);
            }
        }
        Some(r.upper_triangular_padded())
    } else {
        let payload: Vec<(u64, Matrix)> =
            mine.into_iter().map(|(t, m)| (t as u64, m)).collect();
        if !payload.is_empty() {
            p.send(0, TAG_GATHER, payload)?;
        }
        None
    };
    p.phase_end();
    Ok(out)
}

/// The symbolic twin: identical schedule and charged flops, no numerics,
/// no final gather (the gather is bookkeeping, not part of the
/// factorization the paper times).
pub fn caqr_dist_rank_program_symbolic(
    p: &mut Process,
    m: u64,
    n: usize,
    cfg: &CaqrDistConfig,
) -> Result<(), CommError> {
    let b = cfg.tile;
    assert!(
        b >= 1 && n.is_multiple_of(b) && (m as usize).is_multiple_of(b),
        "m and n must be multiples of the tile"
    );
    let procs = p.size();
    let n_tiles = m as usize / b;
    let n_panels = n / b;
    let map = TileMap::new(p.rank(), procs, n_tiles, b);
    let total_local_rows = map.tiles.len() * b;
    let cluster_of_rank: Vec<usize> =
        (0..procs).map(|r| p.topology().cluster_of(r)).collect();
    let r_bytes = 8 * (b * (b + 1) / 2) as u64;

    for k in 0..n_panels {
        let (off, rows) = map.active(k, total_local_rows);
        let participants = panel_participants(k, procs, n_tiles, &cluster_of_rank);
        let my_pos = participants.iter().position(|&r| r == p.rank());
        let trail = n - k * b - b;
        let _ = off;

        p.phase_begin(PHASE_PANEL_LEAF);
        if rows > 0 {
            p.compute(flops::geqrf(rows as u64, b as u64), cfg.rate_flops);
            if trail > 0 {
                p.compute(2 * flops::gemm(rows as u64, trail as u64, b as u64), cfg.rate_flops);
            }
        }
        p.phase_end();
        if let Some(pos) = my_pos {
            if rows == 0 {
                continue;
            }
            p.phase_begin(PHASE_PANEL_TREE);
            let tree = ReductionTree::build(
                &cfg.shape,
                participants.len(),
                &participants.iter().map(|&r| cluster_of_rank[r]).collect::<Vec<_>>(),
            );
            let combine_rate = cfg.combine_rate_flops.or(cfg.rate_flops);
            for step in &tree.steps[pos] {
                match *step {
                    Step::Recv(from_pos) => {
                        let from = participants[from_pos];
                        let _: Phantom = p.recv(from, TAG_R)?;
                        p.compute(flops::tpqrt(b as u64), combine_rate);
                        if trail > 0 {
                            let _: Phantom = p.recv(from, TAG_C)?;
                            p.compute(flops::tpmqrt(b as u64, trail as u64), combine_rate);
                            p.send(from, TAG_C_BACK, Phantom { bytes: 8 * (b * trail) as u64 })?;
                        }
                    }
                    Step::Send(to_pos) => {
                        let to = participants[to_pos];
                        p.send(to, TAG_R, Phantom { bytes: r_bytes })?;
                        if trail > 0 {
                            p.send(to, TAG_C, Phantom { bytes: 8 * (b * trail) as u64 })?;
                            let _: Phantom = p.recv(to, TAG_C_BACK)?;
                        }
                    }
                }
            }
            p.phase_end();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsqr_linalg::verify::{is_upper_triangular, r_distance};
    use tsqr_netsim::{ClusterSpec, CostModel, GridTopology, LinkParams};
    use tsqr_gridmpi::Runtime;

    fn mini_grid(clusters: usize, procs: usize) -> Runtime {
        let specs = (0..clusters)
            .map(|i| ClusterSpec {
                name: format!("c{i}"),
                nodes: procs,
                procs_per_node: 1,
                peak_gflops_per_proc: 8.0,
            })
            .collect();
        let topo = GridTopology::block_placement(specs, procs, 1);
        let mut model =
            CostModel::homogeneous(LinkParams::from_ms_mbps(0.07, 890.0), 1e9, clusters);
        for a in 0..clusters {
            for b in 0..clusters {
                if a != b {
                    model.inter_cluster[a][b] = LinkParams::from_ms_mbps(8.0, 80.0);
                }
            }
        }
        Runtime::new(topo, model)
    }

    fn reference_r(seed: u64, m: usize, n: usize) -> Matrix {
        QrFactors::compute(&workload::full_matrix(seed, m, n), 16)
            .r()
            .upper_triangular_padded()
    }

    fn run(rt: &Runtime, m: u64, n: usize, tile: usize, seed: u64) -> Matrix {
        let cfg = CaqrDistConfig {
            tile,
            shape: TreeShape::GridHierarchical,
            rate_flops: None,
            combine_rate_flops: None,
        };
        let report = rt.run(|p, _| caqr_dist_rank_program(p, m, n, &cfg, seed));
        report.ranks[0].result.clone().unwrap().expect("rank 0 holds R")
    }

    #[test]
    fn square_matrix_matches_reference() {
        let rt = mini_grid(2, 2);
        let (m, n, tile) = (64u64, 16usize, 4usize);
        let r = run(&rt, m, n, tile, 91);
        assert!(is_upper_triangular(&r));
        let want = reference_r(91, m as usize, n).sub_matrix(0, 0, n, n);
        assert!(r_distance(&r, &want) < 1e-10);
    }

    #[test]
    fn various_grids_and_tiles() {
        for (clusters, procs, m, n, tile) in [
            (1usize, 1usize, 32u64, 8usize, 4usize),
            (1, 4, 96, 24, 4),
            (2, 4, 128, 16, 8),
            (3, 2, 72, 12, 4),
        ] {
            let rt = mini_grid(clusters, procs);
            let r = run(&rt, m, n, tile, 93);
            let want = reference_r(93, m as usize, n).sub_matrix(0, 0, n, n);
            assert!(
                r_distance(&r, &want) < 1e-10,
                "clusters={clusters} procs={procs} m={m} n={n} tile={tile}"
            );
        }
    }

    #[test]
    fn tall_matrix_with_many_tiles() {
        let rt = mini_grid(2, 3);
        let (m, n, tile) = (300u64, 10usize, 5usize);
        let r = run(&rt, m, n, tile, 95);
        let want = reference_r(95, m as usize, n).sub_matrix(0, 0, n, n);
        assert!(r_distance(&r, &want) < 1e-10);
    }

    #[test]
    fn wan_messages_scale_with_panels_not_width() {
        // Each panel's tuned tree crosses the WAN O(sites) times; total
        // WAN messages ≈ panels · O(sites) — independent of the trailing
        // width per panel.
        let rt = mini_grid(2, 2);
        let cfg = CaqrDistConfig {
            tile: 4,
            shape: TreeShape::GridHierarchical,
            rate_flops: None,
            combine_rate_flops: None,
        };
        let report = rt.run(|p, _| caqr_dist_rank_program(p, 64, 16, &cfg, 97).map(|_| ()));
        // 4 panels; per panel ≤ 3 WAN messages (R + C + C_back on one tree
        // edge) + final gather.
        let wan = report.totals.inter_cluster_msgs();
        assert!(wan <= 4 * 3 + 2, "got {wan} WAN messages");
    }

    #[test]
    fn general_matrix_least_squares_via_augmentation() {
        // min ||A·x − b|| for a *general* (square-ish) A: factor the
        // augmented [A | b·e] and back-solve from the R block — the
        // classic augmented-matrix trick, distributed.
        use tsqr_linalg::tri::{trsv, Triangle};
        let rt = mini_grid(2, 2);
        let (m, n, tile) = (96u64, 12usize, 4usize);
        let a = workload::full_matrix(201, m as usize, n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 2.0).collect();
        let rhs: Vec<f64> = (0..m as usize)
            .map(|i| (0..n).map(|j| a[(i, j)] * x_true[j]).sum())
            .collect();
        // Augment with one tile-width of columns: [b, 0, …, 0].
        let n_aug = n + tile;
        let cfg = CaqrDistConfig {
            tile,
            shape: TreeShape::GridHierarchical,
            rate_flops: None,
            combine_rate_flops: None,
        };
        let report = rt.run(|p, _| {
            caqr_dist_rank_program_with(p, m, n_aug, &cfg, |row0, rows| {
                Matrix::from_fn(rows, n_aug, |i, j| {
                    if j < n {
                        a[(row0 as usize + i, j)]
                    } else if j == n {
                        rhs[row0 as usize + i]
                    } else {
                        0.0
                    }
                })
            })
        });
        let r_aug = report.ranks[0].result.clone().unwrap().expect("rank 0");
        // x = R[..n, ..n]⁻¹ · R[..n, n]
        let r = r_aug.sub_matrix(0, 0, n, n);
        let mut x: Vec<f64> = (0..n).map(|i| r_aug[(i, n)]).collect();
        trsv(Triangle::Upper, &r.view(), &mut x);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn symbolic_twin_matches_real_traffic_without_gather() {
        let rt = mini_grid(2, 2);
        let cfg = CaqrDistConfig {
            tile: 4,
            shape: TreeShape::GridHierarchical,
            rate_flops: None,
            combine_rate_flops: None,
        };
        let (m, n) = (96u64, 12usize);
        let real = rt.run(|p, _| caqr_dist_rank_program(p, m, n, &cfg, 99).map(|_| ()));
        let sym = rt.run(|p, _| caqr_dist_rank_program_symbolic(p, m, n, &cfg));
        // The real run adds the final gather (bookkeeping); flops must
        // match exactly and messages differ only by the gather.
        for (rank, (a, b)) in real.ranks.iter().zip(&sym.ranks).enumerate() {
            assert_eq!(a.stats.traffic.flops, b.stats.traffic.flops, "rank {rank} flops");
            assert!(
                a.stats.traffic.total_msgs() <= b.stats.traffic.total_msgs() + 1,
                "rank {rank}: gather adds at most one message"
            );
        }
    }
}
