//! Domain decomposition: splitting the TS matrix and the process set.
//!
//! A **domain** is a block of rows processed by one leaf of the TSQR
//! reduction (§III). The paper's key generalization over the original TSQR
//! is that a domain may be handled by a *group* of processes jointly
//! running a ScaLAPACK-style factorization: one domain per process is the
//! original TSQR (LAPACK leaves), one domain per *cluster* makes the whole
//! grid run like per-site ScaLAPACK with a single combine level, and the
//! sweet spot in between is what Figs. 6–7 explore through the
//! `domains_per_cluster` knob.

use tsqr_netsim::GridTopology;

/// One domain: its process group and its slice of global rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    /// Global ranks jointly factoring this domain; `ranks[0]` is the
    /// domain root (holds the domain's R factor and the top rows).
    pub ranks: Vec<usize>,
    /// First global row of the domain's slice.
    pub row0: u64,
    /// Number of rows in the slice.
    pub rows: u64,
    /// The cluster hosting the domain (domains never span clusters).
    pub cluster: usize,
}

/// A complete decomposition of an `m × n` problem over a placed topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainLayout {
    /// The domains, in row order (domain 0 owns the top rows and its root
    /// is global rank 0).
    pub domains: Vec<Domain>,
    /// Global row count.
    pub m: u64,
    /// Column count.
    pub n: usize,
}

/// Splits `total` items into `parts` nearly-equal contiguous chunks
/// (remainder spread over the first chunks).
pub fn even_chunks(total: u64, parts: usize) -> Vec<u64> {
    let parts64 = parts as u64;
    (0..parts64).map(|i| total / parts64 + u64::from(i < total % parts64)).collect()
}

impl DomainLayout {
    /// Builds the layout: each cluster's ranks are split into
    /// `domains_per_cluster` contiguous groups, and the `m` rows are
    /// divided evenly over all domains.
    ///
    /// Panics when `domains_per_cluster` does not divide the per-cluster
    /// process count (the configurations of Figs. 6–7 are all powers of
    /// two) or when a domain would have fewer than `n` rows.
    pub fn build(topo: &GridTopology, m: u64, n: usize, domains_per_cluster: usize) -> Self {
        assert!(domains_per_cluster > 0, "need at least one domain per cluster");
        let mut domains = Vec::new();
        for c in 0..topo.num_clusters() {
            let ranks = topo.ranks_in_cluster(c);
            assert!(
                !ranks.is_empty() && ranks.len().is_multiple_of(domains_per_cluster),
                "cluster {c}: {} ranks not divisible into {domains_per_cluster} domains",
                ranks.len()
            );
            let per = ranks.len() / domains_per_cluster;
            for d in 0..domains_per_cluster {
                domains.push(Domain {
                    ranks: ranks[d * per..(d + 1) * per].to_vec(),
                    row0: 0, // filled below
                    rows: 0,
                    cluster: c,
                });
            }
        }
        let chunks = even_chunks(m, domains.len());
        let mut row0 = 0;
        for (dom, rows) in domains.iter_mut().zip(chunks) {
            dom.row0 = row0;
            dom.rows = rows;
            row0 += rows;
            assert!(
                dom.rows >= n as u64,
                "domain starting at row {} has {} rows < n = {n}; use fewer domains",
                dom.row0,
                dom.rows
            );
        }
        DomainLayout { domains, m, n }
    }

    /// Load-balanced variant (the paper's §III "natural extension", left
    /// as future work there): rows are attributed to each domain in
    /// proportion to `rate_of_cluster[domain.cluster]`, so faster clusters
    /// finish their leaf factorization at the same virtual time as slower
    /// ones.
    pub fn build_weighted(
        topo: &GridTopology,
        m: u64,
        n: usize,
        domains_per_cluster: usize,
        rate_of_cluster: &[f64],
    ) -> Self {
        let mut layout = Self::build(topo, m, n, domains_per_cluster);
        assert_eq!(rate_of_cluster.len(), topo.num_clusters(), "one rate per cluster");
        assert!(rate_of_cluster.iter().all(|&r| r > 0.0), "rates must be positive");
        let total_rate: f64 =
            layout.domains.iter().map(|d| rate_of_cluster[d.cluster]).sum();
        // Proportional split with largest-remainder rounding.
        let ideal: Vec<f64> = layout
            .domains
            .iter()
            .map(|d| m as f64 * rate_of_cluster[d.cluster] / total_rate)
            .collect();
        let mut rows: Vec<u64> = ideal.iter().map(|&x| x.floor() as u64).collect();
        let rem = m - rows.iter().sum::<u64>();
        let mut order: Vec<usize> = (0..rows.len()).collect();
        order.sort_by(|&a, &b| {
            (ideal[b] - ideal[b].floor()).total_cmp(&(ideal[a] - ideal[a].floor()))
        });
        for &i in order.iter().take(rem as usize) {
            rows[i] += 1;
        }
        let mut row0 = 0;
        for (dom, r) in layout.domains.iter_mut().zip(rows) {
            dom.row0 = row0;
            dom.rows = r;
            row0 += r;
            assert!(dom.rows >= n as u64, "weighted layout starved a domain below n rows");
        }
        layout
    }

    /// Number of domains.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// The domain a global rank belongs to.
    pub fn domain_of_rank(&self, rank: usize) -> Option<usize> {
        self.domains.iter().position(|d| d.ranks.contains(&rank))
    }

    /// Global rank of every domain root, in domain order — the TSQR
    /// reduction participants.
    pub fn roots(&self) -> Vec<usize> {
        self.domains.iter().map(|d| d.ranks[0]).collect()
    }

    /// Cluster of every domain, in domain order (for the hierarchical
    /// tree).
    pub fn clusters(&self) -> Vec<usize> {
        self.domains.iter().map(|d| d.cluster).collect()
    }

    /// The row slice of `member_idx` within domain `d`: the domain's rows
    /// are split evenly over its group, the root taking the top chunk.
    pub fn member_rows(&self, d: usize, member_idx: usize) -> (u64, u64) {
        let dom = &self.domains[d];
        let chunks = even_chunks(dom.rows, dom.ranks.len());
        let offset: u64 = chunks[..member_idx].iter().sum();
        (dom.row0 + offset, chunks[member_idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsqr_netsim::grid5000;

    #[test]
    fn even_chunks_cover_and_balance() {
        assert_eq!(even_chunks(10, 3), vec![4, 3, 3]);
        assert_eq!(even_chunks(9, 3), vec![3, 3, 3]);
        assert_eq!(even_chunks(2, 2), vec![1, 1]);
        let chunks = even_chunks(1_000_003, 7);
        assert_eq!(chunks.iter().sum::<u64>(), 1_000_003);
        assert!(chunks.iter().max().unwrap() - chunks.iter().min().unwrap() <= 1);
    }

    #[test]
    fn one_domain_per_process() {
        let topo = grid5000::topology(2); // 128 procs
        let layout = DomainLayout::build(&topo, 1 << 20, 64, 64);
        assert_eq!(layout.num_domains(), 128);
        assert!(layout.domains.iter().all(|d| d.ranks.len() == 1));
        // Rows tile [0, m).
        let mut row = 0;
        for d in &layout.domains {
            assert_eq!(d.row0, row);
            row += d.rows;
        }
        assert_eq!(row, 1 << 20);
    }

    #[test]
    fn one_domain_per_cluster_groups_all_site_ranks() {
        let topo = grid5000::topology(4);
        let layout = DomainLayout::build(&topo, 1 << 22, 64, 1);
        assert_eq!(layout.num_domains(), 4);
        for (c, d) in layout.domains.iter().enumerate() {
            assert_eq!(d.ranks.len(), 64);
            assert_eq!(d.cluster, c);
            assert_eq!(d.ranks[0], c * 64);
        }
        assert_eq!(layout.roots(), vec![0, 64, 128, 192]);
    }

    #[test]
    fn intermediate_domain_counts() {
        let topo = grid5000::topology(1);
        for dpc in [1, 2, 4, 8, 16, 32, 64] {
            let layout = DomainLayout::build(&topo, 1 << 20, 64, dpc);
            assert_eq!(layout.num_domains(), dpc);
            assert!(layout.domains.iter().all(|d| d.ranks.len() == 64 / dpc));
        }
    }

    #[test]
    fn member_rows_partition_each_domain() {
        let topo = grid5000::topology(1);
        let layout = DomainLayout::build(&topo, 100_000, 32, 8);
        for d in 0..8 {
            let g = layout.domains[d].ranks.len();
            let mut row = layout.domains[d].row0;
            for i in 0..g {
                let (r0, rows) = layout.member_rows(d, i);
                assert_eq!(r0, row);
                row += rows;
            }
            assert_eq!(row, layout.domains[d].row0 + layout.domains[d].rows);
        }
    }

    #[test]
    fn domain_of_rank_round_trip() {
        let topo = grid5000::topology(2);
        let layout = DomainLayout::build(&topo, 1 << 20, 64, 16);
        for rank in 0..topo.num_procs() {
            let d = layout.domain_of_rank(rank).unwrap();
            assert!(layout.domains[d].ranks.contains(&rank));
        }
    }

    #[test]
    fn weighted_layout_shifts_rows_to_fast_clusters() {
        let topo = grid5000::topology(2);
        let layout =
            DomainLayout::build_weighted(&topo, 1_000_000, 64, 4, &[1.0, 3.0]);
        let slow: u64 =
            layout.domains.iter().filter(|d| d.cluster == 0).map(|d| d.rows).sum();
        let fast: u64 =
            layout.domains.iter().filter(|d| d.cluster == 1).map(|d| d.rows).sum();
        assert_eq!(slow + fast, 1_000_000);
        let ratio = fast as f64 / slow as f64;
        assert!((ratio - 3.0).abs() < 0.01, "ratio was {ratio}");
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_domain_count_panics() {
        let topo = grid5000::topology(1); // 64 ranks per cluster
        let _ = DomainLayout::build(&topo, 1 << 20, 64, 3);
    }

    #[test]
    #[should_panic(expected = "rows < n")]
    fn too_short_domains_panic() {
        let topo = grid5000::topology(1);
        let _ = DomainLayout::build(&topo, 100, 64, 64);
    }
}
