//! Reduction-tree schedules for the TSQR all-reduce.
//!
//! TSQR is "a single complex reduce operation" (§II-C); the *shape* of the
//! reduction tree is the paper's key tuning knob. Previous work used flat
//! trees (out-of-core, multicore) or binary trees (parallel distributed);
//! the paper's contribution is the **grid-hierarchical** tree of Fig. 2: a
//! binary tree inside each cluster, then a binary tree across the cluster
//! roots, which pushes the inter-cluster message count down to
//! `#clusters − 1` regardless of the matrix width.
//!
//! This module generalizes that knob the way Demmel et al. prove is safe
//! (TSQR is correct over *any* reduction tree): a [`TreeShape`] is either
//! one of the classic fixed shapes, a **generated family**
//! ([`TreeShape::Kary`], [`TreeShape::Binomial`], [`TreeShape::Greedy`]),
//! or a fully **arbitrary tree** given as a parent vector
//! ([`TreeShape::Custom`]). The model-driven autotuner in [`crate::tune`]
//! searches this space with the calibrated α/β/γ cost model and returns
//! the argmin shape for a topology (see `docs/tuning.md`).
//!
//! A schedule assigns every participant an ordered list of [`Step`]s; a
//! participant that reaches a `Send` forwards its accumulated R factor and
//! is done. Executing the steps in order, combining on every `Recv`,
//! performs the reduction; executing them *in reverse* with the roles
//! swapped walks the same tree downward, which is how the explicit Q is
//! reconstructed (each combine node scatters its `[E1; E2]` blocks back to
//! the children that supplied `R1`/`R2`).

/// One action in a participant's reduction schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Receive a partner's R factor (by participant index) and combine it
    /// into ours (ours is `R1`, theirs is `R2`).
    Recv(usize),
    /// Send our accumulated R factor to a parent (by participant index).
    /// Always the last step of a non-root participant.
    Send(usize),
}

/// The shape of the reduction tree.
///
/// The first three are the paper's fixed shapes; the rest open the full
/// tree space for the autotuner ([`crate::tune`], `docs/tuning.md`).
/// Shapes carrying data (`Custom`) make this type `Clone` but not `Copy`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeShape {
    /// Everyone sends to participant 0, which combines sequentially —
    /// the out-of-core / multicore shape.
    Flat,
    /// Topology-oblivious binary tree over participant indices — what a
    /// grid-unaware MPI reduction does.
    Binary,
    /// Binary tree within each cluster, then binary tree over the cluster
    /// roots — the paper's tuned tree (Fig. 2).
    GridHierarchical,
    /// k-ary tree over participant indices: participant `i`'s parent is
    /// `(i − 1) / k`. `Kary(1)` is a chain (depth `P − 1`, pipelined);
    /// `Kary(P − 1)` degenerates to [`TreeShape::Flat`].
    Kary(usize),
    /// Binomial tree: participant `i`'s parent clears `i`'s lowest set
    /// bit — the shape of a classic MPI `Reduce`. Same `log₂ P` depth as
    /// [`TreeShape::Binary`] but children arrive in subtree-size order,
    /// which pipelines better under nonzero latency.
    Binomial,
    /// Greedy latency-aware construction: repeatedly merge the two
    /// subtrees whose merge completes cheapest under link-class costs
    /// (intra-cluster cheap, inter-cluster expensive), a Huffman-style
    /// bottom-up agglomeration. [`ReductionTree::build`] prices links at
    /// the class granularity from `cluster_of` alone; the autotuner
    /// re-runs the same construction under the *measured* per-site-pair
    /// α/β costs ([`ReductionTree::greedy_parents`]) where it can exploit
    /// WAN asymmetry (see `docs/tuning.md`).
    Greedy,
    /// An arbitrary tree as a parent vector: `parents[i]` is participant
    /// `i`'s parent, `None` exactly at the root, which must be
    /// participant 0. Children are received in ascending index order
    /// (matching what [`ReductionTree::parents`] round-trips).
    Custom(Vec<Option<usize>>),
}

impl TreeShape {
    /// Short stable label for traces, tables and CLI output
    /// (`"grid"`, `"kary4"`, …). `&'static` so it can annotate
    /// [`tsqr_gridmpi::trace::Event`] phase spans.
    pub fn label(&self) -> &'static str {
        match self {
            TreeShape::Flat => "flat",
            TreeShape::Binary => "binary",
            TreeShape::GridHierarchical => "grid",
            TreeShape::Kary(1) => "chain",
            TreeShape::Kary(2) => "kary2",
            TreeShape::Kary(3) => "kary3",
            TreeShape::Kary(4) => "kary4",
            TreeShape::Kary(8) => "kary8",
            TreeShape::Kary(16) => "kary16",
            TreeShape::Kary(_) => "kary",
            TreeShape::Binomial => "binomial",
            TreeShape::Greedy => "greedy",
            TreeShape::Custom(_) => "custom",
        }
    }
}

/// Abstract link-class costs used by [`TreeShape::Greedy`] when only the
/// participant→cluster map is known: one unit per intra-cluster hop, and
/// the measured Grid'5000 latency ratio (~8 ms WAN vs ~0.07 ms LAN,
/// Fig. 3(a)) per inter-cluster hop. The autotuner replaces these with
/// the real α/β prices.
const GREEDY_INTRA_COST: f64 = 1.0;
/// See [`GREEDY_INTRA_COST`].
const GREEDY_INTER_COST: f64 = 100.0;

/// A complete reduction schedule: `steps[i]` is participant `i`'s program.
/// Participant 0 is always the root (it holds the final R).
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionTree {
    /// Per-participant step lists.
    pub steps: Vec<Vec<Step>>,
}

impl ReductionTree {
    /// Builds the schedule for `n` participants.
    ///
    /// `cluster_of[i]` gives participant `i`'s cluster and is only
    /// consulted by [`TreeShape::GridHierarchical`] and
    /// [`TreeShape::Greedy`]; participants of a cluster must form a
    /// contiguous index range for the hierarchical shape (which the QCG
    /// allocation guarantees).
    ///
    /// # Panics
    /// Panics on `n = 0`, on a `cluster_of` length mismatch for the
    /// topology-aware shapes, on `Kary(0)`, and on a
    /// [`TreeShape::Custom`] parent vector that is not a valid tree of
    /// exactly `n` participants rooted at 0 (see
    /// [`ReductionTree::from_parents`]).
    pub fn build(shape: &TreeShape, n: usize, cluster_of: &[usize]) -> Self {
        assert!(n > 0, "reduction over zero participants");
        match shape {
            TreeShape::Flat => Self::flat(&(0..n).collect::<Vec<_>>()),
            TreeShape::Binary => Self::binary(&(0..n).collect::<Vec<_>>()),
            TreeShape::GridHierarchical => {
                assert_eq!(cluster_of.len(), n, "cluster_of length mismatch");
                Self::hierarchical(n, cluster_of)
            }
            TreeShape::Kary(k) => {
                assert!(*k >= 1, "k-ary tree needs k >= 1");
                Self::from_parents(&Self::kary_parents(n, *k))
            }
            TreeShape::Binomial => Self::from_parents(&Self::binomial_parents(n)),
            TreeShape::Greedy => {
                assert_eq!(cluster_of.len(), n, "cluster_of length mismatch");
                let parents = Self::greedy_parents(
                    n,
                    |child, parent| {
                        if cluster_of[child] == cluster_of[parent] {
                            GREEDY_INTRA_COST
                        } else {
                            GREEDY_INTER_COST
                        }
                    },
                    GREEDY_INTRA_COST,
                );
                Self::from_parents(&parents)
            }
            TreeShape::Custom(parents) => {
                assert_eq!(
                    parents.len(),
                    n,
                    "custom tree has {} participants, reduction needs {n}",
                    parents.len()
                );
                Self::from_parents(parents)
            }
        }
    }

    /// Flat tree over the given participant ids: `ids[0]` receives from
    /// every other id in order.
    fn flat(ids: &[usize]) -> Self {
        let mut steps = vec![Vec::new(); ids.iter().copied().max().unwrap_or(0) + 1];
        for &other in &ids[1..] {
            steps[ids[0]].push(Step::Recv(other));
            steps[other].push(Step::Send(ids[0]));
        }
        ReductionTree { steps }
    }

    /// Binary tree over the given participant ids (classic halving:
    /// at stride `s`, the id at even position receives from position+s).
    fn binary(ids: &[usize]) -> Self {
        let mut steps = vec![Vec::new(); ids.iter().copied().max().unwrap_or(0) + 1];
        Self::binary_into(ids, &mut steps);
        ReductionTree { steps }
    }

    fn binary_into(ids: &[usize], steps: &mut [Vec<Step>]) {
        let p = ids.len();
        let mut stride = 1;
        while stride < p {
            let mut pos = 0;
            while pos < p {
                if pos % (2 * stride) == 0 {
                    if pos + stride < p {
                        steps[ids[pos]].push(Step::Recv(ids[pos + stride]));
                    }
                } else {
                    steps[ids[pos]].push(Step::Send(ids[pos - stride]));
                }
                pos += stride;
            }
            stride *= 2;
        }
    }

    /// Fig. 2's tree: binary within each cluster, then binary over cluster
    /// roots. The overall root is the root of cluster 0 (participant 0).
    fn hierarchical(n: usize, cluster_of: &[usize]) -> Self {
        let mut steps = vec![Vec::new(); n];
        // Group contiguous participants by cluster.
        let mut cluster_ids: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            match cluster_ids.last_mut() {
                Some(grp) if cluster_of[grp[0]] == cluster_of[i] => grp.push(i),
                _ => cluster_ids.push(vec![i]),
            }
        }
        // Stage 1: binary tree inside each cluster.
        for grp in &cluster_ids {
            Self::binary_into(grp, &mut steps);
        }
        // Stage 2: binary tree over the cluster roots.
        let roots: Vec<usize> = cluster_ids.iter().map(|g| g[0]).collect();
        Self::binary_into(&roots, &mut steps);
        ReductionTree { steps }
    }

    /// Builds a schedule from a parent vector: `parents[i]` is
    /// participant `i`'s parent, `None` exactly at the root (participant
    /// 0). Every internal node receives its children in **ascending
    /// index order**, then sends to its parent — the order the built-in
    /// shapes also use, so round-tripping a fixed shape through
    /// [`ReductionTree::parents`] reproduces its schedule (and hence its
    /// floating-point combine order) exactly.
    ///
    /// # Panics
    /// Panics when the vector is empty, when the root is not participant
    /// 0 (or is not unique), on an out-of-range or self-referential
    /// parent, or on a cycle.
    pub fn from_parents(parents: &[Option<usize>]) -> Self {
        let n = parents.len();
        assert!(n > 0, "reduction over zero participants");
        assert_eq!(parents[0], None, "participant 0 must be the root");
        for (i, p) in parents.iter().enumerate().skip(1) {
            let p = p.unwrap_or_else(|| panic!("participant {i}: only the root lacks a parent"));
            assert!(p < n, "participant {i}: parent {p} out of range");
            assert_ne!(p, i, "participant {i} cannot be its own parent");
        }
        // Cycle check: walk each node to the root; more than n hops means
        // a cycle (root-reachability also falls out of this walk).
        for start in 1..n {
            let (mut cur, mut hops) = (start, 0usize);
            while let Some(p) = parents[cur] {
                cur = p;
                hops += 1;
                assert!(hops <= n, "cycle through participant {start}");
            }
        }
        let mut steps = vec![Vec::new(); n];
        for i in 0..n {
            // Recvs from children, ascending.
            for (c, p) in parents.iter().enumerate() {
                if *p == Some(i) {
                    steps[i].push(Step::Recv(c));
                }
            }
            if let Some(p) = parents[i] {
                steps[i].push(Step::Send(p));
            }
        }
        ReductionTree { steps }
    }

    /// The parent vector of this tree (inverse of
    /// [`ReductionTree::from_parents`] up to `Recv` ordering): `None` at
    /// the root, `Some(parent)` elsewhere.
    pub fn parents(&self) -> Vec<Option<usize>> {
        let mut parents = vec![None; self.steps.len()];
        for (i, steps) in self.steps.iter().enumerate() {
            for s in steps {
                if let Step::Send(to) = s {
                    parents[i] = Some(*to);
                }
            }
        }
        parents
    }

    /// Parent vector of the k-ary tree: `i`'s parent is `(i − 1) / k`.
    /// Parents always have lower indices than their children.
    pub fn kary_parents(n: usize, k: usize) -> Vec<Option<usize>> {
        assert!(k >= 1, "k-ary tree needs k >= 1");
        (0..n).map(|i| if i == 0 { None } else { Some((i - 1) / k) }).collect()
    }

    /// Parent vector of the binomial tree: `i`'s parent clears `i`'s
    /// lowest set bit. Parents always have lower indices than their
    /// children.
    pub fn binomial_parents(n: usize) -> Vec<Option<usize>> {
        (0..n).map(|i| if i == 0 { None } else { Some(i & (i - 1)) }).collect()
    }

    /// Parent vector of the greedy latency-aware construction: start with
    /// `n` singleton subtrees of cost 0, then repeatedly merge the pair
    /// whose merged subtree *completes earliest* — the lower-indexed root
    /// absorbs the higher-indexed one at
    /// `max(cost_lo, cost_hi + edge_cost(hi, lo)) + combine_cost` — until
    /// one tree remains. A Huffman-style agglomeration under the α/β link
    /// prices: expensive (WAN) edges are deferred and therefore rare,
    /// cheap (LAN) subtrees are ground down first.
    ///
    /// `edge_cost(child_root, parent_root)` prices the hand-off message;
    /// `combine_cost` prices one `tpqrt` combine. Deterministic: ties
    /// break toward the lowest root pair. The lower-index root always
    /// absorbs the higher one, so parents have lower indices than their
    /// children (the heap order [`crate::ft_tsqr`] relies on).
    pub fn greedy_parents(
        n: usize,
        edge_cost: impl Fn(usize, usize) -> f64,
        combine_cost: f64,
    ) -> Vec<Option<usize>> {
        assert!(n > 0, "reduction over zero participants");
        let mut parents: Vec<Option<usize>> = vec![None; n];
        // Active subtrees as (root, completion cost), kept sorted by root.
        let mut active: Vec<(usize, f64)> = (0..n).map(|i| (i, 0.0)).collect();
        while active.len() > 1 {
            let mut best: Option<(f64, usize, usize)> = None; // (cost, lo_slot, hi_slot)
            for a in 0..active.len() {
                for b in (a + 1)..active.len() {
                    let (lo, lo_cost) = active[a];
                    let (hi, hi_cost) = active[b];
                    let merged = (lo_cost).max(hi_cost + edge_cost(hi, lo)) + combine_cost;
                    let better = match best {
                        None => true,
                        Some((c, _, _)) => merged.total_cmp(&c).is_lt(),
                    };
                    if better {
                        best = Some((merged, a, b));
                    }
                }
            }
            let (cost, a, b) = best.expect("at least one pair while len > 1");
            let (lo, _) = active[a];
            let (hi, _) = active[b];
            parents[hi] = Some(lo);
            active[a] = (lo, cost);
            active.remove(b);
        }
        parents
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when there are no participants (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total number of messages in the whole reduction (= edges of the
    /// tree = `n − 1`).
    pub fn total_messages(&self) -> usize {
        self.steps
            .iter()
            .flatten()
            .filter(|s| matches!(s, Step::Send(_)))
            .count()
    }

    /// Messages crossing clusters, under the given participant→cluster map.
    pub fn inter_cluster_messages(&self, cluster_of: &[usize]) -> usize {
        let mut count = 0;
        for (i, steps) in self.steps.iter().enumerate() {
            for s in steps {
                if let Step::Send(to) = s {
                    if cluster_of[i] != cluster_of[*to] {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Depth of the tree: the longest chain of sequential combine steps at
    /// any participant — the `log₂(P)` factor of Table I for the binary
    /// shape.
    pub fn depth(&self) -> usize {
        self.steps.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// True when every parent has a lower participant index than each of
    /// its children (all built-in and generated shapes satisfy this).
    /// The self-healing protocol of [`crate::ft_tsqr`] requires it: its
    /// agent election walks candidates upward from 0 and only terminates
    /// because parents always sit below their children.
    pub fn is_heap_ordered(&self) -> bool {
        self.steps.iter().enumerate().all(|(i, steps)| {
            steps.iter().all(|s| match s {
                Step::Recv(c) => *c > i,
                Step::Send(p) => *p < i,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Executes the schedule on plain integers with a "combine" that
    /// collects the multiset of leaves; checks the root sees everyone.
    fn simulate(tree: &ReductionTree) -> Vec<usize> {
        let n = tree.len();
        let mut acc: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        // Replay: process steps globally in a data-driven order.
        let mut queues: Vec<std::collections::VecDeque<Step>> =
            tree.steps.iter().map(|s| s.iter().copied().collect()).collect();
        let mut mailbox: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); n];
        let mut progress = true;
        while progress {
            progress = false;
            for i in 0..n {
                while let Some(&step) = queues[i].front() {
                    match step {
                        Step::Send(to) => {
                            let payload = std::mem::take(&mut acc[i]);
                            mailbox[to].push((i, payload));
                            queues[i].pop_front();
                            progress = true;
                        }
                        Step::Recv(from) => {
                            if let Some(pos) =
                                mailbox[i].iter().position(|(src, _)| *src == from)
                            {
                                let (_, payload) = mailbox[i].remove(pos);
                                acc[i].extend(payload);
                                queues[i].pop_front();
                                progress = true;
                            } else {
                                break;
                            }
                        }
                    }
                }
            }
        }
        assert!(queues.iter().all(|q| q.is_empty()), "schedule deadlocked");
        let mut got = acc[0].clone();
        got.sort_unstable();
        got
    }

    /// Every shape the autotuner enumerates, for loop-over-all tests.
    fn all_shapes() -> Vec<TreeShape> {
        vec![
            TreeShape::Flat,
            TreeShape::Binary,
            TreeShape::GridHierarchical,
            TreeShape::Kary(1),
            TreeShape::Kary(2),
            TreeShape::Kary(3),
            TreeShape::Kary(4),
            TreeShape::Binomial,
            TreeShape::Greedy,
        ]
    }

    #[test]
    fn all_shapes_reduce_everything_to_root() {
        for n in [1, 2, 3, 4, 5, 7, 8, 16, 33] {
            let clusters: Vec<usize> = (0..n).map(|i| i * 4 / n).collect();
            for shape in all_shapes() {
                let tree = ReductionTree::build(&shape, n, &clusters);
                let got = simulate(&tree);
                assert_eq!(got, (0..n).collect::<Vec<_>>(), "{shape:?} with n={n}");
                assert_eq!(tree.total_messages(), n - 1);
                assert!(tree.is_heap_ordered(), "{shape:?} with n={n}");
            }
        }
    }

    #[test]
    fn binary_depth_is_log2() {
        for (n, d) in [(2, 1), (4, 2), (8, 3), (16, 4), (9, 4)] {
            let tree = ReductionTree::build(&TreeShape::Binary, n, &vec![0usize; n]);
            assert_eq!(tree.depth(), d, "n={n}");
        }
    }

    #[test]
    fn flat_depth_is_linear() {
        let tree = ReductionTree::build(&TreeShape::Flat, 8, &[0; 8]);
        assert_eq!(tree.depth(), 7);
    }

    #[test]
    fn kary_and_chain_depths() {
        // Kary(1) is a chain: every participant has one step except the
        // ends. Kary(n − 1) receives everyone directly at the root.
        let chain = ReductionTree::build(&TreeShape::Kary(1), 6, &[0; 6]);
        assert_eq!(chain.depth(), 2, "chain nodes do recv+send");
        assert_eq!(chain.total_messages(), 5);
        let star = ReductionTree::build(&TreeShape::Kary(7), 8, &[0; 8]);
        assert_eq!(star.depth(), 7, "k >= n-1 degenerates to flat");
        // 4-ary over 21 participants: root has 4 children, two levels.
        let kary = ReductionTree::build(&TreeShape::Kary(4), 21, &[0; 21]);
        assert_eq!(kary.steps[0].iter().filter(|s| matches!(s, Step::Recv(_))).count(), 4);
    }

    #[test]
    fn binomial_matches_mpi_reduce_structure() {
        // 8 participants: root 0 has children 1, 2, 4; 2 has child 3;
        // 4 has children 5, 6; 6 has child 7.
        let parents = ReductionTree::binomial_parents(8);
        assert_eq!(
            parents,
            vec![
                None,
                Some(0),
                Some(0),
                Some(2),
                Some(0),
                Some(4),
                Some(4),
                Some(6)
            ]
        );
        let tree = ReductionTree::from_parents(&parents);
        assert_eq!(tree.depth(), 3, "the root's three recvs are the longest step list");
    }

    #[test]
    fn hierarchical_minimizes_inter_cluster_messages() {
        // The headline property (Fig. 2): with C clusters the tuned tree
        // sends exactly C − 1 inter-cluster messages; a topology-oblivious
        // binary tree sends more.
        for (n, n_clusters) in [(12, 3), (16, 4), (64, 4), (256, 4)] {
            let per = n / n_clusters;
            let cluster_of: Vec<usize> = (0..n).map(|i| i / per).collect();
            let tuned =
                ReductionTree::build(&TreeShape::GridHierarchical, n, &cluster_of);
            assert_eq!(
                tuned.inter_cluster_messages(&cluster_of),
                n_clusters - 1,
                "tuned tree, n={n}"
            );
            let oblivious = ReductionTree::build(&TreeShape::Binary, n, &cluster_of);
            assert!(
                oblivious.inter_cluster_messages(&cluster_of) >= n_clusters - 1,
                "binary tree can't beat the tuned tree"
            );
            // The greedy construction under class costs matches the
            // hierarchical shape's headline guarantee.
            let greedy = ReductionTree::build(&TreeShape::Greedy, n, &cluster_of);
            assert_eq!(
                greedy.inter_cluster_messages(&cluster_of),
                n_clusters - 1,
                "greedy tree, n={n}"
            );
        }
        // A shuffled placement makes the oblivious tree strictly worse.
        let n = 16;
        let shuffled: Vec<usize> = (0..n).map(|i| i % 4).collect(); // interleaved clusters
        let oblivious = ReductionTree::build(&TreeShape::Binary, n, &shuffled);
        assert!(
            oblivious.inter_cluster_messages(&shuffled) > 3,
            "interleaved ranks force extra WAN messages, got {}",
            oblivious.inter_cluster_messages(&shuffled)
        );
        // Greedy keys off the cluster map, not index contiguity, so it
        // still crosses the WAN only C − 1 times on the shuffled layout.
        let greedy = ReductionTree::build(&TreeShape::Greedy, n, &shuffled);
        assert_eq!(greedy.inter_cluster_messages(&shuffled), 3);
    }

    #[test]
    fn hierarchical_depth_is_sum_of_stages() {
        // 4 clusters × 16 participants: 4 levels inside + 2 levels across.
        let n = 64;
        let cluster_of: Vec<usize> = (0..n).map(|i| i / 16).collect();
        let tree = ReductionTree::build(&TreeShape::GridHierarchical, n, &cluster_of);
        assert_eq!(tree.depth(), 4 + 2);
    }

    #[test]
    fn single_participant_has_empty_schedule() {
        for shape in all_shapes() {
            let tree = ReductionTree::build(&shape, 1, &[0]);
            assert!(tree.steps[0].is_empty());
            assert_eq!(tree.total_messages(), 0);
        }
        let tree = ReductionTree::build(&TreeShape::Custom(vec![None]), 1, &[0]);
        assert!(tree.steps[0].is_empty());
    }

    #[test]
    fn non_root_ends_with_send_root_never_sends() {
        for n in [2, 5, 8, 13] {
            let cluster_of: Vec<usize> = (0..n).map(|i| i / 3).collect();
            for shape in all_shapes() {
                let tree = ReductionTree::build(&shape, n, &cluster_of);
                for (i, steps) in tree.steps.iter().enumerate() {
                    if i == 0 {
                        assert!(
                            steps.iter().all(|s| matches!(s, Step::Recv(_))),
                            "root must only receive"
                        );
                    } else {
                        assert!(matches!(steps.last(), Some(Step::Send(_))));
                        let sends =
                            steps.iter().filter(|s| matches!(s, Step::Send(_))).count();
                        assert_eq!(sends, 1, "each non-root sends exactly once");
                    }
                }
            }
        }
    }

    #[test]
    fn parents_round_trip_reproduces_builtin_schedules() {
        // Load-bearing for the autotuner: encoding any built-in shape as
        // Custom(parents) reproduces the schedule *exactly* — same Recv
        // order, hence the same floating-point combine order and a
        // bitwise-identical R.
        for n in [1, 2, 3, 5, 8, 16, 48, 64] {
            let cluster_of: Vec<usize> = (0..n).map(|i| i * 4 / n).collect();
            for shape in all_shapes() {
                let tree = ReductionTree::build(&shape, n, &cluster_of);
                let round =
                    ReductionTree::build(&TreeShape::Custom(tree.parents()), n, &cluster_of);
                assert_eq!(tree, round, "{shape:?} with n={n}");
            }
        }
    }

    #[test]
    fn custom_tree_accepts_any_valid_parent_vector() {
        // A deliberately lopsided tree: 0 ← 1 ← 3, 0 ← 2, 1 ← 4.
        let parents = vec![None, Some(0), Some(0), Some(1), Some(1)];
        let tree = ReductionTree::build(&TreeShape::Custom(parents), 5, &[0; 5]);
        assert_eq!(simulate(&tree), vec![0, 1, 2, 3, 4]);
        assert_eq!(tree.steps[1], vec![Step::Recv(3), Step::Recv(4), Step::Send(0)]);
        // Parent above child is legal for the plain reduction (only
        // ft_tsqr needs heap order).
        let weird = ReductionTree::from_parents(&[None, Some(2), Some(0)]);
        assert_eq!(simulate(&weird), vec![0, 1, 2]);
        assert!(!weird.is_heap_ordered());
    }

    #[test]
    #[should_panic(expected = "participant 0 must be the root")]
    fn custom_tree_must_root_at_zero() {
        let _ = ReductionTree::from_parents(&[Some(1), None]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn custom_tree_rejects_cycles() {
        let _ = ReductionTree::from_parents(&[None, Some(2), Some(1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn custom_tree_rejects_out_of_range_parent() {
        let _ = ReductionTree::from_parents(&[None, Some(7)]);
    }

    #[test]
    #[should_panic(expected = "custom tree has 2 participants")]
    fn custom_tree_size_must_match() {
        let _ = ReductionTree::build(&TreeShape::Custom(vec![None, Some(0)]), 3, &[0; 3]);
    }

    #[test]
    fn greedy_defers_expensive_edges() {
        // Two clusters of 4: greedy must finish both clusters before
        // paying the WAN edge, like the hierarchical tree.
        let cluster_of = [0, 0, 0, 0, 1, 1, 1, 1];
        let tree = ReductionTree::build(&TreeShape::Greedy, 8, &cluster_of);
        assert_eq!(tree.inter_cluster_messages(&cluster_of), 1);
        // The one WAN edge connects the two cluster roots (0 and 4).
        let parents = tree.parents();
        assert_eq!(parents[4], Some(0));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TreeShape::Flat.label(), "flat");
        assert_eq!(TreeShape::GridHierarchical.label(), "grid");
        assert_eq!(TreeShape::Kary(4).label(), "kary4");
        assert_eq!(TreeShape::Kary(1).label(), "chain");
        assert_eq!(TreeShape::Binomial.label(), "binomial");
        assert_eq!(TreeShape::Greedy.label(), "greedy");
        assert_eq!(TreeShape::Custom(vec![None]).label(), "custom");
    }
}
