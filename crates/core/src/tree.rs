//! Reduction-tree schedules for the TSQR all-reduce.
//!
//! TSQR is "a single complex reduce operation" (§II-C); the *shape* of the
//! reduction tree is the paper's key tuning knob. Previous work used flat
//! trees (out-of-core, multicore) or binary trees (parallel distributed);
//! the contribution here is the **grid-hierarchical** tree of Fig. 2: a
//! binary tree inside each cluster, then a binary tree across the cluster
//! roots, which pushes the inter-cluster message count down to
//! `#clusters − 1` regardless of the matrix width.
//!
//! A schedule assigns every participant an ordered list of [`Step`]s; a
//! participant that reaches a `Send` forwards its accumulated R factor and
//! is done. Executing the steps in order, combining on every `Recv`,
//! performs the reduction; executing them *in reverse* with the roles
//! swapped walks the same tree downward, which is how the explicit Q is
//! reconstructed (each combine node scatters its `[E1; E2]` blocks back to
//! the children that supplied `R1`/`R2`).

/// One action in a participant's reduction schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Receive a partner's R factor (by participant index) and combine it
    /// into ours (ours is `R1`, theirs is `R2`).
    Recv(usize),
    /// Send our accumulated R factor to a parent (by participant index).
    /// Always the last step of a non-root participant.
    Send(usize),
}

/// The shape of the reduction tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeShape {
    /// Everyone sends to participant 0, which combines sequentially —
    /// the out-of-core / multicore shape.
    Flat,
    /// Topology-oblivious binary tree over participant indices — what a
    /// grid-unaware MPI reduction does.
    Binary,
    /// Binary tree within each cluster, then binary tree over the cluster
    /// roots — the paper's tuned tree (Fig. 2).
    GridHierarchical,
}

/// A complete reduction schedule: `steps[i]` is participant `i`'s program.
/// Participant 0 is always the root (it holds the final R).
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionTree {
    /// Per-participant step lists.
    pub steps: Vec<Vec<Step>>,
}

impl ReductionTree {
    /// Builds the schedule for `n` participants.
    ///
    /// `cluster_of[i]` gives participant `i`'s cluster and is only
    /// consulted by [`TreeShape::GridHierarchical`]; participants of a
    /// cluster must form a contiguous index range for the hierarchical
    /// shape (which the QCG allocation guarantees).
    pub fn build(shape: TreeShape, n: usize, cluster_of: &[usize]) -> Self {
        assert!(n > 0, "reduction over zero participants");
        match shape {
            TreeShape::Flat => Self::flat(&(0..n).collect::<Vec<_>>()),
            TreeShape::Binary => Self::binary(&(0..n).collect::<Vec<_>>()),
            TreeShape::GridHierarchical => {
                assert_eq!(cluster_of.len(), n, "cluster_of length mismatch");
                Self::hierarchical(n, cluster_of)
            }
        }
    }

    /// Flat tree over the given participant ids: `ids[0]` receives from
    /// every other id in order.
    fn flat(ids: &[usize]) -> Self {
        let mut steps = vec![Vec::new(); ids.iter().copied().max().unwrap_or(0) + 1];
        for &other in &ids[1..] {
            steps[ids[0]].push(Step::Recv(other));
            steps[other].push(Step::Send(ids[0]));
        }
        ReductionTree { steps }
    }

    /// Binary tree over the given participant ids (classic halving:
    /// at stride `s`, the id at even position receives from position+s).
    fn binary(ids: &[usize]) -> Self {
        let mut steps = vec![Vec::new(); ids.iter().copied().max().unwrap_or(0) + 1];
        Self::binary_into(ids, &mut steps);
        ReductionTree { steps }
    }

    fn binary_into(ids: &[usize], steps: &mut [Vec<Step>]) {
        let p = ids.len();
        let mut stride = 1;
        while stride < p {
            let mut pos = 0;
            while pos < p {
                if pos % (2 * stride) == 0 {
                    if pos + stride < p {
                        steps[ids[pos]].push(Step::Recv(ids[pos + stride]));
                    }
                } else {
                    steps[ids[pos]].push(Step::Send(ids[pos - stride]));
                }
                pos += stride;
            }
            stride *= 2;
        }
    }

    /// Fig. 2's tree: binary within each cluster, then binary over cluster
    /// roots. The overall root is the root of cluster 0 (participant 0).
    fn hierarchical(n: usize, cluster_of: &[usize]) -> Self {
        let mut steps = vec![Vec::new(); n];
        // Group contiguous participants by cluster.
        let mut cluster_ids: Vec<Vec<usize>> = Vec::new();
        for i in 0..n {
            match cluster_ids.last_mut() {
                Some(grp) if cluster_of[grp[0]] == cluster_of[i] => grp.push(i),
                _ => cluster_ids.push(vec![i]),
            }
        }
        // Stage 1: binary tree inside each cluster.
        for grp in &cluster_ids {
            Self::binary_into(grp, &mut steps);
        }
        // Stage 2: binary tree over the cluster roots.
        let roots: Vec<usize> = cluster_ids.iter().map(|g| g[0]).collect();
        Self::binary_into(&roots, &mut steps);
        ReductionTree { steps }
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when there are no participants (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total number of messages in the whole reduction (= edges of the
    /// tree = `n − 1`).
    pub fn total_messages(&self) -> usize {
        self.steps
            .iter()
            .flatten()
            .filter(|s| matches!(s, Step::Send(_)))
            .count()
    }

    /// Messages crossing clusters, under the given participant→cluster map.
    pub fn inter_cluster_messages(&self, cluster_of: &[usize]) -> usize {
        let mut count = 0;
        for (i, steps) in self.steps.iter().enumerate() {
            for s in steps {
                if let Step::Send(to) = s {
                    if cluster_of[i] != cluster_of[*to] {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    /// Depth of the tree: the longest chain of sequential combine steps at
    /// any participant — the `log₂(P)` factor of Table I for the binary
    /// shape.
    pub fn depth(&self) -> usize {
        self.steps.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Executes the schedule on plain integers with a "combine" that
    /// collects the multiset of leaves; checks the root sees everyone.
    fn simulate(tree: &ReductionTree) -> Vec<usize> {
        let n = tree.len();
        let mut acc: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        // Replay: process steps globally in a data-driven order.
        let mut queues: Vec<std::collections::VecDeque<Step>> =
            tree.steps.iter().map(|s| s.iter().copied().collect()).collect();
        let mut mailbox: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); n];
        let mut progress = true;
        while progress {
            progress = false;
            for i in 0..n {
                while let Some(&step) = queues[i].front() {
                    match step {
                        Step::Send(to) => {
                            let payload = std::mem::take(&mut acc[i]);
                            mailbox[to].push((i, payload));
                            queues[i].pop_front();
                            progress = true;
                        }
                        Step::Recv(from) => {
                            if let Some(pos) =
                                mailbox[i].iter().position(|(src, _)| *src == from)
                            {
                                let (_, payload) = mailbox[i].remove(pos);
                                acc[i].extend(payload);
                                queues[i].pop_front();
                                progress = true;
                            } else {
                                break;
                            }
                        }
                    }
                }
            }
        }
        assert!(queues.iter().all(|q| q.is_empty()), "schedule deadlocked");
        let mut got = acc[0].clone();
        got.sort_unstable();
        got
    }

    #[test]
    fn all_shapes_reduce_everything_to_root() {
        for n in [1, 2, 3, 4, 5, 7, 8, 16, 33] {
            let clusters: Vec<usize> = (0..n).map(|i| i * 4 / n).collect();
            for shape in [TreeShape::Flat, TreeShape::Binary, TreeShape::GridHierarchical] {
                let tree = ReductionTree::build(shape, n, &clusters);
                let got = simulate(&tree);
                assert_eq!(got, (0..n).collect::<Vec<_>>(), "{shape:?} with n={n}");
                assert_eq!(tree.total_messages(), n - 1);
            }
        }
    }

    #[test]
    fn binary_depth_is_log2() {
        for (n, d) in [(2, 1), (4, 2), (8, 3), (16, 4), (9, 4)] {
            let tree = ReductionTree::build(TreeShape::Binary, n, &vec![0usize; n]);
            assert_eq!(tree.depth(), d, "n={n}");
        }
    }

    #[test]
    fn flat_depth_is_linear() {
        let tree = ReductionTree::build(TreeShape::Flat, 8, &[0; 8]);
        assert_eq!(tree.depth(), 7);
    }

    #[test]
    fn hierarchical_minimizes_inter_cluster_messages() {
        // The headline property (Fig. 2): with C clusters the tuned tree
        // sends exactly C − 1 inter-cluster messages; a topology-oblivious
        // binary tree sends more.
        for (n, n_clusters) in [(12, 3), (16, 4), (64, 4), (256, 4)] {
            let per = n / n_clusters;
            let cluster_of: Vec<usize> = (0..n).map(|i| i / per).collect();
            let tuned = ReductionTree::build(TreeShape::GridHierarchical, n, &cluster_of);
            assert_eq!(
                tuned.inter_cluster_messages(&cluster_of),
                n_clusters - 1,
                "tuned tree, n={n}"
            );
            let oblivious = ReductionTree::build(TreeShape::Binary, n, &cluster_of);
            assert!(
                oblivious.inter_cluster_messages(&cluster_of) >= n_clusters - 1,
                "binary tree can't beat the tuned tree"
            );
        }
        // A shuffled placement makes the oblivious tree strictly worse.
        let n = 16;
        let shuffled: Vec<usize> = (0..n).map(|i| i % 4).collect(); // interleaved clusters
        let oblivious = ReductionTree::build(TreeShape::Binary, n, &shuffled);
        assert!(
            oblivious.inter_cluster_messages(&shuffled) > 3,
            "interleaved ranks force extra WAN messages, got {}",
            oblivious.inter_cluster_messages(&shuffled)
        );
    }

    #[test]
    fn hierarchical_depth_is_sum_of_stages() {
        // 4 clusters × 16 participants: 4 levels inside + 2 levels across.
        let n = 64;
        let cluster_of: Vec<usize> = (0..n).map(|i| i / 16).collect();
        let tree = ReductionTree::build(TreeShape::GridHierarchical, n, &cluster_of);
        assert_eq!(tree.depth(), 4 + 2);
    }

    #[test]
    fn single_participant_has_empty_schedule() {
        for shape in [TreeShape::Flat, TreeShape::Binary, TreeShape::GridHierarchical] {
            let tree = ReductionTree::build(shape, 1, &[0]);
            assert!(tree.steps[0].is_empty());
            assert_eq!(tree.total_messages(), 0);
        }
    }

    #[test]
    fn non_root_ends_with_send_root_never_sends() {
        for n in [2, 5, 8, 13] {
            let cluster_of: Vec<usize> = (0..n).map(|i| i / 3).collect();
            for shape in [TreeShape::Flat, TreeShape::Binary, TreeShape::GridHierarchical] {
                let tree = ReductionTree::build(shape, n, &cluster_of);
                for (i, steps) in tree.steps.iter().enumerate() {
                    if i == 0 {
                        assert!(
                            steps.iter().all(|s| matches!(s, Step::Recv(_))),
                            "root must only receive"
                        );
                    } else {
                        assert!(matches!(steps.last(), Some(Step::Send(_))));
                        let sends =
                            steps.iter().filter(|s| matches!(s, Step::Send(_))).count();
                        assert_eq!(sends, 1, "each non-root sends exactly once");
                    }
                }
            }
        }
    }
}
