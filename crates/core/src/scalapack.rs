//! The ScaLAPACK-style baseline: a distributed Householder panel
//! factorization (`PDGEQR2`) with the paper's communication pattern —
//! **two all-reduce operations per column** (§II-B).
//!
//! The matrix rows are block-distributed over the group; for every column
//! the group (1) all-reduces the column's squared norm to build the
//! reflector and (2) all-reduces the reflector-times-trailing-matrix
//! product to apply it. On `P` processes this costs `2N·log₂(P)` messages
//! and `log₂(P)·N²/2` words — the ScaLAPACK row of Table I — against
//! TSQR's `log₂(P)` messages.
//!
//! Two interchangeable implementations run the *same* communication
//! schedule:
//!
//! * [`pdgeqr2`] — numerically real (used by tests and small examples);
//! * [`pdgeqr2_symbolic`] — sends [`Phantom`] payloads of identical sizes
//!   and charges the same closed-form flops, so paper-scale sweeps run in
//!   milliseconds with identical virtual clocks and traffic counters.

use tsqr_gridmpi::message::Phantom;
use tsqr_gridmpi::{CommError, Communicator, Process};
use tsqr_linalg::blas::{gemm, trmm_upper_left};
use tsqr_linalg::flops;
use tsqr_linalg::qr::Trans;
use tsqr_linalg::Matrix;

/// Metrics/trace phase: per-column panel factorization (the two
/// all-reduces per column of §II-B).
pub const PHASE_PANEL: &str = "panel";
/// Metrics/trace phase: blocked trailing-matrix update of `pdgeqrf`.
pub const PHASE_UPDATE: &str = "trailing-update";

/// Result of a distributed panel factorization.
#[derive(Debug, Clone)]
pub struct Pdgeqr2Output {
    /// This rank's local block, overwritten with R (root's top rows) and
    /// the local parts of the Householder vectors.
    pub factored: Matrix,
    /// Reflector scaling factors (identical on every member).
    pub taus: Vec<f64>,
    /// The `n × n` R factor — `Some` on the group root only.
    pub r: Option<Matrix>,
}

/// Distributed Householder QR of a TS matrix block-row-distributed over
/// `group`.
///
/// `local` is this member's row block; the **group root (member 0) must
/// hold at least `n` rows** (it owns the pivot rows — always true in the
/// tall-and-skinny regime where `m/P ≫ n`). `rate_flops` is the per-process
/// sustained rate used to charge compute time (`None` = model default).
pub fn pdgeqr2(
    p: &mut Process,
    group: &Communicator,
    mut local: Matrix,
    rate_flops: Option<f64>,
) -> Result<Pdgeqr2Output, CommError> {
    let n = local.cols();
    let me = group.my_index(p);
    let is_root = me == 0;
    assert!(
        !is_root || local.rows() >= n,
        "group root must hold at least n rows ({} < {n})",
        local.rows()
    );
    let mut taus = vec![0.0; n];
    p.phase_begin(PHASE_PANEL);
    panel_columns(p, group, &mut local, 0, n, n, &mut taus, rate_flops)?;
    p.phase_end();
    let r = is_root.then(|| local.sub_matrix(0, 0, n, n).upper_triangular_padded());
    Ok(Pdgeqr2Output { factored: local, taus, r })
}

/// The per-column Householder loop shared by [`pdgeqr2`] (full sweep) and
/// [`pdgeqrf`] (panel sweep): factors columns `col0..col0+ncols` of the
/// distributed block, applying updates to columns up to `update_end`.
#[allow(clippy::too_many_arguments)]
fn panel_columns(
    p: &mut Process,
    group: &Communicator,
    local: &mut Matrix,
    col0: usize,
    ncols: usize,
    update_end: usize,
    taus: &mut [f64],
    rate_flops: Option<f64>,
) -> Result<(), CommError> {
    let m_loc = local.rows();
    let is_root = group.my_index(p) == 0;
    for j in col0..col0 + ncols {
        // --- Reduction 1: column norm (and the pivot value α). ---
        let (alpha_local, ssq_local) = {
            let col = local.col(j);
            if is_root {
                let tail = &col[j + 1..];
                (col[j], tail.iter().map(|x| x * x).sum::<f64>())
            } else {
                (0.0, col.iter().map(|x| x * x).sum::<f64>())
            }
        };
        let reduced = group.allreduce(p, vec![alpha_local, ssq_local], |a, b| {
            vec![a[0] + b[0], a[1] + b[1]]
        })?;
        let (alpha, ssq) = (reduced[0], reduced[1]);

        // Everyone derives the same reflector parameters.
        let tau;
        if ssq == 0.0 {
            tau = 0.0;
        } else {
            let beta = if alpha >= 0.0 {
                -alpha.hypot(ssq.sqrt())
            } else {
                alpha.hypot(ssq.sqrt())
            };
            tau = (beta - alpha) / beta;
            let scale = 1.0 / (alpha - beta);
            // Scale the local part of v; the root also records β = R[j,j].
            if is_root {
                let col = local.col_mut(j);
                for x in &mut col[j + 1..] {
                    *x *= scale;
                }
                col[j] = beta;
            } else {
                for x in local.col_mut(j) {
                    *x *= scale;
                }
            }
        }
        taus[j] = tau;

        // --- Reduction 2: w = vᵀ·A_trailing, then the rank-1 update. ---
        let trailing = update_end - j - 1;
        if trailing > 0 && tau != 0.0 {
            let mut w_local = vec![0.0; trailing];
            for (t, w) in w_local.iter_mut().enumerate() {
                let k = j + 1 + t;
                let ck = local.col(k);
                let vj = local.col(j);
                *w = if is_root {
                    // Implicit 1 at row j, v entries below.
                    ck[j]
                        + vj[j + 1..]
                            .iter()
                            .zip(&ck[j + 1..])
                            .map(|(v, c)| v * c)
                            .sum::<f64>()
                } else {
                    vj.iter().zip(ck).map(|(v, c)| v * c).sum::<f64>()
                };
            }
            let w = group.allreduce(p, w_local, |a, b| {
                a.iter().zip(&b).map(|(x, y)| x + y).collect()
            })?;
            for (t, &wk) in w.iter().enumerate() {
                let k = j + 1 + t;
                let tw = tau * wk;
                // Read v (column j) and update column k. Columns are
                // disjoint, but the borrow checker cannot see that through
                // two `col` calls, so copy v once per column pair.
                let vj: Vec<f64> = local.col(j).to_vec();
                let ck = local.col_mut(k);
                if is_root {
                    ck[j] -= tw;
                    for (c, v) in ck[j + 1..].iter_mut().zip(&vj[j + 1..]) {
                        *c -= tw * v;
                    }
                } else {
                    for (c, v) in ck.iter_mut().zip(&vj) {
                        *c -= tw * v;
                    }
                }
            }
        } else if trailing > 0 {
            // τ = 0 reflector: H = I, but the schedule still performs the
            // update reduction (ScaLAPACK does not branch on data).
            let _ = group.allreduce(p, vec![0.0; trailing], |a, b| {
                a.iter().zip(&b).map(|(x, y)| x + y).collect()
            })?;
        }
        p.compute(
            flops::pdgeqr2_column(m_loc as u64, j as u64, group.size() as u64, trailing as u64),
            rate_flops,
        );
    }
    Ok(())
}

/// The symbolic twin of [`pdgeqr2`]: identical message schedule (payload
/// sizes included) and identical charged flops, no numerical data.
pub fn pdgeqr2_symbolic(
    p: &mut Process,
    group: &Communicator,
    m_loc: u64,
    n: usize,
    rate_flops: Option<f64>,
) -> Result<(), CommError> {
    p.phase_begin(PHASE_PANEL);
    for j in 0..n {
        // Norm reduction: two f64 values (α and the squared norm).
        group.allreduce(p, Phantom { bytes: 16 }, |a, _| a)?;
        let trailing = n - j - 1;
        if trailing > 0 {
            // Update reduction: the trailing dot products.
            group.allreduce(p, Phantom { bytes: 8 * trailing as u64 }, |a, _| a)?;
        }
        p.compute(
            flops::pdgeqr2_column(m_loc, j as u64, group.size() as u64, trailing as u64),
            rate_flops,
        );
    }
    p.phase_end();
    Ok(())
}

/// The ScaLAPACK default panel width (§V-B: NB = 64).
pub const DEFAULT_NB: usize = 64;
/// The ScaLAPACK default blocking crossover (§II-B: "blocking is not to
/// be used if there is less than NX columns to be updated"; NX = 128).
pub const DEFAULT_NX: usize = 128;

/// Blocked distributed Householder QR — ScaLAPACK's `PDGEQRF` (§II-B).
///
/// Panels of `nb` columns are factored with the per-column loop of
/// [`pdgeqr2`] (updates confined to the panel), then the trailing matrix
/// is updated with the compact-WY block reflector: the `T` factor is
/// reconstructed on every rank from one all-reduced `ib × ib` Gram matrix
/// of the panel's reflectors, and the update needs one more all-reduce of
/// `Ṽᵀ·C`. Blocking turns the trailing update into Level-3 work at the
/// price of the extra `T` bookkeeping — the overhead §II-B says is "
/// negligible when there is a large number of columns to be updated but
/// significant when there are only a few", which is why ScaLAPACK (and
/// this routine) falls back to the unblocked sweep once fewer than `nx`
/// columns remain.
pub fn pdgeqrf(
    p: &mut Process,
    group: &Communicator,
    mut local: Matrix,
    nb: usize,
    nx: usize,
    rate_flops: Option<f64>,
) -> Result<Pdgeqr2Output, CommError> {
    let n = local.cols();
    let m_loc = local.rows();
    let me = group.my_index(p);
    let is_root = me == 0;
    assert!(!is_root || m_loc >= n, "group root must hold at least n rows ({m_loc} < {n})");
    assert!(nb >= 1, "panel width must be positive");

    let mut taus = vec![0.0; n];
    let mut j = 0;
    while j < n {
        let remaining = n - j;
        // ScaLAPACK's NX crossover: unblocked once few columns remain.
        if remaining <= nx || nb == 1 {
            p.phase_begin(PHASE_PANEL);
            panel_columns(p, group, &mut local, j, remaining, n, &mut taus, rate_flops)?;
            p.phase_end();
            break;
        }
        let ib = nb.min(remaining);
        // --- Panel factorization (updates confined to the panel). ---
        p.phase_begin(PHASE_PANEL);
        panel_columns(p, group, &mut local, j, ib, j + ib, &mut taus, rate_flops)?;
        p.phase_end();

        // --- Blocked trailing update (nothing to do on the last panel). ---
        let trail = n - j - ib;
        if trail == 0 {
            break;
        }
        p.phase_begin(PHASE_UPDATE);
        // This rank's slice of the unit-lower-trapezoidal Ṽ: the root
        // holds rows j.., everyone else all rows.
        let row0 = if is_root { j } else { 0 };
        let m_act = m_loc - row0;
        let vloc = Matrix::from_fn(m_act, ib, |r, c| {
            let gr = row0 + r;
            if is_root {
                match gr.cmp(&(j + c)) {
                    std::cmp::Ordering::Less => 0.0,
                    std::cmp::Ordering::Equal => 1.0,
                    std::cmp::Ordering::Greater => local[(gr, j + c)],
                }
            } else {
                local[(gr, j + c)]
            }
        });
        // One all-reduce rebuilds the reflector Gram matrix everywhere,
        // from which T follows locally (the larft recurrence).
        let g_loc = vloc.t_matmul(&vloc);
        p.compute(flops::gemm(ib as u64, ib as u64, m_act as u64), rate_flops);
        let g_vec = group.allreduce(p, g_loc.into_vec(), |a, b| {
            a.iter().zip(&b).map(|(x, y)| x + y).collect()
        })?;
        let g = Matrix::from_col_major(ib, ib, g_vec).expect("gram shape");
        let mut t = Matrix::zeros(ib, ib);
        for c in 0..ib {
            let tau = taus[j + c];
            t[(c, c)] = tau;
            if tau == 0.0 {
                continue;
            }
            for r in 0..c {
                let mut s = 0.0;
                for l in r..c {
                    s += t[(r, l)] * g[(l, c)];
                }
                t[(r, c)] = -tau * s;
            }
        }
        // W = Ṽᵀ·C (one more all-reduce), then C -= Ṽ·(Tᵀ·W).
        let c_loc = local.sub_matrix(row0, j + ib, m_act, trail);
        let w_loc = vloc.t_matmul(&c_loc);
        p.compute(flops::gemm(ib as u64, trail as u64, m_act as u64), rate_flops);
        let w_vec = group.allreduce(p, w_loc.into_vec(), |a, b| {
            a.iter().zip(&b).map(|(x, y)| x + y).collect()
        })?;
        let mut w = Matrix::from_col_major(ib, trail, w_vec).expect("W shape");
        trmm_upper_left(Trans::Yes, &t.view(), &mut w.view_mut());
        let mut view = local.view_mut();
        let mut c_mut = view.sub_mut(row0, j + ib, m_act, trail);
        gemm(Trans::No, Trans::No, -1.0, &vloc.view(), &w.view(), 1.0, &mut c_mut);
        p.compute(flops::gemm(m_act as u64, trail as u64, ib as u64), rate_flops);
        p.phase_end();

        j += ib;
    }

    let r = is_root.then(|| local.sub_matrix(0, 0, n, n).upper_triangular_padded());
    Ok(Pdgeqr2Output { factored: local, taus, r })
}

/// The symbolic twin of [`pdgeqrf`]: identical message schedule and
/// charged flops.
pub fn pdgeqrf_symbolic(
    p: &mut Process,
    group: &Communicator,
    m_loc: u64,
    n: usize,
    nb: usize,
    nx: usize,
    rate_flops: Option<f64>,
) -> Result<(), CommError> {
    let g = group.size() as u64;
    let mut j = 0;
    while j < n {
        let remaining = n - j;
        if remaining <= nx || nb == 1 {
            p.phase_begin(PHASE_PANEL);
            for jj in j..n {
                group.allreduce(p, Phantom { bytes: 16 }, |a, _| a)?;
                let trailing = n - jj - 1;
                if trailing > 0 {
                    group.allreduce(p, Phantom { bytes: 8 * trailing as u64 }, |a, _| a)?;
                }
                p.compute(flops::pdgeqr2_column(m_loc, jj as u64, g, trailing as u64), rate_flops);
            }
            p.phase_end();
            break;
        }
        let ib = nb.min(remaining);
        p.phase_begin(PHASE_PANEL);
        for jj in j..j + ib {
            group.allreduce(p, Phantom { bytes: 16 }, |a, _| a)?;
            let trailing = j + ib - jj - 1;
            if trailing > 0 {
                group.allreduce(p, Phantom { bytes: 8 * trailing as u64 }, |a, _| a)?;
            }
            p.compute(flops::pdgeqr2_column(m_loc, jj as u64, g, trailing as u64), rate_flops);
        }
        p.phase_end();
        let trail = (n - j - ib) as u64;
        if trail == 0 {
            break;
        }
        p.phase_begin(PHASE_UPDATE);
        let row0 = if group.my_index(p) == 0 { j as u64 } else { 0 };
        let m_act = m_loc - row0;
        p.compute(flops::gemm(ib as u64, ib as u64, m_act), rate_flops);
        group.allreduce(p, Phantom { bytes: 8 * (ib * ib) as u64 }, |a, _| a)?;
        p.compute(flops::gemm(ib as u64, trail, m_act), rate_flops);
        group.allreduce(p, Phantom { bytes: 8 * ib as u64 * trail }, |a, _| a)?;
        p.compute(flops::gemm(m_act, trail, ib as u64), rate_flops);
        p.phase_end();
        j += ib;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::even_chunks;
    use crate::workload;
    use tsqr_linalg::prelude::*;
    use tsqr_linalg::verify::{is_upper_triangular, r_distance};
    use tsqr_netsim::{ClusterSpec, CostModel, GridTopology, LinkParams};
    use tsqr_gridmpi::Runtime;

    fn runtime(procs: usize) -> Runtime {
        let topo = GridTopology::block_placement(
            vec![ClusterSpec {
                name: "c".into(),
                nodes: procs,
                procs_per_node: 1,
                peak_gflops_per_proc: 8.0,
            }],
            procs,
            1,
        );
        Runtime::new(topo, CostModel::homogeneous(LinkParams::from_ms_mbps(0.1, 890.0), 1e9, 1))
    }

    /// Reference R from a single-process blocked QR of the full matrix.
    fn reference_r(seed: u64, m: usize, n: usize) -> Matrix {
        let a = workload::full_matrix(seed, m, n);
        QrFactors::compute(&a, 32).r().upper_triangular_padded()
    }

    fn distributed_r(procs: usize, seed: u64, m: usize, n: usize) -> (Matrix, u64) {
        let rt = runtime(procs);
        let chunks = even_chunks(m as u64, procs);
        let report = rt.run(|p, world| {
            let me = world.my_index(p);
            let row0: u64 = chunks[..me].iter().sum();
            let local = workload::block(seed, row0, chunks[me] as usize, n);
            let out = pdgeqr2(p, world, local, None)?;
            Ok((out.r, p.counters().total_msgs()))
        });
        let msgs = report.ranks[0].result.as_ref().unwrap().1;
        let (r, _) = report.ranks.into_iter().next().unwrap().result.unwrap();
        (r.expect("root holds R"), msgs)
    }

    #[test]
    fn matches_reference_qr_single_process() {
        let (m, n) = (50, 8);
        let (r, msgs) = distributed_r(1, 3, m, n);
        assert_eq!(msgs, 0, "single process must not communicate");
        assert!(r_distance(&r, &reference_r(3, m, n)) < 1e-12);
    }

    #[test]
    fn matches_reference_qr_multi_process() {
        for procs in [2, 3, 4, 8] {
            let (m, n) = (96, 10);
            let (r, _) = distributed_r(procs, 5, m, n);
            assert!(is_upper_triangular(&r));
            assert!(
                r_distance(&r, &reference_r(5, m, n)) < 1e-11,
                "R mismatch on {procs} processes"
            );
        }
    }

    #[test]
    fn message_count_matches_table_one() {
        // Table I: ScaLAPACK QR2 sends 2N·log₂(P) messages; our schedule
        // performs N norm reductions and N−1 update reductions, each
        // log₂(P) per-rank messages.
        let (procs, n) = (8, 6);
        let (_, msgs) = distributed_r(procs, 7, 128, n);
        let log_p = (procs as f64).log2() as u64;
        assert_eq!(msgs, (2 * n as u64 - 1) * log_p);
    }

    #[test]
    fn symbolic_twin_has_identical_traffic_and_clock() {
        let (procs, m, n) = (4, 64, 6);
        let rt = runtime(procs);
        let chunks = even_chunks(m as u64, procs);
        let real = rt.run(|p, world| {
            let me = world.my_index(p);
            let row0: u64 = chunks[..me].iter().sum();
            let local = workload::block(11, row0, chunks[me] as usize, n);
            pdgeqr2(p, world, local, None)?;
            Ok(())
        });
        let sym = rt.run(|p, world| {
            let me = world.my_index(p);
            pdgeqr2_symbolic(p, world, chunks[me], n, None)
        });
        for (a, b) in real.ranks.iter().zip(&sym.ranks) {
            assert_eq!(a.stats.traffic, b.stats.traffic, "traffic must match");
            assert!(
                (a.stats.clock.secs() - b.stats.clock.secs()).abs() < 1e-12,
                "virtual clocks must match"
            );
        }
    }

    #[test]
    fn handles_rank_deficient_columns() {
        // A matrix whose second column equals its first: τ = 0 path.
        let (m, n, procs) = (40, 4, 4);
        let rt = runtime(procs);
        let chunks = even_chunks(m as u64, procs);
        let report = rt.run(|p, world| {
            let me = world.my_index(p);
            let row0: u64 = chunks[..me].iter().sum();
            let local = Matrix::from_fn(chunks[me] as usize, n, |i, j| {
                let gi = row0 + i as u64;
                match j {
                    0 | 1 => workload::entry(13, gi, 0),
                    _ => workload::entry(13, gi, j as u64),
                }
            });
            let out = pdgeqr2(p, world, local, None)?;
            Ok(out.r)
        });
        let r = report.ranks[0].result.clone().unwrap().unwrap();
        assert!(r[(1, 1)].abs() < 1e-12, "dependent column must zero R[1,1]");
        // With a rank deficiency the rows of R beyond it are determined by
        // roundoff, so R cannot be compared entry-wise against a reference.
        // The Gram identity RᵀR = AᵀA holds for *every* valid QR
        // factorization and is the right check here.
        let full = Matrix::from_fn(m, n, |i, j| match j {
            0 | 1 => workload::entry(13, i as u64, 0),
            _ => workload::entry(13, i as u64, j as u64),
        });
        let gram_a = full.t_matmul(&full);
        let gram_r = r.t_matmul(&r);
        let err = gram_r.sub_elem(&gram_a).norm_fro() / gram_a.norm_fro();
        assert!(err < 1e-12, "RᵀR must equal AᵀA, err = {err}");
    }

    #[test]
    fn pdgeqrf_matches_reference_both_paths() {
        // nx >= n exercises the pure-unblocked crossover path; small nx
        // the blocked path; both must agree with the reference QR.
        let (m, n) = (128usize, 12usize);
        for procs in [1usize, 2, 4] {
            for (nb, nx) in [(4, 0), (4, 100), (3, 5), (12, 0), (1, 0)] {
                let rt = runtime(procs);
                let chunks = even_chunks(m as u64, procs);
                let report = rt.run(|p, world| {
                    let me = world.my_index(p);
                    let row0: u64 = chunks[..me].iter().sum();
                    let local = workload::block(23, row0, chunks[me] as usize, n);
                    let out = pdgeqrf(p, world, local, nb, nx, None)?;
                    Ok(out.r)
                });
                let r = report.ranks[0].result.clone().unwrap().unwrap();
                assert!(
                    r_distance(&r, &reference_r(23, m, n)) < 1e-10,
                    "procs={procs} nb={nb} nx={nx}"
                );
            }
        }
    }

    #[test]
    fn pdgeqrf_with_huge_nx_equals_pdgeqr2() {
        // With nx >= n the blocked driver is exactly the unblocked sweep.
        let (m, n, procs) = (96usize, 8usize, 4usize);
        let rt = runtime(procs);
        let chunks = even_chunks(m as u64, procs);
        let report = rt.run(|p, world| {
            let me = world.my_index(p);
            let row0: u64 = chunks[..me].iter().sum();
            let local = workload::block(29, row0, chunks[me] as usize, n);
            let qrf = pdgeqrf(p, world, local.clone(), 4, n, None)?;
            let qr2 = pdgeqr2(p, world, local, None)?;
            Ok((qrf.factored, qr2.factored, qrf.taus, qr2.taus))
        });
        for r in &report.ranks {
            let (f1, f2, t1, t2) = r.result.clone().unwrap();
            assert!(f1.approx_eq(&f2, 1e-12));
            for (a, b) in t1.iter().zip(&t2) {
                assert!((a - b).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn pdgeqrf_symbolic_twin_matches() {
        let (m, n, procs) = (96usize, 10usize, 4usize);
        let rt = runtime(procs);
        let chunks = even_chunks(m as u64, procs);
        for (nb, nx) in [(3, 4), (4, 0), (10, 0)] {
            let real = rt.run(|p, world| {
                let me = world.my_index(p);
                let row0: u64 = chunks[..me].iter().sum();
                let local = workload::block(31, row0, chunks[me] as usize, n);
                pdgeqrf(p, world, local, nb, nx, None)?;
                Ok(())
            });
            let sym = rt.run(|p, world| {
                let me = world.my_index(p);
                pdgeqrf_symbolic(p, world, chunks[me], n, nb, nx, None)
            });
            for (rank, (a, b)) in real.ranks.iter().zip(&sym.ranks).enumerate() {
                assert_eq!(
                    a.stats.traffic, b.stats.traffic,
                    "traffic mismatch rank {rank} nb={nb} nx={nx}"
                );
                assert!(
                    (a.stats.clock.secs() - b.stats.clock.secs()).abs() < 1e-12,
                    "clock mismatch rank {rank} nb={nb} nx={nx}"
                );
            }
        }
    }

    #[test]
    fn blocking_reduces_latency_messages_for_wide_panels() {
        // Per column, QR2 pays two full-width reductions; QRF confines the
        // per-column reductions to the panel and adds two per panel. For
        // wide trailing matrices the *volume* shifts into two big
        // all-reduces while message counts stay comparable.
        let (m, n, procs) = (256usize, 32usize, 4usize);
        let rt = runtime(procs);
        let chunks = even_chunks(m as u64, procs);
        let msgs = |blocked: bool| {
            let report = rt.run(|p, world| {
                let me = world.my_index(p);
                if blocked {
                    pdgeqrf_symbolic(p, world, chunks[me], n, 8, 0, None)?;
                } else {
                    pdgeqr2_symbolic(p, world, chunks[me], n, None)?;
                }
                Ok(p.counters().total_msgs())
            });
            report.ranks[0].result.clone().unwrap()
        };
        let (m_qr2, m_qrf) = (msgs(false), msgs(true));
        // 2 extra per panel (G and W), one fewer per column inside panels.
        assert!(
            (m_qrf as f64) < 1.2 * m_qr2 as f64,
            "blocked messages {m_qrf} should be comparable to unblocked {m_qr2}"
        );
    }

    #[test]
    fn flops_charged_match_closed_form() {
        let (procs, m, n) = (2, 64, 8);
        let rt = runtime(procs);
        let chunks = even_chunks(m as u64, procs);
        let report = rt.run(|p, world| {
            let me = world.my_index(p);
            let local = workload::block(17, 0, chunks[me] as usize, n);
            pdgeqr2(p, world, local, None)?;
            Ok(p.counters().flops)
        });
        let per_rank = flops::pdgeqr2_local(32, n as u64, procs as u64);
        for r in &report.ranks {
            assert_eq!(*r.result.as_ref().unwrap(), per_rank);
        }
    }
}
