//! Model-driven reduction-tree autotuner.
//!
//! The paper hand-picks the Fig. 2 tree (binary per cluster, binary over
//! cluster roots). Demmel et al. prove TSQR is correct over *any*
//! reduction tree, so the shape is a free tuning knob — and because the
//! whole execution is priced by the calibrated (α, β, γ) cost model of
//! Eq. (1), the makespan of a candidate tree can be *predicted
//! analytically* without running the simulator: replay the
//! [`crate::tree::Step`] schedule against the same per-link arithmetic
//! the `gridmpi` runtime uses, including the receiver-side NIC
//! serialization that makes flat trees congest.
//!
//! [`autotune`] enumerates a candidate portfolio (the three fixed shapes,
//! k-ary and binomial families, and two greedy latency-aware
//! constructions — one priced at link-class granularity, one at the real
//! per-site-pair α/β costs), predicts each tree's makespan, picks the
//! argmin, and cross-checks the prediction against an actual `netsim`
//! replay to 1e-9 relative — the same closed-loop discipline as
//! `modelfit`. See `docs/tuning.md` for the handbook and
//! `grid-tsqr tune` for the CLI.
//!
//! The predictor requires single-process domains (one rank per domain):
//! that is the regime of every Fig. 4–8 headline point, and it keeps the
//! leaf cost a single closed-form `geqrf` term.

use tsqr_gridmpi::Runtime;
use tsqr_linalg::flops;
use tsqr_netsim::{CostModel, GridTopology, VirtualTime};

use crate::domains::DomainLayout;
use crate::tree::{ReductionTree, Step, TreeShape};
use crate::tsqr::{tsqr_rank_program_symbolic, TsqrConfig};

/// One candidate in the search table.
#[derive(Debug, Clone)]
pub struct TuneCandidate {
    /// Human-readable shape name (`"grid"`, `"kary4"`, `"greedy-cost"`, …).
    pub name: String,
    /// The shape itself (generated families are materialized as the
    /// shape enum; the cost-priced greedy is a [`TreeShape::Custom`]).
    pub shape: TreeShape,
    /// Analytic makespan under the cost model.
    pub predicted: VirtualTime,
    /// Tree depth (longest per-participant step list).
    pub depth: usize,
    /// Messages crossing a wide-area link.
    pub wan_msgs: usize,
}

/// The autotuner's verdict for one topology/M/N point.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Every candidate, in search order (fixed shapes first), with its
    /// predicted makespan.
    pub table: Vec<TuneCandidate>,
    /// Index into `table` of the argmin candidate. Ties resolve to the
    /// earliest entry, so a generated tree must be *strictly* better to
    /// displace a fixed shape.
    pub winner: usize,
    /// The winner's makespan from an actual symbolic `netsim` replay.
    pub replayed: VirtualTime,
    /// Domains participating in the reduction.
    pub domains: usize,
}

impl TuneOutcome {
    /// The winning candidate.
    pub fn best(&self) -> &TuneCandidate {
        &self.table[self.winner]
    }
}

/// Analytically predicts the TSQR makespan for one reduction tree,
/// mirroring the `gridmpi` virtual-clock arithmetic term for term:
///
/// - leaf: `γ`-priced `geqrf` on the domain's rows;
/// - `Send`: the sender's clock advances by `β + α·bytes` (plus the WAN
///   surcharge inter-cluster), and the message *arrives* at the
///   post-advance clock — the rendezvous convention under which Eq. (1)
///   counts `β·#msg + α·vol`;
/// - `Recv`: the payload clocks in after whatever the receiver's NIC
///   was already receiving (`done = max(arrival, nic_free + wire)`), the
///   serialization that congests flat trees at the root;
/// - each received R costs one `tpqrt` combine at the combine rate.
///
/// Because the replay uses the same `f64` operations in the same order
/// as the simulator, an idle network reproduces the simulated makespan
/// bit-for-bit, not merely approximately ([`autotune`] still only
/// *requires* 1e-9 relative agreement).
///
/// # Panics
/// Panics when `layout` has multi-process domains (the leaf would be a
/// distributed `pdgeqr2`, which this closed form does not model) or when
/// `tree.len() != layout.num_domains()`.
pub fn predict_makespan(
    topo: &GridTopology,
    model: &CostModel,
    layout: &DomainLayout,
    tree: &ReductionTree,
    rate_flops: Option<f64>,
    combine_rate_flops: Option<f64>,
) -> VirtualTime {
    let d_count = layout.num_domains();
    assert_eq!(tree.len(), d_count, "tree size != domain count");
    assert!(
        layout.domains.iter().all(|d| d.ranks.len() == 1),
        "the analytic predictor needs single-process domains"
    );
    let n = layout.n;
    let r_bytes = 8 * (n * (n + 1) / 2) as u64;
    let combine = combine_rate_flops.or(rate_flops);
    let roots = layout.roots();
    let loc = |d: usize| topo.location(roots[d]);

    // Completion clock after each domain's full step list, and the
    // arrival time of its (single) upward send. Computed demand-driven:
    // a Recv pulls the sender's arrival, which recurses down its
    // subtree. The schedule is acyclic (validated at build time), so an
    // explicit worklist suffices and nothing overflows on deep chains.
    let mut finished: Vec<Option<(VirtualTime, Option<VirtualTime>)>> = vec![None; d_count];
    let mut stack: Vec<usize> = Vec::new();
    for start in 0..d_count {
        if finished[start].is_some() {
            continue;
        }
        stack.push(start);
        while let Some(&d) = stack.last() {
            if finished[d].is_some() {
                stack.pop();
                continue;
            }
            // A node can complete once every child it receives from has.
            let pending: Vec<usize> = tree.steps[d]
                .iter()
                .filter_map(|s| match s {
                    Step::Recv(c) if finished[*c].is_none() => Some(*c),
                    _ => None,
                })
                .collect();
            if !pending.is_empty() {
                stack.extend(pending);
                continue;
            }
            stack.pop();
            let (_row0, rows) = layout.member_rows(d, 0);
            let mut clock = model.compute_time(flops::geqrf(rows, n as u64), rate_flops);
            let mut nic_free = VirtualTime::ZERO;
            let mut sent_arrival = None;
            for step in &tree.steps[d] {
                match *step {
                    Step::Recv(from) => {
                        let arrival = finished[from]
                            .as_ref()
                            .and_then(|(_, a)| *a)
                            .expect("child completed with an upward send");
                        let link = model.link(loc(from), loc(d));
                        let wire =
                            VirtualTime::from_secs(r_bytes as f64 * 8.0 / link.bandwidth_bps);
                        let done = arrival.max(nic_free + wire);
                        nic_free = done;
                        clock = clock.max(done);
                        clock += model.compute_time(flops::tpqrt(n as u64), combine);
                    }
                    Step::Send(to) => {
                        clock += model.message_time(loc(d), loc(to), r_bytes);
                        sent_arrival = Some(clock);
                    }
                }
            }
            finished[d] = Some((clock, sent_arrival));
        }
    }
    finished
        .into_iter()
        .map(|f| f.expect("all domains completed").0)
        .max()
        .unwrap_or(VirtualTime::ZERO)
}

/// Runs the symbolic twin under the given shape and returns the
/// simulated makespan — the ground truth [`autotune`] checks its
/// predictions against (and what the bench gate pins).
pub fn replay_makespan(
    rt: &Runtime,
    layout: &DomainLayout,
    shape: &TreeShape,
    rate_flops: Option<f64>,
    combine_rate_flops: Option<f64>,
) -> VirtualTime {
    let tree = ReductionTree::build(shape, layout.num_domains(), &layout.clusters());
    let cfg = TsqrConfig {
        shape: shape.clone(),
        domains_per_cluster: layout.domains.len() / rt.topology().num_clusters().max(1),
        combine_rate_flops,
        ..Default::default()
    };
    let report =
        rt.run(|p, _| tsqr_rank_program_symbolic(p, layout, &tree, &cfg, rate_flops));
    report.makespan
}

/// The candidate portfolio for a reduction over `cluster_of`-mapped
/// domain roots. Fixed shapes come first (ties in [`autotune`] resolve
/// toward them), then the generated families, then the two greedy
/// constructions: `greedy` prices links at class granularity
/// ([`TreeShape::Greedy`]), `greedy-cost` re-runs the same agglomeration
/// under the *measured* per-site-pair message and combine times and is
/// encoded as the [`TreeShape::Custom`] parent vector it produces.
pub fn candidate_shapes(
    topo: &GridTopology,
    model: &CostModel,
    layout: &DomainLayout,
    rate_flops: Option<f64>,
    combine_rate_flops: Option<f64>,
) -> Vec<(String, TreeShape)> {
    let d = layout.num_domains();
    let n = layout.n;
    let r_bytes = 8 * (n * (n + 1) / 2) as u64;
    let roots = layout.roots();
    let mut out: Vec<(String, TreeShape)> = vec![
        ("flat".into(), TreeShape::Flat),
        ("binary".into(), TreeShape::Binary),
        ("grid".into(), TreeShape::GridHierarchical),
    ];
    for k in [2usize, 3, 4, 8, 16] {
        if k + 1 < d {
            out.push((format!("kary{k}"), TreeShape::Kary(k)));
        }
    }
    if d > 2 {
        out.push(("binomial".into(), TreeShape::Binomial));
        out.push(("greedy".into(), TreeShape::Greedy));
        // Greedy under the real α/β: price a child→parent hand-off at the
        // model's actual message time between the two domain-root
        // locations, and a combine at its tpqrt time. On asymmetric WAN
        // meshes this sees what the class-level greedy cannot (see
        // docs/tuning.md).
        let combine = model
            .compute_time(flops::tpqrt(n as u64), combine_rate_flops.or(rate_flops))
            .secs();
        let parents = ReductionTree::greedy_parents(
            d,
            |child, parent| {
                model
                    .message_time(topo.location(roots[child]), topo.location(roots[parent]), r_bytes)
                    .secs()
            },
            combine,
        );
        out.push(("greedy-cost".into(), TreeShape::Custom(parents)));
    }
    out
}

/// Prediction-only re-planning: searches the same candidate portfolio as
/// [`autotune`] but needs no [`Runtime`] and skips the replay
/// cross-check, returning the argmin `(name, shape, predicted)` directly.
///
/// This is the entry point for callers that must re-plant a reduction
/// tree *mid-flight* — the serving engine's elastic re-allocation uses it
/// when a site crash shrinks a job's surviving site set and the original
/// `GridHierarchical` plan no longer matches the allocation. Ties resolve
/// to the earliest candidate, exactly like [`autotune`], so both
/// functions pick the same tree for the same inputs.
pub fn plan_tree(
    topo: &GridTopology,
    model: &CostModel,
    layout: &DomainLayout,
    rate_flops: Option<f64>,
    combine_rate_flops: Option<f64>,
) -> (String, TreeShape, VirtualTime) {
    let cluster_of = layout.clusters();
    candidate_shapes(topo, model, layout, rate_flops, combine_rate_flops)
        .into_iter()
        .map(|(name, shape)| {
            let tree = ReductionTree::build(&shape, layout.num_domains(), &cluster_of);
            let predicted =
                predict_makespan(topo, model, layout, &tree, rate_flops, combine_rate_flops);
            (name, shape, predicted)
        })
        .min_by(|a, b| a.2.secs().total_cmp(&b.2.secs()))
        .expect("portfolio is never empty")
}

/// Searches the candidate portfolio for the minimum-makespan reduction
/// tree on `rt`'s topology, for an `m × n` factorization over
/// single-process domains (`domains_per_cluster` = ranks per cluster).
///
/// Returns the full search table plus the winner, whose analytic
/// prediction is cross-checked against a symbolic `netsim` replay;
/// disagreement beyond 1e-9 relative is a bug in the predictor (or a
/// drift in the simulator's pricing) and panics.
pub fn autotune(
    rt: &Runtime,
    m: u64,
    n: usize,
    domains_per_cluster: usize,
    rate_flops: Option<f64>,
    combine_rate_flops: Option<f64>,
) -> TuneOutcome {
    let topo = rt.topology();
    let model = rt.cost_model();
    let layout = DomainLayout::build(topo, m, n, domains_per_cluster);
    let cluster_of = layout.clusters();
    let table: Vec<TuneCandidate> =
        candidate_shapes(topo, model, &layout, rate_flops, combine_rate_flops)
            .into_iter()
            .map(|(name, shape)| {
                let tree = ReductionTree::build(&shape, layout.num_domains(), &cluster_of);
                let predicted = predict_makespan(
                    topo,
                    model,
                    &layout,
                    &tree,
                    rate_flops,
                    combine_rate_flops,
                );
                TuneCandidate {
                    name,
                    shape,
                    predicted,
                    depth: tree.depth(),
                    wan_msgs: tree.inter_cluster_messages(&cluster_of),
                }
            })
            .collect();
    let winner = table
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.predicted.secs().total_cmp(&b.predicted.secs()))
        .map(|(i, _)| i)
        .expect("portfolio is never empty");
    let replayed = replay_makespan(
        rt,
        &layout,
        &table[winner].shape,
        rate_flops,
        combine_rate_flops,
    );
    let predicted = table[winner].predicted;
    let rel = (predicted.secs() - replayed.secs()).abs() / replayed.secs().abs().max(1e-12);
    assert!(
        rel <= 1e-9,
        "analytic prediction {} drifted from netsim replay {} (rel {rel:.3e})",
        predicted.secs(),
        replayed.secs()
    );
    TuneOutcome { table, winner, replayed, domains: layout.num_domains() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsqr_netsim::{ClusterSpec, LinkParams};

    fn mini_grid(clusters: usize, procs: usize) -> Runtime {
        let specs = (0..clusters)
            .map(|i| ClusterSpec {
                name: format!("c{i}"),
                nodes: procs,
                procs_per_node: 1,
                peak_gflops_per_proc: 8.0,
            })
            .collect();
        let topo = GridTopology::block_placement(specs, procs, 1);
        let mut model =
            CostModel::homogeneous(LinkParams::from_ms_mbps(0.07, 890.0), 1e9, clusters);
        for a in 0..clusters {
            for b in 0..clusters {
                if a != b {
                    model.inter_cluster[a][b] = LinkParams::from_ms_mbps(8.0, 80.0);
                }
            }
        }
        Runtime::new(topo, model)
    }

    #[test]
    fn prediction_matches_replay_bitwise_for_fixed_shapes() {
        let rt = mini_grid(4, 8);
        let layout = DomainLayout::build(rt.topology(), 1 << 16, 16, 8);
        for shape in [TreeShape::Flat, TreeShape::Binary, TreeShape::GridHierarchical] {
            let tree = ReductionTree::build(&shape, layout.num_domains(), &layout.clusters());
            let predicted = predict_makespan(
                rt.topology(),
                rt.cost_model(),
                &layout,
                &tree,
                None,
                None,
            );
            let replayed = replay_makespan(&rt, &layout, &shape, None, None);
            assert_eq!(
                predicted.secs().to_bits(),
                replayed.secs().to_bits(),
                "{shape:?}: {} vs {}",
                predicted.secs(),
                replayed.secs()
            );
        }
    }

    #[test]
    fn prediction_matches_replay_for_generated_and_custom_trees() {
        let rt = mini_grid(3, 4);
        let layout = DomainLayout::build(rt.topology(), 1 << 14, 8, 4);
        let d = layout.num_domains();
        let lopsided: Vec<Option<usize>> =
            (0..d).map(|i| if i == 0 { None } else { Some(i / 3) }).collect();
        for shape in [
            TreeShape::Kary(3),
            TreeShape::Binomial,
            TreeShape::Greedy,
            TreeShape::Custom(lopsided),
        ] {
            let tree = ReductionTree::build(&shape, d, &layout.clusters());
            let predicted = predict_makespan(
                rt.topology(),
                rt.cost_model(),
                &layout,
                &tree,
                Some(2.5e9),
                Some(1.5e9),
            );
            let replayed = replay_makespan(&rt, &layout, &shape, Some(2.5e9), Some(1.5e9));
            let rel = (predicted.secs() - replayed.secs()).abs() / replayed.secs();
            assert!(rel <= 1e-12, "{shape:?}: rel {rel:.3e}");
        }
    }

    #[test]
    fn autotuned_tree_never_loses_to_fixed_shapes() {
        let rt = mini_grid(4, 8);
        let outcome = autotune(&rt, 1 << 18, 32, 8, None, None);
        let layout = DomainLayout::build(rt.topology(), 1 << 18, 32, 8);
        for shape in [TreeShape::Flat, TreeShape::Binary, TreeShape::GridHierarchical] {
            let fixed = replay_makespan(&rt, &layout, &shape, None, None);
            assert!(
                outcome.replayed.secs() <= fixed.secs() + 1e-15,
                "tuned {} slower than {shape:?} {}",
                outcome.replayed.secs(),
                fixed.secs()
            );
        }
        // The table lists fixed shapes first and the argmin favors them
        // on ties.
        assert_eq!(outcome.table[0].name, "flat");
        assert_eq!(outcome.table[2].name, "grid");
        assert_eq!(outcome.domains, 32);
    }

    #[test]
    fn plan_tree_agrees_with_autotune_without_a_runtime() {
        let rt = mini_grid(3, 8);
        let outcome = autotune(&rt, 1 << 17, 16, 8, None, None);
        let layout = DomainLayout::build(rt.topology(), 1 << 17, 16, 8);
        let (name, shape, predicted) =
            plan_tree(rt.topology(), rt.cost_model(), &layout, None, None);
        assert_eq!(name, outcome.best().name, "same argmin, same tie-break");
        assert_eq!(shape, outcome.best().shape);
        assert_eq!(predicted.secs().to_bits(), outcome.best().predicted.secs().to_bits());
    }

    #[test]
    fn deep_chain_does_not_overflow_the_predictor() {
        // Kary(1) over 256 domains is a 255-deep chain; the worklist
        // traversal must handle it without recursion.
        let rt = mini_grid(4, 64);
        let layout = DomainLayout::build(rt.topology(), 1 << 20, 8, 64);
        let tree = ReductionTree::build(&TreeShape::Kary(1), 256, &layout.clusters());
        let predicted =
            predict_makespan(rt.topology(), rt.cost_model(), &layout, &tree, None, None);
        assert!(predicted.secs() > 0.0);
    }

    #[test]
    fn greedy_cost_candidate_is_heap_ordered_and_complete() {
        let rt = mini_grid(4, 8);
        let layout = DomainLayout::build(rt.topology(), 1 << 16, 16, 8);
        let shapes =
            candidate_shapes(rt.topology(), rt.cost_model(), &layout, None, None);
        let (_, custom) = shapes
            .iter()
            .find(|(name, _)| name == "greedy-cost")
            .expect("portfolio includes the cost-priced greedy");
        let tree = ReductionTree::build(custom, layout.num_domains(), &layout.clusters());
        assert!(tree.is_heap_ordered());
        assert_eq!(tree.total_messages(), layout.num_domains() - 1);
    }
}
